"""Setuptools shim for environments without PEP 517 wheel support.

Carries just enough metadata for ``pip install .`` from a bare checkout:
the src/ layout and the ``py.typed`` marker (PEP 561), so downstream type
checkers see the package's inline annotations.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
)
