"""Batched functional engine vs the per-frame reference loop.

Times the S-VGG11 *functional* scenario at batch 64: the three evaluated
hardware variants (baseline FP16, SpikeStream FP16, SpikeStream FP8) costed
on the network's real recorded spike activity, through both execution paths
of :class:`~repro.core.pipeline.SpikeStreamInference`:

* **vectorized** — ONE batched forward pass
  (:meth:`~repro.snn.network.SpikingNetwork.forward_batch`) records the
  activity, and each variant's performance model costs the stacked spike
  maps through the kernels' ``*_perf_batch`` entry points
  (:meth:`~repro.core.pipeline.SpikeStreamInference.run_functional` with a
  shared ``activity=``);
* **looped** — the historical per-frame path
  (:meth:`~repro.core.pipeline.SpikeStreamInference.run_functional_reference`):
  every variant walks the batch frame-by-frame, re-running the network
  forward and one scalar kernel-perf call per layer and frame,

asserts that each variant's :class:`~repro.core.results.InferenceResult` is
**bit-for-bit identical** across the two paths, and reports the wall-clock
speedup (>= 2x at batch 64 is the acceptance bar; ~3-4x is typical — the
batched path pays the GEMM-bound forward once instead of once per variant,
and replaces ~2000 scalar kernel-perf calls with 11 batched ones).

Emits the same result schema as ``benchmarks/bench_batch_engine.py``
(``--json`` prints it as machine-readable JSON), so functional and
statistical perf trajectories are comparable across PRs.

Runs standalone (``python benchmarks/bench_functional.py [--json]``) or
under the pytest-benchmark harness
(``pytest benchmarks/bench_functional.py``).
"""

import sys
import time

from repro.core.pipeline import SpikeStreamInference
from repro.eval.experiments import svgg11_variant_configs
from repro.session import functional_svgg11_setup

#: The acceptance batch size: both paths run the full 64 recorded frames.
FULL_BATCH = 64
SEED = 2025
SPEEDUP_BAR = 2.0


def compare_engines(batch_size: int = FULL_BATCH, seed: int = SEED, repeats: int = 2):
    """Time both paths on the functional scenario; returns a result dictionary.

    The dictionary uses the exact schema of
    ``bench_batch_engine.compare_engines`` (plus the ``benchmark`` name), so
    perf dashboards can track both engines with one parser.
    """
    network, frames = functional_svgg11_setup(batch_size=batch_size, seed=seed)
    engines = {
        key: SpikeStreamInference(config)
        for key, config in svgg11_variant_configs(batch_size=batch_size, seed=seed).items()
    }
    any_engine = next(iter(engines.values()))
    any_engine.run_functional(network, frames[: min(2, batch_size)])  # warm-up

    vectorized_s = []
    vectorized = {}
    for _ in range(repeats):
        start = time.perf_counter()
        activity = any_engine.record_activity(network, frames)
        vectorized = {
            key: engine.run_functional(network, frames, activity=activity)
            for key, engine in engines.items()
        }
        vectorized_s.append(time.perf_counter() - start)

    start = time.perf_counter()
    reference = {
        key: engine.run_functional_reference(network, frames)
        for key, engine in engines.items()
    }
    looped_s = time.perf_counter() - start

    best = min(vectorized_s)
    return {
        "benchmark": "functional",
        "batch_size": batch_size,
        "vectorized_s": best,
        "looped_s": looped_s,
        "speedup": looped_s / best if best > 0 else float("inf"),
        "identical": all(
            vectorized[key].identical_to(reference[key]) for key in engines
        ),
    }


def test_functional_engine_equivalent_and_faster(benchmark):
    """Batched functional engine: bit-for-bit equal to the loop and >= 2x faster."""
    result = benchmark(compare_engines, repeats=1)
    assert result["identical"]
    assert result["speedup"] >= SPEEDUP_BAR, (
        f"batched functional engine only {result['speedup']:.2f}x faster "
        f"({result['vectorized_s']:.3f}s vs {result['looped_s']:.3f}s)"
    )


def _pretty(result) -> str:
    return (
        f"S-VGG11 functional scenario (3 variants), batch {result['batch_size']}:\n"
        f"  per-frame loop : {result['looped_s']:.3f} s\n"
        f"  batch engine   : {result['vectorized_s']:.3f} s (best of 2)\n"
        f"  speedup        : {result['speedup']:.2f}x\n"
        f"  bit-for-bit    : {'yes' if result['identical'] else 'NO'}"
    )


def main(argv=None) -> int:
    from pathlib import Path
    bench_dir = str(Path(__file__).resolve().parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    from common import emit_result, speedup_gate

    result = compare_engines()
    emit_result(result, argv, _pretty)
    return speedup_gate(result, SPEEDUP_BAR)


if __name__ == "__main__":
    sys.exit(main())
