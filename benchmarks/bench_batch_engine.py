"""Vectorized batch engine vs the per-frame reference loop.

Times a batch-128 S-VGG11 statistical run through both execution paths of
:class:`~repro.core.pipeline.SpikeStreamInference`:

* ``run_statistical`` — the vectorized batch engine (one pass per layer over
  the whole batch), and
* ``run_statistical_reference`` — the historical frame-by-frame loop,

asserts that their :class:`~repro.core.results.InferenceResult` objects are
**bit-for-bit identical**, and reports the wall-clock speedup (>= 3x at
batch 128 is the acceptance bar; ~4x is typical).

Runs standalone (``python benchmarks/bench_batch_engine.py [--json]``) or
under the pytest-benchmark harness
(``pytest benchmarks/bench_batch_engine.py``).  ``--json`` emits the result
dictionary as machine-readable JSON — the same schema
``benchmarks/bench_functional.py`` emits, so statistical and functional perf
trajectories are comparable across PRs.
"""

import sys
import time

from repro.config import spikestream_config
from repro.core.pipeline import SpikeStreamInference

#: The paper's batch size: both engines are timed on the full 128 frames.
FULL_BATCH = 128
SEED = 2025


def compare_engines(batch_size: int = FULL_BATCH, seed: int = SEED, repeats: int = 3):
    """Time both paths and verify equivalence; returns a result dictionary."""
    engine = SpikeStreamInference(spikestream_config(batch_size=batch_size, seed=seed))
    engine.run_statistical(batch_size=min(8, batch_size), seed=1)  # warm-up

    vectorized_s = []
    for _ in range(repeats):
        start = time.perf_counter()
        vectorized = engine.run_statistical(batch_size=batch_size, seed=seed)
        vectorized_s.append(time.perf_counter() - start)

    start = time.perf_counter()
    reference = engine.run_statistical_reference(batch_size=batch_size, seed=seed)
    looped_s = time.perf_counter() - start

    best = min(vectorized_s)
    return {
        "benchmark": "batch_engine",
        "batch_size": batch_size,
        "vectorized_s": best,
        "looped_s": looped_s,
        "speedup": looped_s / best if best > 0 else float("inf"),
        "identical": vectorized.identical_to(reference),
    }


def test_batch_engine_equivalent_and_faster(benchmark):
    """Vectorized engine: bit-for-bit equal to the loop and >= 3x faster."""
    engine = SpikeStreamInference(spikestream_config(batch_size=FULL_BATCH, seed=SEED))
    vectorized = benchmark(engine.run_statistical, batch_size=FULL_BATCH, seed=SEED)
    reference = engine.run_statistical_reference(batch_size=FULL_BATCH, seed=SEED)
    assert vectorized.identical_to(reference)

    result = compare_engines(repeats=2)
    assert result["identical"]
    assert result["speedup"] >= 3.0, (
        f"vectorized engine only {result['speedup']:.2f}x faster "
        f"({result['vectorized_s']:.3f}s vs {result['looped_s']:.3f}s)"
    )


def _pretty(result) -> str:
    return (
        f"S-VGG11 statistical run, batch {result['batch_size']}:\n"
        f"  per-frame loop : {result['looped_s']:.3f} s\n"
        f"  batch engine   : {result['vectorized_s']:.3f} s (best of 3)\n"
        f"  speedup        : {result['speedup']:.2f}x\n"
        f"  bit-for-bit    : {'yes' if result['identical'] else 'NO'}"
    )


def main(argv=None) -> int:
    from pathlib import Path
    bench_dir = str(Path(__file__).resolve().parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    from common import emit_result, speedup_gate

    result = compare_engines()
    emit_result(result, argv, _pretty)
    return speedup_gate(result, 3.0)


if __name__ == "__main__":
    sys.exit(main())
