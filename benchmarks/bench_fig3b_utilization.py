"""Figure 3b: per-layer FPU utilization and IPC, baseline vs SpikeStream (FP16)."""

from conftest import publish

from repro.eval.experiments import utilization_experiment


def test_fig3b_fpu_utilization_and_ipc(benchmark, svgg11_variants):
    """FPU utilization and per-core IPC for both FP16 code variants across S-VGG11."""
    result = benchmark(utilization_experiment, variants=svgg11_variants)
    publish(
        result,
        columns=[
            "layer",
            "fpu_util_baseline",
            "fpu_util_spikestream",
            "ipc_baseline",
            "ipc_spikestream",
        ],
    )
    headline = result.headline
    # Paper: network-average utilization rises from 9.28 % to 52.3 %, and the
    # spike-encoding first layer from 24.8 % to 53.1 %.
    assert headline["network_fpu_util_spikestream"] > 4 * headline["network_fpu_util_baseline"]
    assert 0.45 < headline["encode_fpu_util_spikestream"] < 0.62
