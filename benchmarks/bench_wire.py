"""Wire codec microbenchmark: protocol v2 vs the legacy v1 pickle frame.

One seeded synthetic **functional batch** — the heaviest payload the
cluster ships: requests carrying a real functional network plus stacked
input frames (``float64`` image tensors), exactly what
:meth:`~repro.net.coordinator.Coordinator` dispatches to a worker — is
pushed through both codecs:

* **v1** — ``encode_frame_v1`` / ``decode_frame_v1``: one header plus one
  monolithic pickle of the whole payload (every array byte copied through
  the pickler on both ends);
* **v2** — ``encode_frame`` / ``decode_frame``: pickle-5 metadata with
  contiguous arrays framed out-of-band as raw buffers (the zero-copy path
  of :mod:`repro.net.framing`).

Timing is best-of-``REPEATS`` over ``ITERATIONS`` full encode→decode round
trips per arm; the headline ``speedup`` is ``v1_time / v2_time``.  The
``identical`` flag certifies both decoders reproduce the payload
bit-for-bit (arrays, configs, scalars) — a faster codec that corrupts a
frame must fail the gate, not win it.  ``v1_bytes`` / ``v2_bytes`` report
the framed sizes so wire-efficiency changes are visible alongside speed.

Emits the shared flat result schema through ``benchmarks/common.py``.
Runs standalone::

    python benchmarks/bench_wire.py [--json]
"""

import argparse
import sys
import time

import numpy as np

from repro.config import spikestream_config
from repro.eval.sweeps import functional_network
from repro.net.framing import (
    Message,
    decode_frame,
    decode_frame_v1,
    encode_frame,
    encode_frame_v1,
)
from repro.snn.datasets import SyntheticCIFAR10
from repro.types import TensorShape

SEED = 2025
#: Requests per synthetic batch — matches the cluster bench's max_batch.
BATCH = 16
FRAMES_PER_REQUEST = 4
ITERATIONS = 20
REPEATS = 3
#: v2 exists to be faster than v1 on array-heavy payloads; anything below
#: par is a regression in the zero-copy path itself.
SPEEDUP_BAR = 1.0


def synthetic_batch_message(seed=SEED, batch=BATCH):
    """A dispatch-shaped ``batch`` message with functional requests."""
    network = functional_network(seed)
    dataset = SyntheticCIFAR10(seed=seed, image_shape=TensorShape(16, 16, 3))
    config = spikestream_config(batch_size=1, timesteps=4, seed=seed)
    requests = []
    for index in range(batch):
        frames, _labels = dataset.sample(FRAMES_PER_REQUEST)
        requests.append({
            "id": index,
            "mode": "functional",
            "config": config,
            "fingerprint": f"wire-bench-{seed}-{index}",
            "network": network,
            "frames": np.ascontiguousarray(frames, dtype=np.float64),
            "seed": seed + index,
        })
    return Message("batch", {"batch_id": 1, "requests": requests})


def _roundtrip_v1(message):
    frame = encode_frame_v1(message)
    return decode_frame_v1(frame)[0], len(frame)


def _roundtrip_v2(message):
    frame = encode_frame(message)
    return decode_frame(frame)[0], len(frame)


def _time_arm(roundtrip, message, iterations=ITERATIONS, repeats=REPEATS):
    """Best-of-``repeats`` seconds for ``iterations`` encode→decode trips."""
    best = float("inf")
    decoded, frame_bytes = roundtrip(message)  # warm-up + artifacts
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            roundtrip(message)
        best = min(best, time.perf_counter() - start)
    return best, decoded, frame_bytes


def _equal(a, b) -> bool:
    """Structural bit-for-bit equality across a decoded payload.

    Objects like :class:`~repro.snn.network.SpikingNetwork` compare by
    identity, which a codec round trip can never preserve — recurse into
    their state instead; every leaf array must match in dtype, shape and
    bytes.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
                and a.dtype == b.dtype and a.shape == b.shape
                and np.array_equal(a, b))
    if type(a) is not type(b):
        return False
    if isinstance(a, dict):
        return set(a) == set(b) and all(_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(map(_equal, a, b))
    state_a = getattr(a, "__dict__", None)
    state_b = getattr(b, "__dict__", None)
    if state_a is not None and state_b is not None:
        # Dataclass __eq__ may compare array-holding field tuples (an
        # ambiguous-truth ValueError); state recursion covers them too.
        return _equal(state_a, state_b)
    return bool(a == b)


def _requests_identical(left, right) -> bool:
    return (left.kind == right.kind
            and _equal(left["requests"], right["requests"]))


def compare_wire(seed=SEED, batch=BATCH, iterations=ITERATIONS):
    """Both codecs on one payload; returns the shared bench result schema."""
    message = synthetic_batch_message(seed=seed, batch=batch)
    v1_s, v1_decoded, v1_bytes = _time_arm(_roundtrip_v1, message,
                                           iterations=iterations)
    v2_s, v2_decoded, v2_bytes = _time_arm(_roundtrip_v2, message,
                                           iterations=iterations)
    identical = (_requests_identical(v1_decoded, message)
                 and _requests_identical(v2_decoded, message))
    per_trip = iterations
    return {
        "benchmark": "wire",
        "batch_size": batch,
        "iterations": iterations,
        # vectorized = the subject arm (v2), looped = the reference (v1),
        # matching the schema every other bench emits.
        "vectorized_s": v2_s / per_trip,
        "looped_s": v1_s / per_trip,
        "speedup": v1_s / v2_s if v2_s > 0 else float("inf"),
        "v1_bytes": v1_bytes,
        "v2_bytes": v2_bytes,
        "identical": identical,
    }


def _pretty(result) -> str:
    return (
        f"wire codec round trip, {result['batch_size']}-request functional "
        f"batch:\n"
        f"  v1 (monolithic pickle) : {result['looped_s'] * 1e3:.2f} ms/trip, "
        f"{result['v1_bytes']} B/frame\n"
        f"  v2 (zero-copy framing) : {result['vectorized_s'] * 1e3:.2f} ms/trip, "
        f"{result['v2_bytes']} B/frame\n"
        f"  speedup                : {result['speedup']:.2f}x "
        f"(bar {SPEEDUP_BAR:.1f}x)\n"
        f"  decode bit-for-bit     : "
        f"{'yes' if result['identical'] else 'NO'}"
    )


def main(argv=None) -> int:
    from pathlib import Path
    bench_dir = str(Path(__file__).resolve().parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    from common import emit_result, speedup_gate

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--batch", type=int, default=BATCH)
    parser.add_argument("--iterations", type=int, default=ITERATIONS)
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)

    result = compare_wire(batch=args.batch, iterations=args.iterations)
    emit_result(result, ["--json"] if args.json else [], _pretty)
    return speedup_gate(result, SPEEDUP_BAR)


if __name__ == "__main__":
    sys.exit(main())
