"""Sweep dispatch cost across execution backends.

Times one declarative sweep (`firing_rate`, 6 points) through every
execution backend — serial, thread pool, process pool and sharded worker
sessions — asserting along the way that all four produce bit-for-bit
identical rows (the same guarantee `tools/smoke.py` gates CI on).

The sweep's points are a few milliseconds each, so this benchmark mostly
measures *dispatch overhead*: what a backend costs before it pays off.
Process pools and shards only win once the per-point work dominates their
start-up (e.g. the `precision` sweep's full-network points); the printed
table makes that trade-off concrete.

Runs standalone (``python benchmarks/bench_backends.py``).
"""

import sys
import time

from repro.eval.runner import run_sweep

SEED = 2025
REPEATS = 3

BACKENDS = (
    ("serial", {"backend": "serial"}),
    ("thread x4", {"backend": "thread", "jobs": 4}),
    ("process x4", {"backend": "process", "jobs": 4}),
    ("sharded x2", {"backend": "sharded", "shards": 2}),
    ("sharded x4", {"backend": "sharded", "shards": 4}),
)


def bench(sweep: str = "firing_rate", **point_kwargs):
    reference = None
    results = []
    for label, kwargs in BACKENDS:
        timings = []
        for _ in range(REPEATS):
            start = time.perf_counter()
            result = run_sweep(sweep, seed=SEED, **kwargs, **point_kwargs)
            timings.append(time.perf_counter() - start)
        if reference is None:
            reference = result
        elif result.rows != reference.rows:
            raise AssertionError(f"backend {label} rows diverge from serial")
        results.append((label, min(timings)))
    return results


def main() -> int:
    print(f"== sweep dispatch across backends (firing_rate, {REPEATS} repeats) ==")
    results = bench()
    serial_s = results[0][1]
    for label, seconds in results:
        print(f"  {label:<12} {seconds * 1e3:8.1f} ms   "
              f"({serial_s / seconds:4.2f}x vs serial)")
    print("rows bit-for-bit identical across all backends")
    return 0


if __name__ == "__main__":
    sys.exit(main())
