"""Shared emission helpers for the standalone benchmark entry points.

Every ``benchmarks/bench_*.py`` that runs standalone reports one flat result
dictionary in the same machine-readable schema; this module is the single
writer.  ``--json`` prints exactly ``json.dumps(result, sort_keys=True)`` on
stdout (the contract perf dashboards and ``tools/smoke.py`` parse), anything
else prints the benchmark's human-readable text.  Keeping the emission in
one place means the schema cannot drift between benchmarks — the
duplication this replaces had each bench re-implementing the same
``"--json" in argv`` branch.
"""

from __future__ import annotations

import json
import sys
from typing import Callable, Dict, Optional, Sequence

__all__ = ["emit_result", "speedup_gate"]

# Import recipe for the bench scripts (each repeats this guard before
# `from common import ...`, because this module must be importable both
# script-style — python benchmarks/bench_X.py, where the script dir is on
# sys.path — and from a process that imported the bench module by path):
#
#     if str(Path(__file__).resolve().parent) not in sys.path:
#         sys.path.insert(0, str(Path(__file__).resolve().parent))


def emit_result(
    result: Dict[str, object],
    argv: Optional[Sequence[str]] = None,
    pretty: Optional[Callable[[Dict[str, object]], str]] = None,
) -> None:
    """Print one benchmark result: canonical JSON under ``--json``, else text.

    ``argv`` defaults to ``sys.argv[1:]``; ``pretty`` renders the
    human-readable form (omitted: the JSON document is printed either way).
    """
    argv = sys.argv[1:] if argv is None else argv
    if "--json" in argv or pretty is None:
        print(json.dumps(result, sort_keys=True))
    else:
        print(pretty(result))


def speedup_gate(result: Dict[str, object], bar: float,
                 identical_key: Optional[str] = "identical") -> int:
    """Shared pass/fail policy of the engine benchmarks; returns an exit code.

    Fails (non-zero) when the result's ``identical`` flag is false or its
    ``speedup`` is below ``bar``, printing the reason on stderr — the exact
    behavior every bench's ``main`` previously hand-rolled.
    """
    if identical_key is not None and not result.get(identical_key, False):
        print("FAIL: results diverge from the reference", file=sys.stderr)
        return 1
    if float(result["speedup"]) < bar:
        print(f"FAIL: speedup below the {bar}x acceptance bar", file=sys.stderr)
        return 1
    return 0
