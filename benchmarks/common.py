"""Shared emission helpers for the standalone benchmark entry points.

Every ``benchmarks/bench_*.py`` that runs standalone reports one flat result
dictionary in the same machine-readable schema; this module is the single
writer.  ``--json`` prints exactly ``json.dumps(result, sort_keys=True)`` on
stdout (the contract perf dashboards and ``tools/smoke.py`` parse), anything
else prints the benchmark's human-readable text.  Keeping the emission in
one place means the schema cannot drift between benchmarks — the
duplication this replaces had each bench re-implementing the same
``"--json" in argv`` branch.
"""

from __future__ import annotations

import json
import sys
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "emit_result",
    "gate_check",
    "gate_report",
    "merge_gate_reports",
    "render_gate_report",
    "speedup_gate",
]

# Import recipe for the bench scripts (each repeats this guard before
# `from common import ...`, because this module must be importable both
# script-style — python benchmarks/bench_X.py, where the script dir is on
# sys.path — and from a process that imported the bench module by path):
#
#     if str(Path(__file__).resolve().parent) not in sys.path:
#         sys.path.insert(0, str(Path(__file__).resolve().parent))


def emit_result(
    result: Dict[str, object],
    argv: Optional[Sequence[str]] = None,
    pretty: Optional[Callable[[Dict[str, object]], str]] = None,
) -> None:
    """Print one benchmark result: canonical JSON under ``--json``, else text.

    ``argv`` defaults to ``sys.argv[1:]``; ``pretty`` renders the
    human-readable form (omitted: the JSON document is printed either way).
    """
    argv = sys.argv[1:] if argv is None else argv
    if "--json" in argv or pretty is None:
        print(json.dumps(result, sort_keys=True))
    else:
        print(pretty(result))


def speedup_gate(result: Dict[str, object], bar: float,
                 identical_key: Optional[str] = "identical") -> int:
    """Shared pass/fail policy of the engine benchmarks; returns an exit code.

    Fails (non-zero) when the result's ``identical`` flag is false or its
    ``speedup`` is below ``bar``, printing the reason on stderr — the exact
    behavior every bench's ``main`` previously hand-rolled.
    """
    if identical_key is not None and not result.get(identical_key, False):
        print("FAIL: results diverge from the reference", file=sys.stderr)
        return 1
    if float(result["speedup"]) < bar:
        print(f"FAIL: speedup below the {bar}x acceptance bar", file=sys.stderr)
        return 1
    return 0


# --------------------------------------------------------------------------- #
# Shared gate-report schema
# --------------------------------------------------------------------------- #
# One JSON document shape for every repository gate — the bench-regression
# gate (tools/bench_gate.py), the lint gate (`repro.cli check --format json`)
# and the combined runner (tools/gate.py) all emit it, so one consumer can
# parse any of them:
#
#     {"gate": "<name>", "passed": bool,
#      "summary": {"checks": N, "failed": M},
#      "checks": [{"name": ..., "passed": bool, "detail": "...",
#                  "data": {...}}, ...]}
#
# A combined report (merge_gate_reports) nests the per-gate reports under
# "gates" and aggregates the summary.

def gate_check(
    name: str,
    passed: bool,
    detail: str = "",
    data: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """One named pass/fail entry of a gate report."""
    return {
        "name": name,
        "passed": bool(passed),
        "detail": detail,
        "data": dict(data) if data else {},
    }


def gate_report(gate: str, checks: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Assemble one gate's canonical report from its checks."""
    checks = [dict(check) for check in checks]
    failed = sum(1 for check in checks if not check["passed"])
    return {
        "gate": gate,
        "passed": failed == 0,
        "summary": {"checks": len(checks), "failed": failed},
        "checks": checks,
    }


def merge_gate_reports(reports: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Combine per-gate reports into one top-level document (tools/gate.py)."""
    reports = [dict(report) for report in reports]
    checks = sum(report["summary"]["checks"] for report in reports)
    failed = sum(report["summary"]["failed"] for report in reports)
    return {
        "gate": "all",
        "passed": failed == 0,
        "summary": {"checks": checks, "failed": failed},
        "gates": reports,
    }


def render_gate_report(report: Dict[str, object]) -> str:
    """Human-readable rendering of a (possibly combined) gate report."""
    lines: List[str] = []
    for sub in report.get("gates", [report]):
        for check in sub["checks"]:
            status = "ok  " if check["passed"] else "FAIL"
            detail = f": {check['detail']}" if check.get("detail") else ""
            lines.append(f"{status} [{sub['gate']}] {check['name']}{detail}")
        summary = sub["summary"]
        verdict = "passed" if sub["passed"] else "FAILED"
        lines.append(
            f"{sub['gate']} gate {verdict} "
            f"({summary['checks']} check(s), {summary['failed']} failed)"
        )
    if "gates" in report:
        verdict = "passed" if report["passed"] else "FAILED"
        lines.append(
            f"all gates {verdict} ({report['summary']['checks']} check(s), "
            f"{report['summary']['failed']} failed)"
        )
    return "\n".join(lines)
