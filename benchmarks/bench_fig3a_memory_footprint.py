"""Figure 3a: ifmap memory footprint (AER vs CSR) and firing activity per layer."""

from conftest import BENCH_BATCH_SIZE, BENCH_SEED, publish

from repro.eval.experiments import memory_footprint_experiment


def test_fig3a_memory_footprint(benchmark):
    """Average footprint of every S-VGG11 conv-layer ifmap under both formats."""
    result = benchmark(
        memory_footprint_experiment, batch_size=max(BENCH_BATCH_SIZE, 16), seed=BENCH_SEED
    )
    publish(
        result,
        columns=[
            "layer",
            "ifmap_shape",
            "firing_rate_mean",
            "aer_bytes_mean",
            "csr_bytes_mean",
            "reduction",
        ],
    )
    # Shape check: the CSR-derived format wins on every spiking layer and the
    # average reduction lands in the band around the paper's 2.75x.
    assert all(row["reduction"] > 1.5 for row in result.rows[1:])
    assert 2.0 < result.headline["mean_csr_over_aer_reduction"] < 4.0
