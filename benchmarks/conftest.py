"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure of the paper: it times the experiment
driver with ``pytest-benchmark`` and writes the resulting table (the same
rows/series the paper's figure reports) to ``benchmarks/results/`` so the
numbers can be inspected after a ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval.experiments import run_svgg11_variants
from repro.eval.reporting import render_experiment

RESULTS_DIR = Path(__file__).parent / "results"

#: Batch size used by the figure benchmarks.  The paper uses 128 frames; the
#: default here keeps a benchmark iteration under a second.  Override with
#: the REPRO_BENCH_BATCH environment variable for a full-fidelity run.
BENCH_BATCH_SIZE = int(os.environ.get("REPRO_BENCH_BATCH", "4"))
BENCH_SEED = 2025


@pytest.fixture(scope="session")
def svgg11_variants():
    """The three evaluated S-VGG11 variants, shared across figure benchmarks."""
    return run_svgg11_variants(batch_size=BENCH_BATCH_SIZE, seed=BENCH_SEED)


def publish(result, columns=None) -> str:
    """Render an experiment result, print it and persist it under results/."""
    text = render_experiment(
        f"{result.figure}: {result.name}",
        result.rows,
        notes="headline: " + ", ".join(f"{k}={v:.4g}" for k, v in result.headline.items()),
        columns=columns,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result.figure}_{result.name}.txt").write_text(text)
    print("\n" + text)
    return text
