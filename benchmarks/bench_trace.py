"""Tracing overhead: off vs sampled vs full on the serving acceptance load.

The cost gate of the ``repro.obs`` subsystem.  The same workload as
``bench_serve.py`` — 64 concurrent single-frame functional requests
micro-batched by an in-process :class:`~repro.serve.server.InferenceServer`
— runs three times on fresh sessions:

* **off** — the default disabled :class:`~repro.obs.Tracer`: every hook
  must collapse to one attribute check (the ``NULL_SPAN`` path);
* **sampled** — tracing enabled at ``sample=0.25``, the always-on
  production setting;
* **full** — every request traced (``sample=1.0``), each exporting a
  complete queue/batch/engine span tree.

The headline is ``speedup = full_rps / off_rps``, gated by an **absolute
floor of 0.98** (``tools/bench_gate.py`` honors the ``floor`` field): fully
traced serving may cost at most 2% throughput.  The untraced arm does
strictly less per request than the traced arm, so the floor simultaneously
bounds the tracing-*off* overhead on ``bench_serve`` — the ISSUE's ≤2% bar
— by construction.  Arms are interleaved per repeat (best-of-``--repeats``)
so clock drift hits all three equally, per-request results are asserted
bit-for-bit identical across off and full, and the full arm must complete
one well-nested trace per request (a benchmark that traced nothing would
gate nothing).  Runs standalone::

    python benchmarks/bench_trace.py [--json] [--requests N] [--repeats R]
"""

import argparse
import sys

from repro.obs import Tracer, well_nested
from repro.serve import InferenceServer, LoadGenerator
from repro.session import Session, functional_svgg11_setup

REQUESTS = 64
MAX_BATCH = 16
SEED = 2025
REPEATS = 3
SAMPLE_RATE = 0.25
#: Absolute speedup floor (full-tracing rps / tracing-off rps): the ≤2%
#: overhead bar of the observability ISSUE, enforced by tools/bench_gate.py.
OVERHEAD_FLOOR = 0.98

#: (arm name, Tracer factory) — None means the server's default disabled
#: tracer, i.e. exactly what an uninstrumented deployment runs.
ARMS = (
    ("off", lambda requests: None),
    ("sampled", lambda requests: Tracer(
        enabled=True, sample=SAMPLE_RATE, capacity=requests, seed=SEED)),
    ("full", lambda requests: Tracer(
        enabled=True, sample=1.0, capacity=requests, seed=SEED)),
)


def trace_arm(network, frames, tracer, requests=REQUESTS,
              max_batch=MAX_BATCH, max_wait_ms=50.0):
    """One serving run; returns (LoadReport, results, completed traces)."""
    futures = []

    session = Session()
    with InferenceServer(
        session=session, workers=1, max_batch=max_batch,
        max_wait_ms=max_wait_ms, max_queue=max(requests, 256), tracer=tracer,
    ) as server:

        def submit(index):
            future = server.submit_functional(network, frames[index:index + 1])
            futures.append(future)
            return future

        generator = LoadGenerator(submit, requests=requests)
        report = generator.run()
        results = [future.result(timeout=0) for future in futures]
        traces = server.tracer.completed()
    return report, results, traces


def compare_tracing(requests=REQUESTS, max_batch=MAX_BATCH, repeats=REPEATS,
                    seed=SEED):
    """All three arms, interleaved best-of-``repeats``; shared bench schema."""
    network, frames = functional_svgg11_setup(batch_size=requests, seed=seed)
    network.fingerprint()  # hash the weights once, outside every timing

    best = {}          # arm -> best (highest-rps) LoadReport
    reference = {}     # arm -> per-request results of the first repeat
    full_traces = []   # completed traces of the first full repeat
    for repeat in range(repeats):
        for arm, factory in ARMS:
            report, results, traces = trace_arm(
                network, frames, factory(requests), requests=requests,
                max_batch=max_batch,
            )
            if arm not in best or report.throughput_rps > best[arm].throughput_rps:
                best[arm] = report
            if repeat == 0:
                reference[arm] = results
                if arm == "full":
                    full_traces = traces

    identical = len(reference["off"]) == len(reference["full"]) and all(
        off.identical_to(full)
        for off, full in zip(reference["off"], reference["full"])
    )
    traced_ok = len(full_traces) == requests and all(
        well_nested(trace) is None for trace in full_traces
    )
    off_rps = best["off"].throughput_rps
    full_rps = best["full"].throughput_rps
    return {
        "benchmark": "trace",
        "batch_size": max_batch,
        "requests": requests,
        "repeats": repeats,
        "sample_rate": SAMPLE_RATE,
        # looped = untraced reference, vectorized = fully traced: the shared
        # speedup field then reads "traced throughput / untraced throughput".
        "looped_s": best["off"].wall_s,
        "vectorized_s": best["full"].wall_s,
        "off_rps": off_rps,
        "sampled_rps": best["sampled"].throughput_rps,
        "full_rps": full_rps,
        "latency_p50_ms": best["full"].to_dict()["latency_p50_ms"],
        "latency_p95_ms": best["full"].to_dict()["latency_p95_ms"],
        "traces_completed": len(full_traces),
        "spans": sum(len(trace["spans"]) for trace in full_traces),
        "speedup": full_rps / off_rps if off_rps > 0 else float("inf"),
        "floor": OVERHEAD_FLOOR,
        "identical": identical and traced_ok,
    }


def _pretty(result) -> str:
    overhead = (1.0 - result["speedup"]) * 100.0
    return (
        f"{result['requests']} concurrent single-frame functional requests, "
        f"best of {result['repeats']}:\n"
        f"  tracing off              : {result['off_rps']:.1f} req/s\n"
        f"  sampled (p={result['sample_rate']})         : "
        f"{result['sampled_rps']:.1f} req/s\n"
        f"  full tracing             : {result['full_rps']:.1f} req/s "
        f"({result['traces_completed']} traces, {result['spans']} spans)\n"
        f"  full-tracing overhead    : {overhead:+.1f}% "
        f"(floor: {(1.0 - result['floor']) * 100.0:.0f}%)\n"
        f"  bit-for-bit across arms  : "
        f"{'yes' if result['identical'] else 'NO'}"
    )


def main(argv=None) -> int:
    from pathlib import Path
    bench_dir = str(Path(__file__).resolve().parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    from common import emit_result, speedup_gate

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--requests", type=int, default=REQUESTS)
    parser.add_argument("--max-batch", type=int, default=MAX_BATCH)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)

    result = compare_tracing(
        requests=args.requests, max_batch=args.max_batch,
        repeats=args.repeats,
    )
    emit_result(result, ["--json"] if args.json else [], _pretty)
    return speedup_gate(result, OVERHEAD_FLOOR)


if __name__ == "__main__":
    sys.exit(main())
