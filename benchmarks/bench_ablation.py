"""Ablation benchmarks: contribution of each SpikeStream design choice.

These go beyond the paper's figures and quantify the design decisions called
out in DESIGN.md: the streaming acceleration itself, the FP8 SIMD lanes, the
workload-stealing scheduler, sensitivity to firing rate, strong scaling with
core count and the per-SpVA stream-length behaviour.
"""

from conftest import BENCH_SEED, publish

from repro.eval.sweeps import (
    core_count_sweep,
    firing_rate_sweep,
    optimization_ablation,
    precision_sweep,
    stream_length_sweep,
    strided_indirect_sweep,
)


def test_ablation_optimizations(benchmark):
    """Baseline vs +SA vs +FP8, plus workload stealing vs a static partition."""
    result = benchmark(optimization_ablation, batch_size=2, seed=BENCH_SEED)
    publish(result, columns=["variant", "runtime_ms", "energy_mj", "fpu_util", "speedup_vs_baseline"])
    assert result.headline["sa_speedup"] > 4.0
    assert result.headline["fp8_speedup"] > result.headline["sa_speedup"]
    assert result.headline["stealing_gain"] >= 1.0


def test_ablation_firing_rate_sweep(benchmark):
    """Runtime and speedup of conv6 as the ifmap firing rate varies."""
    result = benchmark(firing_rate_sweep, rates=(0.05, 0.1, 0.2, 0.4), seed=BENCH_SEED)
    publish(result, columns=["firing_rate", "baseline_cycles", "spikestream_cycles", "speedup",
                             "spikestream_fpu_util"])
    cycles = [row["spikestream_cycles"] for row in result.rows]
    assert cycles == sorted(cycles)


def test_ablation_core_count_sweep(benchmark):
    """Strong scaling of the SpikeStream conv kernel from 1 to 8 cores."""
    result = benchmark(core_count_sweep, core_counts=(1, 2, 4, 8), seed=BENCH_SEED)
    publish(result, columns=["cores", "cycles", "fpu_util", "parallel_efficiency"])
    assert result.headline["efficiency_at_8_cores"] > 0.5


def test_ablation_precision_sweep(benchmark):
    """End-to-end runtime/energy across FP32, FP16 and FP8."""
    result = benchmark(precision_sweep, batch_size=2, seed=BENCH_SEED)
    publish(result, columns=["precision", "simd_width", "runtime_ms", "energy_mj", "fpu_util"])
    runtimes = {row["precision"]: row["runtime_ms"] for row in result.rows}
    assert runtimes["fp8"] < runtimes["fp16"] < runtimes["fp32"]


def test_ablation_strided_indirect_extension(benchmark):
    """Projected gain of the strided-indirect SSR extension (paper future work)."""
    result = benchmark(strided_indirect_sweep, rates=(0.05, 0.1, 0.2, 0.4), seed=BENCH_SEED)
    publish(result, columns=["firing_rate", "spikestream_cycles", "strided_indirect_cycles",
                             "additional_speedup", "strided_indirect_fpu_util"])
    assert result.headline["max_additional_speedup"] > 1.05


def test_ablation_stream_length_sweep(benchmark):
    """Per-SpVA streaming speedup as a function of stream length."""
    result = benchmark(stream_length_sweep, lengths=(1, 4, 16, 64, 256))
    publish(result, columns=["stream_length", "baseline_cycles", "streaming_cycles", "speedup"])
    assert result.rows[-1]["speedup"] > result.rows[0]["speedup"]
