"""Figure 3c: per-layer speedups of SpikeStream FP16 over the baseline and FP8 over FP16."""

from conftest import publish

from repro.eval.experiments import speedup_experiment


def test_fig3c_speedups(benchmark, svgg11_variants):
    """SpikeStream FP16 vs baseline FP16 and SpikeStream FP8 vs FP16, per layer."""
    result = benchmark(speedup_experiment, variants=svgg11_variants)
    publish(
        result,
        columns=[
            "layer",
            "speedup_fp16_over_baseline",
            "speedup_fp8_over_fp16",
            "speedup_fp8_over_baseline",
        ],
    )
    headline = result.headline
    # Paper: 5.62x average FP16 speedup with deep layers approaching the 7x
    # ideal, and an FP8-over-FP16 speedup below the ideal 2x.
    assert 4.5 < headline["network_speedup_fp16_over_baseline"] < 7.0
    assert headline["peak_layer_speedup_fp16_over_baseline"] < 8.5
    assert 1.3 < headline["network_speedup_fp8_over_fp16"] <= 2.0
