"""Listing 1 micro-benchmark: baseline vs streaming SpVA inner loop.

Runs both inner-loop variants on the instruction-level executor across a
range of stream lengths, checking the 8-instructions-per-element baseline mix
and the asymptotic speedup of the SSR + frep version.
"""

from conftest import publish

from repro.eval.experiments import spva_microbenchmark_experiment


def test_listing1_spva_microbenchmark(benchmark):
    """Cycle counts of Listing 1b vs Listing 1c over increasing stream lengths."""
    result = benchmark(
        spva_microbenchmark_experiment, stream_lengths=(1, 2, 4, 8, 16, 32, 64, 128)
    )
    publish(
        result,
        columns=[
            "stream_length",
            "baseline_cycles",
            "streaming_cycles",
            "speedup",
            "baseline_fpu_util",
            "streaming_fpu_util",
        ],
    )
    headline = result.headline
    assert 5.0 < headline["asymptotic_speedup"] < 9.0
    assert abs(headline["baseline_instructions_per_element"] - 8) < 0.5
