"""Distributed serving (repro.net) vs in-process serving, same workload.

The acceptance scenario of the ``repro.net`` subsystem: **64 concurrent
statistical requests** (distinct seeds, so no result-store short-circuit
hides the transport) fired open-loop, twice:

* **distributed** — a :class:`~repro.net.coordinator.Coordinator` fronting
  two real worker OS processes (:func:`~repro.net.worker.spawn_worker`),
  every request crossing the framed-socket wire both ways;
* **in-process** — a plain :class:`~repro.serve.server.InferenceServer`
  with two local worker threads on the same session knobs.

Worker startup and registration happen **outside** the timed window; the
measurement is steady-state serving.  The per-request responses are
asserted **bit-for-bit identical** across arms — the wire must be
invisible — and the headline is the throughput ratio
``distributed / in-process``.  Since wire protocol v2 (zero-copy array
framing, the content-addressed blob cache, credit-based pipelined
dispatch) the distributed arm is expected to *win*: the result carries
``"floor"``, an absolute speedup bar :mod:`tools.bench_gate` enforces
independently of the committed-baseline delta — ``1.0`` wherever at
least two CPUs are schedulable, an overhead bound (``0.6``) on a
single-CPU host where beating in-process serving is arithmetically
impossible (see the ``FLOOR`` comment).  The result also
reports ``bytes_per_request`` — coordinator-side wire traffic (both
directions, every link) across the measured wave divided by the request
count — so transport-efficiency regressions are visible even when
wall-clock noise hides them.  The hard gate is equality.

Emits the same result schema as ``bench_serve.py`` through
``benchmarks/common.py`` (``--json`` for the machine-readable form).
Runs standalone::

    python benchmarks/bench_cluster.py [--json] [--requests N] [--workers W]
"""

import argparse
import os
import sys

from repro.config import spikestream_config
from repro.net import Coordinator, spawn_worker
from repro.serve import InferenceServer, LoadGenerator
from repro.session import Session

REQUESTS = 64
MAX_BATCH = 16
WORKERS = 2
SEED = 2025
#: Equality is the gate; the throughput ratio is tracked, not barred
#: locally (machine noise would make a hard in-run bar flaky) …
SPEEDUP_BAR = 0.0
#: … but the committed result carries an absolute floor, which
#: ``tools/bench_gate.py`` enforces on every fresh run: since wire v2 the
#: distributed arm must beat single-host serving outright — **where the
#: hardware permits it**.  With two workers the distributed arm needs at
#: least two schedulable CPUs to overlap compute; on a single-CPU host
#: every arm serializes onto one core, wall-clock equals total CPU, and
#: ``distributed >= in-process + wire CPU`` by construction, so a 1.0 bar
#: would only certify that the host is small.  There the floor degrades
#: to an overhead bound instead: wire v2 must keep the distributed arm
#: within 40% of single-host throughput even with zero parallelism to
#: hide behind.  ``_absolute_floor()`` picks per host; the fresh run's
#: declaration wins in the gate, so each machine bars itself correctly.
FLOOR = 1.0
SINGLE_CPU_FLOOR = 0.6


#: Untimed requests served before the measured wave in each arm: first-use
#: costs (engine caches, worker process warm-up) stay out of the ratio.
WARMUP = 8


def _warm_up(submit_one, base_seed):
    for offset in range(WARMUP):
        submit_one(base_seed + offset).result(timeout=300)


def inprocess_arm(config, seeds, workers=WORKERS, max_batch=MAX_BATCH,
                  max_wait_ms=50.0):
    """The reference arm: local worker threads; returns (report, results)."""
    futures = []
    session = Session()
    with InferenceServer(
        session=session, workers=workers, max_batch=max_batch,
        max_wait_ms=max_wait_ms, max_queue=max(len(seeds), 256),
    ) as server:
        _warm_up(
            lambda s: server.submit_statistical(config=config, seed=s),
            max(seeds) + 1,
        )

        def submit(index):
            future = server.submit_statistical(config=config, seed=seeds[index])
            futures.append(future)
            return future

        report = LoadGenerator(submit, requests=len(seeds)).run()
    return report, [future.result(timeout=0) for future in futures], {}


def distributed_arm(config, seeds, workers=WORKERS, max_batch=MAX_BATCH,
                    max_wait_ms=50.0):
    """The subject arm: coordinator + worker processes over the wire."""
    futures = []
    coordinator = Coordinator(
        max_batch=max_batch, max_wait_ms=max_wait_ms,
        max_queue=max(len(seeds), 256),
    )
    processes = []
    try:
        for index in range(workers):
            processes.append(spawn_worker(
                coordinator.address, worker_id=f"bench-{index}", quiet=True
            ))
        if not coordinator.wait_for_workers(workers, timeout=180):
            raise RuntimeError("bench worker processes never registered")
        _warm_up(
            lambda s: coordinator.submit_statistical(config=config, seed=s),
            max(seeds) + 1,
        )

        def submit(index):
            future = coordinator.submit_statistical(
                config=config, seed=seeds[index]
            )
            futures.append(future)
            return future

        before = coordinator._bytes_probe()
        report = LoadGenerator(submit, requests=len(seeds)).run()
        results = [future.result(timeout=0) for future in futures]
        after = coordinator._bytes_probe()
        wave_bytes = (
            after["sent"] - before["sent"]
            + after["received"] - before["received"]
        )
        extras = {
            "bytes_per_request": wave_bytes / max(len(seeds), 1),
            "blob": coordinator._blob_probe(),
        }
    finally:
        coordinator.close()
        for process in processes:
            try:
                process.wait(timeout=30)
            except Exception:
                process.kill()
    return report, results, extras


def _schedulable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _absolute_floor(cpus=None) -> float:
    """The speedup bar this host can honestly be held to (see ``FLOOR``)."""
    if cpus is None:
        cpus = _schedulable_cpus()
    return FLOOR if cpus >= 2 else SINGLE_CPU_FLOOR


def _best_of(arm, repeats, *args, **kwargs):
    """Run an arm ``repeats`` times; keep the fastest report.

    Machine noise (a shared host, a GC pause) only ever *slows* an arm, so
    the per-arm best is the stable estimator the regression gate needs.
    The last run's results are returned for the equality check — every run
    must be bit-for-bit anyway.
    """
    best_report, results, extras = None, None, {}
    for _ in range(repeats):
        report, results, extras = arm(*args, **kwargs)
        if best_report is None or report.wall_s < best_report.wall_s:
            best_report = report
    return best_report, results, extras


def compare_cluster(requests=REQUESTS, workers=WORKERS, max_batch=MAX_BATCH,
                    max_wait_ms=50.0, seed=SEED, repeats=2):
    """Both arms on one workload; returns the shared bench result schema."""
    # timesteps=4 keeps each request compute-heavy relative to the framing
    # tax, so the throughput ratio tracks the transport, not the scheduler
    # jitter of tiny requests.
    config = spikestream_config(batch_size=1, timesteps=4, seed=seed)
    seeds = [seed + index for index in range(requests)]

    distributed_report, distributed_results, extras = _best_of(
        distributed_arm, repeats, config, seeds, workers=workers,
        max_batch=max_batch, max_wait_ms=max_wait_ms,
    )
    inprocess_report, inprocess_results, _ = _best_of(
        inprocess_arm, repeats, config, seeds, workers=workers,
        max_batch=max_batch, max_wait_ms=max_wait_ms,
    )
    identical = len(distributed_results) == len(inprocess_results) and all(
        shipped.identical_to(local)
        for shipped, local in zip(distributed_results, inprocess_results)
    )
    return {
        "benchmark": "cluster",
        "batch_size": max_batch,
        "requests": requests,
        "workers": workers,
        # vectorized = the subject arm (distributed), looped = the local
        # reference, matching the schema every other bench emits.
        "vectorized_s": distributed_report.wall_s,
        "looped_s": inprocess_report.wall_s,
        "vectorized_rps": distributed_report.throughput_rps,
        "looped_rps": inprocess_report.throughput_rps,
        "latency_p50_ms": distributed_report.to_dict()["latency_p50_ms"],
        "latency_p95_ms": distributed_report.to_dict()["latency_p95_ms"],
        "speedup": (
            distributed_report.throughput_rps / inprocess_report.throughput_rps
            if inprocess_report.throughput_rps > 0 else float("inf")
        ),
        "floor": _absolute_floor(),
        "cpus": _schedulable_cpus(),
        "bytes_per_request": extras.get("bytes_per_request", 0.0),
        "blob_hits": extras.get("blob", {}).get("hits", 0.0),
        "blob_misses": extras.get("blob", {}).get("misses", 0.0),
        "identical": identical,
    }


def _pretty(result) -> str:
    return (
        f"{result['requests']} concurrent statistical requests, "
        f"{result['workers']} workers:\n"
        f"  in-process serving     : {result['looped_s']:.2f} s "
        f"({result['looped_rps']:.1f} req/s)\n"
        f"  distributed (repro.net): {result['vectorized_s']:.2f} s "
        f"({result['vectorized_rps']:.1f} req/s)\n"
        f"  throughput ratio       : {result['speedup']:.2f}x "
        f"(gate floor {result['floor']:.1f}x on {result['cpus']} cpu"
        f"{'s' if result['cpus'] != 1 else ''})\n"
        f"  wire bytes per request : {result['bytes_per_request']:.0f}\n"
        f"  bit-for-bit across arms: "
        f"{'yes' if result['identical'] else 'NO'}"
    )


def main(argv=None) -> int:
    from pathlib import Path
    bench_dir = str(Path(__file__).resolve().parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    from common import emit_result, speedup_gate

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--requests", type=int, default=REQUESTS)
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument("--max-batch", type=int, default=MAX_BATCH)
    parser.add_argument("--max-wait-ms", type=float, default=50.0)
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)

    result = compare_cluster(
        requests=args.requests, workers=args.workers,
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
    )
    emit_result(result, ["--json"] if args.json else [], _pretty)
    return speedup_gate(result, SPEEDUP_BAR)


if __name__ == "__main__":
    sys.exit(main())
