"""Selectable-precision golden model: FP32/event-sparse vs the FP64 reference.

Times one S-VGG11 layer sweep — every weighted layer, with synthetic spike
inputs drawn at the *paper's* Figure 3a firing rates
(:data:`~repro.snn.svgg11.SVGG11_LAYER_FIRING_RATES`) — under the three
golden-model :class:`~repro.snn.numerics.NumericsPolicy` settings the PR-6
engine supports:

* ``fp64-dense`` — the bit-for-bit reference path (the baseline);
* ``fp32-dense`` — same dense GEMMs at half the word width;
* ``fp32-event_sparse`` — the adaptive event-driven path: layers whose
  measured input density is below
  :data:`~repro.snn.reference.SPARSE_DENSITY_CROSSOVER` gather only the
  active rows through a CSR spike matrix, the rest fall back to dense GEMM.

Synthetic per-layer inputs matter here: real random-weight activity runs far
denser than the trained network the paper profiles, so this bench imposes
the published firing-rate profile (Bernoulli spikes per layer) — the regime
the event-sparse path is built for.  Batch sizes 1, 16 and 64 are all
reported; the acceptance bar is single-frame (batch 1) latency, where the
``fp32-event_sparse`` path must be >= 2x faster than ``fp64-dense``.

``identical`` certifies the other half of the contract: the ``fp64-dense``
policy routed through the batch engine stays **bit-for-bit identical** to
:meth:`~repro.core.pipeline.SpikeStreamInference.run_functional_reference`
on real recorded frames.

Emits the shared flat result schema (``--json``), extended with one
``<policy>_batch<N>_s`` timing per policy/batch pair, so
``tools/bench_gate.py`` can track the precision trajectory across PRs.

Runs standalone (``python benchmarks/bench_precision.py [--json]``) or under
pytest (``pytest benchmarks/bench_precision.py``).
"""

import sys
import time

import numpy as np

from repro.config import spikestream_config
from repro.core.pipeline import SpikeStreamInference
from repro.session import functional_svgg11_setup
from repro.snn.numerics import REFERENCE, NumericsPolicy
from repro.snn.reference import (
    SPARSE_DENSITY_CROSSOVER,
    conv2d_hwc_batch,
    conv2d_hwc_batch_sparse,
    linear_batch,
    linear_batch_sparse,
    spike_density,
)
from repro.snn.svgg11 import svgg11_layer_shapes

SEED = 2025
BATCH_SIZES = (1, 16, 64)
SPEEDUP_BAR = 2.0

POLICIES = (
    NumericsPolicy("fp64", "dense"),
    NumericsPolicy("fp32", "dense"),
    NumericsPolicy("fp32", "event_sparse"),
)


def _layer_workloads(batch_size: int, rng: np.random.Generator):
    """One (descriptor, input, weights) triple per weighted S-VGG11 layer.

    Inputs are Bernoulli spike maps at the layer's paper firing rate;
    ``conv1`` (the spike-encoding layer) gets real-valued pixels instead,
    exactly as in the live network.
    """
    workloads = []
    for desc in svgg11_layer_shapes():
        rate = desc["firing_rate"]
        if desc["kind"] == "conv":
            shape = desc["input_shape"]
            geometry = (batch_size, shape.height, shape.width, shape.channels)
            if desc["encodes_input"]:
                x = rng.random(geometry)
            else:
                x = (rng.random(geometry) < rate).astype(np.float64)
            k = desc["kernel_size"]
            weights = rng.standard_normal(
                (k, k, desc["in_channels"], desc["out_channels"])
            )
        else:
            x = (rng.random((batch_size, desc["in_channels"])) < rate).astype(
                np.float64
            )
            weights = rng.standard_normal(
                (desc["in_channels"], desc["out_channels"])
            )
        workloads.append((desc, x, weights))
    return workloads


def _run_sweep(workloads, policy: NumericsPolicy) -> None:
    """One full layer sweep under ``policy`` — the network's own dispatch rule."""
    dtype = policy.dtype
    event_sparse = policy.forward_path == "event_sparse"
    for desc, x, weights in workloads:
        if desc["kind"] == "conv":
            sparse = (
                event_sparse
                and not desc["encodes_input"]
                and spike_density(x) < SPARSE_DENSITY_CROSSOVER
            )
            if sparse:
                conv2d_hwc_batch_sparse(
                    x, weights, desc["stride"], desc["padding"], dtype=dtype
                )
            else:
                conv2d_hwc_batch(
                    x, weights, desc["stride"], desc["padding"], dtype=dtype
                )
        else:
            if event_sparse and spike_density(x) < SPARSE_DENSITY_CROSSOVER:
                linear_batch_sparse(x, weights, dtype=dtype)
            else:
                linear_batch(x, weights, dtype=dtype)


def _reference_identical(seed: int = SEED) -> bool:
    """FP64-dense through the batch engine == per-frame reference, bit-for-bit."""
    network, frames = functional_svgg11_setup(batch_size=2, seed=seed)
    engine = SpikeStreamInference(spikestream_config())
    batched = engine.run_functional(network, frames, numerics=REFERENCE)
    reference = engine.run_functional_reference(network, frames)
    return batched.identical_to(reference)


def compare_precisions(repeats: int = 2, seed: int = SEED):
    """Time all three policies across the batch sizes; returns a result dict.

    The canonical schema keys (``vectorized_s``/``looped_s``/``speedup``/
    ``identical``) report the single-frame acceptance pair —
    ``fp32-event_sparse`` vs ``fp64-dense`` at batch 1 — and every
    policy/batch timing rides along as ``<policy>_batch<N>_s``.
    """
    rng = np.random.default_rng(seed)
    result = {"benchmark": "precision", "batch_size": BATCH_SIZES[0]}
    timings = {}
    for batch_size in BATCH_SIZES:
        base = _layer_workloads(batch_size, rng)
        for policy in POLICIES:
            # Pre-cast to the policy dtype outside the timed region: in the
            # live network the LIF states already run in the policy dtype and
            # weight casts are cached (SpikingNetwork._cast_weights), so the
            # steady state never pays a per-call astype.
            workloads = [
                (desc, x.astype(policy.dtype), weights.astype(policy.dtype))
                for desc, x, weights in base
            ]
            _run_sweep(workloads, policy)  # warm-up (allocators, BLAS threads)
            best = min(
                _timed(_run_sweep, workloads, policy) for _ in range(repeats)
            )
            timings[(policy.key(), batch_size)] = best
            result[f"{policy.key()}_batch{batch_size}_s"] = best
    looped = timings[("fp64-dense", BATCH_SIZES[0])]
    vectorized = timings[("fp32-event_sparse", BATCH_SIZES[0])]
    result["vectorized_s"] = vectorized
    result["looped_s"] = looped
    result["speedup"] = looped / vectorized if vectorized > 0 else float("inf")
    result["identical"] = _reference_identical(seed)
    return result


def _timed(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def test_precision_paths_exact_and_faster(benchmark):
    """FP32 event-sparse >= 2x the FP64 reference at batch 1; FP64 bit-exact."""
    result = benchmark(compare_precisions, 1)
    assert result["identical"], "fp64-dense diverged from run_functional_reference"
    assert result["speedup"] >= SPEEDUP_BAR, (
        f"fp32-event_sparse only {result['speedup']:.2f}x faster than fp64-dense "
        f"at batch 1 ({result['vectorized_s']:.4f}s vs {result['looped_s']:.4f}s)"
    )


def _pretty(result) -> str:
    lines = [
        "S-VGG11 layer sweep at the paper's firing rates "
        "(Figure 3a profile):"
    ]
    for batch_size in BATCH_SIZES:
        timings = ", ".join(
            f"{policy.key()} {result[f'{policy.key()}_batch{batch_size}_s'] * 1e3:.1f} ms"
            for policy in POLICIES
        )
        lines.append(f"  batch {batch_size:>2}: {timings}")
    lines.append(
        f"  batch-1 speedup (fp64-dense / fp32-event_sparse): "
        f"{result['speedup']:.2f}x"
    )
    lines.append(
        f"  fp64-dense bit-for-bit vs reference: "
        f"{'yes' if result['identical'] else 'NO'}"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    from pathlib import Path

    bench_dir = str(Path(__file__).resolve().parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    from common import emit_result, speedup_gate

    result = compare_precisions()
    emit_result(result, argv, _pretty)
    return speedup_gate(result, SPEEDUP_BAR)


if __name__ == "__main__":
    sys.exit(main())
