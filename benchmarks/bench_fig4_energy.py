"""Figure 4: per-layer energy and power for the three evaluated variants."""

from conftest import publish

from repro.eval.experiments import energy_experiment


def test_fig4_energy_and_power(benchmark, svgg11_variants):
    """Energy and average power per layer for baseline FP16, SpikeStream FP16 and FP8."""
    result = benchmark(energy_experiment, variants=svgg11_variants)
    publish(
        result,
        columns=[
            "layer",
            "energy_mj_baseline",
            "energy_mj_spikestream_fp16",
            "energy_mj_spikestream_fp8",
            "power_w_baseline",
            "power_w_spikestream_fp16",
            "power_w_spikestream_fp8",
        ],
    )
    headline = result.headline
    # Paper: ~0.13 / 0.23 / 0.22 W average power on layers 2-8 and
    # energy-efficiency gains of 3.25x (FP16) and 5.67x (FP8).
    assert 0.08 < headline["mean_power_baseline_conv2_to_8"] < 0.20
    assert 0.18 < headline["mean_power_spikestream_fp16_conv2_to_8"] < 0.32
    assert 2.0 < headline["energy_gain_fp16_over_baseline"] < 4.5
    assert 4.0 < headline["energy_gain_fp8_over_baseline"] < 8.0
