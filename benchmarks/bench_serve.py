"""Micro-batched serving vs batch-size-1 serving under concurrent load.

The acceptance scenario of the ``repro.serve`` subsystem: **64 concurrent
single-frame functional requests** (the worst case for the batched engines —
every caller holds one frame, nobody brings a batch) fired open-loop at an
in-process :class:`~repro.serve.server.InferenceServer`, twice:

* **batched** — ``max_batch`` (default 16) lets the
  :class:`~repro.serve.batcher.MicroBatcher` coalesce queued requests into
  shared ``forward_batch`` + batched-kernel passes;
* **solo** — ``--max-batch 1`` forces one engine pass per request, i.e.
  what a server without micro-batching would do.

Both arms run the same workload on fresh sessions (no result-store
cross-talk), the per-request responses are asserted **bit-for-bit
identical** across arms, and the headline is the throughput ratio —
``>= 2x`` at batch 16 is the acceptance bar (~2.5x is typical: the batched
arm streams fc1/fc2's weight panels once per micro-batch instead of once
per request).

Emits the same result schema as ``bench_batch_engine.py`` /
``bench_functional.py`` through ``benchmarks/common.py`` (``--json`` for
the machine-readable form).  Runs standalone::

    python benchmarks/bench_serve.py [--json] [--requests N] [--max-batch B]
"""

import argparse
import sys

from repro.serve import InferenceServer, LoadGenerator
from repro.session import Session, functional_svgg11_setup

REQUESTS = 64
MAX_BATCH = 16
SEED = 2025
SPEEDUP_BAR = 2.0


def serve_arm(network, frames, max_batch, workers=1, max_wait_ms=50.0,
              arrival_rate_hz=None, requests=REQUESTS):
    """One serving run; returns (LoadReport, per-request results)."""
    futures = []

    session = Session()
    with InferenceServer(
        session=session, workers=workers, max_batch=max_batch,
        max_wait_ms=max_wait_ms, max_queue=max(requests, 256),
    ) as server:

        def submit(index):
            future = server.submit_functional(network, frames[index:index + 1])
            futures.append(future)
            return future

        generator = LoadGenerator(
            submit, requests=requests, arrival_rate_hz=arrival_rate_hz
        )
        report = generator.run()
    return report, [future.result(timeout=0) for future in futures]


def compare_serving(requests=REQUESTS, max_batch=MAX_BATCH, workers=1,
                    max_wait_ms=50.0, arrival_rate_hz=None, seed=SEED):
    """Both arms on one workload; returns the shared bench result schema."""
    network, frames = functional_svgg11_setup(batch_size=requests, seed=seed)
    network.fingerprint()  # hash the weights once, outside both timings

    batched_report, batched_results = serve_arm(
        network, frames, max_batch, workers=workers, max_wait_ms=max_wait_ms,
        arrival_rate_hz=arrival_rate_hz, requests=requests,
    )
    solo_report, solo_results = serve_arm(
        network, frames, 1, workers=workers, max_wait_ms=max_wait_ms,
        arrival_rate_hz=arrival_rate_hz, requests=requests,
    )
    identical = len(batched_results) == len(solo_results) and all(
        batched.identical_to(solo)
        for batched, solo in zip(batched_results, solo_results)
    )
    return {
        "benchmark": "serve",
        "batch_size": max_batch,
        "requests": requests,
        "workers": workers,
        # vectorized/looped naming matches the other engine benches, so one
        # dashboard parser tracks all three speedup trajectories.
        "vectorized_s": batched_report.wall_s,
        "looped_s": solo_report.wall_s,
        "vectorized_rps": batched_report.throughput_rps,
        "looped_rps": solo_report.throughput_rps,
        "latency_p50_ms": batched_report.to_dict()["latency_p50_ms"],
        "latency_p95_ms": batched_report.to_dict()["latency_p95_ms"],
        "speedup": (
            batched_report.throughput_rps / solo_report.throughput_rps
            if solo_report.throughput_rps > 0 else float("inf")
        ),
        "identical": identical,
    }


def _pretty(result) -> str:
    return (
        f"{result['requests']} concurrent single-frame functional requests:\n"
        f"  solo serving (max_batch=1)   : {result['looped_s']:.2f} s "
        f"({result['looped_rps']:.1f} req/s)\n"
        f"  micro-batched (max_batch={result['batch_size']}) : "
        f"{result['vectorized_s']:.2f} s ({result['vectorized_rps']:.1f} req/s)\n"
        f"  throughput gain              : {result['speedup']:.2f}x\n"
        f"  bit-for-bit across arms      : "
        f"{'yes' if result['identical'] else 'NO'}"
    )


def main(argv=None) -> int:
    from pathlib import Path
    bench_dir = str(Path(__file__).resolve().parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    from common import emit_result, speedup_gate

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--requests", type=int, default=REQUESTS)
    parser.add_argument("--max-batch", type=int, default=MAX_BATCH)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--max-wait-ms", type=float, default=50.0)
    parser.add_argument("--arrival-rate", type=float, default=None,
                        help="open-loop arrival rate in req/s (default: burst)")
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)

    result = compare_serving(
        requests=args.requests, max_batch=args.max_batch, workers=args.workers,
        max_wait_ms=args.max_wait_ms, arrival_rate_hz=args.arrival_rate,
    )
    emit_result(result, ["--json"] if args.json else [], _pretty)
    return speedup_gate(result, SPEEDUP_BAR)


if __name__ == "__main__":
    sys.exit(main())
