"""Figure 5: latency and energy comparison with SoA neuromorphic accelerators.

The workload is the sixth convolutional layer of S-VGG11 executed for 500
timesteps, as in Section IV-C of the paper.
"""

from conftest import BENCH_SEED, publish

from repro.eval.experiments import accelerator_comparison_experiment


def test_fig5_accelerator_comparison(benchmark):
    """Loihi / ODIN / LSMCore / NeuroRVcore vs the three Snitch-cluster variants."""
    result = benchmark(
        accelerator_comparison_experiment, timesteps=500, batch_size=2, seed=BENCH_SEED
    )
    publish(
        result,
        columns=[
            "system",
            "latency_ms",
            "energy_mj",
            "peak_gsop",
            "technology_nm",
            "precision_bits",
        ],
    )
    headline = result.headline
    # Paper: LSMCore 46.08 ms, SpikeStream FP8 217.14 ms (4.71x slower than
    # LSMCore, 2.38x faster than Loihi) and 3.46x less energy than LSMCore.
    assert 20 < headline["lsmcore_latency_ms"] < 100
    assert 100 < headline["spikestream_fp8_latency_ms"] < 500
    assert 3.0 < headline["fp8_slowdown_vs_lsmcore"] < 7.0
    assert 1.5 < headline["fp8_speedup_vs_loihi"] < 3.5
    assert 2.0 < headline["fp8_energy_gain_vs_lsmcore"] < 6.0
