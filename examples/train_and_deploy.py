#!/usr/bin/env python3
"""Train a small SNN with surrogate gradients, then deploy it on the cluster model.

Workflow demonstrated:

1. generate a synthetic two-class dataset,
2. train a two-layer spiking classifier with the surrogate-gradient trainer,
3. wrap the trained layers into a :class:`SpikingNetwork`,
4. verify with the end-to-end validator that the compressed cluster kernels
   reproduce the golden model exactly, and
5. compare baseline vs SpikeStream runtime/energy for the deployed network.

Run with::

    python examples/train_and_deploy.py
"""

import numpy as np

from repro import Session, baseline_config, spikestream_config
from repro.core.validation import validate_network_on_kernels
from repro.eval.reporting import format_table
from repro.snn import (
    LIFParameters,
    SpikingLinear,
    SpikingNetwork,
    SurrogateGradientTrainer,
    TrainingConfig,
    make_two_moons,
)
from repro.types import TensorShape


def main():
    # 1. Data + 2. training -------------------------------------------------
    inputs, labels = make_two_moons(samples=400, seed=0)
    lif = LIFParameters(alpha=1.0, v_threshold=0.5)
    layers = [
        SpikingLinear(inputs.shape[1], 24, lif=lif, name="fc1"),
        SpikingLinear(24, 2, lif=lif, name="fc2", is_output=True),
    ]
    trainer = SurrogateGradientTrainer(
        layers, TrainingConfig(learning_rate=0.1, epochs=40, batch_size=32, seed=1)
    )
    history = trainer.fit(inputs, labels)
    print(f"Training finished: loss {history.loss[0]:.3f} -> {history.loss[-1]:.3f}, "
          f"accuracy {history.final_accuracy:.1%}")

    # 3. Wrap the trained layers into a deployable spiking network ----------
    network = SpikingNetwork(layers, input_shape=TensorShape(1, 1, inputs.shape[1]),
                             name="two-moons-snn")

    # 4. Validate the compressed kernels against the golden model -----------
    # The deployed network consumes binary spike vectors; threshold the
    # features to obtain spiking inputs for validation and deployment.
    spike_frames = [
        (inputs[i] > np.median(inputs, axis=0)).reshape(1, 1, -1) for i in range(8)
    ]
    report = validate_network_on_kernels(network, spike_frames)
    print(f"Kernel-vs-golden validation: {report.summary()}")

    # 5. Runtime and energy of the deployed classifier ----------------------
    session = Session()
    rows = []
    for label, config in (
        ("baseline FP16", baseline_config(batch_size=len(spike_frames))),
        ("SpikeStream FP16", spikestream_config(batch_size=len(spike_frames))),
    ):
        engine = session.engine(config)
        result = engine.run_functional(network, spike_frames, firing_rates={"fc1": 0.5, "fc2": 0.3})
        rows.append({
            "variant": label,
            "runtime_us": result.total_runtime_s * 1e6,
            "energy_uj": result.total_energy_j * 1e6,
            "fpu_utilization": result.network_fpu_utilization,
        })
    print("\n=== Deployed two-layer classifier on the Snitch cluster model ===")
    print(format_table(rows))
    print("\n(A network this small is dominated by fixed overheads; the speedup grows with "
          "layer depth as shown in the S-VGG11 experiments.)")


if __name__ == "__main__":
    main()
