#!/usr/bin/env python3
"""Functional S-VGG11 inference on synthetic CIFAR-10-like frames.

Unlike the statistical quickstart, this example builds the *actual* S-VGG11
spiking network (randomly initialized), pushes synthetic CIFAR-10-like images
through it with the NumPy golden model, records the real per-layer spike
activity, and feeds that activity to the cluster performance model.  It also
reports classification outputs and per-layer firing statistics.

Run with::

    python examples/svgg11_functional_inference.py          # 1 frame (~half a minute)
    python examples/svgg11_functional_inference.py 3        # 3 frames
"""

import sys
import time

from repro import Session, spikestream_config
from repro.eval.reporting import format_table
from repro.snn import SyntheticCIFAR10, build_svgg11, collect_activity_stats


def main(num_frames: int = 1):
    print(f"Building S-VGG11 and generating {num_frames} synthetic CIFAR-10 frame(s)...")
    # The network is randomly initialized (the trained CIFAR-10 weights are not
    # public); a lower firing threshold keeps spike activity propagating through
    # all eleven layers so the recorded firing profile resembles a trained model.
    from repro.snn import LIFParameters

    network = build_svgg11(lif=LIFParameters(alpha=0.9, v_threshold=0.25), rng=0)
    images, labels = SyntheticCIFAR10(seed=7).sample(num_frames)

    # Functional forward passes with the golden model, recording activity.
    activities = []
    start = time.time()
    for index, image in enumerate(images):
        activity = network.forward(image, timesteps=1)
        activities.append(activity)
        prediction = network.predict(image, timesteps=1)
        print(f"  frame {index}: synthetic label={labels[index]}, predicted class={prediction}")
    print(f"Functional inference took {time.time() - start:.1f} s")

    # Per-layer firing statistics of the real activity.
    stats = collect_activity_stats(activities)
    print("\n=== Per-layer input firing activity (golden model) ===")
    print(format_table([s.as_dict() for s in stats], columns=[
        "layer", "mean_firing_rate", "std_firing_rate", "mean_spike_count",
    ]))

    # Drive the cluster performance model with the recorded activity.
    config = spikestream_config(batch_size=num_frames)
    engine = Session(config=config).engine()
    result = engine.run_functional(network, images)
    print("\n=== Cluster performance model on the recorded activity (SpikeStream FP16) ===")
    print(format_table(result.per_layer_table(), columns=[
        "layer", "kernel", "mean_runtime_ms", "mean_fpu_utilization", "mean_energy_mj",
    ]))
    print(f"\nEnd-to-end: {result.total_runtime_s * 1e3:.2f} ms, "
          f"{result.total_energy_j * 1e3:.3f} mJ, "
          f"network FPU utilization {result.network_fpu_utilization:.1%}")


if __name__ == "__main__":
    frames = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    main(frames)
