#!/usr/bin/env python3
"""Functional S-VGG11 inference on synthetic CIFAR-10-like frames.

Unlike the statistical quickstart, this example builds the *actual* S-VGG11
spiking network (randomly initialized), pushes a whole batch of synthetic
CIFAR-10-like images through it with ONE vectorized
``SpikingNetwork.forward_batch`` pass, records the real per-layer spike
activity, and feeds that shared activity to the cluster performance model of
all three evaluated hardware variants.  It also reports classification
outputs and per-layer firing statistics.

Run with::

    python examples/svgg11_functional_inference.py          # 4 frames
    python examples/svgg11_functional_inference.py 16       # 16 frames
"""

import sys
import time

from repro import Session, spikestream_config
from repro.eval.reporting import format_table
from repro.snn import SyntheticCIFAR10, build_svgg11, collect_activity_stats


def main(num_frames: int = 4):
    print(f"Building S-VGG11 and generating {num_frames} synthetic CIFAR-10 frame(s)...")
    # The network is randomly initialized (the trained CIFAR-10 weights are not
    # public); a lower firing threshold keeps spike activity propagating through
    # all eleven layers so the recorded firing profile resembles a trained model.
    from repro.snn import LIFParameters

    network = build_svgg11(lif=LIFParameters(alpha=0.9, v_threshold=0.25), rng=0)
    images, labels = SyntheticCIFAR10(seed=7).sample(num_frames)

    # One batched functional forward pass records the whole batch's activity.
    session = Session(config=spikestream_config(batch_size=num_frames))
    engine = session.engine()
    start = time.time()
    activity = engine.record_activity(network, images)
    # Classification falls out of the recorded activity: accumulate the
    # output layer's spikes over time (no second forward pass needed).
    output_spikes = sum(
        record.output_spikes.astype(int) for record in activity.for_name("fc3")
    )
    predictions = output_spikes.reshape(num_frames, -1).argmax(axis=1)
    print(f"Batched functional inference took {time.time() - start:.1f} s")
    for index, prediction in enumerate(predictions):
        print(f"  frame {index}: synthetic label={labels[index]}, "
              f"predicted class={int(prediction)}")

    # Per-layer firing statistics of the real activity.
    stats = collect_activity_stats(
        [activity.frame_activity(index) for index in range(num_frames)]
    )
    print("\n=== Per-layer input firing activity (golden model) ===")
    print(format_table([s.as_dict() for s in stats], columns=[
        "layer", "mean_firing_rate", "std_firing_rate", "mean_spike_count",
    ]))

    # Drive the cluster performance model with the recorded activity — the
    # store-backed session path, so a rerun with a cache_dir would be free.
    result = session.run_functional(network, images, activity=activity)
    print("\n=== Cluster performance model on the recorded activity (SpikeStream FP16) ===")
    print(format_table(result.per_layer_table(), columns=[
        "layer", "kernel", "mean_runtime_ms", "mean_fpu_utilization", "mean_energy_mj",
    ]))
    print(f"\nEnd-to-end: {result.total_runtime_s * 1e3:.2f} ms, "
          f"{result.total_energy_j * 1e3:.3f} mJ, "
          f"network FPU utilization {result.network_fpu_utilization:.1%}")

    # The same recorded activity costs the other variants without another
    # forward pass (this is what `run --scenario functional` automates).
    variants = session.run_functional_variants(network, images, activity=activity)
    print("\n=== Three variants on one shared recorded activity ===")
    print(format_table(
        [{"variant": key, **value.summary()} for key, value in variants.items()],
        columns=["variant", "total_runtime_ms", "total_energy_mj",
                 "network_fpu_utilization"],
    ))


if __name__ == "__main__":
    frames = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    main(frames)
