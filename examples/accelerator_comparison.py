#!/usr/bin/env python3
"""Comparison with state-of-the-art neuromorphic accelerators (Figure 5).

Reproduces the paper's Section IV-C study: the sixth convolutional layer of
S-VGG11 executed for 500 timesteps on Loihi, ODIN, LSMCore, NeuroRVcore and
the three Snitch-cluster variants (baseline FP16, SpikeStream FP16/FP8),
run through the unified Session API's ``accelerator_comparison`` scenario.

Run with::

    python examples/accelerator_comparison.py
"""

from repro import Session
from repro.eval.reporting import format_table


def main():
    with Session() as session:
        result = session.run("accelerator_comparison", timesteps=500, batch_size=4, seed=2025)

    rows = sorted(result.rows, key=lambda row: row["latency_ms"])
    print("=== S-VGG11 layer 6, 500 timesteps ===")
    print(format_table(rows, columns=[
        "system", "latency_ms", "energy_mj", "peak_gsop", "technology_nm", "precision_bits",
    ]))

    headline = result.headline
    print("\nHeadline ratios (paper values in parentheses):")
    print(f"  SpikeStream FP8 vs LSMCore latency : "
          f"{headline['fp8_slowdown_vs_lsmcore']:.2f}x slower (4.71x)")
    print(f"  SpikeStream FP8 vs Loihi latency   : "
          f"{headline['fp8_speedup_vs_loihi']:.2f}x faster (2.38x)")
    print(f"  SpikeStream FP16 vs Loihi latency  : "
          f"{headline['fp16_speedup_vs_loihi']:.2f}x faster (1.31x)")
    print(f"  LSMCore / SpikeStream FP16 energy  : "
          f"{headline['fp16_energy_gain_vs_lsmcore']:.2f}x (2.37x)")
    print(f"  LSMCore / SpikeStream FP8 energy   : "
          f"{headline['fp8_energy_gain_vs_lsmcore']:.2f}x (3.46x)")


if __name__ == "__main__":
    main()
