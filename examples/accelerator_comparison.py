#!/usr/bin/env python3
"""Comparison with state-of-the-art neuromorphic accelerators (Figure 5).

Reproduces the paper's Section IV-C study: the sixth convolutional layer of
S-VGG11 executed for 500 timesteps on Loihi, ODIN, LSMCore, NeuroRVcore and
the three Snitch-cluster variants (baseline FP16, SpikeStream FP16/FP8).

Run with::

    python examples/accelerator_comparison.py
"""

from repro.accelerators import compare_accelerators
from repro.eval.reporting import format_table


def main():
    entries = compare_accelerators(timesteps=500, batch_size=4, seed=2025)
    rows = sorted((entry.as_dict() for entry in entries), key=lambda row: row["latency_ms"])
    print("=== S-VGG11 layer 6, 500 timesteps ===")
    print(format_table(rows, columns=[
        "system", "latency_ms", "energy_mj", "peak_gsop", "technology_nm", "precision_bits",
    ]))

    by_name = {entry.name: entry for entry in entries}
    lsmcore, loihi = by_name["LSMCore"], by_name["Loihi"]
    fp16, fp8 = by_name["SpikeStream FP16"], by_name["SpikeStream FP8"]
    print("\nHeadline ratios (paper values in parentheses):")
    print(f"  SpikeStream FP8 vs LSMCore latency : {fp8.latency_ms / lsmcore.latency_ms:.2f}x slower (4.71x)")
    print(f"  SpikeStream FP8 vs Loihi latency   : {loihi.latency_ms / fp8.latency_ms:.2f}x faster (2.38x)")
    print(f"  SpikeStream FP16 vs Loihi latency  : {loihi.latency_ms / fp16.latency_ms:.2f}x faster (1.31x)")
    print(f"  LSMCore / SpikeStream FP16 energy  : {lsmcore.energy_mj / fp16.energy_mj:.2f}x (2.37x)")
    print(f"  LSMCore / SpikeStream FP8 energy   : {lsmcore.energy_mj / fp8.energy_mj:.2f}x (3.46x)")


if __name__ == "__main__":
    main()
