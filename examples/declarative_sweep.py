#!/usr/bin/env python3
"""Declarative sweeps: define a SweepSpec, stream it through any backend.

This example shows the full lifecycle of a custom experiment under the
declarative plan API:

1. **describe** the parameter space as data (`ParameterSpace.grid` composed
   with a chained low-rate refinement — no point-generator function),
2. **register** a `SweepSpec` so it becomes a first-class scenario (CLI,
   caching and all execution backends included),
3. **stream** rows with `Session.run_plan` — first serially, then sharded
   across two worker sessions — and watch identical rows arrive in
   different orders,
4. **collect** the canonical result with `Session.run`.

Run with::

    python examples/declarative_sweep.py
"""

import repro
from repro.eval.reporting import format_table
from repro.eval.sweeps import conv6_spec, counts_for_rate
from repro.kernels.conv import conv_layer_perf
from repro.types import Precision

import numpy as np


def sparsity_point(task):
    """One point: SpikeStream conv6 cycles at a given firing rate/precision."""
    spec = conv6_spec()
    rng = np.random.default_rng(task["seed"])
    counts = counts_for_rate(spec, task["rate"], rng)
    stats = conv_layer_perf(spec, counts, Precision.from_name(task["precision"]),
                            streaming=True)
    return {
        "rate": task["rate"],
        "precision": task["precision"],
        "cycles": stats.total_cycles,
        "fpu_util": stats.fpu_utilization,
    }


# A composed space: a coarse grid over two precisions, chained with a fine
# low-rate refinement that only runs in FP16.
SPACE = (
    repro.ParameterSpace.grid(rate=(0.1, 0.3, 0.5), precision=("fp16", "fp8"))
    + repro.ParameterSpace.grid(rate=(0.02, 0.05), precision=("fp16",))
)

SPEC = repro.SweepSpec(
    name="sparsity_profile",
    description="SpikeStream conv6 cycles over firing rate and precision",
    space=SPACE,
    point=sparsity_point,
    row_schema=("rate", "precision", "cycles", "fpu_util"),
    finalize=lambda rows, tasks, run_cached: {
        "best_util": max(r["fpu_util"] for r in rows)
    },
    kwarg_axes={"rates": "rate", "precisions": "precision"},
    normalize={"rate": float},
)


def main():
    repro.register_sweep(SPEC)

    with repro.Session() as session:
        print(f"registered scenario: {session.describe('sparsity_profile')}\n")

        print("=== streaming serially (canonical order) ===")
        for row in session.run_plan("sparsity_profile"):
            tag = "cache" if row.cached else "fresh"
            print(f"  [{row.index}] {tag}: rate={row.row['rate']:<5} "
                  f"{row.row['precision']}  cycles={row.row['cycles']:.0f}")

        print("\n=== streaming sharded across 2 worker sessions ===")
        rows = []
        for row in session.run_plan("sparsity_profile", backend="sharded", shards=2):
            rows.append(row)
            print(f"  [{row.index}] {'cache' if row.cached else 'fresh'}")
        print("  (every row was served from the session's row cache: the "
              "serial pass already computed them)")

        print("\n=== collected canonical result ===")
        result = session.run("sparsity_profile")
        print(format_table(result.rows))
        print(f"headline: {result.headline}")


if __name__ == "__main__":
    main()
