#!/usr/bin/env python3
"""Explore the SpVA inner loop at the instruction level (Listing 1).

Builds the baseline (Listing 1b) and streaming (Listing 1c) SpVA micro-
programs, prints their assembly listings, then runs the Session API's
``spva_microbenchmark`` scenario over a range of stream lengths and reports
cycles, instruction counts and FPU utilization — the per-element view of
where SpikeStream's speedup comes from.

Run with::

    python examples/spva_microkernel.py
"""

from repro import Session
from repro.eval.reporting import format_table
from repro.isa import build_baseline_spva_program, build_streaming_spva_program


def main():
    print("=== Listing 1b: baseline SpVA loop ===")
    print(build_baseline_spva_program().listing())
    print("\n=== Listing 1c: SpikeStream SpVA (indirect SSR + frep) ===")
    print(build_streaming_spva_program().listing())

    with Session() as session:
        result = session.run(
            "spva_microbenchmark",
            stream_lengths=(1, 2, 4, 8, 16, 32, 64, 128, 256),
        )

    print("\n=== Cycle-level comparison across stream lengths ===")
    print(format_table(result.rows, columns=[
        "stream_length", "baseline_cycles", "baseline_instructions", "streaming_cycles",
        "streaming_instructions", "speedup", "baseline_fpu_util", "streaming_fpu_util",
    ]))
    print(f"\nAsymptotic speedup: {result.headline['asymptotic_speedup']:.2f}x at "
          f"{result.headline['baseline_instructions_per_element']:.1f} baseline "
          "instructions per gathered weight.")
    print(
        "\nThe baseline spends 8 instructions (and ~12 cycles) per gathered weight;"
        "\nwith the indirect stream register and the frep hardware loop the same"
        "\naccumulation sustains one element every ~1.7 cycles, which is where the"
        "\npaper's ~6-7x per-layer speedup comes from."
    )


if __name__ == "__main__":
    main()
