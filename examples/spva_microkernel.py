#!/usr/bin/env python3
"""Explore the SpVA inner loop at the instruction level (Listing 1).

Builds the baseline (Listing 1b) and streaming (Listing 1c) SpVA micro-
programs, prints their assembly listings, runs both on the instruction-level
executor for a range of stream lengths and reports cycles, instruction counts
and FPU utilization — the per-element view of where SpikeStream's speedup
comes from.

Run with::

    python examples/spva_microkernel.py
"""

import numpy as np

from repro.eval.reporting import format_table
from repro.isa import (
    build_baseline_spva_program,
    build_streaming_spva_program,
    make_spva_setup,
    run_baseline_spva,
    run_streaming_spva,
)


def main():
    print("=== Listing 1b: baseline SpVA loop ===")
    print(build_baseline_spva_program().listing())
    print("\n=== Listing 1c: SpikeStream SpVA (indirect SSR + frep) ===")
    print(build_streaming_spva_program().listing())

    rng = np.random.default_rng(0)
    rows = []
    for length in (1, 2, 4, 8, 16, 32, 64, 128, 256):
        weights = rng.normal(size=max(2 * length, 8))
        c_idcs = rng.choice(len(weights), size=length, replace=False).astype(np.uint16)
        setup = make_spva_setup(c_idcs, weights)
        base_value, base = run_baseline_spva(setup)
        stream_value, stream = run_streaming_spva(setup)
        assert np.isclose(base_value, stream_value), "listings disagree functionally"
        rows.append({
            "stream_length": length,
            "baseline_cycles": base.cycles,
            "baseline_instrs": base.instructions,
            "streaming_cycles": stream.cycles,
            "streaming_instrs": stream.instructions,
            "speedup": base.cycles / stream.cycles,
            "baseline_fpu_util": base.fpu_utilization,
            "streaming_fpu_util": stream.fpu_utilization,
        })

    print("\n=== Cycle-level comparison across stream lengths ===")
    print(format_table(rows))
    print(
        "\nThe baseline spends 8 instructions (and ~12 cycles) per gathered weight;"
        "\nwith the indirect stream register and the frep hardware loop the same"
        "\naccumulation sustains one element every ~1.7 cycles, which is where the"
        "\npaper's ~6-7x per-layer speedup comes from."
    )


if __name__ == "__main__":
    main()
