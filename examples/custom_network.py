#!/usr/bin/env python3
"""Mapping a custom spiking CNN onto the cluster with the SpikeStream optimizer.

The paper's technique is not specific to S-VGG11: any feed-forward SNN built
from spiking conv / pool / FC layers can be planned and executed.  This
example defines a small event-camera-style classifier (DVS-gesture-like
128-channel sparse input), lets the optimizer choose the per-layer execution
strategy, prints the generated SpVA inner loops, and compares the baseline
against SpikeStream on the cluster model.

Run with::

    python examples/custom_network.py
"""

import numpy as np

from repro import Session, baseline_config, spikestream_config
from repro.core.codegen import spva_pseudocode
from repro.eval.reporting import format_table
from repro.snn import (
    Flatten,
    LIFParameters,
    SpikingConv2d,
    SpikingLinear,
    SpikingMaxPool2d,
    SpikingNetwork,
)
from repro.types import TensorShape


def build_event_classifier() -> SpikingNetwork:
    """A small SNN for 32x32 2-polarity event-camera frames, 11 gesture classes."""
    lif = LIFParameters(alpha=0.9, v_threshold=0.6)
    layers = [
        SpikingConv2d(2, 32, kernel_size=3, padding=1, lif=lif, name="conv1"),
        SpikingMaxPool2d(name="pool1"),
        SpikingConv2d(32, 64, kernel_size=3, padding=1, lif=lif, name="conv2"),
        SpikingMaxPool2d(name="pool2"),
        SpikingConv2d(64, 64, kernel_size=3, padding=1, lif=lif, name="conv3"),
        SpikingMaxPool2d(name="pool3"),
        Flatten(),
        SpikingLinear(4 * 4 * 64, 256, lif=lif, name="fc1"),
        SpikingLinear(256, 11, lif=lif, name="fc2", is_output=True),
    ]
    network = SpikingNetwork(layers, input_shape=TensorShape(32, 32, 2), name="event-classifier")
    network.initialize(rng=3)
    return network


def synthetic_event_frame(rng, rate=0.08):
    """A sparse binary event frame (two polarities) like a DVS camera produces."""
    return rng.random((32, 32, 2)) < rate


def main():
    network = build_event_classifier()
    rng = np.random.default_rng(11)
    frames = [synthetic_event_frame(rng) for _ in range(4)]

    # Expected input firing rates per layer (event data is very sparse).
    firing_rates = {"conv1": 0.08, "conv2": 0.30, "conv3": 0.20, "fc1": 0.10, "fc2": 0.05}

    # One Session provides every engine; all variants share its hardware models.
    session = Session()
    results = {}
    for label, config in (
        ("baseline FP16", baseline_config(batch_size=len(frames))),
        ("SpikeStream FP16", spikestream_config(batch_size=len(frames))),
    ):
        engine = session.engine(config)
        results[label] = engine.run_functional(network, frames, firing_rates=firing_rates)

    print("=== Optimizer layer plans (SpikeStream FP16) ===")
    engine = session.engine(spikestream_config())
    plans = engine.optimizer.plan_network(network, firing_rates)
    print(format_table(
        [
            {
                "layer": plan.name,
                "kernel": plan.kernel.value,
                "streams": ", ".join(k.value for k in plan.stream_kinds) or "(none)",
                "simd_width": plan.simd_width,
                "notes": plan.notes,
            }
            for plan in plans
        ],
        columns=["layer", "kernel", "streams", "simd_width", "notes"],
    ))

    print("\n=== Generated SpVA inner loop for conv2 ===")
    conv2_plan = [p for p in plans if p.name == "conv2"][0]
    print(spva_pseudocode(conv2_plan))

    print("=== Baseline vs SpikeStream on the event classifier ===")
    rows = []
    for label, result in results.items():
        rows.append({
            "variant": label,
            "runtime_ms": result.total_runtime_s * 1e3,
            "energy_mj": result.total_energy_j * 1e3,
            "fpu_utilization": result.network_fpu_utilization,
        })
    print(format_table(rows))
    speedup = results["baseline FP16"].total_cycles / results["SpikeStream FP16"].total_cycles
    print(f"\nSpikeStream speedup on this network: {speedup:.2f}x")


if __name__ == "__main__":
    main()
