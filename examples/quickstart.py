#!/usr/bin/env python3
"""Quickstart: run S-VGG11 inference on the Snitch cluster model.

This example runs the paper's three evaluated configurations (parallel SIMD
baseline in FP16, SpikeStream in FP16 and FP8) over a small batch of
synthetic frames in statistical mode and prints the per-layer and network
metrics: runtime, FPU utilization, IPC, energy and power.

Run with::

    python examples/quickstart.py
"""

from repro import SpikeStreamInference, baseline_config, spikestream_config
from repro.eval.reporting import format_table
from repro.types import Precision

BATCH_SIZE = 4
SEED = 2025


def run_variant(label, config):
    """Run one configuration and return (label, InferenceResult)."""
    engine = SpikeStreamInference(config)
    result = engine.run_statistical(batch_size=BATCH_SIZE, seed=SEED)
    return label, result


def main():
    variants = [
        run_variant("baseline FP16", baseline_config(Precision.FP16, batch_size=BATCH_SIZE)),
        run_variant("SpikeStream FP16", spikestream_config(Precision.FP16, batch_size=BATCH_SIZE)),
        run_variant("SpikeStream FP8", spikestream_config(Precision.FP8, batch_size=BATCH_SIZE)),
    ]

    print("=== Network-level summary (S-VGG11, single timestep) ===")
    summary_rows = []
    for label, result in variants:
        row = {"variant": label}
        row.update(result.summary())
        summary_rows.append(row)
    print(format_table(summary_rows, columns=[
        "variant", "total_runtime_ms", "total_energy_mj", "network_fpu_utilization",
        "network_ipc", "average_power_w",
    ]))

    baseline_result = variants[0][1]
    spikestream_result = variants[1][1]
    speedup = baseline_result.total_cycles / spikestream_result.total_cycles
    print(f"\nSpikeStream FP16 end-to-end speedup over the baseline: {speedup:.2f}x")

    print("\n=== Per-layer metrics (SpikeStream FP16) ===")
    print(format_table(spikestream_result.per_layer_table(), columns=[
        "layer", "kernel", "mean_runtime_ms", "mean_fpu_utilization", "mean_ipc",
        "mean_energy_mj", "mean_power_w",
    ]))


if __name__ == "__main__":
    main()
