#!/usr/bin/env python3
"""Quickstart: run S-VGG11 inference through the unified Session API.

This example runs the paper's three evaluated configurations (parallel SIMD
baseline in FP16, SpikeStream in FP16 and FP8) over a small batch of
synthetic frames in statistical mode and prints the per-layer and network
metrics: runtime, FPU utilization, IPC, energy and power.

The runs go through a :class:`repro.Session`, which memoizes every whole
inference result in its result store: ask for the same configuration twice
(or pass ``cache_dir=...`` and re-run the script) and the simulation is
skipped entirely.

Run with::

    python examples/quickstart.py
"""

from repro import Session
from repro.eval.reporting import format_table

BATCH_SIZE = 4
SEED = 2025

LABELS = {
    "baseline_fp16": "baseline FP16",
    "spikestream_fp16": "SpikeStream FP16",
    "spikestream_fp8": "SpikeStream FP8",
}


def main():
    with Session(seed=SEED) as session:
        variants = session.run_variants(batch_size=BATCH_SIZE, seed=SEED)

        print("=== Network-level summary (S-VGG11, single timestep) ===")
        summary_rows = []
        for key, result in variants.items():
            row = {"variant": LABELS[key]}
            row.update(result.summary())
            summary_rows.append(row)
        print(format_table(summary_rows, columns=[
            "variant", "total_runtime_ms", "total_energy_mj", "network_fpu_utilization",
            "network_ipc", "average_power_w",
        ]))

        baseline_result = variants["baseline_fp16"]
        spikestream_result = variants["spikestream_fp16"]
        speedup = baseline_result.total_cycles / spikestream_result.total_cycles
        print(f"\nSpikeStream FP16 end-to-end speedup over the baseline: {speedup:.2f}x")

        print("\n=== Per-layer metrics (SpikeStream FP16) ===")
        print(format_table(spikestream_result.per_layer_table(), columns=[
            "layer", "kernel", "mean_runtime_ms", "mean_fpu_utilization", "mean_ipc",
            "mean_energy_mj", "mean_power_w",
        ]))

        # The same request again is served from the session's result store —
        # no simulation happens the second time.
        session.run_variants(batch_size=BATCH_SIZE, seed=SEED)
        print(f"\nResult store: {session.store.hits} hit(s), "
              f"{session.store.misses} miss(es) this session")


if __name__ == "__main__":
    main()
