#!/usr/bin/env python3
"""Serving: concurrent inference with adaptive micro-batching.

This example stands up an in-process :class:`repro.serve.InferenceServer`
over one shared :class:`repro.Session` and shows the three things the
serving subsystem adds on top of the batched engines:

1. **micro-batching** — 24 concurrent single-frame functional requests are
   coalesced into a few shared ``forward_batch`` passes (watch the
   ``serve.batch_frames`` histogram), yet every response is bit-for-bit
   what a direct ``session.run_functional`` call returns;
2. **store short-circuiting** — re-submitting a request the result store
   already holds resolves instantly without queueing;
3. **admission control** — a tiny queue bound plus a flood demonstrates
   backpressure: rejected requests fail fast with ``QueueFull`` instead of
   stalling the caller.

Run with::

    python examples/serving.py
"""

import numpy as np

from repro import Session
from repro.config import spikestream_config
from repro.serve import InferenceServer, QueueFull
from repro.session import functional_svgg11_setup

REQUESTS = 24
SEED = 2025


def main():
    config = spikestream_config(batch_size=1, timesteps=1, seed=SEED)
    network, frames = functional_svgg11_setup(batch_size=REQUESTS, seed=SEED)
    session = Session()

    with InferenceServer(
        session=session, workers=2, max_batch=8, max_wait_ms=20
    ) as server:
        # 1. Concurrent single-frame requests, micro-batched behind the API.
        futures = [
            server.submit_functional(network, frames[i:i + 1], config=config)
            for i in range(REQUESTS)
        ]
        results = [future.result(timeout=300) for future in futures]
        solo = session.run_functional(network, frames[0:1], config=config)
        assert results[0].identical_to(solo), "serving must be invisible"
        snapshot = server.stats()
        print(f"{REQUESTS} single-frame requests -> "
              f"{snapshot['serve.batches']} engine passes "
              f"(mean micro-batch: "
              f"{snapshot['serve.batch_frames']['mean']:.1f} frames)")
        print(f"p50 latency: {snapshot['serve.latency_ms']['p50']:.0f} ms, "
              f"p99: {snapshot['serve.latency_ms']['p99']:.0f} ms")

        # 2. A repeated request never reaches the queue.
        repeat = server.submit_functional(network, frames[0:1], config=config)
        assert repeat.done(), "store hit should resolve at admission"
        print(f"repeat request short-circuited by the result store "
              f"(hit rate now {server.stats()['serve.store']['hit_rate']:.0%})")

    # 3. Backpressure: a one-slot queue under a flood rejects loudly.
    with InferenceServer(
        session=Session(), workers=1, max_batch=1, max_wait_ms=0, max_queue=1
    ) as tiny:
        admitted, rejected = 0, 0
        for seed in range(12):
            try:
                tiny.submit_statistical(config=config, seed=seed)
                admitted += 1
            except QueueFull:
                rejected += 1
        print(f"flood of 12 against a 1-deep queue: {admitted} admitted, "
              f"{rejected} rejected fast")

    print("\nmean per-frame totals are unchanged by serving:",
          np.round(results[0].total_runtime_s * 1e3, 3), "ms/frame")


if __name__ == "__main__":
    main()
