"""Tests for :mod:`repro.types`."""

import pytest

from repro.types import OptimizationFlag, Precision, TensorShape


class TestPrecision:
    def test_bits_and_bytes(self):
        assert Precision.FP64.bits == 64
        assert Precision.FP32.bits == 32
        assert Precision.FP16.bits == 16
        assert Precision.FP8.bits == 8
        assert Precision.FP16.bytes == 2
        assert Precision.FP8.bytes == 1

    def test_simd_width_matches_64bit_datapath(self):
        assert Precision.FP64.simd_width == 1
        assert Precision.FP32.simd_width == 2
        assert Precision.FP16.simd_width == 4
        assert Precision.FP8.simd_width == 8

    def test_energy_scale_decreases_with_precision(self):
        scales = [
            Precision.FP64.fpu_energy_scale,
            Precision.FP32.fpu_energy_scale,
            Precision.FP16.fpu_energy_scale,
            Precision.FP8.fpu_energy_scale,
        ]
        assert scales == sorted(scales, reverse=True)

    def test_from_name_parses_case_insensitively(self):
        assert Precision.from_name("fp16") is Precision.FP16
        assert Precision.from_name("FP8") is Precision.FP8

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown precision"):
            Precision.from_name("int8")


class TestOptimizationFlag:
    def test_baseline_excludes_streaming(self):
        flags = OptimizationFlag.baseline()
        assert not flags & OptimizationFlag.STREAMING_ACCELERATION
        assert flags & OptimizationFlag.TENSOR_COMPRESSION
        assert flags & OptimizationFlag.DOUBLE_BUFFERING

    def test_spikestream_is_baseline_plus_streaming(self):
        assert (
            OptimizationFlag.spikestream()
            == OptimizationFlag.baseline() | OptimizationFlag.STREAMING_ACCELERATION
        )


class TestTensorShape:
    def test_properties(self):
        shape = TensorShape(4, 5, 6)
        assert shape.spatial_size == 20
        assert shape.numel == 120
        assert shape.as_tuple() == (4, 5, 6)
        assert str(shape) == "4x5x6"

    @pytest.mark.parametrize("bad", [(0, 1, 1), (1, -1, 1), (1, 1, 0)])
    def test_rejects_non_positive_dimensions(self, bad):
        with pytest.raises(ValueError):
            TensorShape(*bad)

    def test_is_hashable_and_comparable(self):
        assert TensorShape(2, 2, 2) == TensorShape(2, 2, 2)
        assert len({TensorShape(2, 2, 2), TensorShape(2, 2, 2)}) == 1
