"""Session.close() hardening and the ResultStore.stats() surface."""

import threading

import pytest

from repro.config import spikestream_config
from repro.session import ResultStore, Session


class TestCloseIdempotent:
    def test_double_close_is_safe(self):
        session = Session(jobs=2, backend="thread")
        session.run_variants(batch_size=1, seed=1)
        session.close()
        session.close()  # second close must be a no-op, not an error

    def test_close_without_any_work(self):
        session = Session()
        session.close()
        session.close()

    def test_caches_usable_after_close(self):
        session = Session()
        config = spikestream_config(batch_size=1, seed=4)
        first = session.run_inference(config, batch_size=1, seed=4)
        session.close()
        hits_before = session.store.hits
        again = session.run_inference(config, batch_size=1, seed=4)
        assert session.store.hits == hits_before + 1
        assert again.identical_to(first)

    def test_close_flushes_sweep_cache_once(self, tmp_path):
        cache_path = tmp_path / "cache" / "sweep_rows.json"
        session = Session(cache_dir=tmp_path / "cache")
        session.run("stream_length", lengths=(1, 4))
        session.close()
        assert cache_path.exists()
        stamp = cache_path.stat().st_mtime_ns
        session.close()  # clean cache: dirty tracking makes the flush free
        assert cache_path.stat().st_mtime_ns == stamp


class TestCloseConcurrent:
    def test_close_while_parallel_work_in_flight(self):
        """close() must drain dispatched work, not drop or crash it."""
        session = Session(jobs=2, backend="thread")
        results = {}
        errors = []

        def run():
            try:
                results["variants"] = session.run_variants(batch_size=1, seed=9)
            except Exception as error:  # pragma: no cover - the regression
                errors.append(error)

        worker = threading.Thread(target=run)
        worker.start()
        # Race close against the in-flight variants run from the main thread.
        session.close()
        worker.join(timeout=120)
        assert not errors, f"close-while-running broke the run: {errors!r}"
        assert set(results.get("variants", {})) == {
            "baseline_fp16", "spikestream_fp16", "spikestream_fp8"
        }

    def test_concurrent_closes_from_many_threads(self):
        session = Session(jobs=2, backend="thread")
        session.run_variants(batch_size=1, seed=2)
        errors = []

        def close():
            try:
                session.close()
            except Exception as error:  # pragma: no cover - the regression
                errors.append(error)

        threads = [threading.Thread(target=close) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors


class TestResultStoreStats:
    def test_stats_tracks_counters_and_occupancy(self):
        session = Session()
        config = spikestream_config(batch_size=1, seed=6)
        stats = session.store.stats()
        assert stats == {
            "hits": 0, "misses": 0, "hit_rate": 0.0, "evictions": 0,
            "disk_evictions": 0, "entries": 0, "total_bytes": 0,
        }
        session.run_inference(config, batch_size=1, seed=6)   # miss
        session.run_inference(config, batch_size=1, seed=6)   # hit
        stats = session.store.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["entries"] == 1

    def test_stats_reports_evictions(self):
        session = Session(cache_limit=1)
        config = spikestream_config(batch_size=1, seed=1)
        session.run_inference(config, batch_size=1, seed=1)
        session.run_inference(config, batch_size=1, seed=2)
        stats = session.store.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 1
        assert stats["total_bytes"] > 0

    def test_stats_matches_the_attributes_it_replaces(self):
        store = ResultStore()
        assert store.stats()["hits"] == store.hits
        assert store.stats()["misses"] == store.misses
        assert store.stats()["disk_evictions"] == store.disk_evictions
