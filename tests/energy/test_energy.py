"""Tests for the activity-based energy model."""

import numpy as np
import pytest

from repro.arch.trace import ClusterStats, CoreStats
from repro.energy.model import EnergyModel, EnergyReport
from repro.energy.params import DEFAULT_ENERGY, EnergyParams
from repro.types import Precision


def _stats(cycles=1_000_000.0, fp_fraction=0.1, cores=8, label="layer"):
    core_stats = [
        CoreStats(
            core_id=i,
            int_instructions=cycles * 0.6,
            fp_instructions=cycles * fp_fraction,
            total_cycles=cycles,
            fpu_busy_cycles=cycles * fp_fraction,
            spm_accesses=cycles * 0.2,
        )
        for i in range(cores)
    ]
    return ClusterStats(core_stats=core_stats, total_cycles=cycles, dma_bytes=1e6, label=label)


class TestEnergyParams:
    def test_fp_energy_decreases_with_precision(self):
        params = DEFAULT_ENERGY
        assert params.fp_instruction_pj(Precision.FP64) > params.fp_instruction_pj(Precision.FP16)
        assert params.fp_instruction_pj(Precision.FP16) > params.fp_instruction_pj(Precision.FP8)

    def test_mac_costs_more_than_add(self):
        params = DEFAULT_ENERGY
        assert params.fp_instruction_pj(Precision.FP16, is_mac=True) > params.fp_instruction_pj(
            Precision.FP16
        )


class TestEnergyModel:
    def test_energy_positive_and_power_reasonable(self):
        model = EnergyModel()
        report = model.layer_energy(_stats(), Precision.FP16, streaming=False)
        assert report.energy_j > 0
        # Cluster power must be in the hundreds-of-milliwatts regime of Fig. 4.
        assert 0.05 < report.power_w < 1.0

    def test_breakdown_sums_to_total(self):
        model = EnergyModel()
        report = model.layer_energy(_stats(), Precision.FP16, streaming=True)
        assert sum(report.breakdown_j.values()) == pytest.approx(report.energy_j)

    def test_streaming_adds_ssr_power(self):
        model = EnergyModel()
        base = model.layer_energy(_stats(), Precision.FP16, streaming=False)
        stream = model.layer_energy(_stats(), Precision.FP16, streaming=True)
        assert stream.breakdown_j["ssr"] > 0
        assert base.breakdown_j["ssr"] == 0
        assert stream.energy_j > base.energy_j

    def test_higher_utilization_raises_power(self):
        """SpikeStream's power is higher than the baseline's because the FPU is busier."""
        model = EnergyModel()
        idle = model.layer_energy(_stats(fp_fraction=0.08), Precision.FP16, streaming=False)
        busy = model.layer_energy(_stats(fp_fraction=0.5), Precision.FP16, streaming=True)
        assert busy.power_w > idle.power_w

    def test_fp8_cheaper_than_fp16_at_same_activity(self):
        model = EnergyModel()
        fp16 = model.layer_energy(_stats(), Precision.FP16, streaming=True)
        fp8 = model.layer_energy(_stats(), Precision.FP8, streaming=True)
        assert fp8.energy_j < fp16.energy_j

    def test_mac_layer_costs_more(self):
        model = EnergyModel()
        plain = model.layer_energy(_stats(fp_fraction=0.5), Precision.FP16, streaming=True)
        mac = model.layer_energy(_stats(fp_fraction=0.5), Precision.FP16, streaming=True,
                                 uses_mac=True)
        assert mac.energy_j > plain.energy_j

    def test_background_scales_with_runtime(self):
        model = EnergyModel()
        short = model.layer_energy(_stats(cycles=1e5), Precision.FP16, streaming=False)
        long = model.layer_energy(_stats(cycles=1e7), Precision.FP16, streaming=False)
        assert long.breakdown_j["background"] > short.breakdown_j["background"]

    def test_total_energy_helper(self):
        model = EnergyModel()
        reports = [
            model.layer_energy(_stats(label=f"l{i}"), Precision.FP16, streaming=False)
            for i in range(3)
        ]
        assert model.total_energy(reports) == pytest.approx(sum(r.energy_j for r in reports))

    def test_report_units(self):
        report = EnergyReport(label="x", energy_j=2e-3, runtime_s=1e-2, breakdown_j={})
        assert report.energy_mj == pytest.approx(2.0)
        assert report.power_w == pytest.approx(0.2)
        assert report.as_dict()["runtime_ms"] == pytest.approx(10.0)

    def test_zero_runtime_power(self):
        report = EnergyReport(label="x", energy_j=0.0, runtime_s=0.0, breakdown_j={})
        assert report.power_w == 0.0

    def test_custom_coefficients_respected(self):
        cheap = EnergyModel(params=EnergyParams(integer_instruction_pj=1.0))
        default = EnergyModel()
        stats = _stats()
        assert (
            cheap.layer_energy(stats, Precision.FP16, False).energy_j
            < default.layer_energy(stats, Precision.FP16, False).energy_j
        )
