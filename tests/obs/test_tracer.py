"""Unit contracts for the span tracer, collector, and exporters.

The distributed stitching (coordinator + workers over real sockets) is
covered by ``tests/net/test_trace_rescue.py`` and the smoke ``obs`` step;
here we pin the local semantics: sampling, completion, ring-buffer bounds,
clock adoption, idempotent finish, wire picklability, and export formats.
"""

from __future__ import annotations

import io
import json
import pickle
import time

import pytest

from repro.obs import (
    NULL_SPAN,
    STAGE_NAMES,
    TraceCollector,
    TraceContext,
    Tracer,
    layer_hook,
    read_jsonl,
    to_chrome,
    to_jsonl,
    well_nested,
)
from repro.serve.metrics import MetricsRegistry


class FakeFuture:
    """The fragment of concurrent.futures.Future the tracer touches."""

    def __init__(self):
        self._callbacks = []
        self._done = False
        self._cancelled = False
        self._exception = None

    def add_done_callback(self, callback):
        self._callbacks.append(callback)

    def cancelled(self):
        return self._cancelled

    def exception(self):
        return self._exception

    def resolve(self, error=None, cancelled=False):
        self._done = True
        self._cancelled = cancelled
        self._exception = error
        for callback in self._callbacks:
            callback(self)


class FakeRequest:
    def __init__(self, request_id="req-0", mode="functional"):
        self.id = request_id
        self.mode = mode
        self.future = FakeFuture()
        self.trace = None
        self.enqueued_at = time.monotonic()


def traced_request(tracer, request_id="req-0"):
    request = FakeRequest(request_id)
    assert tracer.admit(request) is not None
    return request


# -- disabled path -----------------------------------------------------------

def test_disabled_tracer_is_inert():
    tracer = Tracer()
    request = FakeRequest()
    assert tracer.admit(request) is None
    assert request.trace is None
    assert tracer.sampled([request]) == []
    assert tracer.span("engine_pass", ()) is NULL_SPAN
    assert tracer.open_span("dispatch", ()) is NULL_SPAN
    assert tracer.drain() == []
    assert tracer.completed() == []


def test_null_span_is_a_shared_noop_singleton():
    tracer = Tracer(enabled=True)
    # Enabled but nothing sampled -> still the singleton, zero allocation.
    assert tracer.span("engine_pass", ()) is NULL_SPAN
    with NULL_SPAN as span:
        assert span.id is None
    NULL_SPAN.finish(status="rescued")  # no-op, never raises


# -- sampling ----------------------------------------------------------------

def test_sampling_is_seeded_and_deterministic():
    def decisions(seed):
        tracer = Tracer(enabled=True, sample=0.5, seed=seed)
        return [
            tracer.admit(FakeRequest(f"req-{i}")) is not None
            for i in range(64)
        ]

    first = decisions(7)
    assert first == decisions(7), "same seed must sample the same requests"
    assert first != decisions(8), "different seed must diverge"
    assert any(first) and not all(first)


def test_sample_bounds_validated():
    with pytest.raises(ValueError):
        Tracer(sample=1.5)
    with pytest.raises(ValueError):
        TraceCollector(capacity=0)


# -- completion semantics ----------------------------------------------------

def test_trace_completes_when_root_and_children_finish():
    tracer = Tracer(enabled=True)
    request = traced_request(tracer)
    ctxs = tracer.sampled([request])
    with tracer.span("engine_pass", ctxs, requests=1):
        pass
    assert tracer.completed() == [], "root still open: not complete"
    request.future.resolve()
    traces = tracer.completed()
    assert len(traces) == 1
    assert well_nested(traces[0]) is None
    names = {span["name"] for span in traces[0]["spans"]}
    assert names == {"request", "engine_pass"}


def test_root_closes_on_every_future_outcome():
    for outcome, status in (
        (dict(), "ok"),
        (dict(error=RuntimeError("boom")), "error"),
        (dict(cancelled=True), "cancelled"),
    ):
        tracer = Tracer(enabled=True)
        request = traced_request(tracer)
        request.future.resolve(**outcome)
        (trace,) = tracer.completed()
        (root,) = trace["spans"]
        assert root["name"] == "request"
        assert root["status"] == status


def test_open_span_finish_is_idempotent():
    tracer = Tracer(enabled=True)
    request = traced_request(tracer)
    span = tracer.open_span("dispatch", tracer.sampled([request]), worker="w0")
    span.finish(status="rescued")
    span.finish(status="ok")  # loses: first outcome wins
    request.future.resolve()
    (trace,) = tracer.completed()
    dispatch = next(s for s in trace["spans"] if s["name"] == "dispatch")
    assert dispatch["status"] == "rescued"


def test_ring_buffer_drops_oldest_and_counts():
    tracer = Tracer(enabled=True, capacity=2)
    for i in range(4):
        traced_request(tracer, f"req-{i}").future.resolve()
    traces = tracer.completed()
    assert len(traces) == 2
    kept = [t["spans"][0]["attrs"]["request"] for t in traces]
    assert kept == ["req-2", "req-3"]
    stats = tracer.stats()
    assert stats["completed"] == 4.0
    assert stats["dropped"] == 2.0
    assert tracer.completed(flush=True) and tracer.completed() == []


def test_batch_span_covers_every_member_trace():
    tracer = Tracer(enabled=True)
    requests = [traced_request(tracer, f"req-{i}") for i in range(3)]
    ctxs = tracer.sampled(requests)
    with tracer.span("engine_pass", ctxs, requests=3):
        pass
    for request in requests:
        request.future.resolve()
    traces = tracer.completed()
    assert len(traces) == 3
    for trace in traces:
        assert well_nested(trace) is None
        engine = next(
            s for s in trace["spans"] if s["name"] == "engine_pass"
        )
        root = next(s for s in trace["spans"] if s["parent_id"] is None)
        assert engine["parent_id"] == root["span_id"]


def test_span_error_status_on_exception():
    tracer = Tracer(enabled=True)
    request = traced_request(tracer)
    ctxs = tracer.sampled([request])
    with pytest.raises(RuntimeError):
        with tracer.span("engine_pass", ctxs):
            raise RuntimeError("boom")
    request.future.resolve()
    (trace,) = tracer.completed()
    engine = next(s for s in trace["spans"] if s["name"] == "engine_pass")
    assert engine["status"] == "error"


# -- cross-process adoption --------------------------------------------------

def test_adopt_rebases_and_clamps_into_dispatch_window():
    tracer = Tracer(enabled=True)
    request = traced_request(tracer)
    ctx = request.trace
    sent, received = 100.0, 100.5
    # Worker clock far away from ours; one record pokes outside the window.
    remote = [
        {
            "trace_id": ctx.trace_id, "span_id": "w-1",
            "parent_id": ctx.root_id, "name": "worker_execute",
            "start": 9000.1, "end": 9000.4, "status": "ok",
            "pid": 999, "thread": "link", "attrs": {}, "follows": [],
        },
        {
            "trace_id": ctx.trace_id, "span_id": "w-2",
            "parent_id": "w-1", "name": "engine_pass",
            "start": 8999.0, "end": 9001.0, "status": "ok",
            "pid": 999, "thread": "link", "attrs": {}, "follows": [],
        },
    ]
    adopted = tracer.adopt(
        remote, sent, received, remote_clock=(9000.0, 9000.5)
    )
    assert adopted == 2
    request.future.resolve()
    (trace,) = tracer.completed()
    for span in trace["spans"]:
        if span["name"] == "request":
            continue
        assert sent <= span["start"] <= span["end"] <= received
        assert span["attrs"]["rtt_s"] == pytest.approx(0.5)


def test_adopt_drops_and_counts_late_records():
    tracer = Tracer(enabled=True)
    late = [{
        "trace_id": "gone", "span_id": "w-1", "parent_id": None,
        "name": "worker_execute", "start": 0.0, "end": 1.0,
        "status": "ok", "pid": 1, "thread": "t", "attrs": {}, "follows": [],
    }]
    assert tracer.adopt(late, 0.0, 1.0) == 0
    assert tracer.stats()["late"] == 1.0


def test_worker_drain_harvests_without_roots():
    tracer = Tracer(enabled=True)
    ctx = TraceContext("t-1", "r-1", "r-1")
    with tracer.span("worker_execute", (ctx,)):
        pass
    records = tracer.drain()
    assert [r["name"] for r in records] == ["worker_execute"]
    assert tracer.drain() == []
    assert tracer.stats()["open_traces"] == 0.0


# -- wire + metrics ----------------------------------------------------------

def test_trace_context_pickles_roundtrip():
    ctx = TraceContext("t-1", "r-1", "p-1", follows="d-0", wait_from=1.5)
    clone = pickle.loads(pickle.dumps(ctx))
    for name in TraceContext.__slots__:
        assert getattr(clone, name) == getattr(ctx, name)


def test_stage_latency_histograms_fed():
    tracer = Tracer(enabled=True)
    metrics = MetricsRegistry()
    tracer.bind_metrics(metrics)
    request = traced_request(tracer)
    ctxs = tracer.sampled([request])
    with tracer.span("engine_pass", ctxs):
        pass
    tracer.record_span("queue_wait", ctxs, 0.0, 0.25)
    request.future.resolve()
    snapshot = metrics.snapshot()
    for stage in ("request", "engine_pass", "queue_wait"):
        assert snapshot["serve.stage_latency." + stage]["count"] >= 1
    assert snapshot["serve.stage_latency.queue_wait"]["max"] == pytest.approx(
        250.0
    )
    # Non-stage names never mint histograms.
    tracer.record_span("layer:conv1", ctxs, 0.0, 0.1)
    assert "serve.stage_latency.layer:conv1" not in metrics.snapshot()


def test_layer_hook_records_under_parent():
    tracer = Tracer(enabled=True)
    request = traced_request(tracer)
    ctxs = tracer.sampled([request])
    hook = layer_hook(tracer, ctxs, parent_id="engine-span")
    hook("conv1", 1.0, 1.1)
    request.future.resolve()
    (trace,) = tracer.completed()
    layer = next(s for s in trace["spans"] if s["name"] == "layer:conv1")
    assert layer["parent_id"] == "engine-span"


# -- exporters ---------------------------------------------------------------

def completed_trace(tracer=None):
    tracer = tracer or Tracer(enabled=True)
    request = traced_request(tracer)
    ctxs = tracer.sampled([request])
    with tracer.span("queue_wait", ctxs):
        pass
    with tracer.span("engine_pass", ctxs):
        pass
    request.future.resolve()
    (trace,) = tracer.completed()
    return trace


def test_jsonl_roundtrip():
    trace = completed_trace()
    buffer = io.StringIO()
    written = to_jsonl([trace], buffer)
    assert written == len(trace["spans"]) == 3
    buffer.seek(0)
    (back,) = read_jsonl(buffer)
    assert back["trace_id"] == trace["trace_id"]
    assert back["spans"] == trace["spans"]
    assert well_nested(back) is None


def test_chrome_export_shape():
    trace = completed_trace()
    document = to_chrome([trace])
    json.dumps(document)  # must be serialisable as-is
    assert document["displayTimeUnit"] == "ms"
    complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert len(complete) == 3
    for event in complete:
        assert event["dur"] >= 0.0
        assert event["ts"] >= 0.0
        assert event["args"]["trace_id"] == trace["trace_id"]


def test_chrome_export_renders_follow_from_flow():
    tracer = Tracer(enabled=True)
    request = traced_request(tracer)
    ctxs = tracer.sampled([request])
    first = tracer.open_span("dispatch", ctxs, worker="w0")
    first.finish(status="rescued")
    second = tracer.open_span(
        "dispatch", ctxs, follows=[first.id], worker="w1"
    )
    second.finish()
    request.future.resolve()
    (trace,) = tracer.completed()
    assert well_nested(trace) is None
    events = to_chrome([trace])["traceEvents"]
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert len(starts) == 1 and len(finishes) == 1
    assert starts[0]["id"] == finishes[0]["id"]
    assert finishes[0]["bp"] == "e"


def test_well_nested_flags_structural_violations():
    trace = completed_trace()
    assert well_nested({"trace_id": "x", "spans": []}) is not None
    orphan = dict(trace["spans"][0], parent_id="missing")
    assert "orphan" in well_nested(
        {"trace_id": "x", "spans": [dict(trace["spans"][-1]), orphan]}
    )
    two_roots = {
        "trace_id": "x",
        "spans": [
            dict(trace["spans"][-1]),
            dict(trace["spans"][-1], span_id="other", parent_id=None),
        ],
    }
    assert "exactly one root" in well_nested(two_roots)
