"""Tier-1 wiring of the tools/smoke.py distributed-tracing (obs) check.

A traced :class:`~repro.net.coordinator.Coordinator` with two in-process
workers serves 32 mixed statistical/functional requests; every request
must export exactly one completed, well-nested trace whose ``queue_wait``,
``dispatch`` and remote ``worker_execute``/``engine_pass`` spans stitch
under the root on one timeline, and the Chrome ``trace_event`` rendering
must serialize as-is.  The check itself lives in ``tools/smoke.py`` so the
standalone smoke script and this ``smoke``-marked test can never drift.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_SMOKE_PATH = Path(__file__).resolve().parents[2] / "tools" / "smoke.py"


def _load_smoke():
    spec = importlib.util.spec_from_file_location("repro_tools_smoke", _SMOKE_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("repro_tools_smoke", module)
    spec.loader.exec_module(module)
    return module


@pytest.mark.smoke
def test_traced_cluster_wave_exports_complete_well_nested_traces():
    smoke = _load_smoke()
    smoke.obs_trace_check()
