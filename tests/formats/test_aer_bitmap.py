"""Tests for the AER and bitmap spike representations."""

import numpy as np
import pytest

from repro.formats.aer import AER_FIELDS_PER_EVENT, AEREvent, AERStream
from repro.formats.bitmap import BitmapIfmap
from repro.formats.convert import dense_to_aer, dense_to_bitmap
from repro.types import TensorShape


class TestAEREvent:
    def test_rejects_negative_coordinates(self):
        with pytest.raises(ValueError):
            AEREvent(row=-1, col=0, channel=0)

    def test_default_timestep_zero(self):
        assert AEREvent(1, 2, 3).timestep == 0


class TestAERStream:
    def test_append_validates_bounds(self):
        stream = AERStream(shape=TensorShape(2, 2, 2))
        stream.append(AEREvent(1, 1, 1))
        with pytest.raises(ValueError):
            stream.append(AEREvent(2, 0, 0))
        with pytest.raises(ValueError):
            stream.append(AEREvent(0, 0, 2))

    def test_footprint_counts_coordinate_fields(self, rng):
        dense = rng.random((4, 4, 8)) < 0.5
        stream = dense_to_aer(dense)
        assert stream.footprint_bytes() == stream.nnz * AER_FIELDS_PER_EVENT * 2

    def test_coordinates_array(self):
        stream = AERStream(shape=TensorShape(3, 3, 3))
        stream.append(AEREvent(1, 2, 0, timestep=5))
        coords = stream.coordinates()
        assert coords.shape == (1, 4)
        assert coords.tolist() == [[1, 2, 0, 5]]

    def test_empty_stream_has_empty_coordinates(self):
        stream = AERStream(shape=TensorShape(2, 2, 2))
        assert stream.coordinates().shape == (0, 4)
        assert stream.footprint_bytes() == 0


class TestBitmap:
    def test_footprint_is_one_bit_per_neuron(self, rng):
        dense = rng.random((4, 4, 16)) < 0.5
        bitmap = dense_to_bitmap(dense)
        assert bitmap.footprint_bytes() == (4 * 4 * 16 + 7) // 8

    def test_nnz_matches_dense(self, rng):
        dense = rng.random((3, 5, 7)) < 0.3
        bitmap = dense_to_bitmap(dense)
        assert bitmap.nnz == int(np.count_nonzero(dense))
        assert bitmap.firing_rate == pytest.approx(np.count_nonzero(dense) / dense.size)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BitmapIfmap(shape=TensorShape(2, 2, 2), bits=np.zeros((2, 2, 3), dtype=bool))
