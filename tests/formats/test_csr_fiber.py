"""Tests for the CSR-derived fiber-tree compression."""

import numpy as np
import pytest

from repro.formats.convert import compress_ifmap, compress_vector
from repro.formats.csr_fiber import (
    CompressedIfmap,
    CompressedIfmapBuilder,
    CompressedVector,
    index_dtype,
)
from repro.types import TensorShape


class TestIndexDtype:
    def test_supported_widths(self):
        assert index_dtype(1) == np.uint8
        assert index_dtype(2) == np.uint16
        assert index_dtype(4) == np.uint32

    def test_unsupported_width(self):
        with pytest.raises(ValueError):
            index_dtype(3)


class TestCompressedIfmap:
    def test_nnz_and_firing_rate(self, rng):
        dense = rng.random((4, 4, 8)) < 0.25
        compressed = compress_ifmap(dense)
        assert compressed.nnz == int(np.count_nonzero(dense))
        assert compressed.firing_rate == pytest.approx(np.count_nonzero(dense) / dense.size)

    def test_spatial_slice_matches_dense(self, rng):
        dense = rng.random((5, 6, 10)) < 0.4
        compressed = compress_ifmap(dense)
        for row in range(5):
            for col in range(6):
                expected = np.nonzero(dense[row, col])[0]
                assert np.array_equal(compressed.spatial_slice(row, col), expected)

    def test_spike_counts_shape_and_sum(self, rng):
        dense = rng.random((3, 7, 4)) < 0.5
        compressed = compress_ifmap(dense)
        counts = compressed.spike_counts()
        assert counts.shape == (3, 7)
        assert counts.sum() == compressed.nnz

    def test_spatial_slice_bounds_check(self, rng):
        compressed = compress_ifmap(rng.random((2, 2, 2)) < 0.5)
        with pytest.raises(IndexError):
            compressed.spatial_slice(2, 0)

    def test_footprint_formula(self, rng):
        dense = rng.random((4, 4, 16)) < 0.3
        compressed = compress_ifmap(dense, index_bytes=2)
        expected = compressed.nnz * 2 + (16 + 1) * 2
        assert compressed.footprint_bytes() == expected

    def test_invalid_s_ptr_rejected(self):
        shape = TensorShape(2, 2, 4)
        with pytest.raises(ValueError, match="non-decreasing"):
            CompressedIfmap(
                shape=shape,
                c_idcs=np.array([0, 1], dtype=np.uint16),
                s_ptr=np.array([0, 2, 1, 2, 2]),
            )

    def test_s_ptr_must_match_c_idcs_length(self):
        shape = TensorShape(1, 2, 4)
        with pytest.raises(ValueError, match="must equal len"):
            CompressedIfmap(
                shape=shape,
                c_idcs=np.array([0], dtype=np.uint16),
                s_ptr=np.array([0, 1, 3]),
            )

    def test_out_of_range_channel_rejected(self):
        shape = TensorShape(1, 1, 2)
        with pytest.raises(ValueError, match="out of range"):
            CompressedIfmap(
                shape=shape,
                c_idcs=np.array([5], dtype=np.uint16),
                s_ptr=np.array([0, 1]),
            )


class TestCompressedVector:
    def test_round_trip_properties(self):
        vector = compress_vector(np.array([1, 0, 0, 1, 1, 0], dtype=bool))
        assert vector.length == 6
        assert vector.nnz == 3
        assert vector.firing_rate == pytest.approx(0.5)
        assert vector.footprint_bytes() == 3 * 2 + 2

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            CompressedVector(length=4, idcs=np.array([1, 1], dtype=np.uint16))

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            CompressedVector(length=4, idcs=np.array([4], dtype=np.uint16))


class TestCompressedIfmapBuilder:
    def test_builder_matches_direct_compression(self, rng):
        dense = rng.random((3, 3, 5)) < 0.5
        builder = CompressedIfmapBuilder(shape=TensorShape(3, 3, 5))
        for row, col, channel in zip(*np.nonzero(dense)):
            builder.add_spike(int(row), int(col), int(channel))
        built = builder.finalize()
        direct = compress_ifmap(dense)
        assert np.array_equal(built.c_idcs, direct.c_idcs)
        assert np.array_equal(built.s_ptr, direct.s_ptr)

    def test_worst_case_bytes_covers_dense_output(self):
        shape = TensorShape(2, 2, 3)
        builder = CompressedIfmapBuilder(shape=shape)
        for row in range(2):
            for col in range(2):
                for channel in range(3):
                    builder.add_spike(row, col, channel)
        assert builder.finalize().footprint_bytes() <= builder.worst_case_bytes()

    def test_rejects_out_of_range_channel(self):
        builder = CompressedIfmapBuilder(shape=TensorShape(2, 2, 3))
        with pytest.raises(ValueError):
            builder.add_spike(0, 0, 3)
