"""Round-trip and property-based tests for the format conversions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.convert import (
    aer_to_dense,
    bitmap_to_dense,
    compress_ifmap,
    compress_vector,
    dense_to_aer,
    dense_to_bitmap,
    decompress_ifmap,
    decompress_vector,
    empty_compressed_ifmap,
)
from repro.types import TensorShape


@st.composite
def dense_spike_maps(draw):
    """Random boolean HWC spike maps of modest size."""
    height = draw(st.integers(1, 8))
    width = draw(st.integers(1, 8))
    channels = draw(st.integers(1, 16))
    rate = draw(st.floats(0.0, 1.0))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return rng.random((height, width, channels)) < rate


class TestRoundTrips:
    @settings(max_examples=60, deadline=None)
    @given(dense=dense_spike_maps())
    def test_csr_round_trip_is_lossless(self, dense):
        assert np.array_equal(decompress_ifmap(compress_ifmap(dense)), dense)

    @settings(max_examples=40, deadline=None)
    @given(dense=dense_spike_maps())
    def test_aer_round_trip_is_lossless(self, dense):
        assert np.array_equal(aer_to_dense(dense_to_aer(dense)), dense)

    @settings(max_examples=40, deadline=None)
    @given(dense=dense_spike_maps())
    def test_bitmap_round_trip_is_lossless(self, dense):
        assert np.array_equal(bitmap_to_dense(dense_to_bitmap(dense)), dense)

    @settings(max_examples=60, deadline=None)
    @given(
        length=st.integers(1, 512),
        rate=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_vector_round_trip_is_lossless(self, length, rate, seed):
        dense = np.random.default_rng(seed).random(length) < rate
        assert np.array_equal(decompress_vector(compress_vector(dense)), dense)

    @settings(max_examples=40, deadline=None)
    @given(dense=dense_spike_maps())
    def test_nnz_consistent_across_formats(self, dense):
        nnz = int(np.count_nonzero(dense))
        assert compress_ifmap(dense).nnz == nnz
        assert dense_to_aer(dense).nnz == nnz
        assert dense_to_bitmap(dense).nnz == nnz

    @settings(max_examples=40, deadline=None)
    @given(dense=dense_spike_maps())
    def test_compressed_never_exceeds_worst_case(self, dense):
        compressed = compress_ifmap(dense)
        shape = compressed.shape
        worst_case = (shape.numel + shape.spatial_size + 1) * compressed.index_bytes
        assert compressed.footprint_bytes() <= worst_case


class TestEdgeCases:
    def test_compress_rejects_non_binary(self):
        with pytest.raises(ValueError):
            compress_ifmap(np.full((2, 2, 2), 3.0))

    def test_compress_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            compress_ifmap(np.zeros((2, 2), dtype=bool))

    def test_vector_requires_1d(self):
        with pytest.raises(ValueError):
            compress_vector(np.zeros((2, 2), dtype=bool))

    def test_empty_compressed_ifmap(self):
        shape = TensorShape(3, 3, 4)
        empty = empty_compressed_ifmap(shape)
        assert empty.nnz == 0
        assert np.array_equal(decompress_ifmap(empty), np.zeros(shape.as_tuple(), dtype=bool))

    def test_all_ones_map(self):
        dense = np.ones((2, 3, 4), dtype=bool)
        compressed = compress_ifmap(dense)
        assert compressed.nnz == 24
        assert np.array_equal(decompress_ifmap(compressed), dense)

    def test_c_idcs_sorted_within_each_position(self, rng):
        dense = rng.random((4, 4, 12)) < 0.6
        compressed = compress_ifmap(dense)
        for row in range(4):
            for col in range(4):
                idcs = compressed.spatial_slice(row, col)
                assert np.all(np.diff(idcs.astype(np.int64)) > 0)
