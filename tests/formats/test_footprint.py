"""Tests for the memory-footprint model (Figure 3a)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.footprint import (
    aer_footprint_bytes,
    bitmap_footprint_bytes,
    csr_footprint_bytes,
    dense_footprint_bytes,
    footprint_report,
)
from repro.types import Precision, TensorShape


class TestClosedFormFormulas:
    def test_dense_footprint(self):
        shape = TensorShape(4, 4, 8)
        assert dense_footprint_bytes(shape, Precision.FP16) == 4 * 4 * 8 * 2

    def test_csr_footprint(self):
        shape = TensorShape(4, 4, 8)
        assert csr_footprint_bytes(shape, nnz=10) == 10 * 2 + (16 + 1) * 2

    def test_aer_footprint(self):
        assert aer_footprint_bytes(10) == 10 * 3 * 2

    def test_bitmap_footprint_rounds_up(self):
        assert bitmap_footprint_bytes(TensorShape(1, 1, 9)) == 2

    def test_csr_rejects_nnz_above_numel(self):
        with pytest.raises(ValueError):
            csr_footprint_bytes(TensorShape(1, 1, 4), nnz=5)

    def test_negative_nnz_rejected(self):
        with pytest.raises(ValueError):
            aer_footprint_bytes(-1)


class TestFootprintReport:
    def test_report_from_dense_matches_formulas(self, rng):
        dense = rng.random((6, 6, 32)) < 0.3
        report = footprint_report(dense)
        nnz = int(np.count_nonzero(dense))
        assert report.nnz == nnz
        assert report.csr_bytes == csr_footprint_bytes(report.shape, nnz)
        assert report.aer_bytes == aer_footprint_bytes(nnz)
        assert report.bitmap_bytes == bitmap_footprint_bytes(report.shape)

    def test_report_from_shape_and_nnz(self):
        shape = TensorShape(10, 10, 64)
        report = footprint_report(shape=shape, nnz=1000)
        assert report.nnz == 1000
        assert report.firing_rate == pytest.approx(1000 / shape.numel)

    def test_report_requires_input(self):
        with pytest.raises(ValueError):
            footprint_report()

    @settings(max_examples=50, deadline=None)
    @given(
        channels=st.integers(8, 512),
        spatial=st.integers(2, 32),
        rate=st.floats(0.02, 0.9),
    )
    def test_csr_beats_aer_at_any_realistic_sparsity(self, channels, spatial, rate):
        """The CSR format is never larger than AER for non-degenerate maps."""
        shape = TensorShape(spatial, spatial, channels)
        nnz = int(shape.numel * rate)
        report = footprint_report(shape=shape, nnz=nnz)
        # With 16-bit fields, CSR stores 1 index/spike + pointers; AER stores
        # 3 fields/spike.  As long as there is at least ~1 spike per two
        # spatial positions the CSR representation wins.
        if nnz >= shape.spatial_size:
            assert report.csr_bytes < report.aer_bytes

    def test_reduction_close_to_paper_for_typical_layer(self):
        """For a mid-network layer the reduction is in the ~2-4x band of Fig. 3a."""
        shape = TensorShape(18, 18, 256)
        nnz = int(shape.numel * 0.25)
        report = footprint_report(shape=shape, nnz=nnz)
        assert 2.0 < report.csr_over_aer_reduction < 4.0
