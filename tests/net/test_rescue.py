"""Chaos tests: the coordinator must rescue work from dead and stalled workers.

Two failure modes, one invariant — **no future is ever lost**:

* a worker *killed mid-batch* (``chaos_exit_after``, a real OS process
  dying with ``os._exit``) drops its connection; the coordinator re-queues
  the in-flight batch at the queue head and a healthy worker completes it
  before the deadline;
* a worker *stalled mid-batch* (``chaos_hang_after``, heartbeats keep
  flowing) trips ``stall_timeout_s``; the batch is re-dispatched while the
  zombie stays connected.

Every rescued result must still be bit-for-bit identical to a direct
:class:`~repro.session.Session` call.
"""

import threading
import time

import pytest

from repro.config import spikestream_config
from repro.net import Coordinator, NetWorker, spawn_worker
from repro.session import Session


@pytest.fixture
def config():
    return spikestream_config(batch_size=1, timesteps=1, seed=67)


def _start_inline_worker(address, **kwargs):
    worker = NetWorker(address, **kwargs)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


def _wait(predicate, timeout=30.0, interval=0.02):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestDeadWorkerRescue:
    def test_killed_mid_batch_requests_are_redispatched_before_deadline(self, config):
        coordinator = Coordinator(
            max_batch=4, max_wait_ms=10, liveness_timeout_s=1.0,
            default_deadline_s=90.0,
        )
        process = None
        healthy = None
        try:
            # Only the doomed worker is connected when the batch dispatches,
            # so it deterministically receives (and dies on) the batch.
            process = spawn_worker(
                coordinator.address, worker_id="doomed", chaos_exit_after=0
            )
            assert coordinator.wait_for_workers(1, timeout=60)
            futures = [
                coordinator.submit_statistical(config=config, seed=67 + index)
                for index in range(4)
            ]
            assert _wait(lambda: coordinator.live_workers() == 0), (
                "the chaos worker should have died on its first batch"
            )
            healthy, healthy_thread = _start_inline_worker(
                coordinator.address, worker_id="healthy"
            )
            results = [future.result(timeout=60) for future in futures]
            stats = coordinator.stats()
        finally:
            coordinator.close()
            if process is not None:
                assert process.wait(timeout=30) == 3  # os._exit(3)
            if healthy is not None:
                healthy_thread.join(timeout=10)

        assert all(result is not None for result in results)
        assert stats["net.workers_lost"] >= 1
        assert stats["net.rescues"] >= 1
        assert stats["net.redispatched_requests"] >= 1
        with Session() as reference:
            for index, result in enumerate(results):
                direct = reference.run_inference(config, batch_size=1,
                                                 seed=67 + index)
                assert result.identical_to(direct), (
                    f"rescued request {index} diverges from the direct call"
                )

    def test_no_future_lost_when_worker_dies_between_waves(self, config):
        coordinator = Coordinator(
            max_batch=2, max_wait_ms=5, liveness_timeout_s=1.0
        )
        process = None
        healthy = None
        try:
            # Dies on its *second* batch: one success, then mid-batch death.
            process = spawn_worker(
                coordinator.address, worker_id="doomed-late", chaos_exit_after=1
            )
            assert coordinator.wait_for_workers(1, timeout=60)
            first_wave = [
                coordinator.submit_statistical(config=config, seed=101 + i)
                for i in range(2)
            ]
            for future in first_wave:
                assert future.result(timeout=60) is not None
            second_wave = [
                coordinator.submit_statistical(config=config, seed=111 + i)
                for i in range(2)
            ]
            assert _wait(lambda: coordinator.live_workers() == 0)
            healthy, healthy_thread = _start_inline_worker(
                coordinator.address, worker_id="healthy-2"
            )
            for future in second_wave:
                assert future.result(timeout=60) is not None
        finally:
            coordinator.close()
            if process is not None:
                process.wait(timeout=30)
            if healthy is not None:
                healthy_thread.join(timeout=10)


class TestStalledWorkerRescue:
    def test_stalled_batch_redispatched_while_zombie_heartbeats(self, config):
        coordinator = Coordinator(
            max_batch=4, max_wait_ms=10, liveness_timeout_s=5.0,
            stall_timeout_s=1.0,
        )
        zombie = zombie_thread = healthy = healthy_thread = None
        try:
            zombie, zombie_thread = _start_inline_worker(
                coordinator.address, worker_id="zombie", chaos_hang_after=0
            )
            assert coordinator.wait_for_workers(1, timeout=30)
            futures = [
                coordinator.submit_statistical(config=config, seed=131 + index)
                for index in range(4)
            ]
            # The zombie has the batch in flight (it pulled it, then hung).
            assert _wait(lambda: coordinator.stats()["net.dispatches"] >= 1)
            healthy, healthy_thread = _start_inline_worker(
                coordinator.address, worker_id="healthy-3"
            )
            results = [future.result(timeout=60) for future in futures]
            stats = coordinator.stats()
            # Heartbeats kept flowing: the zombie was *stalled*, not dead.
            assert coordinator.live_workers() >= 1
            assert stats["net.rescues"] >= 1
            assert stats["net.redispatched_requests"] >= 1
        finally:
            if zombie is not None:
                zombie.stop()
            coordinator.close()
            if zombie is not None:
                zombie_thread.join(timeout=10)
            if healthy is not None:
                healthy_thread.join(timeout=10)

        with Session() as reference:
            for index, result in enumerate(results):
                direct = reference.run_inference(config, batch_size=1,
                                                 seed=131 + index)
                assert result.identical_to(direct)
