"""The repro.net wire format: round trips, truncation, version gating.

Every payload class the cluster ships — :class:`InferenceRequest` wire
dicts, :class:`PlanRow` objects, full :class:`InferenceResult` objects —
must cross a real ``socketpair`` bit-for-bit, and the error taxonomy must
hold: clean EOF between frames is :class:`ConnectionClosed`, EOF inside a
frame is :class:`TruncatedFrame`, a foreign wire version is
:class:`VersionMismatch` and never decoded.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.config import spikestream_config
from repro.net.framing import (
    ARRAY_OOB_BYTES,
    HEADER,
    MAGIC,
    MAX_FRAME_BYTES,
    PREFIX,
    V2_HEADER,
    ConnectionClosed,
    FrameError,
    FramedConnection,
    Message,
    TruncatedFrame,
    VersionMismatch,
    WIRE_VERSION,
    decode_frame,
    decode_frame_v1,
    encode_frame,
    encode_frame_v1,
    recv_message,
    request_from_wire,
    request_to_wire,
    send_message,
)
from repro.plan import PlanRow
from repro.serve.queue import InferenceRequest
from repro.session import Session


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    try:
        yield left, right
    finally:
        left.close()
        right.close()


def _roundtrip(pair, kind, **payload):
    left, right = pair
    send_message(left, Message(kind, payload))
    message, _read = recv_message(right)
    assert message.kind == kind
    return message


class TestFrameCodec:
    def test_encode_decode_identity(self):
        message = Message("probe", {"values": [1, 2.5, "three"], "flag": True})
        frame = encode_frame(message)
        decoded, consumed = decode_frame(frame)
        assert consumed == len(frame)
        assert decoded == message

    def test_decode_rejects_bad_magic(self):
        frame = bytearray(encode_frame(Message("probe")))
        frame[:4] = b"XXXX"
        with pytest.raises(FrameError):
            decode_frame(bytes(frame))

    def test_decode_rejects_foreign_version(self):
        frame = encode_frame(Message("probe"), version=WIRE_VERSION + 1)
        with pytest.raises(VersionMismatch):
            decode_frame(frame)

    def test_decode_short_buffer_is_truncated(self):
        frame = encode_frame(Message("probe", {"n": 17}))
        with pytest.raises(TruncatedFrame):
            decode_frame(frame[: HEADER.size - 1])
        with pytest.raises(TruncatedFrame):
            decode_frame(frame[:-1])


class TestArrayEdgeCases:
    """The v2 array fast paths must hold at every shape/layout boundary."""

    def _roundtrip_array(self, arr):
        frame = encode_frame(Message("payload", {"arr": arr}))
        decoded, consumed = decode_frame(frame)
        assert consumed == len(frame)
        return decoded["arr"]

    def test_oob_array_roundtrips_bit_for_bit(self):
        arr = np.arange(ARRAY_OOB_BYTES, dtype=np.float64)  # well over OOB
        back = self._roundtrip_array(arr)
        assert back.dtype == arr.dtype and back.shape == arr.shape
        assert np.array_equal(back, arr)

    def test_fortran_order_array_roundtrips(self):
        arr = np.asfortranarray(
            np.arange(64 * 64, dtype=np.float64).reshape(64, 64)
        )
        assert arr.flags.f_contiguous and not arr.flags.c_contiguous
        back = self._roundtrip_array(arr)
        assert np.array_equal(back, arr)
        assert back.flags.f_contiguous

    def test_non_contiguous_array_roundtrips(self):
        base = np.arange(64 * 128, dtype=np.float64).reshape(64, 128)
        arr = base[:, ::2]  # neither C- nor F-contiguous, still > OOB size
        assert not arr.flags.c_contiguous and not arr.flags.f_contiguous
        back = self._roundtrip_array(arr)
        assert np.array_equal(back, arr)

    def test_zero_length_arrays_roundtrip(self):
        for arr in (np.empty((0,), dtype=np.float64),
                    np.zeros((0, 3), dtype=np.int32)):
            back = self._roundtrip_array(arr)
            assert back.dtype == arr.dtype
            assert back.shape == arr.shape

    def test_small_array_stays_in_band(self):
        # Sub-OOB arrays must not spend buffer-table entries: the whole
        # frame is the two metadata segments, no buffer section.
        arr = np.arange(4, dtype=np.float64)
        frame = encode_frame(Message("payload", {"arr": arr}))
        _flags, _kind_len, n_entries, _table_len, _meta_len = (
            V2_HEADER.unpack_from(frame, PREFIX.size)
        )
        assert n_entries == 0
        assert np.array_equal(decode_frame(frame)[0]["arr"], arr)

    def test_metadata_over_frame_bound_is_frame_error(self):
        # A header announcing metadata past MAX_FRAME_BYTES is corruption,
        # not a giant payload: FrameError before any allocation happens.
        bad = PREFIX.pack(MAGIC, WIRE_VERSION) + V2_HEADER.pack(
            0, 5, 0, 0, MAX_FRAME_BYTES
        )
        with pytest.raises(FrameError) as err:
            decode_frame(bad)
        assert not isinstance(err.value, TruncatedFrame)


class TestSocketPaths:
    def test_inference_request_roundtrip_bit_for_bit(self, pair):
        config = spikestream_config(batch_size=1, timesteps=2, seed=11)
        request = InferenceRequest(
            mode="statistical", config=config, group_key=("stat", 11),
            fingerprint="fp-test", frames_count=0, batch_size=1, seed=11,
            timesteps=2,
        )
        message = _roundtrip(pair, "batch", batch_id=1,
                             requests=[request_to_wire(request)])
        rebuilt = request_from_wire(message["requests"][0])
        assert rebuilt.id == request.id
        assert rebuilt.config == config
        assert rebuilt.fingerprint == request.fingerprint
        assert rebuilt.seed == request.seed
        assert rebuilt.mode == request.mode
        # The future never crosses the wire: the rebuilt one is fresh.
        assert rebuilt.future is not request.future
        assert not rebuilt.future.done()

    def test_plan_row_roundtrip(self, pair):
        row = PlanRow(index=3, params={"stream_length": 16},
                      row={"speedup": 2.5, "label": "x"}, cached=False)
        message = _roundtrip(pair, "plan_row", index=row.index, row=row)
        assert message["row"] == row

    def test_inference_result_roundtrip_bit_for_bit(self, pair):
        config = spikestream_config(batch_size=1, timesteps=1, seed=13)
        with Session() as session:
            result = session.run_inference(config, batch_size=1, seed=13)
        message = _roundtrip(pair, "results", batch_id=2,
                             results=[{"id": 1, "result": result}])
        shipped = message["results"][0]["result"]
        assert shipped.identical_to(result)

    def test_clean_eof_between_frames_is_connection_closed(self, pair):
        left, right = pair
        send_message(left, Message("probe"))
        recv_message(right)
        left.close()
        with pytest.raises(ConnectionClosed):
            recv_message(right)

    def test_eof_mid_frame_is_truncated(self, pair):
        left, right = pair
        frame = encode_frame(Message("probe", {"blob": b"x" * 4096}))
        left.sendall(frame[: len(frame) // 2])
        left.close()
        with pytest.raises(TruncatedFrame):
            recv_message(right)

    def test_version_mismatch_over_the_wire(self, pair):
        left, right = pair
        left.sendall(encode_frame(Message("probe"), version=WIRE_VERSION + 7))
        with pytest.raises(VersionMismatch):
            recv_message(right)

    def test_v1_peer_rejected_by_v2_reader(self, pair):
        # Both generations put the version right after the magic, so a v1
        # frame hitting a v2 reader fails the handshake cleanly instead of
        # being misparsed as lengths.
        left, right = pair
        left.sendall(encode_frame_v1(Message("probe", {"n": 1})))
        with pytest.raises(VersionMismatch):
            recv_message(right)

    def test_v2_frame_rejected_by_v1_decoder(self, pair):
        left, right = pair
        frame = encode_frame(Message("probe", {"n": 1}))
        left.sendall(frame)
        received = right.recv(len(frame), socket.MSG_WAITALL)
        with pytest.raises(VersionMismatch):
            decode_frame_v1(received)

    def test_eof_inside_oob_buffer_section_is_truncated(self, pair):
        # The peer dies after the metadata but mid-way through the raw
        # buffer section; the reader must surface TruncatedFrame, never
        # block waiting for bytes that cannot come.
        left, right = pair
        arr = np.arange(ARRAY_OOB_BYTES, dtype=np.float64)
        frame = encode_frame(Message("payload", {"arr": arr}))
        left.sendall(frame[: len(frame) - arr.nbytes // 2])
        left.close()
        with pytest.raises(TruncatedFrame):
            recv_message(right)

    def test_metadata_over_frame_bound_over_the_wire(self, pair):
        left, right = pair
        left.sendall(
            PREFIX.pack(MAGIC, WIRE_VERSION)
            + V2_HEADER.pack(0, 5, 0, 0, MAX_FRAME_BYTES)
        )
        with pytest.raises(FrameError):
            recv_message(right)


class TestFramedConnection:
    def test_byte_accounting_both_directions(self, pair):
        left, right = pair
        a, b = FramedConnection(left), FramedConnection(right)
        sent = a.send("probe", n=1)
        message = b.recv()
        assert message.kind == "probe"
        assert a.bytes_sent == sent == b.bytes_received
        assert a.bytes_received == 0

    def test_sending_flag_covers_a_blocked_send(self, pair):
        # A liveness monitor must be able to tell "this link is busy
        # moving a huge frame" from "the peer went quiet": `sending` stays
        # true for the whole of send(), including the socket write blocked
        # on a full buffer.
        left, right = pair
        left.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 8192)
        a, b = FramedConnection(left), FramedConnection(right)
        arr = np.arange(1 << 19, dtype=np.float64)  # 4 MB >> both buffers
        assert not a.sending
        pusher = threading.Thread(
            target=a.send, args=("batch",), kwargs={"payload": arr},
            daemon=True,
        )
        pusher.start()
        deadline = time.monotonic() + 10.0
        while not a.sending and time.monotonic() < deadline:
            time.sleep(0.001)
        assert a.sending  # parked mid-write; the receiver hasn't read yet
        message = b.recv()
        pusher.join(timeout=10.0)
        assert not pusher.is_alive()
        assert not a.sending
        assert np.array_equal(message["payload"], arr)

    def test_concurrent_senders_keep_frames_atomic(self, pair):
        left, right = pair
        a, b = FramedConnection(left), FramedConnection(right)
        per_thread, threads = 25, 4

        def blast(tag):
            for index in range(per_thread):
                a.send("burst", tag=tag, index=index, pad=b"p" * 512)

        senders = [threading.Thread(target=blast, args=(t,)) for t in range(threads)]
        for thread in senders:
            thread.start()
        received = [b.recv() for _ in range(per_thread * threads)]
        for thread in senders:
            thread.join()
        by_tag = {}
        for message in received:
            assert message.kind == "burst"
            by_tag.setdefault(message["tag"], []).append(message["index"])
        # Per-sender order is preserved; frames never interleave mid-frame.
        assert all(indices == sorted(indices) for indices in by_tag.values())

    def test_close_is_idempotent_and_unblocks_peer(self, pair):
        left, right = pair
        a, b = FramedConnection(left), FramedConnection(right)
        a.close()
        a.close()
        assert a.closed
        with pytest.raises(FrameError):
            b.recv()
