"""Credit-based pipelined dispatch: window enforcement and rescue depth.

A worker advertises a *credit window* at registration; the coordinator may
keep at most that many batches outstanding on the link.  Two invariants:

* the window is never overrun, however deep the queue backs up;
* a worker dying with a **full window** of outstanding batches loses
  nothing — every in-flight request is re-dispatched and resolves
  bit-for-bit identical to a direct :class:`~repro.session.Session` call.
"""

import threading
import time

import pytest

from repro.config import spikestream_config
from repro.net import Coordinator, NetWorker, spawn_worker
from repro.session import Session


@pytest.fixture
def config():
    return spikestream_config(batch_size=1, timesteps=1, seed=53)


def _start_inline_worker(address, **kwargs):
    worker = NetWorker(address, **kwargs)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


def _wait(predicate, timeout=30.0, interval=0.02):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestCreditWindow:
    def test_inflight_never_exceeds_advertised_credit(self, config):
        credit = 2
        coordinator = Coordinator(max_batch=1, max_wait_ms=1)
        peak = [0]
        stop = threading.Event()

        def sample():
            while not stop.is_set():
                with coordinator._net_lock:
                    inflight = sum(
                        len(link.inflight)
                        for link in coordinator._links.values()
                    )
                peak[0] = max(peak[0], inflight)
                time.sleep(0.001)

        sampler = threading.Thread(target=sample, daemon=True)
        sampler.start()
        worker = None
        try:
            worker, thread = _start_inline_worker(
                coordinator.address, worker_id="credited", credit=credit
            )
            assert coordinator.wait_for_workers(1, timeout=30)
            futures = [
                coordinator.submit_statistical(config=config, seed=53 + index)
                for index in range(8)
            ]
            results = [future.result(timeout=120) for future in futures]
            stats = coordinator.stats()
        finally:
            stop.set()
            sampler.join(timeout=5)
            coordinator.close()
            if worker is not None:
                thread.join(timeout=10)

        assert len(results) == 8
        # max_batch=1 forces one batch per request: 8 dispatches through a
        # window of 2 must pipeline, never overrun.
        assert stats["net.dispatches"] >= 8
        assert peak[0] <= credit

    def test_worker_dying_with_full_window_loses_no_future(self, config):
        credit = 2
        coordinator = Coordinator(
            max_batch=2, max_wait_ms=5, liveness_timeout_s=1.0,
            default_deadline_s=120.0,
        )
        process = None
        healthy = None
        try:
            # The doomed worker takes its first batch, dies mid-execution;
            # with credit=2 the coordinator has usually pushed the next
            # batch onto the link already — both must be rescued.
            process = spawn_worker(
                coordinator.address, worker_id="doomed", credit=credit,
                chaos_exit_after=0,
            )
            assert coordinator.wait_for_workers(1, timeout=60)
            futures = [
                coordinator.submit_statistical(config=config, seed=53 + index)
                for index in range(8)
            ]
            assert _wait(lambda: coordinator.live_workers() == 0), (
                "the chaos worker should have died on its first batch"
            )
            healthy, healthy_thread = _start_inline_worker(
                coordinator.address, worker_id="healthy", credit=credit
            )
            results = [future.result(timeout=120) for future in futures]
            stats = coordinator.stats()
        finally:
            coordinator.close()
            if process is not None:
                process.wait(timeout=30)
            if healthy is not None:
                healthy_thread.join(timeout=10)

        assert stats["net.workers_lost"] >= 1
        assert stats["net.rescues"] >= 1
        assert stats["net.redispatched_requests"] >= 1
        with Session() as reference:
            for index, result in enumerate(results):
                direct = reference.run_inference(config, batch_size=1,
                                                 seed=53 + index)
                assert result.identical_to(direct), (
                    f"rescued request {index} diverges from the direct call"
                )
