"""Distributed tracing survives chaos: rescue lineage stitches into traces.

A worker killed mid-batch (``chaos_exit_after``) forces a re-dispatch; the
exported trace must show **both** dispatch spans — the doomed one finished
with ``status="rescued"`` and the replacement carrying the doomed span's id
as a follow-from — with every span finished and the tree well-nested.
This is the end-to-end proof of ISSUE satellite 4.
"""

import io
import threading
import time

import pytest

from repro.config import spikestream_config
from repro.net import Coordinator, NetWorker, spawn_worker
from repro.obs import Tracer, read_jsonl, to_chrome, to_jsonl, well_nested


@pytest.fixture
def config():
    return spikestream_config(batch_size=1, timesteps=1, seed=71)


def _start_inline_worker(address, **kwargs):
    worker = NetWorker(address, **kwargs)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


def _wait(predicate, timeout=30.0, interval=0.02):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def test_rescued_trace_links_original_dispatch_as_follow_from(config):
    coordinator = Coordinator(
        max_batch=4, max_wait_ms=10, liveness_timeout_s=1.0,
        default_deadline_s=90.0, tracer=Tracer(enabled=True),
    )
    process = None
    healthy = None
    try:
        process = spawn_worker(
            coordinator.address, worker_id="doomed", chaos_exit_after=0
        )
        assert coordinator.wait_for_workers(1, timeout=60)
        futures = [
            coordinator.submit_statistical(config=config, seed=71 + index)
            for index in range(4)
        ]
        assert _wait(lambda: coordinator.live_workers() == 0), (
            "the chaos worker should have died on its first batch"
        )
        healthy, healthy_thread = _start_inline_worker(
            coordinator.address, worker_id="healthy"
        )
        for future in futures:
            assert future.result(timeout=60) is not None
        traces = coordinator.tracer.completed()
        stats = coordinator.stats()
    finally:
        coordinator.close()
        if process is not None:
            process.wait(timeout=30)
        if healthy is not None:
            healthy_thread.join(timeout=10)

    assert stats["net.rescues"] >= 1
    assert len(traces) == 4, "one completed trace per submitted request"

    rescued_traces = 0
    for trace in traces:
        # Structural soundness: one root, everything nested, no orphans,
        # every follow-from resolvable -> no unfinished/lost spans.
        error = well_nested(trace)
        assert error is None, f"{error}\n{trace['spans']}"
        spans = trace["spans"]
        names = [span["name"] for span in spans]
        assert names.count("request") == 1
        assert "queue_wait" in names
        assert "worker_execute" in names, (
            "the healthy worker's remote spans must stitch into the trace"
        )

        dispatches = [s for s in spans if s["name"] == "dispatch"]
        doomed = [s for s in dispatches if s["status"] == "rescued"]
        if not doomed:
            continue
        rescued_traces += 1
        assert len(dispatches) >= 2, (
            "a rescued request needs the original AND the re-dispatch span"
        )
        rescuers = [s for s in dispatches if s["follows"]]
        assert rescuers, "the re-dispatch must follow from the doomed span"
        doomed_ids = {s["span_id"] for s in doomed}
        for rescuer in rescuers:
            assert doomed_ids.intersection(rescuer["follows"])

    assert rescued_traces >= 1, (
        "the batch died mid-flight: at least one trace must show the rescue"
    )

    # The Chrome export must carry the lineage as flow events and stay
    # loadable (serializable as-is, ph "s"/"f" pairs by shared id).
    document = to_chrome(traces)
    flows_open = [e for e in document["traceEvents"] if e["ph"] == "s"]
    flows_close = [e for e in document["traceEvents"] if e["ph"] == "f"]
    assert len(flows_open) >= 1
    assert {e["id"] for e in flows_open} == {e["id"] for e in flows_close}

    # And the JSONL round-trip preserves every span bit-for-bit.
    buffer = io.StringIO()
    to_jsonl(traces, buffer)
    buffer.seek(0)
    recovered = read_jsonl(buffer)
    assert sorted(t["trace_id"] for t in recovered) == sorted(
        t["trace_id"] for t in traces
    )
    for trace in recovered:
        assert well_nested(trace) is None
