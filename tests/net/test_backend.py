"""NetworkShardedBackend: plan fan-out over worker processes, bit-for-bit.

The ``net`` backend keeps :class:`~repro.backends.ShardedBackend`'s whole
contract — deterministic partition, streamed rows, killed-shard rescue,
cache merge-back — while each shard runs in a real worker process on the
:mod:`repro.net` wire.  Rows must equal a serial run exactly, and a shard
process that dies mid-plan must forfeit its points to the local rescue
path without losing a single row.
"""

import pytest

from repro.backends import make_backend
from repro.net import NetworkShardedBackend
from repro.session import Session


def _rows(session, backend, shards=2):
    return sorted(
        session.run_plan("firing_rate", backend=backend, shards=shards,
                         batch_size=2, seed=2025),
        key=lambda row: row.index,
    )


class TestNetworkBackend:
    def test_make_backend_builds_net(self):
        backend = make_backend("net", shards=3)
        assert isinstance(backend, NetworkShardedBackend)
        assert backend.shards == 3
        assert backend.name == "net"

    def test_unknown_backend_message_names_net(self):
        with pytest.raises(ValueError, match="net"):
            make_backend("bogus", jobs=2)

    def test_rows_match_serial_bit_for_bit(self):
        with Session() as session:
            serial = _rows(session, "serial")
        with Session() as session:
            distributed = _rows(session, "net")
        assert serial == distributed

    def test_partition_is_inherited_and_deterministic(self):
        backend = NetworkShardedBackend(shards=3)
        assert backend.partition(7) == [[0, 3, 6], [1, 4], [2, 5]]
