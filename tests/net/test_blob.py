"""Content-addressed blob protocol: dedup, miss resolution, failure paths.

Arrays at or above a connection's blob threshold cross the wire as content
digests; the receiver materializes them from its :class:`BlobCache` and
asks the peer (``__need_blob__`` / ``__blob__``) only on a miss.  The
contract under test: payloads stay bit-for-bit, repeated sends of the same
content cost digest-sized frames, the miss protocol resolves under the
receive lock without deadlocking, and a digest nobody can serve is a clean
:class:`FrameError` — never a hang.
"""

import socket
import threading

import numpy as np
import pytest

from repro.net.blob import BlobCache, array_digest, array_wire_view
from repro.net.framing import FrameError, FramedConnection

#: Low threshold so test arrays (a few KB) take the blob path.
THRESHOLD = 1 << 12


@pytest.fixture
def pair():
    left, right = socket.socketpair()
    try:
        yield left, right
    finally:
        left.close()
        right.close()


def _connections(pair, *, sender_cache=True, receiver_cache=True):
    left, right = pair
    sender = FramedConnection(
        left,
        blob_cache=BlobCache() if sender_cache else None,
        blob_threshold=THRESHOLD,
    )
    receiver = FramedConnection(
        right,
        blob_cache=BlobCache() if receiver_cache else None,
        blob_threshold=THRESHOLD,
    )
    return sender, receiver


def _serve_blobs(connection):
    """Pump ``connection.recv()`` in a daemon thread so the blob-miss
    protocol on the other side gets its ``__need_blob__`` answered; returns
    the first *application* message received (via a one-slot list)."""
    slot = []

    def pump():
        try:
            slot.append(connection.recv())
        except FrameError:
            pass  # socket torn down at test exit

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    return slot, thread


class TestBlobCache:
    def test_digest_is_content_addressed(self):
        a = np.arange(1024, dtype=np.float64)
        b = np.arange(1024, dtype=np.float64)
        c = np.arange(1024, dtype=np.float32)
        assert array_digest(a) == array_digest(b)
        assert array_digest(a) != array_digest(c)

    def test_register_get_contains(self):
        cache = BlobCache()
        arr = np.arange(256, dtype=np.float64)
        digest = array_digest(arr)
        assert digest not in cache
        cache.register(digest, array_wire_view(arr)[0])
        assert digest in cache
        assert bytes(cache.get(digest)) == arr.tobytes()
        assert len(cache) == 1


class TestBlobProtocol:
    def test_miss_then_hit_with_byte_savings(self, pair):
        sender, receiver = _connections(pair)
        arr = np.arange(THRESHOLD // 8 * 2, dtype=np.float64)  # 2x threshold

        sent_sizes = []
        received = []

        def consume():
            received.append(receiver.recv())
            received.append(receiver.recv())
            receiver.send("done")

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        sent_sizes.append(sender.send("data", arr=arr))
        sent_sizes.append(sender.send("data", arr=arr))
        # The sender's recv absorbs __need_blob__, answers it, then returns
        # the receiver's "done" — proving wire traffic never surfaces.
        assert sender.recv().kind == "done"
        consumer.join(timeout=30)
        assert not consumer.is_alive()

        for message in received:
            assert np.array_equal(message["arr"], arr)
        # Both frames carried a digest, not the bytes.
        assert all(size < arr.nbytes for size in sent_sizes)
        stats = receiver.blob_stats
        assert stats["blob_misses"] == 1
        assert stats["blob_hits"] == 1
        assert stats["blob_bytes_saved"] == arr.nbytes
        # The actual bytes crossed exactly once, as a __blob__ frame.
        blob_bytes = receiver.bytes_by_kind()["received"].get("__blob__", 0)
        assert blob_bytes >= arr.nbytes

    def test_receiver_without_cache_is_frame_error(self, pair):
        sender, receiver = _connections(pair, receiver_cache=False)
        arr = np.arange(THRESHOLD, dtype=np.float64)
        sender.send("data", arr=arr)
        with pytest.raises(FrameError):
            receiver.recv()

    def test_unservable_digest_is_frame_error_not_deadlock(self, pair):
        sender, receiver = _connections(pair)
        arr = np.arange(THRESHOLD, dtype=np.float64)
        sender.send("data", arr=arr)
        # Simulate the sender evicting the blob before the miss arrives:
        # its answer is found=False and the receiver must error out.
        sender._blob_cache = BlobCache()
        _slot, _thread = _serve_blobs(sender)
        with pytest.raises(FrameError):
            receiver.recv()
