"""Coordinator + workers as one cluster: equivalence, replication, telemetry.

The distributed tier must be invisible to callers: every response served
through a :class:`~repro.net.coordinator.Coordinator` and its remote
workers is bit-for-bit identical to the direct
:class:`~repro.session.Session` call, results replicate cluster-wide so a
repeat request short-circuits without touching a worker, and the ``net.*``
telemetry surface is complete.
"""

import threading
import time

import pytest

from repro.config import spikestream_config
from repro.eval.sweeps import functional_network
from repro.net import Coordinator, NetWorker, ReplicatedResultStore
from repro.session import Session
from repro.snn.datasets import SyntheticCIFAR10
from repro.types import TensorShape


@pytest.fixture
def config():
    return spikestream_config(batch_size=1, timesteps=1, seed=71)


def _start_inline_worker(address, **kwargs):
    worker = NetWorker(address, **kwargs)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


class TestClusterEquivalence:
    def test_mixed_mode_requests_match_direct_session_calls(self, config):
        network = functional_network(71)
        frames, _ = SyntheticCIFAR10(
            seed=71, image_shape=TensorShape(16, 16, 3)
        ).sample(4)
        coordinator = Coordinator(max_batch=8, max_wait_ms=10)
        workers = []
        try:
            workers = [
                _start_inline_worker(coordinator.address, worker_id=f"w{i}")
                for i in range(2)
            ]
            assert coordinator.wait_for_workers(2, timeout=30)
            statistical = [
                coordinator.submit_statistical(config=config, seed=71 + index)
                for index in range(4)
            ]
            functional = [
                coordinator.submit_functional(
                    network, frames[index:index + 1], config=config
                )
                for index in range(4)
            ]
            stat_results = [f.result(timeout=120) for f in statistical]
            func_results = [f.result(timeout=120) for f in functional]
        finally:
            coordinator.close()
            for _worker, thread in workers:
                thread.join(timeout=10)

        with Session() as reference:
            for index, result in enumerate(stat_results):
                direct = reference.run_inference(config, batch_size=1,
                                                 seed=71 + index)
                assert result.identical_to(direct)
            for index, result in enumerate(func_results):
                direct = reference.run_functional(
                    network, frames[index:index + 1], config=config
                )
                assert result.identical_to(direct)

    def test_repeat_request_short_circuits_without_second_dispatch(self, config):
        coordinator = Coordinator(max_batch=4, max_wait_ms=5)
        workers = []
        try:
            workers = [
                _start_inline_worker(coordinator.address, worker_id="solo")
            ]
            assert coordinator.wait_for_workers(1, timeout=30)
            first = coordinator.submit_statistical(config=config, seed=88)
            first_result = first.result(timeout=120)
            # Same parameters again: the replicated store already holds it.
            second = coordinator.submit_statistical(config=config, seed=88)
            second_result = second.result(timeout=120)
            stats = coordinator.stats()
        finally:
            coordinator.close()
            for _worker, thread in workers:
                thread.join(timeout=10)

        assert second_result.identical_to(first_result)
        # Either the admission store check or the dispatch-time check caught
        # it; both count as "no second engine pass".
        assert (
            stats["serve.store_short_circuits"]
            + stats["net.dispatch_short_circuits"]
        ) >= 1

    def test_worker_local_store_hit_after_replication(self, config):
        coordinator = Coordinator(max_batch=4, max_wait_ms=5)
        workers = []
        try:
            workers = [
                _start_inline_worker(coordinator.address, worker_id=f"r{i}")
                for i in range(2)
            ]
            assert coordinator.wait_for_workers(2, timeout=30)
            future = coordinator.submit_statistical(config=config, seed=97)
            future.result(timeout=120)
            stats = coordinator.stats()
        finally:
            coordinator.close()
            for _worker, thread in workers:
                thread.join(timeout=10)
        # The computed result was broadcast to every live worker.
        assert stats["net.store_replications"] >= 1


class TestTelemetrySurface:
    def test_stats_snapshot_declares_the_net_surface(self):
        coordinator = Coordinator()
        try:
            stats = coordinator.stats()
        finally:
            coordinator.close(drain=False)
        for key in (
            "net.dispatches", "net.results", "net.rescues",
            "net.redispatched_requests", "net.dispatch_short_circuits",
            "net.heartbeats", "net.store_replications",
            "net.workers_registered", "net.workers_lost", "net.workers",
        ):
            assert key in stats, f"telemetry surface is missing {key}"

    def test_workers_detail_probe_reports_links(self, config):
        coordinator = Coordinator(max_batch=2, max_wait_ms=5)
        workers = []
        try:
            workers = [
                _start_inline_worker(coordinator.address, worker_id="probe-w")
            ]
            assert coordinator.wait_for_workers(1, timeout=30)
            coordinator.submit_statistical(config=config, seed=3).result(
                timeout=120
            )
            detail = coordinator.stats()["net.workers_detail"]
            bytes_probe = coordinator.stats()["net.bytes"]
        finally:
            coordinator.close()
            for _worker, thread in workers:
                thread.join(timeout=10)
        assert "probe-w" in detail
        assert detail["probe-w"]["dispatches"] >= 1
        assert detail["probe-w"]["bytes_sent"] > 0
        assert bytes_probe["sent"] > 0 and bytes_probe["received"] > 0


class TestReplicatedStore:
    def test_put_publishes_and_apply_does_not(self):
        published = []
        with Session() as session:
            store = ReplicatedResultStore(
                session.store, publish=lambda fp, result: published.append(fp)
            )
            store.put("fp-a", {"row": 1})
            assert published == ["fp-a"]
            # Replication traffic applies without echoing back out.
            store.apply("fp-b", {"row": 2})
            assert published == ["fp-a"]
            assert store.get("fp-a") == {"row": 1}
            assert store.get("fp-b") == {"row": 2}
            stats = store.stats()
            assert stats["replication_published"] == 1
            assert stats["replication_applied"] == 1


class TestLivenessUnderTransfer:
    def test_reap_defers_to_a_link_mid_transfer(self):
        # Regression: a multi-megabyte (possibly compressed) __blob__
        # answer keeps the link thread inside send() for longer than the
        # liveness window, during which it cannot read the worker's
        # perfectly punctual heartbeats off the socket.  The monitor must
        # treat the in-flight transfer as proof of life instead of
        # reaping a healthy worker mid-frame — which tears the stream on
        # the worker side (TruncatedFrame) and, with no worker left,
        # strands every future.
        from repro.net.coordinator import _WorkerLink

        class _MidTransfer:
            sending = True

            def close(self):
                pass

        coordinator = Coordinator(
            max_batch=1, max_wait_ms=1, liveness_timeout_s=0.05
        )
        try:
            connection = _MidTransfer()
            link = _WorkerLink("busy", connection)
            with coordinator._net_lock:
                link.last_heartbeat = time.time() - 60.0
                coordinator._links["busy"] = link
            coordinator._reap_dead()
            assert link.alive
            # the stamp was refreshed: the thread gets a full liveness
            # window to drain queued heartbeats once the send completes
            assert link.last_heartbeat > time.time() - 5.0
            # a genuinely silent worker is still reaped once idle
            connection.sending = False
            with coordinator._net_lock:
                link.last_heartbeat = time.time() - 60.0
            coordinator._reap_dead()
            assert not link.alive
        finally:
            with coordinator._net_lock:
                coordinator._links.pop("busy", None)
            coordinator.close(drain=False)
