"""Tier-1 wiring of the tools/smoke.py distributed-serving (cluster) check.

A lock-traced :class:`~repro.net.coordinator.Coordinator` with two real
worker OS processes — one rigged to die mid-batch — serves two waves of
mixed-mode requests; the killed worker's in-flight batch must be rescued,
no future lost, and every response bit-for-bit identical to a direct
:class:`~repro.session.Session` call.  The check itself lives in
``tools/smoke.py`` so the standalone smoke script and this
``smoke``-marked test can never drift.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_SMOKE_PATH = Path(__file__).resolve().parents[2] / "tools" / "smoke.py"


def _load_smoke():
    spec = importlib.util.spec_from_file_location("repro_tools_smoke", _SMOKE_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("repro_tools_smoke", module)
    spec.loader.exec_module(module)
    return module


@pytest.mark.smoke
def test_distributed_cluster_rescues_and_matches_direct_session_calls():
    smoke = _load_smoke()
    smoke.cluster_check()
