"""Runtime lock tracing: order cycles, guarded state, and the live serve path.

The deterministic half builds small lock graphs by hand and asserts the
tracer's verdicts; the ``smoke``-marked half imports the shared checks
from ``tools/smoke.py`` (the same code CI's smoke gate runs): the full
static rule set must be clean on the repository, and a lock-traced
:class:`~repro.serve.server.InferenceServer` must survive 32 concurrent
mixed-mode requests with no ordering or guard violations.
"""

from __future__ import annotations

import importlib.util
import threading
from pathlib import Path

import pytest

from repro.lint import (
    GuardedMapping,
    LockOrderError,
    LockTracer,
    UnguardedAccessError,
    instrument_server,
)

_SMOKE_PATH = Path(__file__).resolve().parents[2] / "tools" / "smoke.py"


def _load_smoke():
    spec = importlib.util.spec_from_file_location("repro_tools_smoke_lint", _SMOKE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def tracer():
    return LockTracer()


# --------------------------------------------------------------------------- #
# Lock-order detection
# --------------------------------------------------------------------------- #
def test_consistent_order_is_clean(tracer):
    a, b = tracer.lock("a"), tracer.lock("b")
    for _ in range(3):
        with a:
            with b:
                pass
    assert tracer.edges() == {"a": ("b",)}
    tracer.assert_clean()


def test_inverted_lock_pair_raises(tracer):
    a, b = tracer.lock("a"), tracer.lock("b")
    with a:
        with b:
            pass
    with pytest.raises(LockOrderError, match="cycle"):
        with b:
            with a:
                pass
    assert tracer.violations


def test_inverted_pair_across_threads_detected():
    # The graph is global: thread 1 takes a -> b, thread 2 takes b -> a.
    tracer = LockTracer(raise_on_cycle=False)
    a, b = tracer.lock("a"), tracer.lock("b")

    def first_order():
        with a:
            with b:
                pass

    worker = threading.Thread(target=first_order)
    worker.start()
    worker.join()
    with b:
        with a:
            pass
    assert tracer.violations
    with pytest.raises(AssertionError, match="cycle"):
        tracer.assert_clean()


def test_cycle_detection_releases_the_inner_lock(tracer):
    # After a rejected acquisition the lock must not be left held.
    a, b = tracer.lock("a"), tracer.lock("b")
    with a:
        with b:
            pass
    with pytest.raises(LockOrderError):
        with b:
            with a:
                pass
    # Both locks are free again: a plain valid acquisition succeeds.
    with a:
        pass


def test_three_lock_cycle_detected(tracer):
    a, b, c = tracer.lock("a"), tracer.lock("b"), tracer.lock("c")
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with pytest.raises(LockOrderError, match="cycle"):
        with c:
            with a:
                pass


def test_reentrant_acquisition_records_no_self_edge(tracer):
    lock = tracer.rlock("r")
    with lock:
        with lock:
            pass
    assert "r" not in tracer.edges().get("r", ())
    tracer.assert_clean()


def test_condition_on_traced_lock_round_trips(tracer):
    import time

    lock = tracer.lock("cond")
    condition = threading.Condition(lock)
    released = []

    def waiter():
        with condition:
            released.append(condition.wait(timeout=5))

    worker = threading.Thread(target=waiter)
    worker.start()
    # Keep notifying until the waiter wakes: a single notify could land
    # before the waiter enters wait().
    deadline = time.monotonic() + 5
    while worker.is_alive() and time.monotonic() < deadline:
        with condition:
            condition.notify_all()
        time.sleep(0.01)
    worker.join(timeout=5)
    assert not worker.is_alive()
    assert released == [True]
    tracer.assert_clean()
    assert tracer.acquire_count >= 2


# --------------------------------------------------------------------------- #
# Guarded shared state
# --------------------------------------------------------------------------- #
def test_guarded_mapping_allows_access_under_lock(tracer):
    lock = tracer.rlock("store")
    guarded = tracer.guard_mapping({}, lock, "store._memory")
    with lock:
        guarded["key"] = 1
        assert guarded["key"] == 1
        assert "key" in guarded
        assert len(guarded) == 1
        assert list(guarded.items()) == [("key", 1)]
    tracer.assert_clean()


def test_guarded_mapping_rejects_unguarded_access(tracer):
    lock = tracer.rlock("store")
    guarded = tracer.guard_mapping({"key": 1}, lock, "store._memory")
    with pytest.raises(UnguardedAccessError, match="store._memory"):
        guarded["key"]
    # Recorded on the tracer too, so a swallowed exception still fails.
    with pytest.raises(AssertionError):
        tracer.assert_clean()


def test_guarded_mapping_rejects_unguarded_method_call(tracer):
    lock = tracer.rlock("store")
    guarded = tracer.guard_mapping({"key": 1}, lock, "store._memory")
    with pytest.raises(UnguardedAccessError):
        guarded.get("key")
    assert isinstance(guarded, GuardedMapping)


def test_guarded_mapping_is_per_thread(tracer):
    # The *holder* may access; another thread without the lock may not.
    lock = tracer.rlock("store")
    guarded = tracer.guard_mapping({}, lock, "store._memory")
    outcome = {}

    def intruder():
        try:
            guarded["key"] = 2
            outcome["raised"] = False
        except UnguardedAccessError:
            outcome["raised"] = True

    with lock:
        guarded["key"] = 1
        worker = threading.Thread(target=intruder)
        worker.start()
        worker.join()
    assert outcome["raised"] is True


# --------------------------------------------------------------------------- #
# The real serve path, lock-traced (shared with tools/smoke.py)
# --------------------------------------------------------------------------- #
@pytest.fixture
def traced_server():
    """A live InferenceServer with every lock traced (the test fixture the
    issue asks for: serve tests opt into lock tracing by depending on this)."""
    from repro.serve import InferenceServer

    server = InferenceServer(workers=2, max_batch=8, max_wait_ms=20)
    tracer = instrument_server(server)
    try:
        yield server, tracer
    finally:
        server.close()


@pytest.mark.smoke
def test_lint_repo_is_clean():
    _load_smoke().lint_repo_check()


@pytest.mark.smoke
def test_locktrace_serve_32_concurrent_requests():
    _load_smoke().locktrace_serve_check()


def test_traced_server_fixture_stays_clean(traced_server):
    from repro.config import spikestream_config

    server, tracer = traced_server
    config = spikestream_config(batch_size=1, timesteps=1, seed=53)
    futures = [
        server.submit_statistical(config=config, batch_size=1, seed=53 + index)
        for index in range(4)
    ]
    for future in futures:
        assert future.result(timeout=120) is not None
    tracer.assert_clean()
    assert tracer.acquire_count > 0
