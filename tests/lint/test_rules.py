"""Every lint rule catches its seeded fixture; suppressions behave.

One fixture under ``tests/lint/fixtures/`` per registered rule, each
seeding at least one violation the rule must report — the proof the rule
would actually fire on a real regression.  The engine-level contracts
(per-line suppression, unused-suppression detection, ``fix_suppressions``
rewriting, registry integrity) are covered here too.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.lint import (
    RULES,
    Rule,
    UNUSED_SUPPRESSION,
    check_project,
    fix_suppressions,
    load_project,
    register,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: rule name -> (fixture file, minimum number of findings it must seed)
FIXTURE_MATRIX = {
    "lock-discipline": ("bad_lock.py", 1),
    "unseeded-rng": ("bad_engine.py", 2),
    "dtype-discipline": ("bad_dtype.py", 2),
    "unpicklable-point": ("bad_point.py", 2),
    "frozen-mutation": ("bad_frozen.py", 3),
    "registry-docs": ("bad_registry.py", 2),
    "mutable-default": ("bad_default.py", 2),
    "all-exports": ("bad_exports.py", 1),
    "socket-discipline": ("bad_socket.py", 5),
    "span-discipline": ("bad_span.py", 3),
}


def test_every_registered_rule_has_a_fixture():
    assert set(FIXTURE_MATRIX) == set(RULES), (
        "every registered rule needs a seeded-violation fixture (and every "
        "fixture a rule)"
    )


@pytest.mark.parametrize("rule_name", sorted(FIXTURE_MATRIX))
def test_rule_catches_its_seeded_violation(rule_name):
    fixture, minimum = FIXTURE_MATRIX[rule_name]
    result = check_project(
        root=FIXTURES, rule_names=[rule_name], paths=(fixture,)
    )
    assert len(result.findings) >= minimum, (
        f"{rule_name} missed its seeded violation in {fixture}"
    )
    assert all(finding.rule == rule_name for finding in result.findings)
    assert all(finding.path == fixture for finding in result.findings)
    assert all(finding.line > 0 for finding in result.findings)


def test_all_exports_flags_unexported_public_def_in_init():
    result = check_project(
        root=FIXTURES, rule_names=["all-exports"], paths=("bad_init",)
    )
    assert any("forgotten" in finding.message for finding in result.findings)


def test_lock_discipline_honors_init_and_locked_suffix():
    result = check_project(
        root=FIXTURES, rule_names=["lock-discipline"], paths=("bad_lock.py",)
    )
    # Exactly the reset() write: __init__ and *_locked writes are exempt.
    assert len(result.findings) == 1
    assert "reset" in result.findings[0].message


def test_suppression_silences_the_finding():
    result = check_project(root=FIXTURES, paths=("suppressed.py",))
    assert result.passed
    assert result.suppressed == 1
    assert result.unused == []


def test_unused_suppression_is_a_finding_on_full_runs():
    result = check_project(root=FIXTURES, paths=("stale.py",))
    assert not result.passed
    assert [finding.rule for finding in result.findings] == [UNUSED_SUPPRESSION]
    assert result.unused == [("stale.py", 3, "mutable-default")]


def test_unused_suppression_skipped_on_restricted_runs():
    # A suppression for a rule that did not run is not evidence of staleness.
    result = check_project(
        root=FIXTURES, rule_names=["all-exports"], paths=("stale.py",)
    )
    assert result.passed


def test_fix_suppressions_rewrites_the_stale_comment(tmp_path):
    target = tmp_path / "stale.py"
    shutil.copy(FIXTURES / "stale.py", target)
    result = check_project(root=tmp_path, paths=("stale.py",))
    assert result.unused
    changed = fix_suppressions(tmp_path, result.unused)
    assert changed == [target]
    assert "lint: disable" not in target.read_text()
    assert check_project(root=tmp_path, paths=("stale.py",)).passed


def test_unknown_rule_name_raises():
    with pytest.raises(KeyError):
        check_project(root=FIXTURES, rule_names=["no-such-rule"])


def test_duplicate_rule_registration_rejected():
    class Imposter(Rule):
        name = "mutable-default"
        description = "duplicate"

    with pytest.raises(ValueError):
        register(Imposter)


def test_project_parses_fixtures_and_reads_suppressions():
    project = load_project(FIXTURES, paths=("suppressed.py", "stale.py"))
    assert {module.rel_path for module in project.modules} == {
        "suppressed.py", "stale.py",
    }
    suppressed = project.by_path["suppressed.py"]
    assert suppressed.suppressions == {4: {"mutable-default"}}


def test_docstring_mention_is_not_a_suppression(tmp_path):
    # The marker inside a *string* must not register: only COMMENT tokens do.
    (tmp_path / "doc.py").write_text(
        '"""Docs showing the syntax: # lint: disable=mutable-default."""\n'
    )
    project = load_project(tmp_path, paths=("doc.py",))
    assert project.by_path["doc.py"].suppressions == {}
    assert check_project(root=tmp_path, paths=("doc.py",), project=project).passed
