"""Seeded violations for the unpicklable-point rule (R4)."""


def module_level_point(task):
    # Allowed: module-level functions pickle fine.
    return {"value": task["seed"]}


def build_specs(SweepSpec, space):
    lambda_spec = SweepSpec(
        name="lambda_sweep",
        space=space,
        # Violation: a lambda point function cannot cross process boundaries.
        point=lambda task: {"value": 0},
    )

    def closure_point(task):
        return {"value": task["seed"]}

    # Violation: closure_point is nested, so it is unpicklable too.
    closure_spec = SweepSpec(name="closure_sweep", space=space, point=closure_point)
    ok_spec = SweepSpec(name="ok_sweep", space=space, point=module_level_point)
    return lambda_spec, closure_spec, ok_spec
