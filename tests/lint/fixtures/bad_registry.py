"""Seeded violations for the registry-docs rule (R6).

There is no README.md beside this fixture, so the registered name is
undocumented; the add() call also omits its description argument.
"""


def _build_scenarios(add):
    # Violations: "ghost_scenario" appears in no README and has no description.
    add("ghost_scenario", "statistical", "fig6")
