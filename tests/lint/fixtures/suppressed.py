"""A suppressed violation: the finding must vanish and count as suppressed."""


def collect(rows=[]):  # lint: disable=mutable-default
    return rows
