"""Seeded violation for the all-exports rule (R8): unexported public def."""

__all__ = []


def forgotten():
    # Violation: public definition in a package __init__ missing from __all__.
    return 1
