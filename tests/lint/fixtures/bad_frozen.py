"""Seeded violations for the frozen-mutation rule (R5)."""


def thaw(array):
    # Violation: re-enables writes on a fingerprint-hashed frozen array.
    array.flags.writeable = True
    return array


def scale_in_place(network):
    weights = network.weights
    # Violation: in-place write to a name bound from .weights.
    weights *= 2.0
    return weights


def poke_element(network):
    weights = network.weights
    # Violation: element write to a name bound from .weights.
    weights[0] = 0.0
    return weights


def scale_copy(network):
    # Allowed: copy first, then mutate the copy.
    scaled = network.weights.copy()
    scaled *= 2.0
    return scaled
