"""Seeded violations for the dtype-discipline rule (R3)."""

import numpy as np


def forward(frames, policy):
    # Violation: the function takes a policy but pins fp64 in its body.
    buffer = np.zeros(len(frames), dtype=np.float64)
    return buffer


def accumulate(rows, dtype=np.float64):
    # The signature default is allowed; the body must use the parameter.
    # Violation: dtype=float ignores the parameter.
    return np.asarray(rows, dtype=float)


def reference_only(frames):
    # Not in scope: no policy/dtype parameter, pinning is intentional here.
    return np.zeros(len(frames), dtype=np.float64)
