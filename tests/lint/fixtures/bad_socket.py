"""Seeded ``socket-discipline`` violations (lint fixture).

Five violations the rule must catch — a local connection with no close
at all, a listener closed only on the happy path (not in a ``finally``),
an instance-attribute socket with no teardown method, and two
partial-I/O drops (a ``sendmsg`` and a ``recv_into`` whose transferred
byte counts are discarded) — plus the clean idioms (``with``,
``finally``, a ``close()`` method, counted scatter-gather I/O) that must
stay silent.
"""

import socket


def leaky_probe(host, port):
    sock = socket.create_connection((host, port))  # seeded violation
    sock.sendall(b"ping")
    return sock.recv(4)


def happy_path_close_only():
    listener = socket.create_server(("127.0.0.1", 0))  # seeded violation
    port = listener.getsockname()[1]
    listener.close()  # an exception above would leak the fd
    return port


class LeakyServer:
    def __init__(self):
        self._listener = socket.create_server(("127.0.0.1", 0))  # seeded violation

    def port(self):
        return self._listener.getsockname()[1]


def clean_context_manager():
    with socket.create_server(("127.0.0.1", 0)) as listener:
        return listener.getsockname()[1]


def clean_finally():
    left, right = socket.socketpair()
    try:
        left.sendall(b"x")
        return right.recv(1)
    finally:
        left.close()
        right.close()


class CleanServer:
    def __init__(self):
        self._listener = socket.create_server(("127.0.0.1", 0))

    def close(self):
        self._listener.close()


def dropped_scatter_gather(sock, segments, view):
    sock.sendmsg(segments)  # seeded violation: partial-write count dropped
    sock.recv_into(view)  # seeded violation: partial-read count dropped


def counted_scatter_gather(sock, segments, view):
    sent = sock.sendmsg(segments)
    got = sock.recv_into(view)
    return sent, got
