"""Seeded violation for the lock-discipline rule (R1)."""

import threading


class TornCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def add(self):
        with self._lock:
            self.count += 1

    def reset(self):
        # Violation: `count` is guarded in add() but written bare here.
        self.count = 0

    def _drain_locked(self):
        # Exempt: the _locked suffix documents the caller holds the lock.
        self.count = 0
