"""A stale suppression: it suppresses nothing, which is itself a finding."""

VALUE = 1  # lint: disable=mutable-default
