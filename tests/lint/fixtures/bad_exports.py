"""Seeded violation for the all-exports rule (R8): a phantom export."""

__all__ = ["present", "missing_name"]


def present():
    return 1
