"""Seeded violations for the unseeded-rng rule (R2).

The filename contains "engine", which puts this module in the rule's
golden-model scope.
"""

import random

import numpy as np


def draw_numpy():
    # Violation: global NumPy RNG state.
    return np.random.rand(4)


def draw_stdlib():
    # Violation: global random-module state.
    return random.random()


def draw_seeded(seed):
    # Allowed: explicitly seeded generator objects.
    rng = np.random.default_rng(seed)
    local = random.Random(seed)
    return rng.random(), local.random()
