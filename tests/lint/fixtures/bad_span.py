"""Seeded span-discipline violations: bare span lifecycle management."""

import time


def sloppy_trace(tracer, request):
    span = tracer.span("queue_wait", request=request)  # 1: outside `with`
    span.start()  # 2: bare start()
    time.sleep(0.001)
    span.finish()  # 3: bare finish()
    return span


def fine_trace(tracer, request):
    # The sanctioned shape: context manager scopes the span lifetime.
    with tracer.span("engine_pass", request=request):
        time.sleep(0.001)
