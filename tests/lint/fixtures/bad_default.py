"""Seeded violations for the mutable-default rule (R7)."""


def collect(rows=[]):
    # Violation: the default list is shared by every call.
    rows.append(1)
    return rows


def index(*, table=dict()):
    # Violation: constructor-call defaults are just as shared.
    return table


def safe(rows=None):
    # Allowed: the canonical None-then-create idiom.
    return list(rows or ())
