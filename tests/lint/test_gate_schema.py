"""The shared gate-report schema and the CLI/tools surfaces that emit it.

``benchmarks/common.py`` holds the single schema definition; the lint gate
(``repro.cli check --format json``), the bench gate
(``tools/bench_gate.py``) and the combined ``tools/gate.py`` all emit it.
These tests pin the document shape and exercise the lint gate end-to-end
through the CLI (exit 0 on the clean repo, valid JSON, rule filtering,
non-zero exit and findings payload on a seeded violation).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import RULES

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_common():
    spec = importlib.util.spec_from_file_location(
        "repro_bench_common", REPO_ROOT / "benchmarks" / "common.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# --------------------------------------------------------------------------- #
# Schema helpers
# --------------------------------------------------------------------------- #
def test_gate_report_counts_failures():
    common = _load_common()
    report = common.gate_report(
        "demo",
        [common.gate_check("a", True, "fine"),
         common.gate_check("b", False, "broken", {"x": 1})],
    )
    assert report["gate"] == "demo"
    assert report["passed"] is False
    assert report["summary"] == {"checks": 2, "failed": 1}
    assert report["checks"][1]["data"] == {"x": 1}
    json.dumps(report)  # must be serializable as-is


def test_merge_gate_reports_aggregates():
    common = _load_common()
    merged = common.merge_gate_reports([
        common.gate_report("one", [common.gate_check("a", True)]),
        common.gate_report("two", [common.gate_check("b", False, "bad")]),
    ])
    assert merged["gate"] == "all"
    assert merged["passed"] is False
    assert merged["summary"] == {"checks": 2, "failed": 1}
    assert [sub["gate"] for sub in merged["gates"]] == ["one", "two"]


def test_render_gate_report_text():
    common = _load_common()
    merged = common.merge_gate_reports([
        common.gate_report("one", [common.gate_check("a", True, "fine")]),
        common.gate_report("two", [common.gate_check("b", False, "bad")]),
    ])
    text = common.render_gate_report(merged)
    assert "ok   [one] a: fine" in text
    assert "FAIL [two] b: bad" in text
    assert "all gates FAILED (2 check(s), 1 failed)" in text


# --------------------------------------------------------------------------- #
# The CLI lint gate
# --------------------------------------------------------------------------- #
def test_cli_check_passes_on_the_repo(capsys):
    assert cli_main(["check"]) == 0
    assert "lint passed" in capsys.readouterr().out


def test_cli_check_json_emits_the_shared_schema(capsys):
    assert cli_main(["check", "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["gate"] == "lint"
    assert report["passed"] is True
    names = {check["name"] for check in report["checks"]}
    assert set(RULES) <= names
    assert report["summary"]["failed"] == 0
    assert report["summary"]["files"] > 0


def test_cli_check_rule_filter(capsys):
    assert cli_main(["check", "--rule", "mutable-default",
                     "--format", "json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert [check["name"] for check in report["checks"]] == ["mutable-default"]


def test_cli_check_fails_on_seeded_violation(tmp_path, capsys):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "bad.py").write_text(
        "def collect(rows=[]):\n    return rows\n"
    )
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["check", "--root", str(tmp_path), "--format", "json"])
    assert excinfo.value.code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["passed"] is False
    failed = [check for check in report["checks"] if not check["passed"]]
    assert [check["name"] for check in failed] == ["mutable-default"]
    assert failed[0]["data"]["findings"]


def test_cli_check_fix_suppressions_rewrites(tmp_path, capsys):
    (tmp_path / "src").mkdir()
    target = tmp_path / "src" / "stale.py"
    target.write_text("VALUE = 1  # lint: disable=mutable-default\n")
    assert cli_main(["check", "--root", str(tmp_path),
                     "--fix-suppressions"]) == 0
    assert "lint: disable" not in target.read_text()
