"""Tests for the analytical neuromorphic accelerator models and the Fig. 5 comparison."""

import pytest

from repro.accelerators.base import AcceleratorModel, synaptic_operations
from repro.accelerators.comparison import (
    ComparisonEntry,
    compare_accelerators,
    layer6_synaptic_operations,
    soa_accelerators,
)
from repro.accelerators.loihi import LOIHI
from repro.accelerators.lsmcore import LSMCORE
from repro.accelerators.neurorvcore import NEURORVCORE
from repro.accelerators.odin import ODIN
from repro.types import TensorShape


class TestAcceleratorModel:
    def test_latency_and_energy_scale_linearly(self):
        model = AcceleratorModel(
            name="test", peak_gsop=10, precision_bits=8, technology_nm=28,
            energy_per_sop_pj=10, efficiency=0.5,
        )
        assert model.latency_s(1e9) == pytest.approx(0.2)
        assert model.energy_j(1e9) == pytest.approx(0.01)
        assert model.latency_s(2e9) == pytest.approx(2 * model.latency_s(1e9))

    def test_validation(self):
        with pytest.raises(ValueError):
            AcceleratorModel("x", peak_gsop=0, precision_bits=4, technology_nm=28,
                             energy_per_sop_pj=1)
        with pytest.raises(ValueError):
            AcceleratorModel("x", peak_gsop=1, precision_bits=4, technology_nm=28,
                             energy_per_sop_pj=1, efficiency=1.5)
        with pytest.raises(ValueError):
            LOIHI.latency_s(-1)

    def test_paper_parameters(self):
        assert LOIHI.peak_gsop == 37.5 and LOIHI.technology_nm == 14
        assert ODIN.peak_gsop == pytest.approx(0.038) and ODIN.technology_nm == 28
        assert LSMCORE.peak_gsop == 400 and LSMCORE.technology_nm == 40
        assert NEURORVCORE.peak_gsop == 128 and NEURORVCORE.technology_nm == 28
        assert len(soa_accelerators()) == 4


class TestSynapticOperations:
    def test_formula(self):
        ops = synaptic_operations(
            output_shape=TensorShape(8, 8, 512),
            kernel_size=3,
            in_channels=512,
            firing_rate=0.1,
            timesteps=1,
        )
        assert ops == pytest.approx(64 * 9 * 512 * 0.1 * 512)

    def test_timesteps_scale(self):
        one = layer6_synaptic_operations(timesteps=1)
        five_hundred = layer6_synaptic_operations(timesteps=500)
        assert five_hundred == pytest.approx(500 * one)

    def test_validation(self):
        with pytest.raises(ValueError):
            synaptic_operations(TensorShape(2, 2, 2), 3, 4, firing_rate=1.5)
        with pytest.raises(ValueError):
            synaptic_operations(TensorShape(2, 2, 2), 3, 4, firing_rate=0.5, timesteps=0)


class TestComparison:
    @pytest.fixture(scope="class")
    def entries(self):
        return compare_accelerators(timesteps=500, batch_size=1, seed=0)

    def _by_name(self, entries):
        return {entry.name: entry for entry in entries}

    def test_all_seven_systems_present(self, entries):
        names = {entry.name for entry in entries}
        assert names == {
            "Loihi", "ODIN", "LSMCore", "NeuroRVcore",
            "Baseline FP16", "SpikeStream FP16", "SpikeStream FP8",
        }

    def test_ranking_matches_paper(self, entries):
        """LSMCore fastest, ODIN slowest SoA, baseline the slowest cluster variant."""
        by_name = self._by_name(entries)
        soa_latencies = {n: by_name[n].latency_ms for n in ("Loihi", "ODIN", "LSMCore", "NeuroRVcore")}
        assert min(soa_latencies, key=soa_latencies.get) == "LSMCore"
        assert max(soa_latencies, key=soa_latencies.get) == "ODIN"
        # The baseline is the slowest system apart from ODIN (whose 0.038 GSOP
        # peak puts it orders of magnitude behind everything else).
        assert by_name["Baseline FP16"].latency_ms == max(
            e.latency_ms for e in entries if e.name != "ODIN"
        )
        assert (
            by_name["SpikeStream FP8"].latency_ms
            < by_name["SpikeStream FP16"].latency_ms
            < by_name["Baseline FP16"].latency_ms
        )
        ranked = sorted(entries, key=lambda e: e.latency_ms)
        assert ranked[0].name == "LSMCore"
        assert ranked[1].name in ("SpikeStream FP8", "NeuroRVcore")

    def test_headline_ratios_in_paper_band(self, entries):
        by_name = self._by_name(entries)
        fp8 = by_name["SpikeStream FP8"]
        fp16 = by_name["SpikeStream FP16"]
        lsmcore = by_name["LSMCore"]
        loihi = by_name["Loihi"]
        # Paper: FP8 is 4.71x slower than LSMCore, 2.38x faster than Loihi,
        # and 3.46x more energy-efficient than LSMCore.
        assert 3.0 < fp8.latency_ms / lsmcore.latency_ms < 7.0
        assert 1.5 < loihi.latency_ms / fp8.latency_ms < 3.5
        assert 1.0 < loihi.latency_ms / fp16.latency_ms < 2.0
        assert 2.0 < lsmcore.energy_mj / fp8.energy_mj < 6.0
        assert 1.3 < lsmcore.energy_mj / fp16.energy_mj < 3.5

    def test_lsmcore_most_efficient_soa(self, entries):
        by_name = self._by_name(entries)
        soa_energy = [by_name[n].energy_mj for n in ("Loihi", "ODIN", "NeuroRVcore")]
        assert all(by_name["LSMCore"].energy_mj < e for e in soa_energy)

    def test_exclude_snitch_option(self):
        entries = compare_accelerators(include_snitch=False)
        assert len(entries) == 4

    def test_entry_as_dict(self, entries):
        row = entries[0].as_dict()
        assert {"system", "latency_ms", "energy_mj", "peak_gsop", "technology_nm"} <= set(row)
