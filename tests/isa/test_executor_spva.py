"""Tests for the micro-executor and the two SpVA listings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.params import DEFAULT_COSTS
from repro.isa.executor import Executor, ExecutorParams
from repro.isa.memory import Memory
from repro.isa.program import Program
from repro.isa.spva_listings import (
    build_baseline_spva_program,
    build_streaming_spva_program,
    make_spva_setup,
    run_baseline_spva,
    run_streaming_spva,
)


class TestExecutorSemantics:
    def test_integer_alu(self):
        program = Program()
        program.emit("li", "t0", 5).emit("addi", "t0", "t0", 3).emit("slli", "t1", "t0", 2)
        program.emit("sub", "t2", "t1", "t0")
        executor = Executor()
        result = executor.run(program)
        assert result.int_registers["t0"] == 8
        assert result.int_registers["t1"] == 32
        assert result.int_registers["t2"] == 24
        assert result.fp_instructions == 0

    def test_loads_and_stores(self):
        memory = Memory(256)
        program = Program()
        program.emit("li", "a0", 16)
        program.emit("li", "t0", 1234)
        program.emit("sw", "t0", 0, "a0")
        program.emit("lw", "t1", 0, "a0")
        result = Executor(memory=memory).run(program)
        assert result.int_registers["t1"] == 1234
        assert result.loads == 1
        assert result.stores == 1

    def test_branch_loop_counts_iterations(self):
        program = Program()
        program.emit("li", "t0", 0).emit("li", "t1", 5)
        program.label("loop").emit("addi", "t0", "t0", 1).emit("bne", "t0", "t1", "loop")
        result = Executor().run(program)
        assert result.int_registers["t0"] == 5

    def test_fp_arithmetic(self):
        program = Program()
        program.emit("fadd.d", "fa0", "fa1", "fa2")
        program.emit("fmadd.d", "fa3", "fa0", "fa1", "fa2")
        executor = Executor()
        executor.set_fp("fa1", 2.0)
        executor.set_fp("fa2", 3.0)
        result = executor.run(program)
        assert result.fp_registers["fa0"] == 5.0
        assert result.fp_registers["fa3"] == 13.0
        assert result.fpu_busy_cycles == 2

    def test_load_use_stall_accounted(self):
        dependent = Program()
        dependent.emit("li", "a0", 0).emit("lw", "t0", 0, "a0").emit("addi", "t1", "t0", 1)
        independent = Program()
        independent.emit("li", "a0", 0).emit("lw", "t0", 0, "a0").emit("addi", "t1", "t2", 1)
        assert Executor().run(dependent).cycles > Executor().run(independent).cycles

    def test_taken_branch_penalty(self):
        taken = Program()
        taken.emit("li", "t0", 0).emit("li", "t1", 1)
        taken.emit("beq", "t0", "t0", "end").emit("nop").label("end").emit("nop")
        not_taken = Program()
        not_taken.emit("li", "t0", 0).emit("li", "t1", 1)
        not_taken.emit("beq", "t0", "t1", "end").emit("nop").label("end").emit("nop")
        assert Executor().run(taken).cycles > Executor().run(not_taken).cycles - 1

    def test_runaway_program_aborts(self):
        program = Program()
        program.label("loop").emit("beq", "zero", "zero", "loop")
        executor = Executor(params=ExecutorParams(max_steps=100))
        with pytest.raises(RuntimeError, match="exceeded"):
            executor.run(program)

    def test_frep_requires_fp_body(self):
        program = Program()
        program.emit("li", "t0", 2)
        program.emit("frep", "t0", 1)
        program.emit("addi", "t1", "t1", 1)
        with pytest.raises(RuntimeError, match="FP arithmetic"):
            Executor().run(program)

    def test_stream_read_requires_configuration(self):
        program = Program()
        program.emit("ssr.enable")
        program.emit("fadd.d", "fa0", "ft1", "fa0")
        with pytest.raises(RuntimeError, match="unconfigured"):
            Executor().run(program)


class TestSpvaListings:
    def test_baseline_program_has_eight_instructions(self):
        assert len(build_baseline_spva_program()) == 8

    def test_streaming_program_configures_ssr_and_frep(self):
        ops = [instr.op for instr in build_streaming_spva_program()]
        assert "ssr.cfg.indirect" in ops
        assert "frep" in ops
        assert ops.count("fadd.d") == 1

    def test_functional_equivalence_on_example(self, rng):
        weights = rng.normal(size=32)
        c_idcs = np.array([1, 5, 9, 30], dtype=np.uint16)
        setup = make_spva_setup(c_idcs, weights)
        base_value, _ = run_baseline_spva(setup)
        stream_value, _ = run_streaming_spva(setup)
        assert base_value == pytest.approx(setup.expected_sum)
        assert stream_value == pytest.approx(setup.expected_sum)

    @settings(max_examples=30, deadline=None)
    @given(
        length=st.integers(1, 64),
        pool=st.integers(64, 256),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_functional_equivalence_property(self, length, pool, seed):
        rng = np.random.default_rng(seed)
        weights = rng.normal(size=pool)
        c_idcs = rng.choice(pool, size=min(length, pool), replace=False).astype(np.uint16)
        setup = make_spva_setup(c_idcs, weights)
        base_value, base_stats = run_baseline_spva(setup)
        stream_value, stream_stats = run_streaming_spva(setup)
        assert base_value == pytest.approx(setup.expected_sum, rel=1e-9)
        assert stream_value == pytest.approx(setup.expected_sum, rel=1e-9)
        assert stream_stats.cycles <= base_stats.cycles

    def test_zero_length_stream_skipped(self):
        setup = make_spva_setup(np.array([], dtype=np.uint16), np.ones(4))
        value, stats = run_baseline_spva(setup)
        assert value == 0.0
        assert stats.cycles == 0.0

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            make_spva_setup(np.array([10], dtype=np.uint16), np.ones(4))

    def test_baseline_cycles_match_cost_model(self):
        """The instruction-level trace validates the analytic per-element cost."""
        length = 64
        rng = np.random.default_rng(0)
        weights = rng.normal(size=length * 2)
        c_idcs = rng.choice(length * 2, size=length, replace=False).astype(np.uint16)
        setup = make_spva_setup(c_idcs, weights)
        _, stats = run_baseline_spva(setup)
        per_element = stats.cycles / length
        assert per_element == pytest.approx(DEFAULT_COSTS.baseline_cycles_per_element, abs=1.0)

    def test_streaming_cycles_match_cost_model(self):
        length = 64
        rng = np.random.default_rng(0)
        weights = rng.normal(size=length * 2)
        c_idcs = rng.choice(length * 2, size=length, replace=False).astype(np.uint16)
        setup = make_spva_setup(c_idcs, weights)
        _, stats = run_streaming_spva(setup)
        modeled = (
            length * DEFAULT_COSTS.streaming_cycles_per_element
            + DEFAULT_COSTS.stream_startup_cycles
            + DEFAULT_COSTS.stream_setup_int_instrs
        )
        assert stats.cycles == pytest.approx(modeled, rel=0.15)

    def test_speedup_grows_with_stream_length_and_approaches_ideal(self):
        rng = np.random.default_rng(1)
        speedups = []
        for length in (2, 8, 32, 128):
            weights = rng.normal(size=256)
            c_idcs = rng.choice(256, size=length, replace=False).astype(np.uint16)
            setup = make_spva_setup(c_idcs, weights)
            _, base = run_baseline_spva(setup)
            _, stream = run_streaming_spva(setup)
            speedups.append(base.cycles / stream.cycles)
        assert speedups == sorted(speedups)
        assert 5.0 < speedups[-1] < 9.0

    def test_streaming_utilization_approaches_cost_model_plateau(self):
        rng = np.random.default_rng(2)
        weights = rng.normal(size=512)
        c_idcs = rng.choice(512, size=256, replace=False).astype(np.uint16)
        setup = make_spva_setup(c_idcs, weights)
        _, stats = run_streaming_spva(setup)
        assert stats.fpu_utilization == pytest.approx(
            1.0 / DEFAULT_COSTS.streaming_cycles_per_element, abs=0.08
        )
