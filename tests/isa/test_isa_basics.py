"""Tests for instruction definitions, memory and program containers."""

import numpy as np
import pytest

from repro.isa.instructions import Instruction
from repro.isa.memory import Memory
from repro.isa.program import Program


class TestInstruction:
    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ValueError):
            Instruction("frobnicate", ())

    def test_classification_flags(self):
        assert Instruction("fadd.d", ("fa0", "ft1", "fa0")).is_fp
        assert Instruction("lw", ("t0", 0, "a0")).is_load
        assert Instruction("sw", ("t0", 0, "a0")).is_store
        assert Instruction("bne", ("t0", "t1", "loop")).is_branch
        assert not Instruction("addi", ("t0", "t0", 1)).is_fp

    def test_destination_and_sources(self):
        instr = Instruction("add", ("t0", "t1", "t2"))
        assert instr.destination == "t0"
        assert set(instr.sources()) == {"t1", "t2"}

    def test_branch_sources(self):
        instr = Instruction("bne", ("t0", "t1", "loop"))
        assert set(instr.sources()) == {"t0", "t1"}

    def test_str_rendering(self):
        assert str(Instruction("addi", ("t0", "t0", 2))) == "addi t0, t0, 2"


class TestMemory:
    def test_int_round_trip(self):
        memory = Memory(1024)
        memory.write_int(10, 0xBEEF, 2)
        assert memory.read_int(10, 2) == 0xBEEF

    def test_signed_read(self):
        memory = Memory(64)
        memory.write_int(0, -5, 4)
        assert memory.read_int(0, 4, signed=True) == -5

    def test_f64_round_trip(self):
        memory = Memory(64)
        memory.write_f64(8, 3.25)
        assert memory.read_f64(8) == 3.25

    def test_out_of_bounds_raises(self):
        memory = Memory(16)
        with pytest.raises(IndexError):
            memory.read_int(15, 4)

    def test_array_placement(self, rng):
        memory = Memory(4096)
        weights = rng.normal(size=16)
        idcs = np.arange(16, dtype=np.uint16)
        w_addr = memory.place_f64_array("weights", weights)
        i_addr = memory.place_u16_array("idcs", idcs)
        assert np.allclose(memory.read_f64_array(w_addr, 16), weights)
        assert memory.read_int(i_addr + 2 * 5, 2) == 5
        assert memory.base_address("weights") == w_addr

    def test_duplicate_allocation_rejected(self):
        memory = Memory(128)
        memory.allocate("a", 8)
        with pytest.raises(ValueError):
            memory.allocate("a", 8)


class TestProgram:
    def test_emit_and_labels(self):
        program = Program(name="p")
        program.label("start").emit("addi", "t0", "t0", 1).emit("bne", "t0", "t1", "start")
        assert len(program) == 2
        assert program.target("start") == 0

    def test_duplicate_label_rejected(self):
        program = Program()
        program.label("a")
        with pytest.raises(ValueError):
            program.label("a")

    def test_missing_label_raises(self):
        with pytest.raises(KeyError):
            Program().target("nowhere")

    def test_extend_shifts_labels(self):
        first = Program()
        first.emit("nop")
        second = Program()
        second.label("loop").emit("nop")
        first.extend(second)
        assert first.target("loop") == 1

    def test_listing_contains_labels_and_instructions(self):
        program = Program()
        program.label("SpVA").emit("addi", "t0", "t0", 1)
        listing = program.listing()
        assert "SpVA:" in listing
        assert "addi t0, t0, 1" in listing

    def test_instruction_at_out_of_range(self):
        assert Program().instruction_at(3) is None
