"""Tests for the unified Session API: registry, shared pool, result store."""

import dataclasses
import json

import pytest

from repro.arch.params import DEFAULT_COSTS
from repro.core.pipeline import SpikeStreamInference
from repro.config import spikestream_config
from repro.eval.experiments import speedup_experiment
from repro.session import SCENARIOS, ResultStore, Session, default_session
from repro.types import Precision


class TestScenarioRegistry:
    def test_every_experiment_and_sweep_registered(self):
        session = Session()
        names = set(session.scenarios())
        assert {"memory_footprint", "utilization", "speedup", "energy",
                "svgg11_variants", "accelerator_comparison",
                "spva_microbenchmark"} <= names
        assert {"firing_rate", "core_count", "precision", "stream_length",
                "strided_indirect"} <= names
        assert names == set(SCENARIOS)

    def test_describe_reports_kind_figure_and_params(self):
        session = Session()
        info = session.describe("speedup")
        assert info["kind"] == "experiment"
        assert info["figure"] == "fig3c"
        assert "batch_size" in info["params"]
        info = session.describe("firing_rate")
        assert info["kind"] == "sweep"
        assert "rates" in info["params"]

    def test_unknown_scenario_rejected(self):
        session = Session()
        with pytest.raises(KeyError, match="unknown scenario"):
            session.run("nope")
        with pytest.raises(KeyError, match="unknown scenario"):
            session.describe("nope")

    def test_unknown_scenario_param_rejected(self):
        with pytest.raises(TypeError):
            Session().run("spva_microbenchmark", bogus_param=3)

    def test_invalid_backend_and_jobs_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            Session(backend="gpu")
        with pytest.raises(ValueError, match="jobs"):
            Session(jobs=0)

    def test_scenario_results_match_module_level_functions(self):
        session = Session()
        result = session.run("spva_microbenchmark", stream_lengths=(1, 8), seed=4)
        assert [row["stream_length"] for row in result.rows] == [1, 8]
        sweep = session.run("stream_length", lengths=(2, 16))
        assert sweep.name == "parallel_stream_length_sweep"
        assert [row["stream_length"] for row in sweep.rows] == [2, 16]


class TestResultStore:
    def _result(self, seed=3):
        engine = SpikeStreamInference(spikestream_config(batch_size=1, seed=seed))
        return engine.run_statistical(batch_size=1, seed=seed)

    def test_in_memory_roundtrip_and_counters(self):
        store = ResultStore()
        assert store.get("abc") is None
        result = self._result()
        store.put("abc", result)
        assert store.get("abc").identical_to(result)
        assert store.hits == 1 and store.misses == 1
        assert "abc" in store and len(store) == 1

    def test_disk_persistence_across_instances(self, tmp_path):
        store = ResultStore(tmp_path)
        result = self._result()
        store.put("deadbeef", result)
        assert (tmp_path / "deadbeef.json").exists()
        reloaded = ResultStore(tmp_path)
        served = reloaded.get("deadbeef")
        assert served is not None and served.identical_to(result)
        assert reloaded.hits == 1 and reloaded.misses == 0

    def test_corrupt_store_entry_ignored_with_warning(self, tmp_path, capsys):
        (tmp_path / "badf00d.json").write_text("NOT JSON{{{")
        store = ResultStore(tmp_path)
        assert store.get("badf00d") is None  # must not raise
        assert "warning" in capsys.readouterr().err
        assert store.misses == 1

    def test_store_files_are_valid_json(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("cafe", self._result())
        payload = json.loads((tmp_path / "cafe.json").read_text())
        assert payload["config"]["precision"] == "fp16"
        assert payload["layers"]


class TestSharedPool:
    def test_serial_session_has_no_pool(self):
        session = Session()
        assert session.shared_executor() is None
        assert session.pool_launches == 0

    def test_one_pool_reused_across_sweeps_and_experiments(self):
        with Session(jobs=2, backend="thread") as session:
            first = session.shared_executor()
            assert first is not None
            session.run("stream_length", lengths=(1, 4, 16))
            session.run("firing_rate", rates=(0.1, 0.3))
            session.run("utilization", batch_size=1, seed=8)
            assert session.shared_executor() is first
            assert session.pool_launches == 1

    def test_close_shuts_down_pool(self):
        session = Session(jobs=2, backend="thread")
        pool = session.shared_executor()
        assert pool is not None
        session.close()
        assert session._executor is None
        session.close()  # idempotent

    def test_broken_pool_invalidated_instead_of_reused(self, capsys):
        session = Session(jobs=2, backend="thread")
        pool = session.shared_executor()
        assert pool is not None
        pool._broken = "worker died"  # what a BrokenExecutor failure leaves behind
        assert session.shared_executor() is None  # dead pool not handed out again
        assert "broken" in capsys.readouterr().err
        assert session.shared_executor() is None  # permanently serial, no warning spam
        assert session.pool_launches == 1
        # The session still produces results (serially).
        result = session.run("stream_length", lengths=(2,))
        assert result.rows[0]["stream_length"] == 2

    def test_parallel_session_matches_serial_results(self):
        serial = Session().run("firing_rate", seed=7, rates=(0.05, 0.2))
        with Session(jobs=2, backend="thread") as parallel_session:
            threaded = parallel_session.run("firing_rate", seed=7, rates=(0.05, 0.2))
        assert serial.rows == threaded.rows
        assert serial.headline == threaded.headline

    def test_parallel_variants_match_serial(self):
        cold = Session().run_variants(batch_size=1, seed=21)
        with Session(jobs=2, backend="thread") as session:
            pooled = session.run_variants(batch_size=1, seed=21)
        for key in cold:
            assert pooled[key].identical_to(cold[key])


class TestResultStoreIntegration:
    def test_run_inference_served_from_store(self, monkeypatch):
        session = Session()
        simulations = []
        original = SpikeStreamInference.run_statistical

        def counting(self, *args, **kwargs):
            simulations.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(SpikeStreamInference, "run_statistical", counting)
        config = spikestream_config(Precision.FP16, batch_size=1, seed=17)
        first = session.run_inference(config)
        assert len(simulations) == 1
        second = session.run_inference(config)
        assert len(simulations) == 1  # no re-simulation
        assert session.store.hits == 1
        assert second.identical_to(first)

    def test_acceptance_sweep_and_experiment_one_pool_then_store_hit(self, monkeypatch):
        # The PR's acceptance criterion: one Session instance runs a sweep
        # and an experiment through session.run(...) reusing the same pool,
        # and a second session.run with an identical RunConfig fingerprint
        # is served from the ResultStore without re-simulating.
        with Session(jobs=2, backend="thread") as session:
            sweep = session.run("stream_length", lengths=(1, 8))
            assert sweep.rows
            first = session.run("speedup", batch_size=1, seed=5)
            assert session.pool_launches == 1

            simulations = []
            monkeypatch.setattr(
                SpikeStreamInference,
                "run_statistical",
                lambda self, *a, **k: simulations.append(1),
            )
            hits_before = session.store.hits
            second = session.run("speedup", batch_size=1, seed=5)
            assert simulations == []  # served entirely from the store
            assert session.store.hits - hits_before == 3  # all three variants
            assert second.rows == first.rows
            assert second.headline == first.headline
            assert session.pool_launches == 1

    def test_store_persists_across_sessions(self, tmp_path):
        with Session(cache_dir=tmp_path) as session:
            first = session.run("energy", batch_size=1, seed=9)
            assert session.store.misses == 3
        with Session(cache_dir=tmp_path) as fresh:
            second = fresh.run("energy", batch_size=1, seed=9)
            assert fresh.store.hits == 3 and fresh.store.misses == 0
        assert second.rows == first.rows
        assert second.headline == first.headline

    def test_store_hit_equals_cold_run(self, tmp_path):
        cached_session = Session(cache_dir=tmp_path)
        cached_session.run_variants(batch_size=1, seed=31)
        served = cached_session.run_variants(batch_size=1, seed=31)
        cold = Session().run_variants(batch_size=1, seed=31)
        for key in cold:
            assert served[key].identical_to(cold[key])

    def test_store_immune_to_caller_mutation(self):
        session = Session()
        config = spikestream_config(batch_size=1, seed=23)
        first = session.run_inference(config)  # miss: same object that was put
        pristine_cycles = float(first.layers[0].cycles[0])
        first.layers[0].cycles *= 0.0
        second = session.run_inference(config)  # hit: must be unpoisoned
        assert second.layers[0].cycles[0] == pristine_cycles
        second.layers[0].cycles *= 0.0
        third = session.run_inference(config)
        assert third.layers[0].cycles[0] == pristine_cycles

    def test_different_fingerprint_misses(self):
        session = Session()
        config = spikestream_config(batch_size=1, seed=2)
        session.run_inference(config)
        session.run_inference(config.with_precision(Precision.FP8))
        session.run_inference(config, seed=3)
        assert session.store.hits == 0 and session.store.misses == 3

    def test_sweep_rows_cached_within_session(self):
        session = Session()
        session.run("stream_length", lengths=(2, 4))
        assert session.sweep_cache.misses == 2
        session.run("stream_length", lengths=(2, 4))
        assert session.sweep_cache.hits == 2

    def test_sweep_rows_persist_under_cache_dir(self, tmp_path):
        with Session(cache_dir=tmp_path) as session:
            session.run("stream_length", lengths=(4,))
        assert (tmp_path / "sweep_rows.json").exists()
        with Session(cache_dir=tmp_path) as fresh:
            fresh.run("stream_length", lengths=(4,))
            assert fresh.sweep_cache.hits == 1


class TestSessionModelWarnings:
    def test_scenario_on_default_models_warns_for_custom_session(self, capsys):
        costs = dataclasses.replace(DEFAULT_COSTS, baseline_spva_instrs_per_element=9)
        session = Session(costs=costs)
        session.run("stream_length", lengths=(2,))
        assert "default hardware models" in capsys.readouterr().err
        # Scenarios that do run on the session's models stay silent.
        session.run("speedup", batch_size=1, seed=6)
        assert "default hardware models" not in capsys.readouterr().err

    def test_default_session_models_never_warn(self, capsys):
        Session().run("stream_length", lengths=(2,))
        assert "default hardware models" not in capsys.readouterr().err


class TestModuleLevelWrappers:
    def test_experiment_wrappers_share_default_session_store(self):
        session = default_session()
        baseline_hits = session.store.hits
        first = speedup_experiment(batch_size=1, seed=41)
        second = speedup_experiment(batch_size=1, seed=41)
        assert session.store.hits >= baseline_hits + 3
        assert first.rows == second.rows

    def test_default_session_is_a_singleton(self):
        assert default_session() is default_session()
