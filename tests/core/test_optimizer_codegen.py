"""Tests for the SpikeStream optimizer, layer plans and code generation."""

import pytest

from repro.config import baseline_config, spikestream_config
from repro.core.codegen import generate_spva_program, spva_pseudocode
from repro.core.layer_mapping import KernelKind, LayerPlan
from repro.core.optimizer import SpikeStreamOptimizer
from repro.kernels.conv import ConvLayerSpec
from repro.kernels.encode import EncodeLayerSpec
from repro.kernels.fc import FcLayerSpec
from repro.arch.params import ClusterParams
from repro.types import Precision, StreamKind, TensorShape


class TestOptimizerSvgg11:
    def test_plans_all_eleven_layers(self):
        plans = SpikeStreamOptimizer(spikestream_config()).plan_svgg11()
        assert len(plans) == 11
        assert [p.name for p in plans][:3] == ["conv1", "conv2", "conv3"]

    def test_first_layer_uses_dense_affine_streams(self):
        plans = SpikeStreamOptimizer(spikestream_config()).plan_svgg11()
        first = plans[0]
        assert first.kernel is KernelKind.ENCODE
        assert isinstance(first.spec, EncodeLayerSpec)
        assert first.stream_kinds == [StreamKind.AFFINE, StreamKind.AFFINE]
        assert not first.uses_indirect_stream

    def test_conv_layers_use_indirect_stream(self):
        plans = SpikeStreamOptimizer(spikestream_config()).plan_svgg11()
        conv_plan = plans[1]
        assert conv_plan.kernel is KernelKind.CONV
        assert isinstance(conv_plan.spec, ConvLayerSpec)
        assert conv_plan.uses_indirect_stream

    def test_fc_layers_planned_last(self):
        plans = SpikeStreamOptimizer(spikestream_config()).plan_svgg11()
        assert all(p.kernel is KernelKind.FC for p in plans[-3:])
        assert isinstance(plans[-1].spec, FcLayerSpec)

    def test_baseline_config_disables_streams(self):
        plans = SpikeStreamOptimizer(baseline_config()).plan_svgg11()
        assert all(not p.streaming for p in plans)
        assert all(p.stream_kinds == [] for p in plans)

    def test_firing_rate_override(self):
        plans = SpikeStreamOptimizer(spikestream_config()).plan_svgg11({"conv3": 0.77})
        assert [p for p in plans if p.name == "conv3"][0].firing_rate == 0.77

    def test_precision_propagates_to_plans(self):
        plans = SpikeStreamOptimizer(spikestream_config(Precision.FP8)).plan_svgg11()
        assert all(p.precision is Precision.FP8 for p in plans)
        assert plans[1].simd_width == 8

    def test_streaming_requires_indirect_capable_cluster(self):
        cluster = ClusterParams(num_indirect_stream_registers=0)
        with pytest.raises(ValueError, match="indirect stream register"):
            SpikeStreamOptimizer(spikestream_config(), cluster)

    def test_unsupported_index_width_rejected(self):
        config = spikestream_config()
        cluster = ClusterParams(supported_index_bits=(8,))
        with pytest.raises(ValueError, match="indices"):
            SpikeStreamOptimizer(config, cluster)


class TestOptimizerNetwork:
    def test_plan_network_matches_layers(self, tiny_network):
        plans = SpikeStreamOptimizer(spikestream_config()).plan_network(tiny_network)
        assert [p.name for p in plans] == ["conv1", "conv2", "fc1"]
        assert plans[0].kernel is KernelKind.ENCODE
        assert plans[1].kernel is KernelKind.CONV
        assert plans[2].kernel is KernelKind.FC

    def test_plan_network_firing_rates(self, tiny_network):
        plans = SpikeStreamOptimizer(spikestream_config()).plan_network(
            tiny_network, {"conv2": 0.2}
        )
        assert plans[1].firing_rate == 0.2


class TestLayerPlanValidation:
    def test_spec_type_checked(self):
        with pytest.raises(TypeError):
            LayerPlan(
                name="bad",
                kernel=KernelKind.CONV,
                spec=FcLayerSpec(name="fc", in_features=4, out_features=4),
                precision=Precision.FP16,
                streaming=True,
            )

    def test_firing_rate_bounds(self):
        spec = ConvLayerSpec(
            name="c", input_shape=TensorShape(4, 4, 2), in_channels=2, out_channels=2
        )
        with pytest.raises(ValueError):
            LayerPlan(
                name="c", kernel=KernelKind.CONV, spec=spec, precision=Precision.FP16,
                streaming=True, firing_rate=1.5,
            )


class TestCodegen:
    def _conv_plan(self, streaming=True):
        config = spikestream_config() if streaming else baseline_config()
        return SpikeStreamOptimizer(config).plan_svgg11()[1]

    def test_streaming_program_uses_frep(self):
        program = generate_spva_program(self._conv_plan(streaming=True))
        ops = [i.op for i in program]
        assert "frep" in ops and "ssr.cfg.indirect" in ops

    def test_baseline_program_has_eight_instruction_loop(self):
        program = generate_spva_program(self._conv_plan(streaming=False))
        assert len(program) == 8

    def test_encode_layer_has_no_spva(self):
        plans = SpikeStreamOptimizer(spikestream_config()).plan_svgg11()
        with pytest.raises(ValueError, match="no SpVA"):
            generate_spva_program(plans[0])

    def test_pseudocode_mentions_streaming_primitives(self):
        text = spva_pseudocode(self._conv_plan(streaming=True))
        assert "sr_set_indir" in text and "frep" in text

    def test_pseudocode_for_baseline_shows_indirection(self):
        text = spva_pseudocode(self._conv_plan(streaming=False))
        assert "c_idcs" in text and "frep" not in text

    def test_pseudocode_for_encode_layer(self):
        plans = SpikeStreamOptimizer(spikestream_config()).plan_svgg11()
        text = spva_pseudocode(plans[0])
        assert "affine" in text
