"""Tests for the end-to-end kernel-vs-golden validator."""

import numpy as np
import pytest

from repro.core.validation import validate_network_on_kernels


class TestValidateNetworkOnKernels:
    def test_tiny_network_validates_exactly(self, tiny_network, rng):
        frames = [rng.random((8, 8, 3)) for _ in range(2)]
        report = validate_network_on_kernels(tiny_network, frames)
        assert report.all_match
        assert len(report.entries) == 3 * 2
        assert report.max_current_error < 1e-9
        assert report.mismatches() == []

    def test_summary_structure(self, tiny_network, rng):
        report = validate_network_on_kernels(tiny_network, [rng.random((8, 8, 3))])
        summary = report.summary()
        assert summary["layers_checked"] == 3
        assert summary["all_match"] is True
        assert summary["mismatches"] == 0

    def test_remains_consistent_after_weight_change(self, tiny_network, rng):
        """The validator checks kernel/golden self-consistency for whatever weights are loaded."""
        frame = rng.random((8, 8, 3))
        assert validate_network_on_kernels(tiny_network, [frame]).all_match
        original = tiny_network.layers[2].weights.copy()
        tiny_network.layers[2].weights = original * 5.0 + 0.5
        # Both the golden model and the kernels see the new weights, so the
        # report must still be fully consistent.
        assert validate_network_on_kernels(tiny_network, [frame]).all_match
        tiny_network.layers[2].weights = original

    def test_empty_frame_list(self, tiny_network):
        report = validate_network_on_kernels(tiny_network, [])
        assert report.entries == []
        assert report.all_match
        assert report.max_current_error == 0.0

    def test_spike_counts_reported(self, tiny_network, rng):
        report = validate_network_on_kernels(tiny_network, [rng.random((8, 8, 3))])
        for entry in report.entries:
            assert entry.golden_spike_count == entry.kernel_spike_count
