"""Unit tests for the timestep scaling of cluster statistics.

``_scale_stats`` multiplies every activity counter of a
:class:`~repro.arch.trace.ClusterStats` by the timestep count (via
``dataclasses.replace``); derived ratios — FPU utilization, IPC — must be
invariant, because repeating the same execution N times changes totals, not
rates.
"""

import numpy as np
import pytest

from repro.core.pipeline import _scale_stats
from repro.kernels.conv import conv_layer_perf
from repro.types import Precision


@pytest.fixture
def stats(small_conv_spec, rng):
    padded = small_conv_spec.padded_input_shape
    counts = rng.binomial(16, 0.3, size=(padded.height, padded.width)).astype(float)
    return conv_layer_perf(small_conv_spec, counts, Precision.FP16, streaming=True)


class TestScaleStats:
    @pytest.mark.parametrize("timesteps", [0, 1])
    def test_zero_and_one_return_unchanged(self, stats, timesteps):
        assert _scale_stats(stats, timesteps) is stats

    @pytest.mark.parametrize("timesteps", [2, 7])
    def test_counters_scale_linearly(self, stats, timesteps):
        scaled = _scale_stats(stats, timesteps)
        assert scaled.total_cycles == stats.total_cycles * timesteps
        assert scaled.dma_cycles == stats.dma_cycles * timesteps
        assert scaled.dma_bytes == stats.dma_bytes * timesteps
        assert scaled.dma_exposed_cycles == stats.dma_exposed_cycles * timesteps
        for core, reference in zip(scaled.core_stats, stats.core_stats):
            assert core.core_id == reference.core_id
            assert core.int_instructions == reference.int_instructions * timesteps
            assert core.fp_instructions == reference.fp_instructions * timesteps
            assert core.total_cycles == reference.total_cycles * timesteps
            assert core.fpu_busy_cycles == reference.fpu_busy_cycles * timesteps
            assert core.stall_cycles == reference.stall_cycles * timesteps
            assert core.spm_accesses == reference.spm_accesses * timesteps
            assert core.ssr_spm_accesses == reference.ssr_spm_accesses * timesteps
            assert core.atomic_operations == reference.atomic_operations * timesteps

    def test_derived_ratios_invariant(self, stats):
        scaled = _scale_stats(stats, 5)
        assert scaled.fpu_utilization == pytest.approx(stats.fpu_utilization, rel=1e-12)
        assert scaled.ipc == pytest.approx(stats.ipc, rel=1e-12)
        for core, reference in zip(scaled.core_stats, stats.core_stats):
            assert core.fpu_utilization == pytest.approx(reference.fpu_utilization, rel=1e-12)
            assert core.ipc == pytest.approx(reference.ipc, rel=1e-12)

    def test_label_and_original_preserved(self, stats):
        total_before = stats.total_cycles
        scaled = _scale_stats(stats, 3)
        assert scaled.label == stats.label
        assert scaled is not stats
        assert scaled.core_stats[0] is not stats.core_stats[0]
        # The input record is untouched (replace builds new records).
        assert stats.total_cycles == total_before
