"""Accuracy contract of the selectable-precision golden engine.

Three claims, gated on the real S-VGG11 workload across all three evaluated
hardware variants (baseline FP16, SpikeStream FP16, SpikeStream FP8):

* the FP64 dense policy routed through the batched engine stays
  **bit-for-bit identical** to
  :meth:`~repro.core.pipeline.SpikeStreamInference.run_functional_reference`
  — selecting the default policy changes nothing;
* the FP32 event-sparse policy stays inside the documented accuracy bound
  (:data:`~repro.snn.numerics.CLASSIFICATION_AGREEMENT_BOUND` classification
  agreement, :data:`~repro.snn.numerics.SPIKE_COUNT_TOLERANCE` per-layer
  spike-count deviation) and its costed results stay close to the
  reference costing;
* the policy is part of a run's identity: FP32 and FP64 functional runs get
  **distinct** result-store fingerprints and entries, so one can never be
  served where the other was requested.
"""

import numpy as np
import pytest

from repro.core.pipeline import SpikeStreamInference
from repro.eval.experiments import svgg11_variant_configs
from repro.session import Session, functional_svgg11_setup
from repro.snn.numerics import (
    CLASSIFICATION_AGREEMENT_BOUND,
    REFERENCE,
    SPIKE_COUNT_TOLERANCE,
    NumericsPolicy,
)

BATCH = 2
SEED = 7

FAST = NumericsPolicy("fp32", "event_sparse")


@pytest.fixture(scope="module")
def svgg11_workload():
    """The real S-VGG11 network and a small frame batch, built once."""
    return functional_svgg11_setup(batch_size=BATCH, seed=SEED)


@pytest.fixture(scope="module")
def variant_engines():
    return {
        name: SpikeStreamInference(config)
        for name, config in svgg11_variant_configs(
            batch_size=BATCH, seed=SEED
        ).items()
    }


@pytest.fixture(scope="module")
def activities(svgg11_workload):
    """Batched activity under the reference and the fast policy, recorded once."""
    network, frames = svgg11_workload
    return {
        "reference": network.forward_batch(frames, policy=REFERENCE),
        "fast": network.forward_batch(frames, policy=FAST),
    }


def _layer_spike_counts(network, activity):
    return [
        sum(float(record.output_spikes.sum()) for record in activity.for_layer(index))
        for index in network.weighted_layers
    ]


def _predictions(network, activity):
    """Class predictions from recorded activity (what ``predict_batch`` does)."""
    output_index = network.weighted_layers[-1]
    counts = None
    for record in activity.for_layer(output_index):
        flat = record.output_spikes.reshape(record.batch_size, -1)
        counts = flat if counts is None else counts + flat
    return np.argmax(counts, axis=1)


def test_fp64_dense_is_bit_for_bit_reference_on_all_variants(
    svgg11_workload, variant_engines, activities
):
    network, frames = svgg11_workload
    for name, engine in variant_engines.items():
        batched = engine.run_functional(
            network, frames, activity=activities["reference"]
        )
        reference = engine.run_functional_reference(network, frames)
        assert batched.identical_to(reference), (
            f"fp64-dense diverges from run_functional_reference on {name}"
        )


def test_fp32_event_sparse_meets_documented_accuracy_bounds(
    svgg11_workload, activities
):
    network, _ = svgg11_workload
    reference_counts = _layer_spike_counts(network, activities["reference"])
    fast_counts = _layer_spike_counts(network, activities["fast"])
    for index, (reference, fast) in enumerate(zip(reference_counts, fast_counts)):
        deviation = abs(fast - reference) / max(reference, 1.0)
        assert deviation <= SPIKE_COUNT_TOLERANCE, (
            f"weighted layer {index}: spike-count deviation {deviation:.4f} "
            f"exceeds the documented {SPIKE_COUNT_TOLERANCE} bound"
        )
    agreement = float(np.mean(
        _predictions(network, activities["reference"])
        == _predictions(network, activities["fast"])
    ))
    assert agreement >= CLASSIFICATION_AGREEMENT_BOUND, (
        f"classification agreement {agreement:.3f} below the documented "
        f"{CLASSIFICATION_AGREEMENT_BOUND} bound"
    )


def test_fp32_event_sparse_costing_stays_close_on_all_variants(
    svgg11_workload, variant_engines, activities
):
    """Costed totals under the fast policy track the reference costing.

    The hardware models cost spike *activity*; under FP32 at these shapes
    spikes flip only at near-threshold coincidences, so every variant's
    total runtime/energy must stay within a few percent of the reference
    result (typically bit-equal).
    """
    network, frames = svgg11_workload
    for name, engine in variant_engines.items():
        reference = engine.run_functional(
            network, frames, activity=activities["reference"]
        )
        fast = engine.run_functional(network, frames, activity=activities["fast"])
        for attribute in ("total_runtime_s", "total_energy_j"):
            ref_value = getattr(reference, attribute)
            fast_value = getattr(fast, attribute)
            assert fast_value == pytest.approx(ref_value, rel=0.05), (
                f"{name}: {attribute} moved {fast_value} vs {ref_value} "
                f"under fp32-event_sparse"
            )


def test_policies_get_distinct_store_fingerprints_and_entries():
    from repro.eval.sweeps import functional_network
    from repro.snn.datasets import SyntheticCIFAR10
    from repro.types import TensorShape

    network = functional_network(SEED)
    frames, _ = SyntheticCIFAR10(
        seed=SEED, image_shape=TensorShape(16, 16, 3)
    ).sample(2)
    with Session() as session:
        config = session.config
        reference_print = session.functional_fingerprint(
            config, network, frames, None, numerics=REFERENCE
        )
        fast_print = session.functional_fingerprint(
            config, network, frames, None, numerics=FAST
        )
        assert reference_print != fast_print
        # Same frames, different policies: two cold computes, two entries.
        session.run_functional(network, frames)
        session.run_functional(network, frames, numerics=FAST)
        stats = session.store.stats()
        assert stats["entries"] == 2
        assert stats["hits"] == 0
        # Re-running either policy is now a pure store hit.
        session.run_functional(network, frames, numerics=FAST)
        assert session.store.stats()["hits"] == 1
