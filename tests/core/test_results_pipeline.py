"""Tests for the inference pipeline and its result records."""

import numpy as np
import pytest

from repro.config import baseline_config, spikestream_config
from repro.core.pipeline import SpikeStreamInference
from repro.core.results import InferenceResult, LayerResult, speedup
from repro.types import Precision


def _layer_result(name="conv2", cycles=(100.0, 110.0), kernel="conv", streaming=True):
    n = len(cycles)
    return LayerResult(
        name=name,
        kernel=kernel,
        precision=Precision.FP16,
        streaming=streaming,
        cycles=np.asarray(cycles),
        fpu_utilization=np.full(n, 0.5),
        ipc=np.full(n, 0.7),
        energy_j=np.full(n, 1e-5),
        power_w=np.full(n, 0.2),
        dma_bytes=np.full(n, 1000.0),
    )


class TestLayerResult:
    def test_mean_and_std(self):
        result = _layer_result(cycles=(100.0, 200.0))
        assert result.mean_cycles == 150.0
        assert result.std_cycles == pytest.approx(50.0)
        assert result.mean_runtime_s == pytest.approx(150e-9)
        assert result.batch_size == 2

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(ValueError):
            LayerResult(
                name="x", kernel="conv", precision=Precision.FP16, streaming=True,
                cycles=np.array([1.0, 2.0]),
                fpu_utilization=np.array([0.5]),
                ipc=np.array([0.5]),
                energy_j=np.array([1.0]),
                power_w=np.array([1.0]),
                dma_bytes=np.array([1.0]),
            )

    def test_as_dict_keys(self):
        d = _layer_result().as_dict()
        assert {"layer", "mean_cycles", "mean_fpu_utilization", "mean_power_w"} <= set(d)


class TestInferenceResult:
    def _result(self):
        config = spikestream_config(batch_size=2)
        return InferenceResult(
            config=config,
            layers=[
                _layer_result("conv1", (1000.0, 1000.0), kernel="encode"),
                _layer_result("conv2", (2000.0, 2200.0)),
                _layer_result("fc1", (500.0, 450.0), kernel="fc"),
            ],
        )

    def test_totals(self):
        result = self._result()
        assert result.total_cycles == pytest.approx(1000 + 2100 + 475)
        assert result.total_runtime_s == pytest.approx(result.total_cycles * 1e-9)
        assert result.total_energy_j == pytest.approx(3e-5)

    def test_layer_lookup_and_grouping(self):
        result = self._result()
        assert result.layer("conv2").name == "conv2"
        with pytest.raises(KeyError):
            result.layer("missing")
        assert [l.name for l in result.conv_layers] == ["conv1", "conv2"]
        assert [l.name for l in result.fc_layers] == ["fc1"]

    def test_network_utilization_is_cycle_weighted(self):
        result = self._result()
        assert result.network_fpu_utilization == pytest.approx(0.5)

    def test_summary_keys(self):
        summary = self._result().summary()
        assert {"total_runtime_ms", "total_energy_mj", "network_fpu_utilization"} <= set(summary)

    def test_speedup_helper(self):
        result = self._result()
        assert speedup(result, result) == pytest.approx(1.0)
        assert speedup(None, result) == 1.0


class TestStatisticalPipeline:
    @pytest.fixture(scope="class")
    def engine(self):
        return SpikeStreamInference(spikestream_config(batch_size=2, seed=7))

    def test_runs_full_svgg11(self, engine):
        result = engine.run_statistical(batch_size=2)
        assert len(result.layers) == 11
        assert result.total_cycles > 0
        assert all(layer.batch_size == 2 for layer in result.layers)

    def test_deterministic_given_seed(self, engine):
        a = engine.run_statistical(batch_size=2, seed=5)
        b = engine.run_statistical(batch_size=2, seed=5)
        assert a.total_cycles == pytest.approx(b.total_cycles)

    def test_different_seeds_vary(self, engine):
        a = engine.run_statistical(batch_size=2, seed=5)
        b = engine.run_statistical(batch_size=2, seed=6)
        assert a.total_cycles != pytest.approx(b.total_cycles, rel=1e-9)

    def test_layer_subset_runs(self, engine):
        plans = [p for p in engine.optimizer.plan_svgg11() if p.name == "conv6"]
        result = engine.run_statistical(plans=plans, batch_size=2)
        assert result.layer_names == ["conv6"]

    def test_timesteps_scale_cycles_linearly(self, engine):
        plans = [p for p in engine.optimizer.plan_svgg11() if p.name == "conv6"]
        one = engine.run_statistical(plans=plans, batch_size=1, seed=3, timesteps=1)
        ten = engine.run_statistical(plans=plans, batch_size=1, seed=3, timesteps=10)
        assert ten.total_cycles == pytest.approx(10 * one.total_cycles, rel=1e-6)
        assert ten.layer("conv6").mean_fpu_utilization == pytest.approx(
            one.layer("conv6").mean_fpu_utilization
        )

    def test_firing_rate_override_changes_runtime(self, engine):
        plans = [p for p in engine.optimizer.plan_svgg11({"conv6": 0.05}) if p.name == "conv6"]
        sparse = engine.run_statistical(plans=plans, batch_size=1, seed=2)
        plans = [p for p in engine.optimizer.plan_svgg11({"conv6": 0.4}) if p.name == "conv6"]
        dense = engine.run_statistical(plans=plans, batch_size=1, seed=2)
        assert dense.total_cycles > sparse.total_cycles

    def test_baseline_slower_than_spikestream(self):
        base = SpikeStreamInference(baseline_config(batch_size=2, seed=1)).run_statistical(batch_size=2)
        stream = SpikeStreamInference(spikestream_config(batch_size=2, seed=1)).run_statistical(batch_size=2)
        assert base.total_cycles > stream.total_cycles

    def test_run_layer_argument_validation(self, engine):
        plans = engine.optimizer.plan_svgg11()
        conv_plan = plans[1]
        fc_plan = plans[-1]
        with pytest.raises(ValueError, match="spike_counts"):
            engine.run_layer(conv_plan)
        with pytest.raises(ValueError, match="nnz"):
            engine.run_layer(fc_plan)


class TestFunctionalPipeline:
    def test_functional_run_on_tiny_network(self, tiny_network, rng):
        config = spikestream_config(batch_size=2, seed=3)
        engine = SpikeStreamInference(config)
        frames = [rng.random((8, 8, 3)) for _ in range(2)]
        result = engine.run_functional(tiny_network, frames)
        assert result.layer_names == ["conv1", "conv2", "fc1"]
        assert all(layer.batch_size == 2 for layer in result.layers)
        assert result.total_cycles > 0

    def test_functional_baseline_vs_streaming(self, tiny_network, rng):
        frames = [rng.random((8, 8, 3))]
        base = SpikeStreamInference(baseline_config(batch_size=1)).run_functional(tiny_network, frames)
        stream = SpikeStreamInference(spikestream_config(batch_size=1)).run_functional(
            tiny_network, frames
        )
        assert base.total_cycles > stream.total_cycles
