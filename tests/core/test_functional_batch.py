"""Equivalence tests for the batched *functional* execution engine.

``run_functional`` (one vectorized forward pass + the kernels'
``*_perf_batch`` entry points) must reproduce the per-frame loop kept as
``run_functional_reference`` **bit-for-bit**: every per-frame metric array
of the resulting :class:`~repro.core.results.InferenceResult`, at every
layer, compared with exact equality (no tolerances).  A ``smoke``-marked
test shares the check with ``tools/smoke.py`` so the standalone smoke
script and the tier-1 suite can never drift.
"""

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.config import baseline_config, spikestream_config
from repro.core.pipeline import SpikeStreamInference
from repro.eval.sweeps import functional_network
from repro.snn.datasets import SyntheticCIFAR10
from repro.types import Precision, TensorShape

_SMOKE_PATH = Path(__file__).resolve().parents[2] / "tools" / "smoke.py"


def _small_svgg_workload(batch: int, seed: int = 31):
    network = functional_network(seed)
    frames, _ = SyntheticCIFAR10(
        seed=seed, image_shape=TensorShape(16, 16, 3)
    ).sample(batch)
    return network, frames


def assert_results_identical(a, b):
    assert a.layer_names == b.layer_names
    for layer_a, layer_b in zip(a.layers, b.layers):
        for metric in ("cycles", "fpu_utilization", "ipc", "energy_j", "power_w",
                       "dma_bytes"):
            assert np.array_equal(getattr(layer_a, metric), getattr(layer_b, metric)), (
                f"layer {layer_a.name!r} metric {metric!r} differs"
            )
    assert a.identical_to(b)


class TestFunctionalEngineEquivalence:
    @pytest.mark.parametrize(
        "config",
        [
            spikestream_config(Precision.FP16, batch_size=4, seed=9),
            spikestream_config(Precision.FP8, batch_size=3, seed=9),
            baseline_config(Precision.FP16, batch_size=3, seed=9),
        ],
        ids=["spikestream-fp16", "spikestream-fp8", "baseline-fp16"],
    )
    def test_small_svgg_identical(self, config):
        network, frames = _small_svgg_workload(config.batch_size)
        engine = SpikeStreamInference(config)
        vectorized = engine.run_functional(network, frames)
        reference = engine.run_functional_reference(network, frames)
        assert_results_identical(vectorized, reference)

    def test_multi_timestep_identical(self):
        network, frames = _small_svgg_workload(3)
        engine = SpikeStreamInference(spikestream_config(batch_size=3, timesteps=3, seed=4))
        vectorized = engine.run_functional(network, frames)
        reference = engine.run_functional_reference(network, frames)
        assert_results_identical(vectorized, reference)
        # One per-layer entry per (frame, timestep) pair, frame-major.
        assert vectorized.layers[0].batch_size == 9

    def test_firing_rate_override_identical(self):
        network, frames = _small_svgg_workload(2)
        engine = SpikeStreamInference(spikestream_config(batch_size=2, seed=6))
        rates = {"conv2": 0.4, "fc1": 0.2}
        vectorized = engine.run_functional(network, frames, firing_rates=rates)
        reference = engine.run_functional_reference(network, frames, firing_rates=rates)
        assert_results_identical(vectorized, reference)

    def test_precomputed_activity_reused_across_variants(self):
        """One recorded activity feeds several configs, identical results."""
        network, frames = _small_svgg_workload(3)
        stream = SpikeStreamInference(spikestream_config(batch_size=3, seed=2))
        base = SpikeStreamInference(baseline_config(batch_size=3, seed=2))
        activity = stream.record_activity(network, frames)
        assert_results_identical(
            stream.run_functional(network, frames, activity=activity),
            stream.run_functional_reference(network, frames),
        )
        assert_results_identical(
            base.run_functional(network, frames, activity=activity),
            base.run_functional_reference(network, frames),
        )

    def test_mismatched_activity_rejected_before_caching(self):
        """A stale/mismatched activity= must raise, not poison results."""
        network, frames = _small_svgg_workload(3)
        engine = SpikeStreamInference(spikestream_config(batch_size=3, seed=2))
        activity = engine.record_activity(network, frames)
        with pytest.raises(ValueError, match="frame"):
            engine.run_functional(network, frames[:2], activity=activity)
        two_step = SpikeStreamInference(
            spikestream_config(batch_size=3, timesteps=2, seed=2)
        )
        with pytest.raises(ValueError, match="timestep"):
            two_step.run_functional(network, frames, activity=activity)

    def test_tiny_network_fixture_identical(self, tiny_network, rng):
        frames = [rng.random((8, 8, 3)) for _ in range(2)]
        engine = SpikeStreamInference(spikestream_config(batch_size=2, seed=3))
        assert_results_identical(
            engine.run_functional(tiny_network, frames),
            engine.run_functional_reference(tiny_network, frames),
        )


@pytest.mark.smoke
def test_functional_engine_smoke_matrix():
    """The tools/smoke.py functional step, wired into the tier-1 matrix."""
    spec = importlib.util.spec_from_file_location("repro_tools_smoke_fn", _SMOKE_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("repro_tools_smoke_fn", module)
    spec.loader.exec_module(module)
    module.functional_equivalence_check()
