"""Equivalence tests for the vectorized batch execution engine.

The batch engine (`run_statistical` and the kernels' ``*_perf_batch`` entry
points) must reproduce the per-frame reference loop **bit-for-bit** for the
same seed: every per-frame metric array of the resulting
:class:`~repro.core.results.InferenceResult`, at every layer, compared with
exact equality (no tolerances).
"""

import numpy as np
import pytest

from repro.arch.params import ClusterParams
from repro.config import baseline_config, spikestream_config
from repro.core.layer_mapping import KernelKind
from repro.core.pipeline import SpikeStreamInference
from repro.kernels.conv import (
    ConvLayerSpec,
    conv_layer_perf,
    conv_layer_perf_batch,
    window_sum,
    window_sum_batch,
)
from repro.kernels.encode import encode_layer_perf, encode_layer_perf_batch
from repro.kernels.fc import FcLayerSpec, fc_layer_perf, fc_layer_perf_batch
from repro.kernels.scheduler import (
    workload_stealing_schedule,
    workload_stealing_schedule_batch,
)
from repro.types import Precision, TensorShape

_METRICS = ("cycles", "fpu_utilization", "ipc", "energy_j", "power_w", "dma_bytes")


def assert_results_identical(a, b):
    """Exact (bit-for-bit) equality of two InferenceResults."""
    assert a.layer_names == b.layer_names
    for layer_a, layer_b in zip(a.layers, b.layers):
        for metric in _METRICS:
            va, vb = getattr(layer_a, metric), getattr(layer_b, metric)
            assert np.array_equal(va, vb), (
                f"layer {layer_a.name!r} metric {metric!r} differs"
            )
    assert a.identical_to(b)  # the public equality helper agrees


def assert_stats_identical(a, b):
    """Exact equality of two ClusterStats (all core counters and aggregates)."""
    assert a.label == b.label
    assert a.total_cycles == b.total_cycles
    assert a.dma_cycles == b.dma_cycles
    assert a.dma_bytes == b.dma_bytes
    assert a.dma_exposed_cycles == b.dma_exposed_cycles
    assert len(a.core_stats) == len(b.core_stats)
    for core_a, core_b in zip(a.core_stats, b.core_stats):
        assert vars(core_a) == vars(core_b)


class TestBatchScheduler:
    def test_matches_per_frame_schedules(self):
        rng = np.random.default_rng(3)
        costs = rng.integers(1, 50, size=(5, 37)).astype(np.float64)
        batched = workload_stealing_schedule_batch(costs, num_cores=4, atomic_cost_cycles=3.0)
        for frame in range(costs.shape[0]):
            scalar = workload_stealing_schedule(costs[frame], 4, atomic_cost_cycles=3.0)
            assert batched.frame_assignments(frame) == scalar.assignments
            assert np.array_equal(batched.core_busy_cycles[frame], scalar.core_busy_cycles)
            assert np.array_equal(batched.core_finish_cycles[frame], scalar.core_finish_cycles)
            assert np.array_equal(
                batched.atomic_operations_per_core[frame], scalar.atomic_operations_per_core
            )
            assert batched.makespans[frame] == scalar.makespan

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            workload_stealing_schedule_batch(np.ones((2, 3)), num_cores=0)
        with pytest.raises(ValueError):
            workload_stealing_schedule_batch(np.ones(3), num_cores=2)
        with pytest.raises(ValueError):
            workload_stealing_schedule_batch(-np.ones((2, 3)), num_cores=2)


class TestBatchWindowSum:
    def test_matches_per_frame_window_sum(self):
        rng = np.random.default_rng(7)
        values = rng.random((4, 10, 12))
        for kernel, stride in ((3, 1), (2, 2)):
            batched = window_sum_batch(values, kernel, stride)
            for frame in range(values.shape[0]):
                assert np.array_equal(batched[frame], window_sum(values[frame], kernel, stride))

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            window_sum_batch(np.ones((4, 4)), 2, 1)


class TestBatchKernels:
    def _conv_spec(self):
        return ConvLayerSpec(
            name="conv", input_shape=TensorShape(8, 8, 64), in_channels=64,
            out_channels=128, kernel_size=3, stride=1, padding=1,
        )

    @pytest.mark.parametrize("streaming", [False, True])
    def test_conv_batch_matches_scalar(self, streaming):
        spec = self._conv_spec()
        rng = np.random.default_rng(5)
        counts = rng.binomial(64, 0.2, size=(3, 10, 10)).astype(np.float64)
        batched = conv_layer_perf_batch(spec, counts, Precision.FP16, streaming=streaming)
        assert len(batched) == 3
        for frame in range(3):
            scalar = conv_layer_perf(spec, counts[frame], Precision.FP16, streaming=streaming)
            assert_stats_identical(batched[frame], scalar)

    def test_conv_batch_respects_core_count(self):
        spec = self._conv_spec()
        counts = np.full((2, 10, 10), 8.0)
        params = ClusterParams(num_worker_cores=2)
        batched = conv_layer_perf_batch(
            spec, counts, Precision.FP16, streaming=True, params=params, num_active_cores=2
        )
        scalar = conv_layer_perf(
            spec, counts[0], Precision.FP16, streaming=True, params=params, num_active_cores=2
        )
        assert_stats_identical(batched[0], scalar)

    def test_conv_batch_shape_validation(self):
        spec = self._conv_spec()
        with pytest.raises(ValueError, match="spike_counts"):
            conv_layer_perf_batch(spec, np.ones((3, 9, 9)), Precision.FP16, streaming=True)

    def test_fc_batch_matches_scalar(self):
        spec = FcLayerSpec(name="fc", in_features=512, out_features=256)
        nnz = [0, 17, 512]
        batched = fc_layer_perf_batch(spec, nnz, Precision.FP16, streaming=True)
        for frame, count in enumerate(nnz):
            scalar = fc_layer_perf(spec, count, Precision.FP16, streaming=True)
            assert_stats_identical(batched[frame], scalar)

    def test_fc_batch_validates_nnz(self):
        spec = FcLayerSpec(name="fc", in_features=16, out_features=8)
        with pytest.raises(ValueError):
            fc_layer_perf_batch(spec, [4, 17], Precision.FP16, streaming=True)
        with pytest.raises(ValueError):
            fc_layer_perf_batch(spec, [[1, 2]], Precision.FP16, streaming=True)

    def test_encode_batch_replicates_independent_copies(self):
        from repro.kernels.encode import EncodeLayerSpec

        spec = EncodeLayerSpec(
            name="conv1", input_shape=TensorShape(8, 8, 3), in_channels=3, out_channels=16
        )
        batched = encode_layer_perf_batch(spec, 3, Precision.FP16, streaming=True)
        scalar = encode_layer_perf(spec, Precision.FP16, streaming=True)
        assert len(batched) == 3
        for stats in batched:
            assert_stats_identical(stats, scalar)
        # Independent copies: mutating one frame's counters must not leak.
        batched[1].core_stats[0].total_cycles += 1.0
        assert batched[0].core_stats[0].total_cycles == scalar.core_stats[0].total_cycles


class TestEngineEquivalence:
    """The vectorized engine reproduces the per-frame loop bit-for-bit."""

    @pytest.mark.parametrize(
        "config",
        [
            spikestream_config(Precision.FP16, batch_size=5, seed=11),
            spikestream_config(Precision.FP8, batch_size=4, seed=11),
            baseline_config(Precision.FP16, batch_size=4, seed=11),
        ],
        ids=["spikestream-fp16", "spikestream-fp8", "baseline-fp16"],
    )
    def test_full_svgg11_identical(self, config):
        engine = SpikeStreamInference(config)
        vectorized = engine.run_statistical(batch_size=config.batch_size, seed=config.seed)
        reference = engine.run_statistical_reference(
            batch_size=config.batch_size, seed=config.seed
        )
        assert_results_identical(vectorized, reference)

    def test_multi_timestep_identical(self):
        engine = SpikeStreamInference(spikestream_config(batch_size=3, seed=2))
        vectorized = engine.run_statistical(batch_size=3, seed=2, timesteps=4)
        reference = engine.run_statistical_reference(batch_size=3, seed=2, timesteps=4)
        assert_results_identical(vectorized, reference)

    def test_layer_subset_identical(self):
        engine = SpikeStreamInference(spikestream_config(batch_size=4, seed=8))
        plans = [
            p for p in engine.optimizer.plan_svgg11()
            if p.kernel in (KernelKind.CONV, KernelKind.FC)
        ][:3]
        vectorized = engine.run_statistical(plans=plans, batch_size=4, seed=8)
        reference = engine.run_statistical_reference(plans=plans, batch_size=4, seed=8)
        assert_results_identical(vectorized, reference)

    def test_firing_rate_override_identical(self):
        engine = SpikeStreamInference(spikestream_config(batch_size=3, seed=6))
        vectorized = engine.run_statistical(
            batch_size=3, seed=6, firing_rates={"conv6": 0.35}
        )
        reference = engine.run_statistical_reference(
            batch_size=3, seed=6, firing_rates={"conv6": 0.35}
        )
        assert_results_identical(vectorized, reference)
