"""Round-trip serialization of RunConfig, LayerResult and InferenceResult."""

import json

import numpy as np
import pytest

from repro.config import RunConfig, baseline_config, spikestream_config
from repro.core.pipeline import SpikeStreamInference
from repro.core.results import InferenceResult, LayerResult, PER_FRAME_METRICS
from repro.types import OptimizationFlag, Precision


def _layer_result(batch_size: int = 3) -> LayerResult:
    rng = np.random.default_rng(7)
    metrics = {metric: rng.random(batch_size) * 1e4 for metric in PER_FRAME_METRICS}
    return LayerResult(
        name="conv2",
        kernel="conv",
        precision=Precision.FP8,
        streaming=True,
        clock_hz=1.0e9,
        **metrics,
    )


class TestRunConfigSerialization:
    def test_round_trip_preserves_every_field(self):
        config = RunConfig(
            precision=Precision.FP8,
            optimizations=OptimizationFlag.baseline(),
            batch_size=32,
            timesteps=7,
            seed=99,
            index_bytes=4,
        )
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_round_trip_through_json(self):
        config = spikestream_config(Precision.FP16, batch_size=2, seed=5)
        assert RunConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config

    def test_optimization_flags_stored_by_name(self):
        data = baseline_config().to_dict()
        assert "STREAMING_ACCELERATION" not in data["optimizations"]
        assert "TENSOR_COMPRESSION" in data["optimizations"]
        data = spikestream_config().to_dict()
        assert "STREAMING_ACCELERATION" in data["optimizations"]

    def test_unknown_flag_rejected(self):
        data = spikestream_config().to_dict()
        data["optimizations"] = ["NOT_A_FLAG"]
        with pytest.raises(ValueError, match="unknown optimization flag"):
            RunConfig.from_dict(data)

    def test_fingerprint_distinguishes_configs(self):
        base = spikestream_config(Precision.FP16, batch_size=4)
        assert base.fingerprint() == spikestream_config(Precision.FP16, batch_size=4).fingerprint()
        assert base.fingerprint() != base.with_precision(Precision.FP8).fingerprint()
        assert base.fingerprint() != base.as_baseline().fingerprint()
        assert base.fingerprint() != spikestream_config(
            Precision.FP16, batch_size=8
        ).fingerprint()
        assert base.fingerprint() != spikestream_config(
            Precision.FP16, batch_size=4, seed=1
        ).fingerprint()


class TestLayerResultSerialization:
    def test_round_trip_is_bit_for_bit(self):
        original = _layer_result()
        restored = LayerResult.from_dict(original.to_dict())
        assert restored.identical_to(original)
        assert restored.precision is Precision.FP8
        assert restored.streaming is True
        assert restored.clock_hz == original.clock_hz

    def test_round_trip_through_json(self):
        original = _layer_result()
        restored = LayerResult.from_dict(json.loads(json.dumps(original.to_dict())))
        assert restored.identical_to(original)

    def test_every_per_frame_metric_serialized(self):
        data = _layer_result(batch_size=2).to_dict()
        for metric in PER_FRAME_METRICS:
            assert len(data[metric]) == 2


class TestInferenceResultSerialization:
    @pytest.fixture(scope="class")
    def result(self) -> InferenceResult:
        # A real engine run, so the per-frame arrays carry the ClusterStats
        # metrics (cycles, utilization, IPC, energy, power, DMA bytes) of
        # every S-VGG11 layer.
        engine = SpikeStreamInference(spikestream_config(batch_size=2, seed=13))
        return engine.run_statistical(batch_size=2, seed=13)

    def test_round_trip_is_bit_for_bit(self, result):
        restored = InferenceResult.from_dict(result.to_dict())
        assert restored.identical_to(result)
        assert restored.config == result.config
        assert restored.layer_names == result.layer_names

    def test_round_trip_through_json(self, result):
        restored = InferenceResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored.identical_to(result)
        assert restored.summary() == result.summary()
        assert restored.per_layer_table() == result.per_layer_table()

    def test_restored_aggregates_match(self, result):
        restored = InferenceResult.from_dict(result.to_dict())
        assert restored.total_cycles == result.total_cycles
        assert restored.total_energy_j == result.total_energy_j
        assert restored.network_fpu_utilization == result.network_fpu_utilization
