"""Tests for the per-core and cluster-level cycle accounting."""

import pytest

from repro.arch.cluster import SnitchCluster
from repro.arch.core import SnitchCore
from repro.arch.fpu import FpuModel
from repro.arch.frep import FrepConfig, FrepUnit
from repro.arch.params import ClusterParams
from repro.arch.trace import ClusterStats, CoreStats
from repro.types import Precision


class TestFpuModel:
    def test_simd_widths(self):
        fpu = FpuModel()
        assert fpu.simd_width(Precision.FP64) == 1
        assert fpu.simd_width(Precision.FP16) == 4
        assert fpu.simd_width(Precision.FP8) == 8

    def test_groups_for_channels_rounds_up(self):
        fpu = FpuModel()
        assert fpu.groups_for_channels(512, Precision.FP16) == 128
        assert fpu.groups_for_channels(10, Precision.FP8) == 2

    def test_issue_accounting(self):
        fpu = FpuModel()
        fpu.issue(Precision.FP16, 10)
        fpu.issue(Precision.FP8, 5)
        assert fpu.total_ops == 15
        assert fpu.elementwise_ops(Precision.FP16) == 40
        fpu.reset()
        assert fpu.total_ops == 0

    def test_invalid_inputs(self):
        fpu = FpuModel()
        with pytest.raises(ValueError):
            fpu.groups_for_channels(0, Precision.FP16)
        with pytest.raises(ValueError):
            fpu.issue(Precision.FP16, -1)


class TestFrepUnit:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            FrepConfig(num_instructions=0, iterations=1)
        with pytest.raises(ValueError):
            FrepConfig(num_instructions=1, iterations=-1)

    def test_execute_counts_fp_instructions(self):
        unit = FrepUnit()
        issued = unit.execute(FrepConfig(num_instructions=2, iterations=10))
        assert issued == 20
        assert unit.loops_executed == 1
        assert unit.fp_instructions_issued == 20

    def test_buffer_size_limit(self):
        unit = FrepUnit()
        with pytest.raises(ValueError):
            unit.execute(FrepConfig(num_instructions=32, iterations=1))


class TestSnitchCore:
    def test_sequential_block_accumulates_cycles(self):
        core = SnitchCore()
        cycles = core.sequential_block(int_instructions=10, fp_instructions=2, stall_cycles=3)
        assert cycles == 15
        assert core.stats.total_cycles == 15
        assert core.stats.instructions == 12
        assert core.stats.fpu_busy_cycles == 2

    def test_decoupled_block_takes_max(self):
        core = SnitchCore()
        cycles = core.decoupled_block(int_instructions=10, fp_cycles=30, fp_instructions=20)
        assert cycles == 30
        assert core.stats.fpu_busy_cycles == 20
        # Utilization reflects the overlapped execution.
        assert core.stats.fpu_utilization == pytest.approx(20 / 30)

    def test_decoupled_block_int_bound(self):
        core = SnitchCore()
        cycles = core.decoupled_block(int_instructions=50, fp_cycles=10, fp_instructions=10)
        assert cycles == 50

    def test_decoupled_rejects_fp_instrs_above_cycles(self):
        core = SnitchCore()
        with pytest.raises(ValueError):
            core.decoupled_block(fp_cycles=5, fp_instructions=6)

    def test_stall_and_atomic(self):
        core = SnitchCore()
        core.stall(7)
        core.atomic_operation()
        assert core.stats.total_cycles == 7 + core.costs.atomic_operation_cycles
        assert core.stats.atomic_operations == 1

    def test_negative_values_rejected(self):
        core = SnitchCore()
        with pytest.raises(ValueError):
            core.sequential_block(int_instructions=-1)

    def test_ssrs_match_cluster_params(self):
        core = SnitchCore()
        assert len(core.ssrs) == 3
        assert len(core.indirect_ssrs) == 2
        assert core.ssr(0).supports_indirect

    def test_reset(self):
        core = SnitchCore()
        core.sequential_block(int_instructions=5)
        core.reset()
        assert core.stats.total_cycles == 0


class TestCoreStats:
    def test_ipc_and_utilization(self):
        stats = CoreStats(int_instructions=60, fp_instructions=20, total_cycles=100,
                          fpu_busy_cycles=20)
        assert stats.ipc == pytest.approx(0.8)
        assert stats.fpu_utilization == pytest.approx(0.2)

    def test_zero_cycles_edge_case(self):
        stats = CoreStats()
        assert stats.ipc == 0.0
        assert stats.fpu_utilization == 0.0

    def test_merge_adds_counters(self):
        a = CoreStats(core_id=1, int_instructions=10, total_cycles=20)
        b = CoreStats(core_id=1, int_instructions=5, total_cycles=10)
        merged = a.merge(b)
        assert merged.int_instructions == 15
        assert merged.total_cycles == 30
        assert merged.core_id == 1


class TestClusterStats:
    def _make(self, cycles_per_core, label="test"):
        cores = [
            CoreStats(core_id=i, total_cycles=c, fpu_busy_cycles=c / 2, int_instructions=c / 2,
                      fp_instructions=c / 2)
            for i, c in enumerate(cycles_per_core)
        ]
        return ClusterStats(core_stats=cores, total_cycles=max(cycles_per_core), label=label)

    def test_compute_cycles_is_max_over_cores(self):
        stats = self._make([100, 200, 150])
        assert stats.compute_cycles == 200

    def test_utilization_relative_to_total(self):
        stats = self._make([100, 100])
        assert stats.fpu_utilization == pytest.approx(0.5)

    def test_merge_accumulates_layers(self):
        a = self._make([100, 100])
        b = self._make([50, 60])
        merged = a.merge(b)
        assert merged.total_cycles == 160
        assert merged.core_stats[0].total_cycles == 150

    def test_merge_rejects_core_count_mismatch(self):
        with pytest.raises(ValueError):
            self._make([1, 2]).merge(self._make([1, 2, 3]))

    def test_runtime_seconds(self):
        stats = self._make([1000])
        assert stats.runtime_seconds(1e9) == pytest.approx(1e-6)


class TestSnitchCluster:
    def test_construction(self):
        cluster = SnitchCluster()
        assert cluster.num_cores == 8
        assert len(cluster.cores) == 8

    def test_finalize_hides_dma_behind_compute(self):
        cluster = SnitchCluster()
        cluster.cores[0].sequential_block(int_instructions=10_000)
        cluster.dma.submit_1d("tile", 64 * 100)  # ~120 cycles, fully hidden
        stats = cluster.finalize(label="layer")
        assert stats.dma_exposed_cycles == 0
        assert stats.total_cycles == pytest.approx(10_000)

    def test_finalize_exposes_dma_when_compute_short(self):
        cluster = SnitchCluster()
        cluster.cores[0].sequential_block(int_instructions=10)
        cluster.dma.submit_1d("tile", 64 * 10_000)
        stats = cluster.finalize()
        assert stats.dma_exposed_cycles > 0
        assert stats.total_cycles > stats.compute_cycles - 1

    def test_reset(self):
        cluster = SnitchCluster()
        cluster.cores[0].sequential_block(int_instructions=10)
        cluster.dma.submit_1d("tile", 100)
        cluster.tcdm.allocate("a", 64)
        cluster.reset()
        assert cluster.cores[0].stats.total_cycles == 0
        assert cluster.dma.total_bytes == 0
        assert cluster.tcdm.used_bytes == 0

    def test_conflict_factor_uses_all_cores_by_default(self):
        cluster = SnitchCluster(params=ClusterParams(num_worker_cores=4))
        assert cluster.conflict_stall_factor() == pytest.approx(
            cluster.tcdm.conflict_stall_factor(4)
        )
