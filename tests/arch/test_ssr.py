"""Tests for the stream-register model, including an address-generation oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.params import ClusterParams
from repro.arch.ssr import (
    AffineStreamConfig,
    IndirectStreamConfig,
    StreamRegister,
    make_core_stream_registers,
)


class TestAffineStreamConfig:
    def test_1d_stream(self):
        config = AffineStreamConfig(base_address=100, bounds=[4], strides=[8])
        assert config.length == 4
        assert config.addresses().tolist() == [100, 108, 116, 124]

    def test_2d_stream_inner_dimension_fastest(self):
        config = AffineStreamConfig(base_address=0, bounds=[2, 3], strides=[8, 100])
        assert config.addresses().tolist() == [0, 8, 100, 108, 200, 208]

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AffineStreamConfig(base_address=0, bounds=[2, 2], strides=[8])

    def test_zero_bound_rejected(self):
        with pytest.raises(ValueError):
            AffineStreamConfig(base_address=0, bounds=[0], strides=[8])

    @settings(max_examples=50, deadline=None)
    @given(
        base=st.integers(0, 10_000),
        bounds=st.lists(st.integers(1, 5), min_size=1, max_size=4),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_addresses_match_nested_loop_oracle(self, base, bounds, seed):
        rng = np.random.default_rng(seed)
        strides = [int(s) for s in rng.integers(1, 64, size=len(bounds))]
        config = AffineStreamConfig(base_address=base, bounds=bounds, strides=strides)

        expected = []

        def nest(dim, offset):
            if dim < 0:
                expected.append(base + offset)
                return
            for i in range(bounds[dim]):
                nest(dim - 1, offset + i * strides[dim])

        nest(len(bounds) - 1, 0)
        assert config.addresses().tolist() == expected


class TestIndirectStreamConfig:
    def test_gather_addresses(self):
        config = IndirectStreamConfig(base_address=1000, indices=[3, 0, 7], element_bytes=8)
        assert config.addresses().tolist() == [1024, 1000, 1056]

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            IndirectStreamConfig(base_address=0, indices=[-1], element_bytes=8)

    def test_index_width_respected(self):
        with pytest.raises(ValueError):
            IndirectStreamConfig(base_address=0, indices=[300], element_bytes=8, index_bits=8)


class TestStreamRegister:
    def test_core_has_three_ssrs_two_indirect(self):
        ssrs = make_core_stream_registers()
        assert len(ssrs) == 3
        assert [s.supports_indirect for s in ssrs] == [True, True, False]

    def test_affine_dimension_limit_enforced(self):
        ssr = StreamRegister(index=0, supports_indirect=True)
        with pytest.raises(ValueError):
            ssr.configure(AffineStreamConfig(base_address=0, bounds=[1] * 5, strides=[8] * 5))

    def test_indirect_rejected_on_affine_only_register(self):
        ssr = StreamRegister(index=2, supports_indirect=False)
        with pytest.raises(ValueError, match="does not support indirect"):
            ssr.configure(IndirectStreamConfig(base_address=0, indices=[1], element_bytes=8))

    def test_unsupported_index_width_rejected(self):
        ssr = StreamRegister(index=0, supports_indirect=True)
        with pytest.raises(ValueError, match="not supported"):
            ssr.configure(
                IndirectStreamConfig(base_address=0, indices=[1], element_bytes=8, index_bits=12)
            )

    def test_read_all_consumes_stream(self):
        ssr = StreamRegister(index=0, supports_indirect=True)
        ssr.configure(IndirectStreamConfig(base_address=0, indices=[1, 2], element_bytes=8))
        assert ssr.read_all().tolist() == [8, 16]
        assert not ssr.is_active

    def test_read_next_then_exhaustion(self):
        ssr = StreamRegister(index=0, supports_indirect=True)
        ssr.configure(AffineStreamConfig(base_address=0, bounds=[2], strides=[4]))
        assert ssr.read_next() == 0
        assert ssr.read_next() == 4
        with pytest.raises(RuntimeError, match="exhausted"):
            ssr.read_next()

    def test_shadow_register_promotes_after_drain(self):
        """Configuring while active lands in the shadow register (Section II-B)."""
        ssr = StreamRegister(index=0, supports_indirect=True)
        ssr.configure(AffineStreamConfig(base_address=0, bounds=[2], strides=[8]))
        ssr.read_next()
        ssr.configure(AffineStreamConfig(base_address=1000, bounds=[1], strides=[8]))
        assert ssr.read_next() == 8            # finish the first stream
        assert ssr.read_next() == 1000         # shadow config becomes active
        assert ssr.total_streams == 2

    def test_spm_accesses_per_element(self):
        ssr = StreamRegister(index=0, supports_indirect=True)
        affine = AffineStreamConfig(base_address=0, bounds=[2], strides=[8])
        indirect = IndirectStreamConfig(base_address=0, indices=[0, 1], element_bytes=8)
        assert ssr.spm_accesses_per_element(affine) == 1
        assert ssr.spm_accesses_per_element(indirect) == 2

    def test_read_without_configuration_raises(self):
        ssr = StreamRegister(index=0, supports_indirect=True)
        with pytest.raises(RuntimeError):
            ssr.read_next()

    def test_custom_cluster_limits(self):
        params = ClusterParams(max_affine_dims=2)
        ssr = StreamRegister(index=0, supports_indirect=True, params=params)
        with pytest.raises(ValueError):
            ssr.configure(AffineStreamConfig(base_address=0, bounds=[1, 1, 1], strides=[1, 1, 1]))
