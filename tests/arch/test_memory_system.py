"""Tests for the TCDM, instruction cache and DMA models."""

import pytest

from repro.arch.dma import DmaEngine, DmaTransfer
from repro.arch.icache import InstructionCache
from repro.arch.params import ClusterParams, CostModelParams
from repro.arch.tcdm import Tcdm, TcdmAllocationError


class TestTcdmAllocation:
    def test_capacity_and_free_bytes(self):
        tcdm = Tcdm()
        assert tcdm.capacity_bytes == 128 * 1024
        tcdm.allocate("weights", 1000)
        assert tcdm.used_bytes >= 1000
        assert tcdm.free_bytes <= tcdm.capacity_bytes - 1000

    def test_alignment(self):
        tcdm = Tcdm()
        tcdm.allocate("a", 3)
        buffer = tcdm.allocate("b", 8, align=8)
        assert buffer.offset % 8 == 0

    def test_overflow_raises(self):
        tcdm = Tcdm()
        with pytest.raises(TcdmAllocationError):
            tcdm.allocate("huge", 1024 * 1024)

    def test_duplicate_name_rejected(self):
        tcdm = Tcdm()
        tcdm.allocate("a", 8)
        with pytest.raises(ValueError):
            tcdm.allocate("a", 8)

    def test_reset_frees_everything(self):
        tcdm = Tcdm()
        tcdm.allocate("a", 1024)
        tcdm.reset()
        assert tcdm.used_bytes == 0
        assert tcdm.buffers() == []

    def test_buffers_sorted_by_offset(self):
        tcdm = Tcdm()
        tcdm.allocate("a", 16)
        tcdm.allocate("b", 16)
        names = [b.name for b in tcdm.buffers()]
        assert names == ["a", "b"]


class TestTcdmConflicts:
    def test_bank_mapping_interleaves_words(self):
        tcdm = Tcdm()
        assert tcdm.bank_of(0) == 0
        assert tcdm.bank_of(8) == 1
        assert tcdm.bank_of(8 * 32) == 0

    def test_single_requester_never_stalls(self):
        assert Tcdm().conflict_stall_factor(1) == pytest.approx(1.0)

    def test_stall_factor_increases_with_requesters(self):
        tcdm = Tcdm()
        factors = [tcdm.conflict_stall_factor(k) for k in (1, 2, 4, 8)]
        assert factors == sorted(factors)
        # Eight cores on 32 banks collide only mildly (~10 % slowdown).
        assert 1.05 < factors[-1] < 1.25

    def test_invalid_requester_count(self):
        with pytest.raises(ValueError):
            Tcdm().conflict_stall_factor(0)

    def test_record_accesses(self):
        tcdm = Tcdm()
        tcdm.record_accesses(10)
        tcdm.record_accesses(5)
        assert tcdm.total_accesses == 15
        with pytest.raises(ValueError):
            tcdm.record_accesses(-1)


class TestInstructionCache:
    def test_kernel_fits(self):
        icache = InstructionCache()
        assert icache.kernel_fits(4 * 1024)
        assert not icache.kernel_fits(16 * 1024)

    def test_miss_cycles_grow_with_instructions_and_tiles(self):
        icache = InstructionCache()
        small = icache.miss_cycles(1_000, tiles=1)
        large = icache.miss_cycles(1_000_000, tiles=1)
        more_tiles = icache.miss_cycles(1_000, tiles=4)
        assert large > small
        assert more_tiles > small

    def test_miss_cycles_are_small_fraction_of_execution(self):
        """The gap-to-ideal contribution of the i-cache must stay modest."""
        icache = InstructionCache()
        instructions = 1_000_000
        assert icache.miss_cycles(instructions, tiles=8) < 0.05 * instructions

    def test_negative_inputs_rejected(self):
        icache = InstructionCache()
        with pytest.raises(ValueError):
            icache.miss_cycles(-1)
        with pytest.raises(ValueError):
            icache.miss_cycles(1, tiles=-1)


class TestDmaEngine:
    def test_transfer_cycles_at_bus_width(self):
        dma = DmaEngine()
        transfer = DmaTransfer(name="tile", bytes_moved=6400)
        cycles = dma.transfer_cycles(transfer)
        assert cycles == pytest.approx(6400 / 64 + 20)

    def test_2d_transfer_pays_setup_per_row(self):
        dma = DmaEngine()
        flat = dma.submit_1d("flat", 64 * 100)
        dma.reset()
        strided = dma.submit_2d("im2row", bytes_per_row=64, rows=100)
        assert strided > flat

    def test_byte_accounting(self):
        dma = DmaEngine()
        dma.submit_1d("in", 1000)
        dma.submit_1d("out", 500, is_write_back=True)
        assert dma.total_bytes == 1500
        assert dma.bytes_read == 1000
        assert dma.bytes_written == 500
        assert dma.total_cycles > 0

    def test_reset_clears_log(self):
        dma = DmaEngine()
        dma.submit_1d("in", 128)
        dma.reset()
        assert dma.total_bytes == 0
        assert dma.transfers == []

    def test_invalid_transfers_rejected(self):
        with pytest.raises(ValueError):
            DmaTransfer(name="bad", bytes_moved=-1)
        with pytest.raises(ValueError):
            DmaTransfer(name="bad", bytes_moved=1, rows=0)
