"""Tests for the cluster and cost-model parameters."""

import pytest

from repro.arch.params import ClusterParams, CostModelParams, DEFAULT_CLUSTER, DEFAULT_COSTS


class TestClusterParams:
    def test_defaults_match_paper_architecture(self):
        params = DEFAULT_CLUSTER
        assert params.num_worker_cores == 8
        assert params.clock_hz == 1.0e9
        assert params.spm_bytes == 128 * 1024
        assert params.spm_banks == 32
        assert params.icache_bytes == 8 * 1024
        assert params.dma_bus_bits == 512
        assert params.num_stream_registers == 3
        assert params.num_indirect_stream_registers == 2
        assert params.max_affine_dims == 4

    def test_derived_quantities(self):
        assert DEFAULT_CLUSTER.cycle_time_s == pytest.approx(1e-9)
        assert DEFAULT_CLUSTER.dma_bus_bytes == 64
        assert DEFAULT_CLUSTER.bank_bytes == 4 * 1024

    def test_indirect_cannot_exceed_total_srs(self):
        with pytest.raises(ValueError):
            ClusterParams(num_stream_registers=2, num_indirect_stream_registers=3)

    def test_spm_must_divide_into_banks(self):
        with pytest.raises(ValueError):
            ClusterParams(spm_bytes=100, spm_banks=32)

    def test_positive_core_count_required(self):
        with pytest.raises(ValueError):
            ClusterParams(num_worker_cores=0)


class TestCostModelParams:
    def test_baseline_listing_has_eight_instructions(self):
        assert DEFAULT_COSTS.baseline_spva_instrs_per_element == 8

    def test_baseline_cycles_include_stalls(self):
        costs = DEFAULT_COSTS
        assert costs.baseline_cycles_per_element == pytest.approx(
            costs.baseline_spva_instrs_per_element + costs.baseline_spva_stall_cycles_per_element
        )

    def test_streaming_cheaper_than_baseline_per_element(self):
        assert DEFAULT_COSTS.streaming_cycles_per_element < DEFAULT_COSTS.baseline_cycles_per_element

    def test_streaming_at_least_one_cycle(self):
        with pytest.raises(ValueError):
            CostModelParams(streaming_cycles_per_element=0.5)

    def test_dense_baseline_cycles(self):
        costs = DEFAULT_COSTS
        assert costs.dense_baseline_cycles_per_mac == pytest.approx(
            costs.dense_baseline_instrs_per_mac + costs.dense_baseline_stall_cycles_per_mac
        )

    def test_ideal_per_element_speedup_in_paper_band(self):
        """Baseline/streaming per-element ratio should sit near the paper's ~7x ideal."""
        ratio = DEFAULT_COSTS.baseline_cycles_per_element / DEFAULT_COSTS.streaming_cycles_per_element
        assert 6.0 <= ratio <= 9.0
