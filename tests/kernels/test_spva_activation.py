"""Tests for the SpVA cost primitives and the fused activation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.params import DEFAULT_COSTS
from repro.kernels.activation import activation_cost_per_group, fused_lif_activation
from repro.kernels.spva import baseline_spva_cost, spva_gather_accumulate, streaming_spva_cost
from repro.snn.neuron import LIFParameters, LIFState, lif_step
from repro.types import Precision


class TestSpvaGather:
    def test_matches_dense_sum(self, rng):
        weights = rng.normal(size=(32, 16))
        idcs = np.array([3, 7, 20])
        expected = weights[3] + weights[7] + weights[20]
        assert np.allclose(spva_gather_accumulate(weights, idcs), expected)

    def test_empty_indices_give_zero(self, rng):
        weights = rng.normal(size=(8, 4))
        assert np.array_equal(spva_gather_accumulate(weights, np.array([])), np.zeros(4))

    def test_out_of_range_rejected(self, rng):
        with pytest.raises(ValueError):
            spva_gather_accumulate(rng.normal(size=(4, 2)), np.array([4]))

    def test_requires_2d_weights(self, rng):
        with pytest.raises(ValueError):
            spva_gather_accumulate(rng.normal(size=8), np.array([0]))


class TestSpvaCosts:
    def test_baseline_cycles_linear_in_length(self):
        cost = baseline_spva_cost(np.array([0.0, 10.0, 20.0]))
        deltas = np.diff(cost.cycles)
        assert deltas[0] == pytest.approx(deltas[1])
        assert deltas[0] == pytest.approx(10 * DEFAULT_COSTS.baseline_cycles_per_element)

    def test_baseline_fp_fraction_matches_listing(self):
        cost = baseline_spva_cost(100.0)
        assert float(cost.fp_instructions) == pytest.approx(100.0)
        assert float(cost.int_instructions) > 100.0 * 6

    def test_streaming_hides_setup_under_long_streams(self):
        short = streaming_spva_cost(1.0)
        long = streaming_spva_cost(100.0)
        # For short streams the integer setup dominates; for long streams the
        # per-element streaming time dominates.
        assert float(short.cycles) > 1.0 * DEFAULT_COSTS.streaming_cycles_per_element
        expected_long = (
            100.0 * DEFAULT_COSTS.streaming_cycles_per_element + DEFAULT_COSTS.stream_startup_cycles
        )
        assert float(long.cycles) == pytest.approx(expected_long)

    def test_zero_length_stream_skips_fp_entirely(self):
        cost = streaming_spva_cost(0.0)
        assert float(cost.fp_instructions) == 0.0
        assert float(cost.ssr_spm_accesses) == 0.0
        assert float(cost.cycles) < DEFAULT_COSTS.spva_address_calc_int_instrs + 2

    def test_conflict_factor_scales_streaming_time(self):
        clean = streaming_spva_cost(50.0, conflict_factor=1.0)
        congested = streaming_spva_cost(50.0, conflict_factor=1.2)
        assert float(congested.cycles) > float(clean.cycles)

    def test_conflict_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            streaming_spva_cost(np.array([1.0]), conflict_factor=0.9)

    def test_negative_lengths_rejected(self):
        with pytest.raises(ValueError):
            baseline_spva_cost(np.array([-1.0]))
        with pytest.raises(ValueError):
            streaming_spva_cost(np.array([-1.0]))

    def test_total_sums_elementwise_costs(self):
        lengths = np.array([1.0, 5.0, 9.0])
        cost = baseline_spva_cost(lengths)
        total = cost.total()
        assert float(total.cycles) == pytest.approx(float(np.sum(cost.cycles)))

    @settings(max_examples=50, deadline=None)
    @given(length=st.integers(1, 4096))
    def test_streaming_always_faster_than_baseline(self, length):
        base = baseline_spva_cost(float(length))
        stream = streaming_spva_cost(float(length))
        assert float(stream.cycles) < float(base.cycles)

    @settings(max_examples=50, deadline=None)
    @given(short=st.integers(0, 500), longer=st.integers(0, 500))
    def test_speedup_monotone_in_stream_length(self, short, longer):
        """The streaming advantage never shrinks as streams get longer."""
        if short > longer:
            short, longer = longer, short
        if short == longer:
            return
        def speedup(n):
            if n == 0:
                return 1.0
            return float(baseline_spva_cost(float(n)).cycles) / float(
                streaming_spva_cost(float(n)).cycles
            )
        assert speedup(longer) >= speedup(short) - 1e-9


class TestFusedActivation:
    def test_matches_lif_step_at_full_precision(self, rng):
        lif = LIFParameters(alpha=0.85, v_threshold=0.7)
        membrane = rng.normal(size=(4, 4, 8))
        currents = rng.normal(size=(4, 4, 8))
        new_membrane, spikes = fused_lif_activation(membrane, currents, lif, Precision.FP64)
        ref_state, ref_spikes = lif_step(LIFState(membrane=membrane.copy()), currents, lif)
        assert np.array_equal(spikes, ref_spikes)
        assert np.allclose(new_membrane, ref_state.membrane)

    def test_quantization_changes_results_only_slightly(self, rng):
        lif = LIFParameters()
        membrane = rng.normal(size=100)
        currents = rng.normal(size=100)
        full, _ = fused_lif_activation(membrane, currents, lif, Precision.FP64)
        half, _ = fused_lif_activation(membrane, currents, lif, Precision.FP16)
        assert np.allclose(full, half, atol=0.05)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fused_lif_activation(np.zeros(3), np.zeros(4), LIFParameters())

    def test_fp8_activation_costs_more_integer_work(self):
        fp16_int, fp16_fp = activation_cost_per_group(Precision.FP16)
        fp8_int, fp8_fp = activation_cost_per_group(Precision.FP8)
        assert fp8_int > fp16_int
        assert fp8_fp == fp16_fp
