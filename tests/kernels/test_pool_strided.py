"""Tests for the pooling kernel and the strided-indirect extension."""

import numpy as np
import pytest

from repro.arch.ssr import StridedIndirectStreamConfig, StreamRegister
from repro.formats.convert import compress_ifmap, decompress_ifmap
from repro.kernels.conv import ConvLayerSpec, conv_layer_perf
from repro.kernels.pool import PoolLayerSpec, pool_layer_functional, pool_layer_perf
from repro.kernels.spva import streaming_spva_cost
from repro.snn.reference import maxpool2d_hwc
from repro.types import Precision, TensorShape


class TestPoolFunctional:
    def test_matches_reference_pooling(self, rng):
        dense = rng.random((8, 8, 6)) < 0.3
        spec = PoolLayerSpec(name="pool", input_shape=TensorShape(8, 8, 6))
        pooled = pool_layer_functional(spec, compress_ifmap(dense))
        expected = maxpool2d_hwc(dense, 2, 2)
        assert np.array_equal(decompress_ifmap(pooled), expected)

    def test_shape_mismatch_rejected(self, rng):
        spec = PoolLayerSpec(name="pool", input_shape=TensorShape(8, 8, 6))
        wrong = compress_ifmap(rng.random((4, 4, 6)) < 0.5)
        with pytest.raises(ValueError):
            pool_layer_functional(spec, wrong)

    def test_output_shape(self):
        spec = PoolLayerSpec(name="pool", input_shape=TensorShape(9, 9, 3), kernel_size=3, stride=3)
        assert spec.output_shape == TensorShape(3, 3, 3)
        with pytest.raises(ValueError):
            PoolLayerSpec(name="bad", input_shape=TensorShape(2, 2, 1), kernel_size=4).output_shape


class TestPoolPerf:
    def test_cycles_scale_with_activity(self, rng):
        spec = PoolLayerSpec(name="pool", input_shape=TensorShape(16, 16, 32))
        sparse = rng.binomial(32, 0.05, size=(16, 16)).astype(float)
        dense = rng.binomial(32, 0.6, size=(16, 16)).astype(float)
        assert (
            pool_layer_perf(spec, dense).total_cycles > pool_layer_perf(spec, sparse).total_cycles
        )

    def test_no_fp_work(self, rng):
        spec = PoolLayerSpec(name="pool", input_shape=TensorShape(8, 8, 16))
        counts = rng.binomial(16, 0.3, size=(8, 8)).astype(float)
        stats = pool_layer_perf(spec, counts)
        assert stats.total_fp_instructions == 0
        assert stats.fpu_utilization == 0.0

    def test_counts_shape_validated(self):
        spec = PoolLayerSpec(name="pool", input_shape=TensorShape(8, 8, 16))
        with pytest.raises(ValueError):
            pool_layer_perf(spec, np.zeros((4, 4)))

    def test_pooling_much_cheaper_than_conv(self, rng):
        """Pooling must be a negligible fraction of a conv layer's cycles."""
        conv_spec = ConvLayerSpec(
            name="conv", input_shape=TensorShape(16, 16, 32), in_channels=32, out_channels=32
        )
        counts_unpadded = rng.binomial(32, 0.3, size=(16, 16)).astype(float)
        conv_stats = conv_layer_perf(
            conv_spec, np.pad(counts_unpadded, 1), Precision.FP16, streaming=True
        )
        pool_spec = PoolLayerSpec(name="pool", input_shape=TensorShape(16, 16, 32))
        pool_stats = pool_layer_perf(pool_spec, counts_unpadded)
        assert pool_stats.total_cycles < 0.2 * conv_stats.total_cycles


class TestStridedIndirect:
    def test_address_generation_replays_indices_per_group(self):
        config = StridedIndirectStreamConfig(
            base_address=100, indices=[1, 3], element_bytes=8, group_stride_bytes=64, num_groups=3
        )
        assert config.length == 6
        assert config.addresses().tolist() == [108, 124, 172, 188, 236, 252]

    def test_validation(self):
        with pytest.raises(ValueError):
            StridedIndirectStreamConfig(0, [1], element_bytes=8, group_stride_bytes=8, num_groups=0)
        with pytest.raises(ValueError):
            StridedIndirectStreamConfig(0, [-1], element_bytes=8, group_stride_bytes=8, num_groups=1)

    def test_accepted_by_indirect_capable_register_only(self):
        config = StridedIndirectStreamConfig(0, [0, 1], 8, 64, 2)
        indirect = StreamRegister(index=0, supports_indirect=True)
        indirect.configure(config)
        assert indirect.spm_accesses_per_element(config) == 1
        affine_only = StreamRegister(index=2, supports_indirect=False)
        with pytest.raises(ValueError):
            affine_only.configure(config)

    def test_spva_cost_override(self):
        standard = streaming_spva_cost(100.0)
        strided = streaming_spva_cost(100.0, cycles_per_element=1.15)
        assert float(strided.cycles) < float(standard.cycles)
        with pytest.raises(ValueError):
            streaming_spva_cost(10.0, cycles_per_element=0.5)

    def test_conv_kernel_benefit(self, rng):
        spec = ConvLayerSpec(
            name="conv6", input_shape=TensorShape(8, 8, 512), in_channels=512, out_channels=512
        )
        counts = np.pad(rng.binomial(512, 0.1, size=(8, 8)).astype(float), 1)
        standard = conv_layer_perf(spec, counts, Precision.FP16, streaming=True)
        strided = conv_layer_perf(
            spec, counts, Precision.FP16, streaming=True, strided_indirect=True
        )
        assert strided.total_cycles < standard.total_cycles
        assert strided.fpu_utilization > standard.fpu_utilization

    def test_requires_streaming(self, rng):
        spec = ConvLayerSpec(
            name="c", input_shape=TensorShape(4, 4, 8), in_channels=8, out_channels=8
        )
        counts = np.pad(rng.binomial(8, 0.3, size=(4, 4)).astype(float), 1)
        with pytest.raises(ValueError, match="streaming"):
            conv_layer_perf(spec, counts, Precision.FP16, streaming=False, strided_indirect=True)
