"""Tests for the compressed convolution kernel (functional and performance)."""

import numpy as np
import pytest

from repro.arch.params import ClusterParams
from repro.formats.convert import compress_ifmap, decompress_ifmap
from repro.kernels.conv import ConvLayerSpec, conv_layer_functional, conv_layer_perf, window_sum
from repro.snn.neuron import LIFParameters, LIFState, lif_step
from repro.snn.reference import conv2d_hwc, pad_hwc
from repro.types import Precision, TensorShape


class TestWindowSum:
    def test_matches_naive_implementation(self, rng):
        values = rng.integers(0, 10, size=(9, 11)).astype(float)
        kernel, stride = 3, 2
        result = window_sum(values, kernel, stride)
        out_h = (9 - kernel) // stride + 1
        out_w = (11 - kernel) // stride + 1
        assert result.shape == (out_h, out_w)
        for oy in range(out_h):
            for ox in range(out_w):
                expected = values[oy * stride : oy * stride + kernel, ox * stride : ox * stride + kernel].sum()
                assert result[oy, ox] == pytest.approx(expected)

    def test_kernel_larger_than_map_rejected(self):
        with pytest.raises(ValueError):
            window_sum(np.zeros((2, 2)), 3, 1)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            window_sum(np.zeros(4), 1, 1)


class TestConvLayerSpec:
    def test_shapes(self, small_conv_spec):
        assert small_conv_spec.padded_input_shape == TensorShape(10, 10, 16)
        assert small_conv_spec.output_shape == TensorShape(8, 8, 8)
        assert small_conv_spec.weight_shape == (3, 3, 16, 8)
        assert small_conv_spec.weight_bytes(Precision.FP16) == 3 * 3 * 16 * 8 * 2

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ConvLayerSpec(
                name="bad", input_shape=TensorShape(4, 4, 3), in_channels=4, out_channels=2
            )


class TestConvFunctional:
    def test_matches_dense_golden_reference(self, rng, small_conv_spec, small_compressed_ifmap):
        """The gather-based kernel must equal the dense im2row reference exactly."""
        weights = rng.normal(size=small_conv_spec.weight_shape)
        membrane = rng.normal(size=small_conv_spec.output_shape.as_tuple()) * 0.1
        currents, new_membrane, spikes, compressed_out = conv_layer_functional(
            small_conv_spec, small_compressed_ifmap, weights, membrane
        )
        # Golden model: dense convolution on the decompressed (already padded)
        # ifmap followed by the LIF update.
        dense_input = decompress_ifmap(small_compressed_ifmap)
        reference_currents = conv2d_hwc(dense_input, weights, stride=1, padding=0)
        assert np.allclose(currents, reference_currents)
        ref_state, ref_spikes = lif_step(
            LIFState(membrane=membrane.copy()), reference_currents, small_conv_spec.lif
        )
        assert np.array_equal(spikes, ref_spikes)
        assert np.allclose(new_membrane, ref_state.membrane)

    def test_compressed_output_round_trips(self, rng, small_conv_spec, small_compressed_ifmap):
        weights = rng.normal(size=small_conv_spec.weight_shape)
        _, _, spikes, compressed_out = conv_layer_functional(
            small_conv_spec, small_compressed_ifmap, weights
        )
        assert np.array_equal(decompress_ifmap(compressed_out), spikes)

    def test_empty_ifmap_produces_no_currents(self, rng, small_conv_spec):
        padded = small_conv_spec.padded_input_shape
        empty = compress_ifmap(np.zeros(padded.as_tuple(), dtype=bool))
        weights = rng.normal(size=small_conv_spec.weight_shape)
        currents, _, spikes, _ = conv_layer_functional(small_conv_spec, empty, weights)
        assert np.all(currents == 0)
        assert not spikes.any()

    def test_wrong_weight_shape_rejected(self, rng, small_conv_spec, small_compressed_ifmap):
        with pytest.raises(ValueError):
            conv_layer_functional(
                small_conv_spec, small_compressed_ifmap, rng.normal(size=(3, 3, 16, 4))
            )

    def test_wrong_ifmap_shape_rejected(self, rng, small_conv_spec):
        wrong = compress_ifmap(np.zeros((4, 4, 16), dtype=bool))
        with pytest.raises(ValueError):
            conv_layer_functional(small_conv_spec, wrong, rng.normal(size=small_conv_spec.weight_shape))

    def test_quantized_precision_stays_close_to_reference(
        self, rng, small_conv_spec, small_compressed_ifmap
    ):
        weights = rng.normal(size=small_conv_spec.weight_shape) * 0.1
        full, _, _, _ = conv_layer_functional(
            small_conv_spec, small_compressed_ifmap, weights, precision=Precision.FP64
        )
        # FP16 quantization only affects the activation, not the gathered sums.
        _, _, spikes16, _ = conv_layer_functional(
            small_conv_spec, small_compressed_ifmap, weights, precision=Precision.FP16
        )
        assert spikes16.shape == full.shape


class TestConvPerf:
    def _counts(self, spec, rate, rng):
        unpadded = spec.input_shape
        counts = rng.binomial(unpadded.channels, rate, size=(unpadded.height, unpadded.width))
        return np.pad(counts.astype(float), spec.padding)

    def test_streaming_faster_than_baseline(self, rng, small_conv_spec):
        counts = self._counts(small_conv_spec, 0.3, rng)
        base = conv_layer_perf(small_conv_spec, counts, Precision.FP16, streaming=False)
        stream = conv_layer_perf(small_conv_spec, counts, Precision.FP16, streaming=True)
        assert stream.total_cycles < base.total_cycles
        assert stream.fpu_utilization > base.fpu_utilization

    def test_perf_scales_with_firing_rate(self, rng, small_conv_spec):
        sparse = conv_layer_perf(
            small_conv_spec, self._counts(small_conv_spec, 0.05, rng), Precision.FP16, True
        )
        dense = conv_layer_perf(
            small_conv_spec, self._counts(small_conv_spec, 0.6, rng), Precision.FP16, True
        )
        assert dense.total_cycles > sparse.total_cycles

    def test_fp8_halves_fp_work(self, rng):
        spec = ConvLayerSpec(
            name="deep", input_shape=TensorShape(8, 8, 256), in_channels=256, out_channels=128
        )
        counts = self._counts(spec, 0.2, rng)
        fp16 = conv_layer_perf(spec, counts, Precision.FP16, streaming=True)
        fp8 = conv_layer_perf(spec, counts, Precision.FP8, streaming=True)
        assert fp8.total_fp_instructions == pytest.approx(fp16.total_fp_instructions / 2, rel=0.05)
        assert 1.3 < fp16.total_cycles / fp8.total_cycles <= 2.05

    def test_stats_structure(self, rng, small_conv_spec):
        counts = self._counts(small_conv_spec, 0.3, rng)
        stats = conv_layer_perf(small_conv_spec, counts, Precision.FP16, streaming=True)
        assert len(stats.core_stats) == 8
        assert stats.total_cycles >= stats.compute_cycles
        assert stats.dma_bytes > 0
        assert 0.0 < stats.fpu_utilization < 1.0
        assert "spikestream" in stats.label

    def test_fewer_cores_take_longer(self, rng, small_conv_spec):
        counts = self._counts(small_conv_spec, 0.3, rng)
        eight = conv_layer_perf(small_conv_spec, counts, Precision.FP16, streaming=True)
        two = conv_layer_perf(
            small_conv_spec,
            counts,
            Precision.FP16,
            streaming=True,
            params=ClusterParams(num_worker_cores=2),
            num_active_cores=2,
        )
        assert two.compute_cycles > eight.compute_cycles

    def test_counts_shape_validated(self, rng, small_conv_spec):
        with pytest.raises(ValueError):
            conv_layer_perf(small_conv_spec, np.zeros((3, 3)), Precision.FP16, streaming=True)

    def test_zero_activity_layer_still_has_overhead(self, small_conv_spec):
        padded = small_conv_spec.padded_input_shape
        counts = np.zeros((padded.height, padded.width))
        stats = conv_layer_perf(small_conv_spec, counts, Precision.FP16, streaming=True)
        assert stats.total_cycles > 0
        assert stats.total_fp_instructions > 0  # activation FP work remains
