"""Tests for the FC kernel, the dense encoding kernel and the tiling planner."""

import numpy as np
import pytest

from repro.formats.convert import compress_vector, decompress_ifmap, decompress_vector
from repro.kernels.encode import EncodeLayerSpec, encode_layer_functional, encode_layer_perf
from repro.kernels.fc import FcLayerSpec, fc_layer_functional, fc_layer_perf
from repro.kernels.tiling import plan_conv_tiles, plan_fc_tiles
from repro.snn.neuron import LIFParameters, LIFState, lif_step
from repro.snn.reference import conv2d_hwc, linear
from repro.types import Precision, TensorShape


class TestFcFunctional:
    def test_matches_dense_reference(self, rng, small_fc_spec):
        weights = rng.normal(size=(64, 16))
        dense_input = rng.random(64) < 0.3
        compressed = compress_vector(dense_input)
        membrane = rng.normal(size=16) * 0.1
        currents, new_membrane, spikes, compressed_out = fc_layer_functional(
            small_fc_spec, compressed, weights, membrane
        )
        reference = linear(dense_input.astype(float), weights)
        assert np.allclose(currents, reference)
        ref_state, ref_spikes = lif_step(LIFState(membrane=membrane.copy()), reference, small_fc_spec.lif)
        assert np.array_equal(spikes, ref_spikes)
        assert np.array_equal(decompress_vector(compressed_out), spikes)

    def test_empty_input(self, rng, small_fc_spec):
        weights = rng.normal(size=(64, 16))
        compressed = compress_vector(np.zeros(64, dtype=bool))
        currents, _, spikes, _ = fc_layer_functional(small_fc_spec, compressed, weights)
        assert np.all(currents == 0)
        assert not spikes.any()

    def test_length_mismatch_rejected(self, rng, small_fc_spec):
        with pytest.raises(ValueError):
            fc_layer_functional(
                small_fc_spec, compress_vector(np.zeros(32, dtype=bool)), rng.normal(size=(64, 16))
            )


class TestFcPerf:
    def test_streaming_faster(self, small_fc_spec):
        base = fc_layer_perf(small_fc_spec, nnz=20, precision=Precision.FP16, streaming=False)
        stream = fc_layer_perf(small_fc_spec, nnz=20, precision=Precision.FP16, streaming=True)
        assert stream.compute_cycles < base.compute_cycles

    def test_large_fc_layer_can_be_dma_bound(self):
        """fc1 of S-VGG11 moves 16 MB of FP16 weights; DMA dominates its runtime."""
        spec = FcLayerSpec(name="fc1", in_features=2048, out_features=4096)
        stats = fc_layer_perf(spec, nnz=120, precision=Precision.FP16, streaming=True)
        assert stats.dma_exposed_cycles > 0
        assert stats.total_cycles > stats.compute_cycles

    def test_nnz_bounds_checked(self, small_fc_spec):
        with pytest.raises(ValueError):
            fc_layer_perf(small_fc_spec, nnz=100, precision=Precision.FP16, streaming=True)

    def test_more_spikes_more_cycles(self, small_fc_spec):
        few = fc_layer_perf(small_fc_spec, nnz=2, precision=Precision.FP16, streaming=False)
        many = fc_layer_perf(small_fc_spec, nnz=50, precision=Precision.FP16, streaming=False)
        assert many.compute_cycles > few.compute_cycles


class TestEncodeFunctional:
    def test_matches_reference_conv(self, rng, small_encode_spec):
        image = rng.random((8, 8, 3))
        weights = rng.normal(size=(3, 3, 3, 8))
        currents, new_membrane, spikes, compressed = encode_layer_functional(
            small_encode_spec, image, weights
        )
        reference = conv2d_hwc(image, weights, stride=1, padding=1)
        assert np.allclose(currents, reference)
        assert np.array_equal(decompress_ifmap(compressed), spikes)

    def test_shape_validation(self, rng, small_encode_spec):
        with pytest.raises(ValueError):
            encode_layer_functional(
                small_encode_spec, rng.random((4, 4, 3)), rng.normal(size=(3, 3, 3, 8))
            )
        with pytest.raises(ValueError):
            encode_layer_functional(
                small_encode_spec, rng.random((8, 8, 3)), rng.normal(size=(3, 3, 3, 4))
            )


class TestEncodePerf:
    def test_streaming_faster_on_small_layer(self, small_encode_spec):
        base = encode_layer_perf(small_encode_spec, Precision.FP16, streaming=False)
        stream = encode_layer_perf(small_encode_spec, Precision.FP16, streaming=True)
        assert stream.compute_cycles < base.compute_cycles
        assert stream.fpu_utilization > base.fpu_utilization

    def test_svgg11_first_layer_utilization_in_paper_band(self):
        """Figure 3b: conv1 utilization goes from ~25 % (baseline) to ~53 % (SpikeStream)."""
        spec = EncodeLayerSpec(
            name="conv1", input_shape=TensorShape(32, 32, 3), in_channels=3, out_channels=64
        )
        base = encode_layer_perf(spec, Precision.FP16, streaming=False)
        stream = encode_layer_perf(spec, Precision.FP16, streaming=True)
        assert 0.18 < base.fpu_utilization < 0.32
        assert 0.45 < stream.fpu_utilization < 0.62

    def test_deterministic(self, small_encode_spec):
        a = encode_layer_perf(small_encode_spec, Precision.FP16, streaming=True)
        b = encode_layer_perf(small_encode_spec, Precision.FP16, streaming=True)
        assert a.total_cycles == b.total_cycles


class TestTiling:
    def test_conv_plan_fits_spm(self):
        spec_input = TensorShape(34, 34, 64)
        output = TensorShape(32, 32, 128)
        plan = plan_conv_tiles(
            input_shape=spec_input,
            output_shape=output,
            kernel_size=3,
            compressed_ifmap_bytes=60_000,
            precision=Precision.FP16,
        )
        weight_tile = plan.channels_per_weight_tile * 3 * 3 * 64 * 2
        assert 2 * weight_tile <= 128 * 1024
        assert plan.num_weight_tiles * plan.channels_per_weight_tile >= output.channels
        assert plan.num_ifmap_bands >= 1
        assert plan.dma_bytes_in > plan.weight_bytes  # weights reloaded per band

    def test_weight_tile_is_simd_multiple(self):
        plan = plan_conv_tiles(
            input_shape=TensorShape(10, 10, 512),
            output_shape=TensorShape(8, 8, 512),
            kernel_size=3,
            compressed_ifmap_bytes=20_000,
            precision=Precision.FP8,
        )
        assert plan.channels_per_weight_tile % Precision.FP8.simd_width == 0

    def test_dma_cycles_positive_and_scale_with_traffic(self):
        small = plan_conv_tiles(
            input_shape=TensorShape(10, 10, 64),
            output_shape=TensorShape(8, 8, 64),
            kernel_size=3,
            compressed_ifmap_bytes=5_000,
            precision=Precision.FP16,
        )
        large = plan_conv_tiles(
            input_shape=TensorShape(10, 10, 512),
            output_shape=TensorShape(8, 8, 512),
            kernel_size=3,
            compressed_ifmap_bytes=20_000,
            precision=Precision.FP16,
        )
        assert large.dma_cycles() > small.dma_cycles() > 0

    def test_fc_plan(self):
        plan = plan_fc_tiles(
            in_features=2048,
            out_features=4096,
            compressed_input_bytes=300,
            precision=Precision.FP16,
        )
        assert plan.weight_bytes == 2048 * 4096 * 2
        assert plan.num_weight_tiles >= 1
        assert plan.dma_bytes_in > plan.weight_bytes * 0.99

    def test_invalid_budget_fraction(self):
        with pytest.raises(ValueError):
            plan_fc_tiles(16, 16, 10, Precision.FP16, weight_budget_fraction=1.5)

    def test_ofmap_worst_case_covers_dense_output(self):
        output = TensorShape(8, 8, 128)
        plan = plan_conv_tiles(
            input_shape=TensorShape(10, 10, 64),
            output_shape=output,
            kernel_size=3,
            compressed_ifmap_bytes=1_000,
            precision=Precision.FP16,
        )
        assert plan.ofmap_worst_case_bytes >= output.numel * 2
