"""Tests for the workload-stealing scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.scheduler import workload_stealing_schedule


class TestWorkloadStealing:
    def test_every_rf_processed_exactly_once(self, rng):
        costs = rng.integers(1, 100, size=50).astype(float)
        schedule = workload_stealing_schedule(costs, num_cores=8)
        processed = sorted(i for core in schedule.assignments for i in core)
        assert processed == list(range(50))
        assert schedule.rf_count() == 50

    def test_busy_cycles_sum_to_total_work(self, rng):
        costs = rng.integers(1, 100, size=64).astype(float)
        schedule = workload_stealing_schedule(costs, num_cores=8)
        assert schedule.core_busy_cycles.sum() == pytest.approx(costs.sum())

    def test_makespan_bounds(self, rng):
        """Greedy stealing is within (max cost) of the ideal balanced makespan."""
        costs = rng.integers(1, 200, size=128).astype(float)
        schedule = workload_stealing_schedule(costs, num_cores=8)
        ideal = costs.sum() / 8
        assert schedule.makespan >= ideal
        assert schedule.makespan <= ideal + costs.max() + 8 * 0  # list-scheduling bound

    def test_stealing_beats_static_partition_on_imbalanced_work(self):
        # Front-loaded costs: a static block partition overloads the first core.
        costs = np.concatenate([np.full(32, 100.0), np.full(96, 1.0)])
        stealing = workload_stealing_schedule(costs, num_cores=4)
        static = workload_stealing_schedule(costs, num_cores=4, static=True)
        assert stealing.makespan < static.makespan

    def test_atomic_cost_increases_finish_time(self, rng):
        costs = rng.integers(1, 50, size=40).astype(float)
        without = workload_stealing_schedule(costs, num_cores=4, atomic_cost_cycles=0.0)
        with_atomics = workload_stealing_schedule(costs, num_cores=4, atomic_cost_cycles=4.0)
        assert with_atomics.makespan >= without.makespan
        assert with_atomics.atomic_operations_per_core.sum() == 40

    def test_single_core_processes_everything_sequentially(self):
        costs = [5.0, 10.0, 15.0]
        schedule = workload_stealing_schedule(costs, num_cores=1)
        assert schedule.makespan == pytest.approx(30.0)
        assert schedule.assignments[0] == [0, 1, 2]

    def test_more_cores_than_work(self):
        schedule = workload_stealing_schedule([10.0, 20.0], num_cores=8)
        assert schedule.makespan == pytest.approx(20.0)
        assert schedule.rf_count() == 2

    def test_empty_work(self):
        schedule = workload_stealing_schedule([], num_cores=4)
        assert schedule.makespan == 0.0
        assert schedule.imbalance == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            workload_stealing_schedule([1.0], num_cores=0)
        with pytest.raises(ValueError):
            workload_stealing_schedule([-1.0], num_cores=2)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        count=st.integers(1, 200),
        cores=st.integers(1, 16),
    )
    def test_property_completeness_and_balance(self, seed, count, cores):
        """Each RF is assigned exactly once and no core exceeds the list-scheduling bound."""
        rng = np.random.default_rng(seed)
        costs = rng.integers(1, 1000, size=count).astype(float)
        schedule = workload_stealing_schedule(costs, num_cores=cores)
        processed = sorted(i for core in schedule.assignments for i in core)
        assert processed == list(range(count))
        ideal = costs.sum() / cores
        assert schedule.makespan <= ideal + costs.max()
