"""Session-level tests for functional-mode memoization and store disk bounds.

Covers the ``functional`` scenario registration, ``Session.run_functional``
being served from the :class:`~repro.session.ResultStore` via the
network+frames fingerprint, the shared-activity variant runner, and the
``max_disk_bytes`` oldest-mtime pruning of the persisted store
(``cache_limit="disk:..."``).
"""

import os

import numpy as np
import pytest

from repro.config import spikestream_config
from repro.eval.sweeps import functional_network
from repro.session import (
    ResultStore,
    Session,
    _parse_cache_limit,
    frames_fingerprint,
)
from repro.snn.datasets import SyntheticCIFAR10
from repro.types import TensorShape


def _workload(batch=2, seed=13):
    network = functional_network(seed)
    frames, _ = SyntheticCIFAR10(seed=seed, image_shape=TensorShape(16, 16, 3)).sample(batch)
    return network, frames


class TestParseCacheLimit:
    def test_forms(self):
        assert _parse_cache_limit(None) == (None, None, None)
        assert _parse_cache_limit(10) == (10, None, None)
        assert _parse_cache_limit("25") == (25, None, None)
        assert _parse_cache_limit("64kb") == (None, 64 * 1024, None)
        assert _parse_cache_limit("disk:2MB") == (None, None, 2 * 1024 ** 2)
        assert _parse_cache_limit("100,disk:1gb") == (100, None, 1024 ** 3)
        assert _parse_cache_limit("16kb, disk:64kb") == (None, 16 * 1024, 64 * 1024)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            _parse_cache_limit("disk:many")
        with pytest.raises(ValueError):
            _parse_cache_limit("64 parsecs")


class TestFramesFingerprint:
    def test_sensitive_to_pixels_shape_and_dtype(self, rng):
        frames = rng.random((2, 4, 4, 3))
        base = frames_fingerprint(frames)
        assert base == frames_fingerprint(list(frames))
        changed = frames.copy()
        changed[0, 0, 0, 0] += 1e-9
        assert frames_fingerprint(changed) != base
        assert frames_fingerprint(frames.reshape(1, 2, 16, 3)) != base
        assert frames_fingerprint(frames.astype(np.float32)) != base


class TestRunFunctionalMemoization:
    def test_second_run_is_store_served(self):
        network, frames = _workload()
        with Session() as session:
            first = session.run_functional(network, frames)
            misses = session.store.misses
            second = session.run_functional(network, frames)
            assert session.store.misses == misses
            assert session.store.hits >= 1
            assert first.identical_to(second)

    def test_fingerprint_covers_network_weights_and_frames(self):
        network, frames = _workload()
        with Session() as session:
            config = session.config
            base = session.functional_fingerprint(config, network, frames)
            other_frames = frames + 0.5
            assert session.functional_fingerprint(config, network, other_frames) != base
            # Weight changes happen by rebinding (hashed arrays are frozen
            # so the network's memoized fingerprint can never go stale).
            updated = network.layers[0].weights.copy()
            updated[0, 0, 0, 0] += 1.0
            network.layers[0].weights = updated
            assert session.functional_fingerprint(config, network, frames) != base

    def test_persists_across_sessions(self, tmp_path):
        network, frames = _workload()
        with Session(cache_dir=tmp_path) as session:
            first = session.run_functional(network, frames)
        with Session(cache_dir=tmp_path) as fresh:
            second = fresh.run_functional(network, frames)
            assert fresh.store.hits == 1 and fresh.store.misses == 0
        assert first.identical_to(second)

    def test_variants_share_one_activity(self):
        network, frames = _workload(batch=3)
        with Session() as session:
            variants = session.run_functional_variants(network, frames, seed=3)
            assert set(variants) == {"baseline_fp16", "spikestream_fp16", "spikestream_fp8"}
            engine = session.engine(spikestream_config(batch_size=3, seed=3))
            reference = engine.run_functional_reference(network, frames)
            assert variants["spikestream_fp16"].identical_to(reference)
            # A repeat call is fully store-served.
            misses = session.store.misses
            again = session.run_functional_variants(network, frames, seed=3)
            assert session.store.misses == misses
            assert all(again[key].identical_to(variants[key]) for key in variants)


class TestFunctionalScenarioRegistry:
    def test_registered_with_parameters(self):
        with Session() as session:
            assert "functional" in session.scenarios()
            info = session.describe("functional")
            assert info["kind"] == "experiment"
            assert set(info["params"]) == {"batch_size", "seed", "timesteps"}
            assert "functional_batch" in session.scenarios()


class TestResultStoreDiskBound:
    def _fill(self, store, count, rng, tag=0):
        """Persist ``count`` distinct small results and age their mtimes."""
        from repro.core.pipeline import SpikeStreamInference

        network, frames = _workload(batch=1, seed=17)
        engine = SpikeStreamInference(spikestream_config(batch_size=1, seed=17))
        result = engine.run_functional(network, frames)
        for index in range(count):
            store.put(f"fingerprint-{tag}-{index:03d}", result)
            path = store._path(f"fingerprint-{tag}-{index:03d}")
            stamp = 1_000_000 + tag * 1000 + index
            os.utime(path, (stamp, stamp))
        return result

    def test_prunes_oldest_by_mtime(self, tmp_path, rng):
        store = ResultStore(tmp_path)
        self._fill(store, 4, rng)
        one_file = store._path("fingerprint-0-000").stat().st_size
        bounded = ResultStore(tmp_path, max_disk_bytes=one_file * 2)
        # Construction prunes an oversized directory down to the bound.
        remaining = sorted(path.name for path in tmp_path.glob("*.json"))
        assert remaining == ["fingerprint-0-002.json", "fingerprint-0-003.json"]
        assert bounded.disk_evictions == 2

    def test_put_prunes_but_keeps_newest(self, tmp_path, rng):
        one = self._fill(ResultStore(tmp_path), 1, rng)
        size = next(tmp_path.glob("*.json")).stat().st_size
        bounded = ResultStore(tmp_path, max_disk_bytes=size + size // 2)
        bounded.put("fingerprint-new", one)
        names = {path.name for path in tmp_path.glob("*.json")}
        # The file just written survives even though the directory was over
        # the bound before pruning.
        assert "fingerprint-new.json" in names
        assert len(names) == 1
        assert bounded.disk_evictions == 1

    def test_pruned_entries_resimulate_instead_of_failing(self, tmp_path, rng):
        self._fill(ResultStore(tmp_path), 2, rng)
        size = next(tmp_path.glob("*.json")).stat().st_size
        bounded = ResultStore(tmp_path, max_disk_bytes=size)
        assert bounded.disk_evictions == 1
        # The pruned (oldest) entry is simply a cold-store miss now; the
        # surviving one still serves.
        cold = ResultStore(tmp_path)
        assert cold.get("fingerprint-0-000") is None
        assert cold.get("fingerprint-0-001") is not None

    def test_session_wires_disk_clause(self, tmp_path):
        with Session(cache_dir=tmp_path, cache_limit="disk:3MB") as session:
            assert session.store.max_disk_bytes == 3 * 1024 ** 2
        with pytest.raises(ValueError):
            Session(cache_limit="disk:lots")
