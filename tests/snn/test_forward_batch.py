"""Equivalence tests for the batched SNN forward pass.

``SpikingNetwork.forward_batch`` and the batched reference ops must
reproduce the per-frame golden model: the conv path, pooling, im2row and
the LIF update are bit-for-bit exact per frame; the FC current may differ
in the last ulp (one whole-batch GEMM instead of per-frame vector-matrix
products), so the recorded *spikes* — the only quantity the network
consumes and the performance model reads — are what the network-level
tests gate exactly.
"""

import numpy as np
import pytest

from repro.snn.neuron import LIFParameters, LIFState, lif_step, lif_step_batch
from repro.snn.reference import (
    avgpool2d_hwc,
    avgpool2d_hwc_batch,
    conv2d_hwc,
    conv2d_hwc_batch,
    im2row,
    im2row_batch,
    linear,
    linear_batch,
    maxpool2d_hwc,
    maxpool2d_hwc_batch,
    pad_bhwc,
)


class TestBatchedReferenceOps:
    def test_pad_bhwc_matches_per_frame(self, rng):
        x = rng.random((3, 5, 6, 2))
        padded = pad_bhwc(x, 2)
        assert padded.shape == (3, 9, 10, 2)
        assert np.array_equal(padded[1, 2:-2, 2:-2], x[1])
        assert padded[:, 0].sum() == 0.0
        with pytest.raises(ValueError):
            pad_bhwc(x, -1)

    def test_im2row_batch_matches_per_frame(self, rng):
        x = rng.random((4, 7, 8, 3))
        batched = im2row_batch(x, (3, 3), 1, 1)
        for frame in range(4):
            assert np.array_equal(batched[frame], im2row(x[frame], (3, 3), 1, 1))

    def test_im2row_batch_preserves_spike_dtype(self, rng):
        spikes = rng.random((2, 6, 6, 4)) < 0.4
        rows = im2row_batch(spikes, (3, 3), 1, 1)
        assert rows.dtype == np.bool_
        for frame in range(2):
            assert np.array_equal(rows[frame], im2row(spikes[frame], (3, 3), 1, 1))

    def test_im2row_batch_rejects_non_bhwc(self):
        with pytest.raises(ValueError):
            im2row_batch(np.ones((4, 4, 3)), (2, 2), 1, 0)

    @pytest.mark.parametrize("chunk_frames", [None, 1, 2, 64])
    def test_conv2d_batch_bit_for_bit(self, rng, chunk_frames):
        """Exact per frame, for ANY chunking (GEMM rows are M-invariant)."""
        x = rng.random((5, 8, 8, 6)) < 0.35
        weights = rng.normal(size=(3, 3, 6, 10))
        batched = conv2d_hwc_batch(x, weights, stride=1, padding=1,
                                   chunk_frames=chunk_frames)
        for frame in range(5):
            expected = conv2d_hwc(x[frame], weights, stride=1, padding=1)
            assert np.array_equal(batched[frame], expected)

    def test_conv2d_batch_validates(self, rng):
        weights = rng.normal(size=(3, 3, 6, 10))
        with pytest.raises(ValueError):
            conv2d_hwc_batch(np.ones((8, 8, 6)), weights)
        with pytest.raises(ValueError):
            conv2d_hwc_batch(np.ones((2, 8, 8, 5)), weights)

    def test_linear_batch_last_ulp(self, rng):
        """One whole-batch GEMM: equal to per-frame products to the last ulp."""
        x = rng.random((6, 64)) < 0.2
        weights = rng.normal(size=(64, 16))
        batched = linear_batch(x, weights)
        for frame in range(6):
            expected = linear(x[frame], weights)
            np.testing.assert_allclose(batched[frame], expected, rtol=1e-12, atol=1e-14)

    def test_linear_batch_validates(self, rng):
        with pytest.raises(ValueError):
            linear_batch(np.ones((2, 8)), np.ones(8))
        with pytest.raises(ValueError):
            linear_batch(np.ones((2, 9)), np.ones((8, 4)))

    def test_pools_match_per_frame(self, rng):
        spikes = rng.random((3, 8, 8, 5)) < 0.5
        values = rng.random((3, 8, 8, 5))
        maxed = maxpool2d_hwc_batch(spikes, 2, 2)
        meaned = avgpool2d_hwc_batch(values, 2, 2)
        for frame in range(3):
            assert np.array_equal(maxed[frame], maxpool2d_hwc(spikes[frame], 2, 2))
            assert np.array_equal(meaned[frame], avgpool2d_hwc(values[frame], 2, 2))
        with pytest.raises(ValueError):
            maxpool2d_hwc_batch(spikes[0], 2, 2)
        with pytest.raises(ValueError):
            avgpool2d_hwc_batch(values[0], 2, 2)


class TestLifStepBatch:
    def test_matches_per_frame_lif_step(self, rng):
        params = LIFParameters(alpha=0.9, v_threshold=0.4)
        membranes = rng.normal(size=(5, 6, 6, 4))
        currents = rng.normal(size=(5, 6, 6, 4))
        state, spikes = lif_step_batch(LIFState(membrane=membranes), currents, params)
        for frame in range(5):
            ref_state, ref_spikes = lif_step(
                LIFState(membrane=membranes[frame]), currents[frame], params
            )
            assert np.array_equal(state.membrane[frame], ref_state.membrane)
            assert np.array_equal(spikes[frame], ref_spikes)

    def test_chunking_is_exact(self, rng, monkeypatch):
        import repro.snn.neuron as neuron

        params = LIFParameters()
        membranes = rng.normal(size=(3, 40))
        currents = rng.normal(size=(3, 40))
        full_state, full_spikes = lif_step_batch(
            LIFState(membrane=membranes), currents, params
        )
        monkeypatch.setattr(neuron, "_LIF_CHUNK_ELEMS", 7)
        tiny_state, tiny_spikes = lif_step_batch(
            LIFState(membrane=membranes), currents, params
        )
        assert np.array_equal(full_state.membrane, tiny_state.membrane)
        assert np.array_equal(full_spikes, tiny_spikes)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            lif_step_batch(LIFState.zeros((2, 4)), np.ones((2, 5)), LIFParameters())


class TestForwardBatch:
    def _assert_frame_equal(self, batch_record, frame_record):
        assert batch_record.name == frame_record.name
        assert batch_record.timestep == frame_record.timestep
        assert batch_record.kind == frame_record.kind
        for attr in ("input_spikes", "input_currents", "output_spikes"):
            batched = getattr(batch_record, attr)
            reference = getattr(frame_record, attr)
            assert (batched is None) == (reference is None)
            if batched is not None:
                assert np.array_equal(batched, reference.reshape(batched.shape))

    @pytest.mark.parametrize("timesteps", [1, 3])
    def test_matches_per_frame_forward(self, tiny_network, rng, timesteps):
        frames = rng.random((4, 8, 8, 3))
        activity = tiny_network.forward_batch(frames, timesteps=timesteps)
        assert activity.batch_size == 4
        assert len(activity.records) == timesteps * 3  # three weighted layers
        for index in range(4):
            reference = tiny_network.forward(frames[index], timesteps=timesteps)
            sliced = activity.frame_activity(index)
            assert len(sliced.records) == len(reference.records)
            for got, expected in zip(sliced.records, reference.records):
                self._assert_frame_equal(got, expected)

    def test_accepts_frame_sequences(self, tiny_network, rng):
        frames = [rng.random((8, 8, 3)) for _ in range(2)]
        activity = tiny_network.forward_batch(frames)
        assert activity.batch_size == 2

    def test_for_name_and_for_layer(self, tiny_network, rng):
        activity = tiny_network.forward_batch(rng.random((2, 8, 8, 3)), timesteps=2)
        conv2_records = activity.for_name("conv2")
        assert [record.timestep for record in conv2_records] == [0, 1]
        assert activity.for_layer(conv2_records[0].layer_index) == conv2_records

    def test_does_not_disturb_per_frame_state(self, tiny_network, rng):
        frame = rng.random((8, 8, 3))
        before = tiny_network.forward(frame, timesteps=1)
        tiny_network.forward_batch(rng.random((3, 8, 8, 3)))
        after = tiny_network.forward(frame, timesteps=1)
        for got, expected in zip(after.records, before.records):
            self._assert_frame_equal(got, expected)

    def test_predict_batch_matches_predict(self, tiny_network, rng):
        frames = rng.random((3, 8, 8, 3))
        batched = tiny_network.predict_batch(frames, timesteps=2)
        assert list(batched) == [
            tiny_network.predict(frames[index], timesteps=2) for index in range(3)
        ]

    def test_validates_inputs(self, tiny_network, rng):
        with pytest.raises(ValueError):
            tiny_network.forward_batch(rng.random((2, 8, 8, 3)), timesteps=0)
        with pytest.raises(ValueError):
            tiny_network.forward_batch(rng.random((8, 8, 3)))
        with pytest.raises(ValueError):
            tiny_network.forward_batch(np.empty((0, 8, 8, 3)))


class TestNetworkFingerprint:
    def test_stable_and_weight_sensitive(self, tiny_network):
        first = tiny_network.fingerprint()
        assert first == tiny_network.fingerprint()
        updated = tiny_network.layers[0].weights.copy()
        updated[0, 0, 0, 0] += 1.0
        # Rebinding (what initialize() and the training loop do) both
        # changes the weights and invalidates the fingerprint memo.
        tiny_network.layers[0].weights = updated
        assert tiny_network.fingerprint() != first

    def test_memoized_until_weights_rebound(self, tiny_network):
        first = tiny_network.fingerprint()
        cached = tiny_network._fingerprint_cache
        assert tiny_network.fingerprint() == first
        assert tiny_network._fingerprint_cache is cached  # served from memo
        tiny_network.initialize(np.random.default_rng(99))
        assert tiny_network.fingerprint() != first

    def test_hashed_weights_are_frozen_against_silent_mutation(self, tiny_network):
        # A stale memoized fingerprint would poison the result store, so
        # hashing freezes the arrays: in-place edits fail loudly instead.
        tiny_network.fingerprint()
        with pytest.raises(ValueError):
            tiny_network.layers[0].weights[0, 0, 0, 0] += 1.0

    def test_view_weights_are_detached_before_freezing(self, tiny_network):
        # A frozen view over a writable base would let mutations dodge the
        # memo, while freezing the base would make the caller's unrelated
        # buffer read-only; fingerprint() sidesteps both by detaching the
        # view onto an owning copy bound back to the layer.
        base = np.array(tiny_network.layers[0].weights)
        tiny_network.layers[0].weights = base[:]
        first = tiny_network.fingerprint()
        assert tiny_network.layers[0].weights.base is None
        original = base[0, 0, 0, 0]
        base[0, 0, 0, 0] = original + 1.0  # caller's buffer stays writable
        # ...and can no longer silently alter what was hashed.
        assert tiny_network.layers[0].weights[0, 0, 0, 0] == original
        assert tiny_network.fingerprint() == first

    def test_non_weight_mutation_invalidates_despite_memo(self, tiny_network):
        # Only the weight-bytes digest is memoized; layer metadata (e.g.
        # LIF parameters) is rehashed every call and must never go stale.
        from dataclasses import replace

        first = tiny_network.fingerprint()
        layer = tiny_network.layers[0]
        layer.lif = replace(layer.lif, v_threshold=layer.lif.v_threshold + 0.1)
        assert tiny_network.fingerprint() != first

    def test_architecture_sensitive(self, tiny_network, rng):
        from repro.snn.layers import SpikingLinear
        from repro.snn.network import SpikingNetwork
        from repro.types import TensorShape

        other = SpikingNetwork(
            [SpikingLinear(192, 5, name="fc1")], input_shape=TensorShape(8, 8, 3)
        )
        other.initialize(rng)
        assert other.fingerprint() != tiny_network.fingerprint()
