"""Tests for the spiking neuron models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snn.neuron import (
    IzhikevichParameters,
    IzhikevichState,
    LIFParameters,
    LIFState,
    izhikevich_step,
    lif_step,
)


class TestLIFParameters:
    def test_defaults(self):
        params = LIFParameters()
        assert 0.0 <= params.alpha <= 1.0
        assert params.v_threshold > 0

    @pytest.mark.parametrize(
        "kwargs", [{"alpha": 1.5}, {"alpha": -0.1}, {"v_threshold": 0.0}, {"resistance": 0.0}]
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LIFParameters(**kwargs)


class TestLIFStep:
    def test_spike_fires_exactly_at_threshold(self):
        params = LIFParameters(alpha=1.0, v_threshold=1.0, v_reset=1.0)
        state = LIFState.zeros((1,))
        state, spikes = lif_step(state, np.array([1.0]), params)
        assert spikes[0]
        assert state.membrane[0] == pytest.approx(0.0)

    def test_subthreshold_accumulates(self):
        params = LIFParameters(alpha=1.0, v_threshold=1.0)
        state = LIFState.zeros((1,))
        state, spikes = lif_step(state, np.array([0.4]), params)
        assert not spikes[0]
        state, spikes = lif_step(state, np.array([0.4]), params)
        assert not spikes[0]
        state, spikes = lif_step(state, np.array([0.4]), params)
        assert spikes[0]

    def test_leak_decays_membrane(self):
        params = LIFParameters(alpha=0.5, v_threshold=10.0)
        state = LIFState(membrane=np.array([2.0]))
        state, _ = lif_step(state, np.array([0.0]), params)
        assert state.membrane[0] == pytest.approx(1.0)

    def test_soft_reset_subtracts_v_reset(self):
        params = LIFParameters(alpha=1.0, v_threshold=1.0, v_reset=1.0)
        state = LIFState.zeros((1,))
        state, spikes = lif_step(state, np.array([1.7]), params)
        assert spikes[0]
        assert state.membrane[0] == pytest.approx(0.7)

    def test_equation_matches_paper_form(self, rng):
        """v(t) = alpha*v(t-1) + r*i(t) - v_rst*s(t), s(t) = [v >= v_th]."""
        params = LIFParameters(alpha=0.9, v_threshold=0.8, v_reset=0.8, resistance=1.0)
        membrane = rng.normal(size=50)
        current = rng.normal(size=50)
        state, spikes = lif_step(LIFState(membrane=membrane.copy()), current, params)
        pre_spike = membrane * params.alpha + params.resistance * current
        expected_spikes = pre_spike >= params.v_threshold
        expected_membrane = pre_spike - params.v_reset * expected_spikes
        assert np.array_equal(spikes, expected_spikes)
        assert np.allclose(state.membrane, expected_membrane)

    def test_shape_mismatch_rejected(self):
        state = LIFState.zeros((3,))
        with pytest.raises(ValueError):
            lif_step(state, np.zeros(4), LIFParameters())

    def test_original_state_not_mutated(self):
        state = LIFState(membrane=np.array([0.5]))
        lif_step(state, np.array([1.0]), LIFParameters())
        assert state.membrane[0] == 0.5

    @settings(max_examples=50, deadline=None)
    @given(
        alpha=st.floats(0.0, 1.0),
        current=st.floats(-5.0, 5.0),
        membrane=st.floats(-5.0, 5.0),
    )
    def test_membrane_always_below_threshold_after_update(self, alpha, current, membrane):
        """After soft reset, the membrane never exceeds v_th + |v| bound without spiking."""
        params = LIFParameters(alpha=alpha, v_threshold=1.0, v_reset=1.0)
        state, spikes = lif_step(LIFState(membrane=np.array([membrane])), np.array([current]), params)
        if not spikes[0]:
            assert state.membrane[0] < params.v_threshold


class TestIzhikevich:
    def test_resting_state_does_not_spike_without_input(self):
        params = IzhikevichParameters()
        state = IzhikevichState.resting((10,), params)
        for _ in range(20):
            state, spikes = izhikevich_step(state, np.zeros(10), params)
            assert not spikes.any()

    def test_strong_input_produces_spike(self):
        params = IzhikevichParameters()
        state = IzhikevichState.resting((1,), params)
        fired = False
        for _ in range(200):
            state, spikes = izhikevich_step(state, np.full(1, 20.0), params)
            fired = fired or bool(spikes[0])
        assert fired

    def test_reset_after_spike(self):
        params = IzhikevichParameters()
        state = IzhikevichState.resting((1,), params)
        for _ in range(200):
            new_state, spikes = izhikevich_step(state, np.full(1, 20.0), params)
            if spikes[0]:
                assert new_state.v[0] == pytest.approx(params.c)
                break
            state = new_state
        else:  # pragma: no cover - defensive
            pytest.fail("neuron never spiked")
