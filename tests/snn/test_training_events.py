"""Tests for surrogate-gradient training and synthetic DVS event streams."""

import numpy as np
import pytest

from repro.snn.events import (
    DvsEvent,
    DvsEventStream,
    event_frames_for_network,
    generate_moving_blob_stream,
)
from repro.snn.layers import SpikingLinear
from repro.snn.neuron import LIFParameters
from repro.snn.training import (
    SurrogateGradientTrainer,
    TrainingConfig,
    make_two_moons,
    surrogate_gradient,
)
from repro.types import TensorShape


class TestSurrogateGradient:
    def test_peak_at_threshold(self):
        lif = LIFParameters(v_threshold=1.0)
        grads = surrogate_gradient(np.array([0.0, 1.0, 2.0]), lif)
        assert grads[1] == pytest.approx(1.0)
        assert grads[0] < grads[1] and grads[2] < grads[1]

    def test_symmetric_around_threshold(self):
        lif = LIFParameters(v_threshold=0.5)
        grads = surrogate_gradient(np.array([0.3, 0.7]), lif)
        assert grads[0] == pytest.approx(grads[1])

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            surrogate_gradient(np.zeros(3), LIFParameters(), beta=0.0)


class TestTrainer:
    def _layers(self, hidden=16):
        lif = LIFParameters(alpha=1.0, v_threshold=0.5)
        return [
            SpikingLinear(4, hidden, lif=lif, name="hidden"),
            SpikingLinear(hidden, 2, lif=lif, name="out", is_output=True),
        ]

    def test_layer_dimension_mismatch_rejected(self):
        lif = LIFParameters()
        with pytest.raises(ValueError, match="does not match"):
            SurrogateGradientTrainer([SpikingLinear(4, 8, lif=lif), SpikingLinear(6, 2, lif=lif)])

    def test_training_improves_accuracy(self):
        inputs, labels = make_two_moons(samples=200, seed=1)
        trainer = SurrogateGradientTrainer(
            self._layers(), TrainingConfig(learning_rate=0.1, epochs=30, seed=2)
        )
        before = trainer.accuracy(inputs, labels)
        history = trainer.fit(inputs, labels)
        after = trainer.accuracy(inputs, labels)
        assert len(history.loss) == 30
        assert after >= before
        assert history.final_accuracy > 0.8

    def test_loss_decreases(self):
        inputs, labels = make_two_moons(samples=120, seed=3)
        trainer = SurrogateGradientTrainer(
            self._layers(8), TrainingConfig(learning_rate=0.05, epochs=15, seed=4)
        )
        history = trainer.fit(inputs, labels)
        assert history.loss[-1] < history.loss[0]

    def test_predict_shape_and_range(self):
        inputs, _ = make_two_moons(samples=20, seed=5)
        trainer = SurrogateGradientTrainer(self._layers(8))
        predictions = trainer.predict(inputs)
        assert predictions.shape == (20,)
        assert set(np.unique(predictions)) <= {0, 1}

    def test_input_validation(self):
        trainer = SurrogateGradientTrainer(self._layers(8))
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((4, 3)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((4, 4)), np.zeros(3, dtype=int))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)

    def test_two_moons_generator(self):
        inputs, labels = make_two_moons(samples=50, seed=0)
        assert inputs.shape == (50, 4)
        assert set(np.unique(labels)) == {0, 1}
        with pytest.raises(ValueError):
            make_two_moons(samples=1)


class TestDvsEvents:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            DvsEvent(row=0, col=0, polarity=2, timestamp_us=0)
        with pytest.raises(ValueError):
            DvsEvent(row=-1, col=0, polarity=0, timestamp_us=0)

    def test_stream_bounds_and_ordering(self):
        stream = DvsEventStream(height=4, width=4)
        stream.append(DvsEvent(1, 1, 0, 10))
        with pytest.raises(ValueError):
            stream.append(DvsEvent(5, 0, 0, 20))
        with pytest.raises(ValueError):
            stream.append(DvsEvent(0, 0, 0, 5))  # time goes backwards

    def test_to_frames_accumulates_by_window(self):
        stream = DvsEventStream(height=4, width=4)
        stream.append(DvsEvent(0, 0, 0, 0))
        stream.append(DvsEvent(1, 1, 1, 150))
        frames = stream.to_frames(window_us=100)
        assert frames.shape == (2, 4, 4, 2)
        assert frames[0, 0, 0, 0]
        assert frames[1, 1, 1, 1]
        assert not frames[0, 1, 1, 1]

    def test_single_polarity_merge(self):
        stream = DvsEventStream(height=2, width=2)
        stream.append(DvsEvent(0, 0, 1, 0))
        frames = stream.to_frames(window_us=10, polarities=1)
        assert frames.shape[-1] == 1
        assert frames[0, 0, 0, 0]

    def test_empty_stream(self):
        stream = DvsEventStream(height=2, width=2)
        assert stream.duration_us == 0
        assert stream.to_frames(100).shape == (0, 2, 2, 2)
        assert stream.firing_rate(100) == 0.0

    def test_generated_stream_properties(self):
        stream = generate_moving_blob_stream(
            shape=TensorShape(16, 16, 2), duration_us=2_000, event_rate_per_us=0.3, seed=3
        )
        assert len(stream) == 600
        assert stream.duration_us <= 2_000
        rate = stream.firing_rate(window_us=500)
        assert 0.0 < rate < 0.5

    def test_generated_stream_deterministic(self):
        a = generate_moving_blob_stream(seed=9, duration_us=1_000)
        b = generate_moving_blob_stream(seed=9, duration_us=1_000)
        assert len(a) == len(b)
        assert all(x == y for x, y in zip(a, b))

    def test_event_frames_for_network(self):
        stream = generate_moving_blob_stream(duration_us=1_000, seed=1)
        frames, rate = event_frames_for_network(stream, window_us=250, channels=2)
        assert frames.shape[1:] == (32, 32, 2)
        assert 0.0 <= rate <= 1.0
        with pytest.raises(ValueError):
            event_frames_for_network(stream, window_us=250, channels=3)
