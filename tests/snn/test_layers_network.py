"""Tests for the spiking layers and the network container."""

import numpy as np
import pytest

from repro.snn.layers import Flatten, SpikingAvgPool2d, SpikingConv2d, SpikingLinear, SpikingMaxPool2d
from repro.snn.network import SpikingNetwork
from repro.snn.neuron import LIFParameters
from repro.types import LayerKind, TensorShape


class TestLayerShapes:
    def test_conv_same_padding_preserves_spatial_size(self):
        layer = SpikingConv2d(3, 8, kernel_size=3, padding=1)
        assert layer.output_shape(TensorShape(16, 16, 3)) == TensorShape(16, 16, 8)

    def test_conv_padded_input_shape(self):
        layer = SpikingConv2d(3, 8, kernel_size=3, padding=1)
        assert layer.padded_input_shape(TensorShape(32, 32, 3)) == TensorShape(34, 34, 3)

    def test_conv_rejects_channel_mismatch(self):
        layer = SpikingConv2d(3, 8)
        with pytest.raises(ValueError):
            layer.output_shape(TensorShape(8, 8, 4))

    def test_conv_weight_shape_and_count(self):
        layer = SpikingConv2d(4, 6, kernel_size=3)
        assert layer.weight_shape == (3, 3, 4, 6)
        assert layer.num_weights == 3 * 3 * 4 * 6

    def test_conv_initialize_weights(self, rng):
        layer = SpikingConv2d(4, 6)
        layer.initialize(rng)
        assert layer.weights.shape == layer.weight_shape
        assert layer.require_weights() is layer.weights

    def test_conv_require_weights_raises_if_uninitialized(self):
        with pytest.raises(RuntimeError):
            SpikingConv2d(3, 4).require_weights()

    def test_conv_rejects_wrong_weight_shape(self):
        with pytest.raises(ValueError):
            SpikingConv2d(3, 4, weights=np.zeros((3, 3, 3, 5)))

    def test_linear_output_shape(self):
        layer = SpikingLinear(128, 10)
        assert layer.output_shape(TensorShape(1, 1, 128)) == TensorShape(1, 1, 10)

    def test_linear_accepts_flattened_spatial_input(self):
        layer = SpikingLinear(2 * 2 * 8, 10)
        assert layer.output_shape(TensorShape(2, 2, 8)).channels == 10

    def test_linear_rejects_feature_mismatch(self):
        with pytest.raises(ValueError):
            SpikingLinear(16, 4).output_shape(TensorShape(1, 1, 20))

    def test_pool_shapes(self):
        assert SpikingMaxPool2d().output_shape(TensorShape(8, 8, 4)) == TensorShape(4, 4, 4)
        assert SpikingAvgPool2d().output_shape(TensorShape(8, 8, 4)) == TensorShape(4, 4, 4)

    def test_pool_rejects_too_small_input(self):
        with pytest.raises(ValueError):
            SpikingMaxPool2d(kernel_size=4, stride=4).output_shape(TensorShape(2, 2, 1))

    def test_flatten(self):
        assert Flatten().output_shape(TensorShape(2, 3, 4)) == TensorShape(1, 1, 24)

    def test_layer_kinds(self):
        assert SpikingConv2d(1, 1).kind is LayerKind.CONV
        assert SpikingLinear(1, 1).kind is LayerKind.LINEAR
        assert SpikingMaxPool2d().kind is LayerKind.MAXPOOL
        assert Flatten().kind is LayerKind.FLATTEN


class TestSpikingNetwork:
    def test_shapes_propagate(self, tiny_network):
        assert tiny_network.output_shape == TensorShape(1, 1, 5)
        assert tiny_network.weighted_layers == [0, 2, 4]

    def test_forward_produces_records_for_weighted_layers(self, tiny_network, rng):
        frame = rng.random((8, 8, 3))
        activity = tiny_network.forward(frame, timesteps=2)
        assert len(activity.records) == 3 * 2
        assert activity.weighted_layer_indices == [0, 2, 4]
        assert len(activity.for_timestep(0)) == 3
        assert len(activity.for_layer(2)) == 2

    def test_record_shapes_consistent(self, tiny_network, rng):
        frame = rng.random((8, 8, 3))
        activity = tiny_network.forward(frame)
        conv2_record = activity.for_layer(2)[0]
        assert conv2_record.input_spikes.shape == (4, 4, 4)
        assert conv2_record.output_spikes.shape == (4, 4, 6)
        assert 0.0 <= conv2_record.input_firing_rate <= 1.0

    def test_encoding_layer_records_currents_not_spikes(self, tiny_network, rng):
        frame = rng.random((8, 8, 3))
        activity = tiny_network.forward(frame)
        record = activity.for_layer(0)[0]
        assert record.input_spikes is None
        assert record.input_currents is not None
        assert record.input_firing_rate == 1.0

    def test_reset_state_clears_membranes(self, tiny_network, rng):
        frame = rng.random((8, 8, 3))
        tiny_network.forward(frame, reset=True)
        membrane_after = tiny_network.membrane_state(0).membrane.copy()
        tiny_network.reset_state()
        assert np.all(tiny_network.membrane_state(0).membrane == 0)
        assert membrane_after.shape == tiny_network.membrane_state(0).membrane.shape

    def test_state_persists_across_timesteps_without_reset(self, tiny_network, rng):
        frame = rng.random((8, 8, 3)) * 0.1
        tiny_network.forward(frame, reset=True)
        state_one = tiny_network.membrane_state(0).membrane.copy()
        tiny_network.forward(frame, reset=False)
        state_two = tiny_network.membrane_state(0).membrane
        assert not np.allclose(state_one, state_two)

    def test_forward_matches_manual_reference(self, rng):
        """One conv layer network must match an explicit LIF + conv computation."""
        from repro.snn.reference import conv2d_hwc

        lif = LIFParameters(alpha=0.8, v_threshold=0.6)
        conv = SpikingConv2d(2, 3, kernel_size=3, padding=1, lif=lif, encodes_input=True, name="c")
        conv.initialize(rng)
        network = SpikingNetwork([conv], input_shape=TensorShape(6, 6, 2))
        frame = rng.random((6, 6, 2))
        activity = network.forward(frame)
        currents = conv2d_hwc(frame, conv.weights, padding=1)
        expected_spikes = currents >= lif.v_threshold
        assert np.array_equal(activity.records[0].output_spikes, expected_spikes)

    def test_predict_returns_valid_class(self, tiny_network, rng):
        frame = rng.random((8, 8, 3))
        assert 0 <= tiny_network.predict(frame, timesteps=3) < 5

    def test_invalid_timesteps_rejected(self, tiny_network, rng):
        with pytest.raises(ValueError):
            tiny_network.forward(rng.random((8, 8, 3)), timesteps=0)
