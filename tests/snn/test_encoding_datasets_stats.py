"""Tests for spike encoders, synthetic datasets and activity statistics."""

import numpy as np
import pytest

from repro.snn.datasets import (
    SyntheticCIFAR10,
    synthetic_compressed_ifmap,
    synthetic_layer_activity,
)
from repro.snn.encoding import DirectEncoder, PoissonEncoder, RateEncoder
from repro.snn.stats import collect_activity_stats, summarize_records
from repro.snn.svgg11 import SVGG11_LAYER_FIRING_RATES
from repro.types import TensorShape


class TestEncoders:
    def test_direct_encoder_repeats_frame(self, rng):
        image = rng.random((4, 4, 3))
        encoded = DirectEncoder(scale=2.0).encode(image, timesteps=3)
        assert encoded.shape == (3, 4, 4, 3)
        assert np.allclose(encoded[0], image * 2.0)
        assert np.allclose(encoded[1], encoded[2])

    def test_poisson_encoder_rate_tracks_intensity(self):
        image = np.full((10, 10, 1), 0.3)
        spikes = PoissonEncoder(seed=0).encode(image, timesteps=200)
        assert spikes.dtype == bool
        assert spikes.mean() == pytest.approx(0.3, abs=0.05)

    def test_poisson_encoder_zero_and_one_extremes(self):
        image = np.zeros((4, 4, 1))
        image[0, 0, 0] = 1.0
        spikes = PoissonEncoder(seed=1).encode(image, timesteps=50)
        assert spikes[:, 0, 0, 0].all()
        assert not spikes[:, 1:, :, :].any()

    def test_rate_encoder_spike_count_matches_intensity(self):
        image = np.array([[[0.5, 1.0, 0.0]]])
        spikes = RateEncoder().encode(image, timesteps=10)
        counts = spikes.sum(axis=0)[0, 0]
        assert counts.tolist() == [5, 10, 0]

    def test_rate_encoder_spreads_spikes(self):
        image = np.array([[[0.5]]])
        spikes = RateEncoder().encode(image, timesteps=4)[:, 0, 0, 0]
        # Two spikes in four steps, never adjacent saturation of the window.
        assert spikes.sum() == 2

    def test_invalid_timesteps(self):
        with pytest.raises(ValueError):
            DirectEncoder().encode(np.zeros((2, 2, 1)), timesteps=0)

    def test_invalid_max_rate(self):
        with pytest.raises(ValueError):
            PoissonEncoder(max_rate=0.0)


class TestSyntheticCIFAR10:
    def test_sample_shapes_and_range(self):
        images, labels = SyntheticCIFAR10(seed=1).sample(3)
        assert images.shape == (3, 32, 32, 3)
        assert labels.shape == (3,)
        assert images.min() >= 0.0 and images.max() <= 1.0
        assert np.all((labels >= 0) & (labels < 10))

    def test_deterministic_for_fixed_seed(self):
        a, _ = SyntheticCIFAR10(seed=5).sample(2)
        b, _ = SyntheticCIFAR10(seed=5).sample(2)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a, _ = SyntheticCIFAR10(seed=5).sample(1)
        b, _ = SyntheticCIFAR10(seed=6).sample(1)
        assert not np.allclose(a, b)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            SyntheticCIFAR10().sample(0)


class TestSyntheticActivity:
    def test_compressed_ifmap_matches_requested_rate(self, rng):
        shape = TensorShape(16, 16, 64)
        compressed = synthetic_compressed_ifmap(shape, 0.3, rng)
        assert compressed.shape == shape
        assert compressed.firing_rate == pytest.approx(0.3, abs=0.05)

    def test_rate_bounds_checked(self, rng):
        with pytest.raises(ValueError):
            synthetic_compressed_ifmap(TensorShape(4, 4, 4), 1.5, rng)

    def test_layer_activity_structure(self):
        batch = synthetic_layer_activity(batch_size=2, layers=["conv2", "fc1"], seed=3)
        assert len(batch) == 2
        names = [sample.name for sample in batch[0]]
        assert names == ["conv2", "fc1"]
        conv_sample = batch[0][0]
        assert conv_sample.compressed_input is not None
        assert conv_sample.compressed_input.shape == conv_sample.padded_input_shape
        fc_sample = batch[0][1]
        assert fc_sample.compressed_vector is not None
        assert fc_sample.compressed_vector.length == fc_sample.input_shape.numel

    def test_layer_activity_padding_ring_is_empty(self):
        batch = synthetic_layer_activity(batch_size=1, layers=["conv5"], seed=0)
        compressed = batch[0][0].compressed_input
        counts = compressed.spike_counts()
        assert counts[0, :].sum() == 0
        assert counts[-1, :].sum() == 0
        assert counts[:, 0].sum() == 0
        assert counts[:, -1].sum() == 0

    def test_unknown_layer_rejected(self):
        with pytest.raises(ValueError, match="unknown layer"):
            synthetic_layer_activity(batch_size=1, layers=["conv99"])

    def test_rates_follow_profile(self):
        batch = synthetic_layer_activity(batch_size=1, layers=["conv3"], seed=1)
        sample = batch[0][0]
        assert sample.firing_rate == SVGG11_LAYER_FIRING_RATES["conv3"]


class TestStats:
    def test_collect_activity_stats(self, tiny_network, rng):
        activities = [tiny_network.forward(rng.random((8, 8, 3))) for _ in range(3)]
        stats = collect_activity_stats(activities)
        names = {s.layer_name for s in stats}
        assert names == {"conv1", "conv2", "fc1"}
        for entry in stats:
            assert entry.samples == 3
            assert 0.0 <= entry.mean_firing_rate <= 1.0
            assert entry.std_firing_rate >= 0.0

    def test_summarize_records(self, tiny_network, rng):
        activity = tiny_network.forward(rng.random((8, 8, 3)))
        summary = summarize_records(activity.records)
        assert summary["records"] == 3
        assert 0.0 <= summary["mean_output_rate"] <= 1.0

    def test_summarize_empty(self):
        assert summarize_records([])["records"] == 0
