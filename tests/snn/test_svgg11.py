"""Tests for the S-VGG11 model description."""

import pytest

from repro.snn.svgg11 import (
    SVGG11_CONV_CHANNELS,
    SVGG11_LAYER_FIRING_RATES,
    build_svgg11,
    layer_names,
    svgg11_conv_ifmap_shapes,
    svgg11_layer_shapes,
)
from repro.types import TensorShape


class TestLayerShapes:
    def test_eleven_weighted_layers(self):
        descriptions = svgg11_layer_shapes()
        assert len(descriptions) == 11
        assert sum(1 for d in descriptions if d["kind"] == "conv") == 8
        assert sum(1 for d in descriptions if d["kind"] == "linear") == 3

    def test_padded_ifmap_shapes_match_figure_3a(self):
        """The first six conv ifmaps are exactly those listed on the x-axis of Fig. 3a."""
        shapes = svgg11_conv_ifmap_shapes()
        expected = [
            TensorShape(34, 34, 3),
            TensorShape(34, 34, 64),
            TensorShape(18, 18, 128),
            TensorShape(18, 18, 256),
            TensorShape(10, 10, 256),
            TensorShape(10, 10, 512),
        ]
        assert shapes[:6] == expected

    def test_conv_channels_follow_vgg11(self):
        descriptions = [d for d in svgg11_layer_shapes() if d["kind"] == "conv"]
        assert tuple(d["out_channels"] for d in descriptions) == SVGG11_CONV_CHANNELS

    def test_only_first_layer_encodes(self):
        descriptions = svgg11_layer_shapes()
        assert descriptions[0]["encodes_input"]
        assert not any(d["encodes_input"] for d in descriptions[1:])

    def test_fc_chain_dimensions(self):
        fc = [d for d in svgg11_layer_shapes() if d["kind"] == "linear"]
        assert fc[0]["in_channels"] == 2 * 2 * 512
        assert fc[0]["out_channels"] == 4096
        assert fc[-1]["out_channels"] == 10

    def test_firing_rates_defined_for_every_layer(self):
        for description in svgg11_layer_shapes():
            assert description["name"] in SVGG11_LAYER_FIRING_RATES

    def test_firing_rates_decrease_with_conv_depth(self):
        rates = [SVGG11_LAYER_FIRING_RATES[f"conv{i}"] for i in range(2, 9)]
        assert rates == sorted(rates, reverse=True)

    def test_layer_names_order(self):
        names = layer_names()
        assert names[0] == "conv1"
        assert names[-1] == "fc3"
        assert len(layer_names(include_fc=False)) == 8


class TestBuildSvgg11:
    @pytest.fixture(scope="class")
    def network(self):
        return build_svgg11(rng=0)

    def test_output_is_ten_classes(self, network):
        assert network.output_shape == TensorShape(1, 1, 10)

    def test_weighted_layer_count(self, network):
        assert len(network.weighted_layers) == 11

    def test_shapes_agree_with_descriptions(self, network):
        descriptions = svgg11_layer_shapes()
        weighted = network.weighted_layers
        for description, index in zip(descriptions, weighted):
            assert network.layer_input_shape(index) == description["input_shape"]
            assert network.layer_output_shape(index) == description["output_shape"]

    def test_uninitialized_build(self):
        network = build_svgg11(initialize=False)
        assert network.layers[0].weights is None
