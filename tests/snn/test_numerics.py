"""Unit tests of the golden-model :class:`~repro.snn.numerics.NumericsPolicy`."""

import numpy as np
import pytest

from repro.snn.numerics import (
    CLASSIFICATION_AGREEMENT_BOUND,
    FORWARD_PATHS,
    PRECISIONS,
    REFERENCE,
    SPIKE_COUNT_TOLERANCE,
    NumericsPolicy,
    resolve,
)


class TestNumericsPolicy:
    def test_default_is_the_fp64_dense_reference(self):
        policy = NumericsPolicy()
        assert policy.precision == "fp64"
        assert policy.forward_path == "dense"
        assert policy.is_reference
        assert policy == REFERENCE

    def test_dtype_maps_precision(self):
        assert NumericsPolicy("fp64", "dense").dtype == np.dtype(np.float64)
        assert NumericsPolicy("fp32", "dense").dtype == np.dtype(np.float32)
        assert NumericsPolicy("fp32", "event_sparse").dtype == np.dtype(np.float32)

    def test_only_fp64_dense_is_reference(self):
        for precision in PRECISIONS:
            for forward_path in FORWARD_PATHS:
                policy = NumericsPolicy(precision, forward_path)
                assert policy.is_reference == (
                    precision == "fp64" and forward_path == "dense"
                )

    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            NumericsPolicy(precision="fp16")

    def test_invalid_forward_path_rejected(self):
        with pytest.raises(ValueError, match="forward_path"):
            NumericsPolicy(forward_path="sparse")

    def test_key_roundtrip_every_policy(self):
        for precision in PRECISIONS:
            for forward_path in FORWARD_PATHS:
                policy = NumericsPolicy(precision, forward_path)
                assert NumericsPolicy.from_key(policy.key()) == policy

    def test_key_format(self):
        assert NumericsPolicy("fp32", "event_sparse").key() == "fp32-event_sparse"
        assert REFERENCE.key() == "fp64-dense"

    def test_from_key_rejects_garbage(self):
        with pytest.raises(ValueError):
            NumericsPolicy.from_key("fp64")  # no forward path
        with pytest.raises(ValueError):
            NumericsPolicy.from_key("bf16-dense")

    def test_dict_roundtrip(self):
        policy = NumericsPolicy("fp32", "event_sparse")
        assert NumericsPolicy.from_dict(policy.to_dict()) == policy
        assert policy.to_dict() == {
            "precision": "fp32",
            "forward_path": "event_sparse",
        }

    def test_frozen_and_hashable(self):
        policy = NumericsPolicy("fp32", "dense")
        with pytest.raises(Exception):
            policy.precision = "fp64"
        assert len({policy, NumericsPolicy("fp32", "dense"), REFERENCE}) == 2


class TestResolve:
    def test_none_resolves_to_reference(self):
        assert resolve(None) is REFERENCE

    def test_policy_passes_through(self):
        policy = NumericsPolicy("fp32", "event_sparse")
        assert resolve(policy) is policy


def test_documented_accuracy_bounds_are_sane():
    """The bounds the docs and tests share must stay meaningful fractions."""
    assert 0.9 <= CLASSIFICATION_AGREEMENT_BOUND < 1.0
    assert 0.0 < SPIKE_COUNT_TOLERANCE <= 0.1
