"""Tests for the NumPy golden-reference layer arithmetic."""

import numpy as np
import pytest

from repro.snn.reference import (
    avgpool2d_hwc,
    conv2d_hwc,
    conv_output_size,
    im2row,
    linear,
    maxpool2d_hwc,
    pad_hwc,
)


class TestGeometry:
    def test_conv_output_size_same_padding(self):
        assert conv_output_size(32, 3, 1, 1) == 32

    def test_conv_output_size_stride(self):
        assert conv_output_size(8, 2, 2, 0) == 4

    def test_conv_output_size_rejects_empty_output(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)

    def test_pad_hwc(self):
        x = np.ones((2, 2, 3))
        padded = pad_hwc(x, 1)
        assert padded.shape == (4, 4, 3)
        assert padded[0].sum() == 0
        assert padded[1:3, 1:3].sum() == 12


class TestIm2Row:
    def test_shape(self, rng):
        x = rng.random((6, 6, 4))
        rows = im2row(x, (3, 3), stride=1, padding=1)
        assert rows.shape == (36, 3 * 3 * 4)

    def test_row_content_matches_patch(self, rng):
        x = rng.random((5, 5, 2))
        rows = im2row(x, (3, 3), stride=1, padding=0)
        # Output position (1, 1) corresponds to the central 3x3 patch.
        expected = x[1:4, 1:4, :].reshape(-1)
        assert np.allclose(rows[1 * 3 + 1], expected)


class TestConv2d:
    def test_identity_kernel(self, rng):
        x = rng.random((5, 5, 1))
        weights = np.zeros((3, 3, 1, 1))
        weights[1, 1, 0, 0] = 1.0
        out = conv2d_hwc(x, weights, stride=1, padding=1)
        assert np.allclose(out[..., 0], x[..., 0])

    def test_matches_explicit_sum(self, rng):
        x = rng.random((4, 4, 3))
        weights = rng.random((3, 3, 3, 2))
        out = conv2d_hwc(x, weights, stride=1, padding=1)
        padded = pad_hwc(x, 1)
        oy, ox, oc = 2, 1, 1
        expected = np.sum(padded[oy : oy + 3, ox : ox + 3, :] * weights[:, :, :, oc])
        assert out[oy, ox, oc] == pytest.approx(expected)

    def test_boolean_spikes_accepted(self, rng):
        spikes = rng.random((4, 4, 3)) < 0.5
        weights = rng.random((3, 3, 3, 2))
        out = conv2d_hwc(spikes, weights, padding=1)
        assert out.shape == (4, 4, 2)

    def test_channel_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            conv2d_hwc(rng.random((4, 4, 3)), rng.random((3, 3, 2, 2)))


class TestLinearAndPooling:
    def test_linear_matches_matmul(self, rng):
        x = rng.random(12)
        weights = rng.random((12, 5))
        assert np.allclose(linear(x, weights), x @ weights)

    def test_linear_flattens_hwc_input(self, rng):
        x = rng.random((2, 2, 3))
        weights = rng.random((12, 4))
        assert np.allclose(linear(x, weights), x.reshape(-1) @ weights)

    def test_linear_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            linear(rng.random(5), rng.random((4, 2)))

    def test_maxpool_on_spikes_is_logical_or(self):
        spikes = np.zeros((4, 4, 1), dtype=bool)
        spikes[0, 1, 0] = True
        pooled = maxpool2d_hwc(spikes, 2, 2)
        assert pooled.shape == (2, 2, 1)
        assert pooled[0, 0, 0]
        assert not pooled[1, 1, 0]

    def test_avgpool_values(self):
        x = np.arange(16, dtype=float).reshape(4, 4, 1)
        pooled = avgpool2d_hwc(x, 2, 2)
        assert pooled[0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)


class TestEventSparseOps:
    """The event-sparse kernels vs their dense counterparts, both dtypes."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_sparse_conv_matches_dense_on_spike_input(self, rng, dtype):
        from repro.snn.reference import conv2d_hwc_batch, conv2d_hwc_batch_sparse

        spikes = (rng.random((3, 8, 8, 4)) < 0.1).astype(dtype)
        weights = rng.standard_normal((3, 3, 4, 6)).astype(dtype)
        dense = conv2d_hwc_batch(spikes, weights, 1, 1, dtype=dtype)
        sparse = conv2d_hwc_batch_sparse(spikes, weights, 1, 1, dtype=dtype)
        assert sparse.shape == dense.shape
        assert sparse.dtype == np.dtype(dtype)
        np.testing.assert_allclose(sparse, dense, rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_sparse_linear_matches_dense_on_spike_input(self, rng, dtype):
        from repro.snn.reference import linear_batch, linear_batch_sparse

        spikes = (rng.random((4, 64)) < 0.05).astype(dtype)
        weights = rng.standard_normal((64, 10)).astype(dtype)
        dense = linear_batch(spikes, weights, dtype=dtype)
        sparse = linear_batch_sparse(spikes, weights, dtype=dtype)
        assert sparse.shape == dense.shape
        assert sparse.dtype == np.dtype(dtype)
        np.testing.assert_allclose(sparse, dense, rtol=1e-5, atol=1e-5)

    def test_sparse_conv_empty_input_is_all_zero(self, rng):
        from repro.snn.reference import conv2d_hwc_batch_sparse

        spikes = np.zeros((2, 6, 6, 3), dtype=np.float32)
        weights = rng.standard_normal((3, 3, 3, 5)).astype(np.float32)
        out = conv2d_hwc_batch_sparse(spikes, weights, 1, 1, dtype=np.float32)
        assert out.shape == (2, 6, 6, 5)
        assert not out.any()

    def test_spike_density(self):
        from repro.snn.reference import spike_density

        x = np.zeros((4, 4))
        x[0, 0] = 1.0
        assert spike_density(x) == pytest.approx(1 / 16)
        assert spike_density(np.zeros((0, 3))) == 0.0
