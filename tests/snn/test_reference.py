"""Tests for the NumPy golden-reference layer arithmetic."""

import numpy as np
import pytest

from repro.snn.reference import (
    avgpool2d_hwc,
    conv2d_hwc,
    conv_output_size,
    im2row,
    linear,
    maxpool2d_hwc,
    pad_hwc,
)


class TestGeometry:
    def test_conv_output_size_same_padding(self):
        assert conv_output_size(32, 3, 1, 1) == 32

    def test_conv_output_size_stride(self):
        assert conv_output_size(8, 2, 2, 0) == 4

    def test_conv_output_size_rejects_empty_output(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)

    def test_pad_hwc(self):
        x = np.ones((2, 2, 3))
        padded = pad_hwc(x, 1)
        assert padded.shape == (4, 4, 3)
        assert padded[0].sum() == 0
        assert padded[1:3, 1:3].sum() == 12


class TestIm2Row:
    def test_shape(self, rng):
        x = rng.random((6, 6, 4))
        rows = im2row(x, (3, 3), stride=1, padding=1)
        assert rows.shape == (36, 3 * 3 * 4)

    def test_row_content_matches_patch(self, rng):
        x = rng.random((5, 5, 2))
        rows = im2row(x, (3, 3), stride=1, padding=0)
        # Output position (1, 1) corresponds to the central 3x3 patch.
        expected = x[1:4, 1:4, :].reshape(-1)
        assert np.allclose(rows[1 * 3 + 1], expected)


class TestConv2d:
    def test_identity_kernel(self, rng):
        x = rng.random((5, 5, 1))
        weights = np.zeros((3, 3, 1, 1))
        weights[1, 1, 0, 0] = 1.0
        out = conv2d_hwc(x, weights, stride=1, padding=1)
        assert np.allclose(out[..., 0], x[..., 0])

    def test_matches_explicit_sum(self, rng):
        x = rng.random((4, 4, 3))
        weights = rng.random((3, 3, 3, 2))
        out = conv2d_hwc(x, weights, stride=1, padding=1)
        padded = pad_hwc(x, 1)
        oy, ox, oc = 2, 1, 1
        expected = np.sum(padded[oy : oy + 3, ox : ox + 3, :] * weights[:, :, :, oc])
        assert out[oy, ox, oc] == pytest.approx(expected)

    def test_boolean_spikes_accepted(self, rng):
        spikes = rng.random((4, 4, 3)) < 0.5
        weights = rng.random((3, 3, 3, 2))
        out = conv2d_hwc(spikes, weights, padding=1)
        assert out.shape == (4, 4, 2)

    def test_channel_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            conv2d_hwc(rng.random((4, 4, 3)), rng.random((3, 3, 2, 2)))


class TestLinearAndPooling:
    def test_linear_matches_matmul(self, rng):
        x = rng.random(12)
        weights = rng.random((12, 5))
        assert np.allclose(linear(x, weights), x @ weights)

    def test_linear_flattens_hwc_input(self, rng):
        x = rng.random((2, 2, 3))
        weights = rng.random((12, 4))
        assert np.allclose(linear(x, weights), x.reshape(-1) @ weights)

    def test_linear_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            linear(rng.random(5), rng.random((4, 2)))

    def test_maxpool_on_spikes_is_logical_or(self):
        spikes = np.zeros((4, 4, 1), dtype=bool)
        spikes[0, 1, 0] = True
        pooled = maxpool2d_hwc(spikes, 2, 2)
        assert pooled.shape == (2, 2, 1)
        assert pooled[0, 0, 0]
        assert not pooled[1, 1, 0]

    def test_avgpool_values(self):
        x = np.arange(16, dtype=float).reshape(4, 4, 1)
        pooled = avgpool2d_hwc(x, 2, 2)
        assert pooled[0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)
