"""Tests for the pluggable execution backends, including sharded dispatch."""

import pytest

from repro.backends import (
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    ShardKilled,
    ShardedBackend,
    ThreadBackend,
    make_backend,
)
from repro.eval.runner import run_sweep
from repro.plan import ParameterSpace, ResultsCache, SweepSpec, collect_plan


def _square_point(task):
    return {"n": task["n"], "squared": task["n"] ** 2}


def _fragile_point(task):
    if task["n"] < 0:
        raise ValueError("negative point")
    return {"n": task["n"], "squared": task["n"] ** 2}


SPEC = SweepSpec(
    name="square",
    space=ParameterSpace.grid(n=(1, 2, 3, 4, 5)),
    point=_square_point,
    row_schema=("n", "squared"),
    kwarg_axes={"ns": "n"},
    seeded=False,
)


def _tasks(count=5):
    return [{"n": n, "seed": 0, "batch": 0} for n in range(1, count + 1)]


class TestMakeBackend:
    def test_resolution_precedence(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("thread", jobs=2), ThreadBackend)
        assert isinstance(make_backend("process", jobs=2), ProcessBackend)
        assert isinstance(make_backend("sharded", shards=3), ShardedBackend)
        # jobs=1 degrades pool kinds to serial (historical runner semantics).
        assert isinstance(make_backend("thread", jobs=1), SerialBackend)

    def test_executor_wins_over_pool_kinds_but_not_sharded(self):
        class FakeExecutor:
            pass

        backend = make_backend("process", jobs=4, executor=FakeExecutor())
        assert isinstance(backend, ExecutorBackend)
        assert isinstance(
            make_backend("sharded", jobs=4, executor=FakeExecutor(), shards=2),
            ShardedBackend,
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu", jobs=2)


class TestStreamingBackends:
    @pytest.mark.parametrize("backend", [
        SerialBackend(), ThreadBackend(3), ShardedBackend(shards=2)
    ], ids=["serial", "thread", "sharded"])
    def test_every_index_exactly_once(self, backend):
        seen = dict(backend.execute(_square_point, _tasks()))
        assert sorted(seen) == [0, 1, 2, 3, 4]
        assert seen[2] == {"n": 3, "squared": 9}

    def test_point_error_propagates_without_fallback(self, capsys):
        backend = ThreadBackend(2)
        tasks = [{"n": 1}, {"n": -5}, {"n": 3}]
        with pytest.raises(ValueError, match="negative point"):
            list(backend.execute(_fragile_point, tasks))
        assert "pool failed" not in capsys.readouterr().err

    def test_sharded_point_error_propagates(self):
        backend = ShardedBackend(shards=2)
        with pytest.raises(ValueError, match="negative point"):
            list(backend.execute(_fragile_point, [{"n": 1}, {"n": -5}, {"n": 3}]))

    def test_point_oserror_is_a_point_error_not_infra(self, capsys):
        # A point reading a missing file must propagate immediately — it is
        # the point's error, not a dead pool/shard, and must never trigger
        # the serial fallback or a shard re-dispatch (it would just fail
        # deterministically again after recomputing everything).
        def missing_file_point(task):
            raise FileNotFoundError(f"no dataset for n={task['n']}")

        with pytest.raises(FileNotFoundError):
            list(ThreadBackend(2).execute(missing_file_point, _tasks(3)))
        assert "pool failed" not in capsys.readouterr().err
        backend = ShardedBackend(shards=2)
        with pytest.raises(FileNotFoundError):
            list(backend.execute(missing_file_point, _tasks(3)))
        err = capsys.readouterr().err
        assert "re-dispatching" not in err
        assert backend.redispatched == 0


class TestShardedBackend:
    def test_partition_is_deterministic_round_robin(self):
        backend = ShardedBackend(shards=3)
        assert backend.partition(7) == [[0, 3, 6], [1, 4], [2, 5]]
        assert backend.partition(2) == [[0], [1]]  # never more shards than points
        assert ShardedBackend(shards=1).partition(3) == [[0, 1, 2]]

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            ShardedBackend(shards=0)

    def test_sharded_rows_identical_to_serial(self):
        # The ISSUE acceptance check at API level: same spec, serial vs
        # ShardedBackend(3), identical rows in canonical order.
        serial = run_sweep("firing_rate", seed=13, rates=(0.05, 0.2, 0.4, 0.5))
        sharded = run_sweep("firing_rate", seed=13, backend="sharded", shards=3,
                            rates=(0.05, 0.2, 0.4, 0.5))
        assert serial.rows == sharded.rows
        assert serial.headline == sharded.headline

    def test_killed_shard_points_are_redispatched(self, monkeypatch):
        # Shard 0 dies on its first point; every row must still arrive, and
        # the redispatch counter must record the rescued points.
        backend = ShardedBackend(shards=2)
        original = ShardedBackend._evaluate
        killed = []

        def flaky_evaluate(self, worker, fn, task, key):
            if not killed and task["n"] % 2 == 1:  # first odd point: shard 0
                killed.append(task["n"])
                raise ShardKilled("simulated shard death")
            return original(self, worker, fn, task, key)

        monkeypatch.setattr(ShardedBackend, "_evaluate", flaky_evaluate)
        rows = dict(backend.execute(_square_point, _tasks(6)))
        assert sorted(rows) == [0, 1, 2, 3, 4, 5]
        assert all(rows[i]["squared"] == (i + 1) ** 2 for i in rows)
        assert backend.redispatched >= 1
        assert killed  # the kill actually fired

    def test_killed_shard_warning_names_the_shard(self, monkeypatch, capsys):
        backend = ShardedBackend(shards=2)
        fired = []

        def dead_evaluate(self, worker, fn, task, key):
            if task["n"] == 1 and not fired:  # die once; the rescue retry succeeds
                fired.append(task["n"])
                raise ShardKilled("kill -9")
            return _square_point(task)

        monkeypatch.setattr(ShardedBackend, "_evaluate", dead_evaluate)
        rows = dict(backend.execute(_square_point, _tasks(4)))
        assert sorted(rows) == [0, 1, 2, 3]
        err = capsys.readouterr().err
        assert "shard 0 died" in err and "re-dispatching" in err

    def test_worker_caches_merge_into_parent(self):
        parent = ResultsCache()
        backend = ShardedBackend(shards=2)
        backend.bind(cache=parent)
        result = collect_plan(SPEC, backend, seed=0, batch_size=0, cache=parent)
        assert [row["squared"] for row in result.rows] == [1, 4, 9, 16, 25]
        # Every row is in the parent cache: both from streaming puts and the
        # merged worker caches (merge adds nothing new, but must not fail).
        assert len(parent) == 5

    def test_sharded_results_hit_parent_cache_on_rerun(self):
        cache = ResultsCache()
        backend = ShardedBackend(shards=2)
        backend.bind(cache=cache)
        collect_plan(SPEC, backend, seed=0, batch_size=0, cache=cache)
        cache.hits = cache.misses = 0
        rerun = collect_plan(SPEC, ShardedBackend(shards=2), seed=0, batch_size=0,
                             cache=cache)
        assert cache.hits == 5 and cache.misses == 0
        assert [row["squared"] for row in rerun.rows] == [1, 4, 9, 16, 25]


class TestResultsCacheMerge:
    def test_merge_from_adopts_only_new_rows(self):
        a = ResultsCache()
        b = ResultsCache()
        a.put("k1", {"v": 1})
        b.put("k1", {"v": 999})  # existing entry must win
        b.put("k2", {"v": 2})
        added = a.merge_from(b)
        assert added == 1
        assert a.get("k1") == {"v": 1}
        assert a.get("k2") == {"v": 2}
