"""Regression tests for ResultsCache thread safety.

The cache is shared by threaded-backend workers and by concurrent serve
requests resolving against one session, but historically carried no lock:
``hits``/``misses``/``_rows``/``_dirty`` were mutated bare (the exact
pattern the ``lock-discipline`` lint rule now rejects repo-wide).  These
tests pin the fix: a real lock exists, counters stay exact under
contention, and opposite-direction merges cannot deadlock.
"""

from __future__ import annotations

import threading

from repro.plan import ResultsCache

_RLOCK_TYPE = type(threading.RLock())


def test_results_cache_carries_a_real_lock():
    assert isinstance(ResultsCache()._lock, _RLOCK_TYPE)


def test_counters_exact_under_concurrent_access():
    cache = ResultsCache()
    threads, ops = 8, 200
    barrier = threading.Barrier(threads)

    def worker(worker_id):
        barrier.wait()
        for index in range(ops):
            key = f"key-{index % 25}"
            if cache.get(key) is None:
                cache.put(key, {"worker": worker_id, "index": index})

    pool = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()

    # Every get incremented exactly one counter; a torn update would lose
    # increments and break this identity.
    assert cache.hits + cache.misses == threads * ops
    assert len(cache) == 25
    assert cache.misses >= 25  # each distinct key missed at least once


def test_opposite_direction_merges_do_not_deadlock():
    left, right = ResultsCache(), ResultsCache()
    for index in range(50):
        left.put(f"left-{index}", {"value": index})
        right.put(f"right-{index}", {"value": index})
    barrier = threading.Barrier(2)

    def merge(dst, src):
        barrier.wait()
        for _ in range(20):
            dst.merge_from(src)

    pool = [
        threading.Thread(target=merge, args=(left, right)),
        threading.Thread(target=merge, args=(right, left)),
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=30)
    assert not any(thread.is_alive() for thread in pool), (
        "bidirectional merge_from deadlocked"
    )
    assert len(left) == len(right) == 100


def test_merge_from_counts_only_new_rows():
    source, target = ResultsCache(), ResultsCache()
    source.put("shared", {"value": 1})
    source.put("fresh", {"value": 2})
    target.put("shared", {"value": 999})
    assert target.merge_from(source) == 1
    # Existing entries win: both sides computed them under the same key.
    assert target.get("shared") == {"value": 999}
    assert target.get("fresh") == {"value": 2}
