"""Tests for the parallel sweep runner and its results cache."""

import json

import pytest

from repro.eval.runner import (
    ResultsCache,
    SWEEPS,
    available_sweeps,
    point_seed,
    run_sweep,
)


class TestPointSeed:
    def test_deterministic_and_order_independent(self):
        a = point_seed(2025, "firing_rate", {"rate": 0.1, "precision": "fp16"})
        b = point_seed(2025, "firing_rate", {"precision": "fp16", "rate": 0.1})
        assert a == b
        assert a == point_seed(2025, "firing_rate", {"rate": 0.1, "precision": "fp16"})

    def test_compute_params_share_one_data_seed(self):
        from repro.eval.runner import SWEEPS, _task_seed

        # Every precision must run the same random batch, and every core
        # count must cost the same spike-count map.
        assert _task_seed(SWEEPS["precision"], 2025, {"precision": "fp16"}) == \
            _task_seed(SWEEPS["precision"], 2025, {"precision": "fp8"})
        assert _task_seed(SWEEPS["core_count"], 2025,
                          {"cores": 2, "rate": 0.3, "precision": "fp16"}) == \
            _task_seed(SWEEPS["core_count"], 2025,
                       {"cores": 8, "rate": 0.3, "precision": "fp16"})
        # Data-shaping parameters still separate the streams.
        assert _task_seed(SWEEPS["firing_rate"], 2025,
                          {"rate": 0.1, "precision": "fp16"}) != \
            _task_seed(SWEEPS["firing_rate"], 2025,
                       {"rate": 0.2, "precision": "fp16"})

    def test_varies_with_inputs(self):
        base = point_seed(2025, "firing_rate", {"rate": 0.1})
        assert base != point_seed(2026, "firing_rate", {"rate": 0.1})
        assert base != point_seed(2025, "strided_indirect", {"rate": 0.1})
        assert base != point_seed(2025, "firing_rate", {"rate": 0.2})


class TestResultsCache:
    def test_in_memory_roundtrip(self):
        cache = ResultsCache()
        key = ResultsCache.key("firing_rate", {"rate": 0.1}, 2025, 4)
        assert cache.get(key) is None
        cache.put(key, {"speedup": 5.0})
        assert cache.get(key) == {"speedup": 5.0}
        assert cache.hits == 1 and cache.misses == 1

    def test_file_persistence(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = ResultsCache(path)
        key = ResultsCache.key("stream_length", {"length": 8}, 2025, 4)
        cache.put(key, {"speedup": 3.0})
        cache.save()
        reloaded = ResultsCache(path)
        assert reloaded.get(key) == {"speedup": 3.0}
        assert json.loads(path.read_text())  # valid JSON on disk

    def test_malformed_cache_entries_dropped_with_warning(self, tmp_path, capsys):
        path = tmp_path / "cache.json"
        good_key = ResultsCache.key("stream_length", {"length": 2}, 0, 0)
        path.write_text(json.dumps({good_key: {"stream_length": 2, "speedup": 2.0},
                                    "bad": "truncated"}))
        cache = ResultsCache(path)
        assert "warning" in capsys.readouterr().err
        assert len(cache) == 1
        assert cache.get(good_key) == {"stream_length": 2, "speedup": 2.0}
        assert cache.get("bad") is None

    def test_corrupt_cache_file_ignored_with_warning(self, tmp_path, capsys):
        path = tmp_path / "cache.json"
        path.write_text("NOT JSON{{{")
        cache = ResultsCache(path)  # must not raise
        assert len(cache) == 0
        assert "warning" in capsys.readouterr().err
        result = run_sweep("stream_length", cache=cache, lengths=(2,))
        assert result.rows[0]["stream_length"] == 2
        reloaded = ResultsCache(path)  # save() overwrote the corrupt file
        assert len(reloaded) == 1

    def test_key_distinguishes_config(self):
        base = ResultsCache.key("precision", {"precision": "fp16"}, 1, 4)
        assert base != ResultsCache.key("precision", {"precision": "fp16"}, 2, 4)
        assert base != ResultsCache.key("precision", {"precision": "fp16"}, 1, 8)
        assert base != ResultsCache.key("precision", {"precision": "fp8"}, 1, 4)


class TestRunSweep:
    def test_available_sweeps_registered(self):
        assert {"firing_rate", "core_count", "precision", "stream_length",
                "strided_indirect"} <= set(available_sweeps())
        assert all(name in SWEEPS for name in available_sweeps())

    def test_unknown_sweep_rejected(self):
        with pytest.raises(KeyError, match="unknown sweep"):
            run_sweep("nope")

    def test_misspelled_point_kwarg_rejected(self):
        with pytest.raises(TypeError):
            run_sweep("firing_rate", rate=(0.1,))  # typo for rates=
        with pytest.raises(TypeError):
            run_sweep("core_count", rates=(0.1,))  # wrong sweep's kwarg

    def test_serial_run_produces_rows_and_headline(self):
        result = run_sweep("stream_length", jobs=1, lengths=(1, 8, 64))
        assert [row["stream_length"] for row in result.rows] == [1, 8, 64]
        assert "asymptotic_speedup" in result.headline

    def test_parallel_matches_serial(self):
        serial = run_sweep("firing_rate", jobs=1, seed=7, rates=(0.05, 0.2, 0.4))
        threaded = run_sweep("firing_rate", jobs=3, backend="thread", seed=7,
                             rates=(0.05, 0.2, 0.4))
        assert serial.rows == threaded.rows
        assert serial.headline == threaded.headline

    def test_point_results_independent_of_subset(self):
        full = run_sweep("firing_rate", seed=9, rates=(0.05, 0.2, 0.4))
        subset = run_sweep("firing_rate", seed=9, rates=(0.2,))
        assert subset.rows[0] == full.rows[1]

    def test_core_count_shares_data_across_points(self):
        result = run_sweep("core_count", seed=5, core_counts=(1, 2, 8))
        rows = result.rows
        # Same spike-count map at every core count: busy work can only shrink.
        assert rows[0]["cycles"] > rows[-1]["cycles"]
        assert rows[0]["parallel_efficiency"] == pytest.approx(1.0)
        assert 0.4 < rows[-1]["parallel_efficiency"] <= 1.05
        assert "efficiency_at_8_cores" in result.headline

    def test_core_count_without_one_core_uses_explicit_reference(self):
        # Mirrors the core_count_sweep fix: the 1-core anchor is evaluated
        # separately (same data seed) when the requested points lack it.
        subset = run_sweep("core_count", seed=5, core_counts=(2, 8))
        full = run_sweep("core_count", seed=5, core_counts=(1, 2, 8))
        assert "efficiency_at_8_cores" in subset.headline
        for row_subset, row_full in zip(subset.rows, full.rows[1:]):
            assert row_subset["parallel_efficiency"] == pytest.approx(
                row_full["parallel_efficiency"]
            )

    def test_worker_exception_propagates_without_serial_rerun(self, capsys):
        # A bad point parameter is the caller's error, not a pool failure:
        # it must raise instead of triggering the serial fallback.
        with pytest.raises(ValueError):
            run_sweep("firing_rate", jobs=2, backend="thread", rates=(0.1, -5.0))
        assert "pool failed" not in capsys.readouterr().err

    def test_runner_results_named_distinctly_from_sequential_sweeps(self):
        result = run_sweep("stream_length", lengths=(4,))
        assert result.name == "parallel_stream_length_sweep"

    def test_cache_skips_reexecution(self, tmp_path):
        cache = ResultsCache(tmp_path / "cache.json")
        first = run_sweep("stream_length", cache=cache, lengths=(1, 16))
        assert cache.misses == 2 and cache.hits == 0
        second = run_sweep("stream_length", cache=cache, lengths=(1, 16))
        assert cache.hits == 2
        assert first.rows == second.rows

    def test_cache_ignores_knobs_a_sweep_does_not_consume(self, tmp_path):
        cache = ResultsCache(tmp_path / "cache.json")
        # stream_length is deterministic: a different --seed must still hit.
        run_sweep("stream_length", cache=cache, seed=1, lengths=(4,))
        run_sweep("stream_length", cache=cache, seed=99, lengths=(4,))
        assert cache.hits == 1
        # firing_rate never runs full-network inference: --batch must not miss.
        run_sweep("firing_rate", cache=cache, seed=1, batch_size=2, rates=(0.1,))
        run_sweep("firing_rate", cache=cache, seed=1, batch_size=64, rates=(0.1,))
        assert cache.hits == 2

    def test_unpersistable_cache_warns_instead_of_crashing(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        cache = ResultsCache(blocker / "cache.json")
        result = run_sweep("stream_length", cache=cache, lengths=(2,))
        assert result.rows[0]["stream_length"] == 2  # results still delivered
        assert "could not persist" in capsys.readouterr().err

    def test_core_count_anchor_goes_through_cache(self, tmp_path):
        cache = ResultsCache(tmp_path / "cache.json")
        run_sweep("core_count", seed=5, core_counts=(2, 4), cache=cache)
        assert cache.misses == 3  # two points + the 1-core anchor
        cache.hits = cache.misses = 0
        run_sweep("core_count", seed=5, core_counts=(2, 4), cache=cache)
        assert cache.hits == 3 and cache.misses == 0  # anchor cached too

    def test_finalize_failure_still_persists_computed_rows(self, tmp_path, monkeypatch):
        import dataclasses

        from repro.eval import runner as runner_mod

        def exploding_finalize(rows, tasks, run_cached):
            raise RuntimeError("finalize blew up")

        broken = dataclasses.replace(SWEEPS["stream_length"], finalize=exploding_finalize)
        monkeypatch.setitem(runner_mod.SWEEPS, "stream_length", broken)
        cache = ResultsCache(tmp_path / "cache.json")
        with pytest.raises(RuntimeError, match="finalize blew up"):
            run_sweep("stream_length", cache=cache, lengths=(1, 8))
        # The freshly computed sweep rows must have reached the disk cache.
        reloaded = ResultsCache(tmp_path / "cache.json")
        assert len(reloaded) == 2

    def test_cache_persists_across_runner_instances(self, tmp_path):
        path = tmp_path / "cache.json"
        run_sweep("stream_length", cache=ResultsCache(path), lengths=(4,))
        reloaded = ResultsCache(path)
        result = run_sweep("stream_length", cache=reloaded, lengths=(4,))
        assert reloaded.hits == 1 and reloaded.misses == 0
        assert result.rows[0]["stream_length"] == 4

    def test_process_backend_smoke(self):
        result = run_sweep("stream_length", jobs=2, backend="process",
                           lengths=(1, 8, 64, 256))
        assert len(result.rows) == 4
        speedups = [row["speedup"] for row in result.rows]
        assert speedups == sorted(speedups)
