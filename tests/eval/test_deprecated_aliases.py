"""The deprecated ``_conv6_spec``/``_counts_for_rate`` module aliases.

PR 3 made the two helpers public; the underscore names remain as
module-level ``__getattr__`` aliases that must (a) emit a
``DeprecationWarning`` naming the replacement on *every* access and
(b) forward to the public functions themselves — not copies — so behavior
cannot drift between the two names before the aliases are removed.
"""

import warnings

import numpy as np
import pytest

from repro.eval import sweeps


class TestConv6SpecAlias:
    def test_warns_and_forwards_to_the_public_function(self):
        with pytest.warns(DeprecationWarning, match=r"_conv6_spec is deprecated"):
            alias = sweeps._conv6_spec
        # The alias IS the public function, not a reimplementation.
        assert alias is sweeps.conv6_spec

    def test_warning_names_the_replacement(self):
        with pytest.warns(DeprecationWarning) as captured:
            sweeps._conv6_spec
        assert "use conv6_spec" in str(captured[0].message)

    def test_result_matches_public_call(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            deprecated = sweeps._conv6_spec()
        assert deprecated == sweeps.conv6_spec()


class TestCountsForRateAlias:
    def test_warns_and_forwards_to_the_public_function(self):
        with pytest.warns(DeprecationWarning,
                          match=r"_counts_for_rate is deprecated"):
            alias = sweeps._counts_for_rate
        assert alias is sweeps.counts_for_rate

    def test_result_matches_public_call(self):
        spec = sweeps.conv6_spec()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            deprecated = sweeps._counts_for_rate(
                spec, 0.2, np.random.default_rng(3)
            )
        expected = sweeps.counts_for_rate(spec, 0.2, np.random.default_rng(3))
        assert np.array_equal(deprecated, expected)


class TestModuleGetattrContract:
    def test_every_access_warns_not_just_the_first(self):
        for _ in range(2):
            with pytest.warns(DeprecationWarning):
                sweeps._conv6_spec

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            sweeps._no_such_helper

    def test_public_names_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sweeps.conv6_spec()
            sweeps.counts_for_rate(
                sweeps.conv6_spec(), 0.1, np.random.default_rng(0)
            )
