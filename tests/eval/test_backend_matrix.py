"""Tier-1 wiring of the tools/smoke.py backend matrix.

One declarative SweepSpec runs through every execution backend
(serial / thread / process / sharded-2) and the rows must be bit-for-bit
identical.  The check itself lives in ``tools/smoke.py`` so the standalone
smoke script and this fast ``smoke``-marked test can never drift; the test
makes every plain ``pytest`` run cover the whole backend matrix.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_SMOKE_PATH = Path(__file__).resolve().parents[2] / "tools" / "smoke.py"


def _load_smoke():
    spec = importlib.util.spec_from_file_location("repro_tools_smoke", _SMOKE_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("repro_tools_smoke", module)
    spec.loader.exec_module(module)
    return module


@pytest.mark.smoke
def test_one_spec_identical_through_every_backend():
    smoke = _load_smoke()
    # Deterministic, kernel-only sweep: the whole 4-backend matrix stays fast.
    smoke.backend_matrix_check("stream_length", lengths=(1, 4, 16, 64))


@pytest.mark.smoke
def test_seeded_spec_identical_through_every_backend():
    smoke = _load_smoke()
    # A seeded sweep too: per-point seed derivation must not depend on the
    # executing backend or shard.
    smoke.backend_matrix_check("firing_rate", rates=(0.05, 0.3))
