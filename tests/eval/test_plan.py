"""Tests for the declarative plan layer: ParameterSpace, SweepSpec, executors."""

import pytest

from repro.backends import SerialBackend
from repro.eval.runner import SWEEPS, run_sweep
from repro.plan import (
    ParameterSpace,
    PlanRow,
    ResultsCache,
    SweepSpec,
    collect_plan,
    iter_plan,
    point_seed,
)


# --------------------------------------------------------------------------- #
# ParameterSpace composition
# --------------------------------------------------------------------------- #
class TestParameterSpace:
    def test_grid_cartesian_product_last_axis_fastest(self):
        space = ParameterSpace.grid(a=(1, 2), b=("x", "y"))
        assert space.points() == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
        ]
        assert len(space) == 4
        assert space.axis_names() == ("a", "b")

    def test_scalar_axis_values_become_single_points(self):
        space = ParameterSpace.grid(rate=(0.1, 0.2), precision="fp16")
        assert space.points() == [
            {"rate": 0.1, "precision": "fp16"},
            {"rate": 0.2, "precision": "fp16"},
        ]

    def test_zipped_parallel_iteration(self):
        space = ParameterSpace.zipped(a=(1, 2, 3), b=(10, 20, 30))
        assert space.points() == [
            {"a": 1, "b": 10}, {"a": 2, "b": 20}, {"a": 3, "b": 30},
        ]

    def test_zipped_rejects_unequal_lengths(self):
        with pytest.raises(ValueError, match="equal lengths"):
            ParameterSpace.zipped(a=(1, 2), b=(1,))

    def test_chain_concatenates_points(self):
        space = ParameterSpace.grid(a=(1,)) + ParameterSpace.grid(a=(2, 3))
        assert [p["a"] for p in space.points()] == [1, 2, 3]

    def test_product_merges_disjoint_axes(self):
        space = ParameterSpace.grid(a=(1, 2)) * ParameterSpace.grid(b=("x",))
        assert space.points() == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]
        assert space.axis_names() == ("a", "b")

    def test_product_rejects_shared_axes(self):
        with pytest.raises(ValueError, match="share axes"):
            ParameterSpace.grid(a=(1,)) * ParameterSpace.grid(a=(2,))

    def test_with_axis_replaces_values_immutably(self):
        space = ParameterSpace.grid(a=(1, 2), b=("x",))
        narrowed = space.with_axis("a", (9,))
        assert [p["a"] for p in narrowed.points()] == [9]
        assert [p["a"] for p in space.points()] == [1, 2]  # original untouched

    def test_with_axis_unknown_axis_rejected(self):
        with pytest.raises(KeyError, match="unknown axis"):
            ParameterSpace.grid(a=(1,)).with_axis("z", (2,))

    def test_with_axis_through_composites(self):
        chained = ParameterSpace.grid(a=(1,)) + ParameterSpace.grid(a=(2,), c=(5,))
        overridden = chained.with_axis("a", 7)
        assert [p["a"] for p in overridden.points()] == [7, 7]
        product = ParameterSpace.grid(a=(1, 2)) * ParameterSpace.grid(b=("x",))
        assert [p["b"] for p in product.with_axis("b", "y").points()] == ["y", "y"]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            ParameterSpace.grid(a=())

    def test_describe_is_compact(self):
        assert ParameterSpace.grid(a=(1, 2), b=("x",)).describe() == "a x2 · b x1"


# --------------------------------------------------------------------------- #
# SweepSpec semantics
# --------------------------------------------------------------------------- #
def _double_point(task):
    return {"n": task["n"], "doubled": task["n"] * 2, "seed": task["seed"]}


def _spec(**overrides):
    fields = dict(
        name="double",
        space=ParameterSpace.grid(n=(1, 2, 3)),
        point=_double_point,
        row_schema=("n", "doubled"),
        kwarg_axes={"ns": "n"},
        normalize={"n": int},
    )
    fields.update(overrides)
    return SweepSpec(**fields)


class TestSweepSpec:
    def test_points_apply_normalization(self):
        spec = _spec()
        assert spec.points(ns=(1.0, 2.0)) == [{"n": 1}, {"n": 2}]

    def test_unknown_point_kwarg_raises_typeerror(self):
        with pytest.raises(TypeError, match="unexpected point parameter"):
            _spec().points(bogus=(1,))

    def test_task_seed_matches_point_seed_and_skips_compute_params(self):
        spec = _spec(compute_params=("precision",))
        params = {"n": 3, "precision": "fp16"}
        assert spec.task_seed(11, params) == point_seed(11, "double", {"n": 3})
        unseeded = _spec(seeded=False)
        assert unseeded.task_seed(11, {"n": 3}) == 11

    def test_cache_key_ignores_unconsumed_knobs(self):
        seeded = _spec()
        assert seeded.cache_key({"n": 1}, 1, 4) != seeded.cache_key({"n": 1}, 2, 4)
        deterministic = _spec(seeded=False)
        assert deterministic.cache_key({"n": 1}, 1, 4) == deterministic.cache_key({"n": 1}, 2, 4)
        assert seeded.cache_key({"n": 1}, 1, 4) == seeded.cache_key({"n": 1}, 1, 8)
        batched = _spec(uses_batch=True)
        assert batched.cache_key({"n": 1}, 1, 4) != batched.cache_key({"n": 1}, 1, 8)

    def test_describe_reports_axes_and_parameters(self):
        info = _spec().describe()
        assert info["name"] == "double"
        assert info["points"] == 3
        assert info["parameters"] == ("ns",)
        assert "n" in info["axes"]

    def test_builtin_sweeps_are_specs(self):
        for name, spec in SWEEPS.items():
            assert isinstance(spec, SweepSpec)
            assert spec.name == name
            assert len(spec.space) > 0
            assert spec.row_schema


# --------------------------------------------------------------------------- #
# Plan execution
# --------------------------------------------------------------------------- #
_calls = []


def _tracking_point(task):
    _calls.append(task["n"])
    return {"n": task["n"], "doubled": task["n"] * 2}


class TestIterPlan:
    def test_streams_rows_before_the_sweep_completes(self):
        # Consuming the iterator one element at a time must interleave with
        # point evaluation: after the first `next` only one point has run.
        _calls.clear()
        spec = _spec(point=_tracking_point)
        stream = iter_plan(spec, SerialBackend(), seed=1, batch_size=1)
        first = next(stream)
        assert isinstance(first, PlanRow)
        assert first.index == 0 and first.row["doubled"] == 2
        assert _calls == [1], "iter_plan evaluated ahead of the consumer"
        rest = list(stream)
        assert [r.index for r in rest] == [1, 2]
        assert _calls == [1, 2, 3]

    def test_cache_hits_marked_and_served_first(self):
        spec = _spec()
        cache = ResultsCache()
        list(iter_plan(spec, SerialBackend(), seed=1, batch_size=1, cache=cache))
        rows = list(iter_plan(spec, SerialBackend(), seed=1, batch_size=1, cache=cache))
        assert all(row.cached for row in rows)
        assert [row.index for row in rows] == [0, 1, 2]

    def test_rows_carry_point_params(self):
        rows = list(iter_plan(_spec(), SerialBackend(), seed=1, batch_size=1,
                              point_kwargs={"ns": (5,)}))
        assert rows[0].params == {"n": 5}


class TestCollectPlan:
    def test_result_matches_run_sweep(self):
        direct = collect_plan(SWEEPS["stream_length"], SerialBackend(),
                              seed=3, batch_size=4, point_kwargs={"lengths": (2, 8)})
        legacy = run_sweep("stream_length", seed=3, lengths=(2, 8))
        assert direct.rows == legacy.rows
        assert direct.headline == legacy.headline
        assert direct.name == "parallel_stream_length_sweep"

    def test_row_schema_violation_rejected(self):
        def bad_point(task):
            return {"n": task["n"]}  # missing "doubled"

        spec = _spec(point=bad_point)
        with pytest.raises(ValueError, match="missing declared"):
            collect_plan(spec, SerialBackend(), seed=1, batch_size=1)

    def test_headline_from_finalize(self):
        spec = _spec(finalize=lambda rows, tasks, run_cached: {
            "total": sum(r["doubled"] for r in rows)
        })
        result = collect_plan(spec, SerialBackend(), seed=1, batch_size=1)
        assert result.headline == {"total": 12}


class TestPublicSweepHelpers:
    def test_conv6_spec_and_counts_for_rate_are_public(self):
        import numpy as np

        from repro.eval.sweeps import conv6_spec, counts_for_rate

        spec = conv6_spec()
        assert spec.name == "conv6"
        counts = counts_for_rate(spec, 0.2, np.random.default_rng(0))
        assert counts.shape == (10, 10)  # 8x8 ifmap + padding ring

    def test_deprecated_private_aliases_warn_but_work(self):
        import numpy as np

        from repro.eval import sweeps

        with pytest.warns(DeprecationWarning, match="conv6_spec"):
            spec = sweeps._conv6_spec()
        assert spec.name == "conv6"
        with pytest.warns(DeprecationWarning, match="counts_for_rate"):
            counts = sweeps._counts_for_rate(spec, 0.1, np.random.default_rng(0))
        assert counts.shape == (10, 10)
