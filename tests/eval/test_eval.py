"""Tests for the metric helpers, text reporting and experiment drivers."""

import numpy as np
import pytest

from repro.eval.metrics import geometric_mean, ratio, summarize
from repro.eval.reporting import format_table, render_experiment
from repro.eval.experiments import (
    memory_footprint_experiment,
    run_svgg11_variants,
    speedup_experiment,
    spva_microbenchmark_experiment,
    utilization_experiment,
    energy_experiment,
)
from repro.eval.sweeps import (
    core_count_sweep,
    firing_rate_sweep,
    precision_sweep,
    stream_length_sweep,
)
from repro.types import Precision


class TestMetrics:
    def test_ratio(self):
        assert ratio(10, 2) == 5
        assert ratio(1, 0) == float("inf")
        assert ratio(0, 0) == 1.0

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["mean"] == 2.0
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert summarize([])["mean"] == 0.0


class TestReporting:
    def test_format_table_alignment_and_content(self):
        rows = [{"layer": "conv1", "speedup": 5.1234}, {"layer": "conv2", "speedup": 6.0}]
        table = format_table(rows)
        assert "layer" in table and "conv1" in table and "5.123" in table
        assert table.count("\n") >= 3

    def test_format_table_empty(self):
        assert format_table([]) == "(no data)"

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        table = format_table(rows, columns=["b"])
        assert "b" in table and "a" not in table.splitlines()[0]

    def test_render_experiment_includes_title_and_notes(self):
        text = render_experiment("Fig 3a", [{"x": 1}], notes="shape only")
        assert text.startswith("== Fig 3a ==")
        assert "shape only" in text


class TestFigureExperiments:
    @pytest.fixture(scope="class")
    def variants(self):
        return run_svgg11_variants(batch_size=2, seed=11)

    def test_memory_footprint_rows_and_reduction(self):
        result = memory_footprint_experiment(batch_size=4, seed=1)
        assert len(result.rows) == 8
        assert {"layer", "aer_bytes_mean", "csr_bytes_mean", "reduction"} <= set(result.rows[0])
        # Paper: ~2.75x average reduction; anything in the 2-4x band is the right shape.
        assert 2.0 < result.headline["mean_csr_over_aer_reduction"] < 4.0
        # Every spiking layer must individually favour the CSR format.
        for row in result.rows[1:]:
            assert row["reduction"] > 1.5

    def test_utilization_experiment(self, variants):
        result = utilization_experiment(variants=variants)
        assert len(result.rows) == 11
        for row in result.rows:
            assert 0.0 <= row["fpu_util_baseline"] <= 1.0
            assert row["fpu_util_spikestream"] >= row["fpu_util_baseline"]
        # Paper: 9.28 % -> 52.3 % network-average utilization.
        assert 0.05 < result.headline["network_fpu_util_baseline"] < 0.15
        assert 0.35 < result.headline["network_fpu_util_spikestream"] < 0.60

    def test_speedup_experiment(self, variants):
        result = speedup_experiment(variants=variants)
        assert len(result.rows) == 11
        # Paper: network speedup ~5.6x FP16, per-layer peak approaching 7x.
        assert 4.5 < result.headline["network_speedup_fp16_over_baseline"] < 7.0
        assert result.headline["peak_layer_speedup_fp16_over_baseline"] < 8.5
        # FP8 over FP16 must stay below the ideal 2x.
        assert 1.3 < result.headline["network_speedup_fp8_over_fp16"] <= 2.0

    def test_energy_experiment(self, variants):
        result = energy_experiment(variants=variants)
        headline = result.headline
        # Paper Fig. 4: ~0.13 / 0.23 / 0.22 W for layers 2-8.
        assert 0.08 < headline["mean_power_baseline_conv2_to_8"] < 0.20
        assert 0.18 < headline["mean_power_spikestream_fp16_conv2_to_8"] < 0.32
        assert headline["mean_power_spikestream_fp8_conv2_to_8"] < headline[
            "mean_power_spikestream_fp16_conv2_to_8"
        ]
        # Energy-efficiency gains: 3.25x (FP16) and 5.67x (FP8) in the paper.
        assert 2.0 < headline["energy_gain_fp16_over_baseline"] < 4.5
        assert 4.0 < headline["energy_gain_fp8_over_baseline"] < 8.0
        # SpikeStream consumes more power but less energy than the baseline.
        for row in result.rows:
            assert row["power_w_spikestream_fp16"] > row["power_w_baseline"]
            assert row["energy_mj_spikestream_fp16"] < row["energy_mj_baseline"]

    def test_spva_microbenchmark(self):
        result = spva_microbenchmark_experiment(stream_lengths=(1, 8, 64))
        assert [row["stream_length"] for row in result.rows] == [1, 8, 64]
        speedups = [row["speedup"] for row in result.rows]
        assert speedups == sorted(speedups)
        assert 5.0 < result.headline["asymptotic_speedup"] < 9.0
        assert result.headline["baseline_instructions_per_element"] == pytest.approx(8, abs=0.5)


class TestSweeps:
    def test_firing_rate_sweep_monotone_cycles(self):
        result = firing_rate_sweep(rates=(0.05, 0.2, 0.4), seed=3)
        cycles = [row["spikestream_cycles"] for row in result.rows]
        assert cycles == sorted(cycles)

    def test_core_count_sweep_scales(self):
        result = core_count_sweep(core_counts=(1, 4, 8))
        cycles = [row["cycles"] for row in result.rows]
        assert cycles[0] > cycles[-1]
        assert 0.5 < result.rows[-1]["parallel_efficiency"] <= 1.05

    def test_core_count_sweep_efficiency_exact_at_one_core(self):
        result = core_count_sweep(core_counts=(1, 2))
        assert result.rows[0]["parallel_efficiency"] == 1.0

    def test_core_count_sweep_without_one_core_uses_explicit_reference(self):
        # Regression: the old code anchored efficiency to the *first* entry
        # (scaled by its own core count), so a (2, 4, 8) sweep reported the
        # 2-core point as perfectly efficient.  The reference must be an
        # explicit 1-core run of the same spike-count map.
        subset = core_count_sweep(core_counts=(2, 4, 8), seed=3)
        full = core_count_sweep(core_counts=(1, 2, 4, 8), seed=3)
        for row_subset, row_full in zip(subset.rows, full.rows[1:]):
            assert row_subset["parallel_efficiency"] == pytest.approx(
                row_full["parallel_efficiency"]
            )
        # Real stealing overhead: no multi-core point is perfectly efficient.
        assert all(row["parallel_efficiency"] < 1.0 for row in subset.rows)
        assert "efficiency_at_8_cores" in subset.headline

    def test_precision_sweep(self):
        result = precision_sweep(batch_size=1, seed=4)
        runtimes = {row["precision"]: row["runtime_ms"] for row in result.rows}
        assert runtimes["fp8"] < runtimes["fp16"] < runtimes["fp32"]

    def test_precision_sweep_headline_order_independent(self):
        # Regression: the headline indexed rows[-2]/rows[-1], reporting a
        # wrong ratio whenever the caller reordered or subset the precisions.
        default = precision_sweep(batch_size=1, seed=4)
        reordered = precision_sweep(
            precisions=(Precision.FP8, Precision.FP32, Precision.FP16),
            batch_size=1, seed=4,
        )
        assert reordered.headline["fp8_over_fp16_speedup"] == pytest.approx(
            default.headline["fp8_over_fp16_speedup"]
        )
        assert default.headline["fp8_over_fp16_speedup"] > 1.0

    def test_precision_sweep_headline_omitted_when_precision_absent(self):
        result = precision_sweep(precisions=(Precision.FP32, Precision.FP16),
                                 batch_size=1, seed=4)
        assert "fp8_over_fp16_speedup" not in result.headline

    def test_stream_length_sweep(self):
        result = stream_length_sweep(lengths=(1, 16, 256))
        speedups = [row["speedup"] for row in result.rows]
        assert speedups == sorted(speedups)
