"""Additional tests for the ablation sweeps (optimization breakdown, strided indirect)."""

import math

import pytest

from repro.eval.sweeps import optimization_ablation, strided_indirect_sweep


class TestOptimizationAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return optimization_ablation(batch_size=1, seed=9)

    def test_variants_present(self, result):
        variants = [row["variant"] for row in result.rows]
        assert any("baseline" in v for v in variants)
        assert any("+SA" in v for v in variants)
        assert any("FP8" in v for v in variants)
        assert any("stealing" in v for v in variants)

    def test_each_optimization_helps(self, result):
        headline = result.headline
        assert headline["sa_speedup"] > 4.0
        assert headline["fp8_speedup"] > headline["sa_speedup"]
        assert headline["stealing_gain"] >= 1.0

    def test_energy_decreases_with_each_step(self, result):
        rows = [row for row in result.rows if not math.isnan(row["energy_mj"])]
        energies = [row["energy_mj"] for row in rows]
        assert energies == sorted(energies, reverse=True)


class TestStridedIndirectSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return strided_indirect_sweep(rates=(0.05, 0.2, 0.4), seed=9)

    def test_extension_always_helps(self, result):
        for row in result.rows:
            assert row["additional_speedup"] >= 1.0
            assert row["strided_indirect_fpu_util"] >= row["spikestream_fpu_util"]

    def test_headline_band(self, result):
        # The projected gain is modest (index fetch amortization), well below 2x.
        assert 1.05 < result.headline["max_additional_speedup"] < 1.6
