"""Tests for :mod:`repro.utils`."""

import numpy as np
import pytest

from repro.types import Precision
from repro.utils.quantize import dtype_for, quantization_error, quantize
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.validation import check_positive, check_probability, check_shape_match


class TestQuantize:
    def test_fp64_is_identity(self, rng):
        values = rng.normal(size=100)
        assert np.array_equal(quantize(values, Precision.FP64), values)

    def test_fp16_matches_numpy_half(self, rng):
        values = rng.normal(size=100)
        expected = values.astype(np.float16).astype(np.float32)
        assert np.array_equal(quantize(values, Precision.FP16), expected)

    def test_fp8_is_idempotent(self, rng):
        values = rng.normal(size=200)
        once = quantize(values, Precision.FP8)
        twice = quantize(once, Precision.FP8)
        assert np.allclose(once, twice)

    def test_fp8_preserves_zero_and_sign(self):
        out = quantize(np.array([0.0, -1.5, 2.25]), Precision.FP8)
        assert out[0] == 0.0
        assert out[1] < 0
        assert out[2] > 0

    def test_fp8_error_larger_than_fp16_error(self, rng):
        values = rng.normal(size=1000)
        assert quantization_error(values, Precision.FP8) > quantization_error(
            values, Precision.FP16
        )

    def test_quantization_error_zero_for_empty(self):
        assert quantization_error(np.array([]), Precision.FP8) == 0.0

    def test_dtype_for(self):
        assert dtype_for(Precision.FP64) == np.float64
        assert dtype_for(Precision.FP16) == np.float16
        assert dtype_for(Precision.FP8) == np.float32


class TestRng:
    def test_make_rng_passthrough(self):
        generator = np.random.default_rng(3)
        assert make_rng(generator) is generator

    def test_make_rng_from_seed_is_deterministic(self):
        assert make_rng(7).integers(0, 100, 5).tolist() == make_rng(7).integers(0, 100, 5).tolist()

    def test_spawn_rngs_independent_and_stable(self):
        first = spawn_rngs(11, 3)
        second = spawn_rngs(11, 5)
        # The first three generators are identical regardless of the count.
        for a, b in zip(first, second):
            assert a.integers(0, 1000, 4).tolist() == b.integers(0, 1000, 4).tolist()

    def test_spawn_rngs_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1.0)
        check_positive("x", 0.0, allow_zero=True)
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        with pytest.raises(ValueError):
            check_positive("x", -1.0, allow_zero=True)

    def test_check_probability(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_shape_match(self):
        check_shape_match("a", np.zeros((2, 3)), (2, 3))
        with pytest.raises(ValueError):
            check_shape_match("a", np.zeros((2, 3)), (3, 2))
