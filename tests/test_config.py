"""Tests for :mod:`repro.config`."""

import pytest

from repro.config import RunConfig, baseline_config, spikestream_config
from repro.types import OptimizationFlag, Precision


class TestRunConfig:
    def test_defaults_match_paper_evaluation(self):
        config = RunConfig()
        assert config.precision is Precision.FP16
        assert config.batch_size == 128
        assert config.timesteps == 1
        assert config.index_bytes == 2
        assert config.streaming_enabled

    def test_baseline_config_disables_streaming(self):
        config = baseline_config()
        assert not config.streaming_enabled
        assert config.optimizations == OptimizationFlag.baseline()

    def test_spikestream_config_enables_streaming(self):
        config = spikestream_config(Precision.FP8)
        assert config.streaming_enabled
        assert config.precision is Precision.FP8
        assert config.simd_width == 8

    def test_with_precision_returns_new_config(self):
        config = spikestream_config(Precision.FP16)
        other = config.with_precision(Precision.FP8)
        assert config.precision is Precision.FP16
        assert other.precision is Precision.FP8
        assert other.optimizations == config.optimizations

    def test_as_baseline_round_trip(self):
        config = spikestream_config()
        assert config.as_baseline().as_spikestream().optimizations == config.optimizations

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 0},
            {"timesteps": 0},
            {"index_bytes": 3},
        ],
    )
    def test_rejects_invalid_values(self, kwargs):
        with pytest.raises(ValueError):
            RunConfig(**kwargs)
