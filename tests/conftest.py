"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats.convert import compress_ifmap
from repro.kernels.conv import ConvLayerSpec
from repro.kernels.encode import EncodeLayerSpec
from repro.kernels.fc import FcLayerSpec
from repro.snn.layers import Flatten, SpikingConv2d, SpikingLinear, SpikingMaxPool2d
from repro.snn.network import SpikingNetwork
from repro.snn.neuron import LIFParameters
from repro.types import TensorShape


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "smoke: fast cross-backend smoke checks shared with tools/smoke.py "
        "(run alone with `pytest -m smoke`)",
    )


@pytest.fixture
def rng():
    """Deterministic NumPy generator shared by tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_conv_spec():
    """A small convolutional layer spec (8x8x16 ifmap, 8 filters)."""
    return ConvLayerSpec(
        name="test-conv",
        input_shape=TensorShape(8, 8, 16),
        in_channels=16,
        out_channels=8,
        kernel_size=3,
        stride=1,
        padding=1,
    )


@pytest.fixture
def small_fc_spec():
    """A small fully connected layer spec."""
    return FcLayerSpec(name="test-fc", in_features=64, out_features=16)


@pytest.fixture
def small_encode_spec():
    """A small dense spike-encoding layer spec."""
    return EncodeLayerSpec(
        name="test-encode",
        input_shape=TensorShape(8, 8, 3),
        in_channels=3,
        out_channels=8,
        kernel_size=3,
        stride=1,
        padding=1,
    )


@pytest.fixture
def small_compressed_ifmap(rng, small_conv_spec):
    """Compressed padded ifmap matching ``small_conv_spec``."""
    padded = small_conv_spec.padded_input_shape
    dense = rng.random(padded.as_tuple()) < 0.3
    # The padding ring carries no spikes.
    dense[0, :, :] = False
    dense[-1, :, :] = False
    dense[:, 0, :] = False
    dense[:, -1, :] = False
    return compress_ifmap(dense)


@pytest.fixture
def tiny_network(rng):
    """A tiny spiking CNN: encode conv -> pool -> conv -> flatten -> FC."""
    lif = LIFParameters(alpha=0.9, v_threshold=0.5)
    layers = [
        SpikingConv2d(3, 4, kernel_size=3, padding=1, lif=lif, encodes_input=True, name="conv1"),
        SpikingMaxPool2d(name="pool1"),
        SpikingConv2d(4, 6, kernel_size=3, padding=1, lif=lif, name="conv2"),
        Flatten(name="flatten"),
        SpikingLinear(6 * 4 * 4, 5, lif=lif, name="fc1", is_output=True),
    ]
    network = SpikingNetwork(layers, input_shape=TensorShape(8, 8, 3), name="tiny")
    network.initialize(rng)
    return network
