"""Tests for Session.run_plan streaming, sharded sessions, store eviction."""

import pytest

from repro.backends import ShardedBackend
from repro.core.pipeline import SpikeStreamInference
from repro.config import spikestream_config
from repro.eval.runner import SWEEPS
from repro.plan import ParameterSpace, PlanRow, SweepSpec
from repro.session import (
    SCENARIOS,
    ResultStore,
    Session,
    _parse_cache_limit,
    register_sweep,
)


# --------------------------------------------------------------------------- #
# Streaming run_plan
# --------------------------------------------------------------------------- #
_STREAM_CALLS = []


def _slow_point(task):
    _STREAM_CALLS.append(task["n"])
    return {"n": task["n"], "tripled": task["n"] * 3}


_STREAM_SPEC = SweepSpec(
    name="triple",
    space=ParameterSpace.grid(n=(1, 2, 3, 4)),
    point=_slow_point,
    row_schema=("n", "tripled"),
    kwarg_axes={"ns": "n"},
    seeded=False,
)


class TestRunPlan:
    def test_streams_rows_before_completion(self):
        # The acceptance check: consuming the iterator mid-sweep must show
        # that later points have not run yet — run_plan streams, it does
        # not return a final list.
        _STREAM_CALLS.clear()
        with Session() as session:
            stream = session.run_plan(_STREAM_SPEC)
            first = next(stream)
            assert isinstance(first, PlanRow)
            assert first.index == 0 and first.row == {"n": 1, "tripled": 3}
            assert _STREAM_CALLS == [1], "run_plan ran ahead of the consumer"
            rest = list(stream)
        assert [row.index for row in rest] == [1, 2, 3]
        assert _STREAM_CALLS == [1, 2, 3, 4]

    def test_accepts_registered_names_and_rejects_unknown(self):
        with Session() as session:
            rows = sorted(session.run_plan("stream_length", lengths=(2, 8)),
                          key=lambda row: row.index)
            assert [row.row["stream_length"] for row in rows] == [2, 8]
            with pytest.raises(KeyError, match="unknown sweep"):
                next(session.run_plan("bogus"))

    def test_rows_enter_session_sweep_cache(self):
        with Session() as session:
            list(session.run_plan(_STREAM_SPEC))
            assert len(session.sweep_cache) == 4
            rerun = list(session.run_plan(_STREAM_SPEC))
        assert all(row.cached for row in rerun)

    def test_run_spec_collects_canonical_result(self):
        with Session() as session:
            result = session.run_spec(_STREAM_SPEC)
        assert [row["tripled"] for row in result.rows] == [3, 6, 9, 12]
        assert result.name == "parallel_triple_sweep"

    def test_sharded_session_matches_serial_rows(self):
        with Session() as serial_session:
            serial = serial_session.run("firing_rate", seed=21, rates=(0.1, 0.3))
        with Session(backend="sharded", shards=2) as sharded_session:
            sharded = sharded_session.run("firing_rate", seed=21, rates=(0.1, 0.3))
            assert sharded_session.shared_executor() is None  # shards own the work
        assert serial.rows == sharded.rows
        assert serial.headline == sharded.headline

    def test_run_plan_explicit_sharded_backend(self):
        with Session() as session:
            rows = sorted(
                session.run_plan(_STREAM_SPEC, backend=ShardedBackend(shards=2)),
                key=lambda row: row.index,
            )
        assert [row.row["n"] for row in rows] == [1, 2, 3, 4]


class TestRegisterSweep:
    def test_registered_sweep_reachable_via_session_run(self):
        spec = SweepSpec(
            name="registered_triple",
            space=ParameterSpace.grid(n=(2, 4)),
            point=_slow_point,
            row_schema=("n", "tripled"),
            kwarg_axes={"ns": "n"},
            seeded=False,
            description="test-only sweep",
        )
        try:
            register_sweep(spec)
            with Session() as session:
                assert "registered_triple" in session.scenarios()
                info = session.describe("registered_triple")
                assert info["kind"] == "sweep"
                assert "ns" in info["params"]
                result = session.run("registered_triple")
            assert [row["tripled"] for row in result.rows] == [6, 12]
        finally:
            SWEEPS.pop("registered_triple", None)
            SCENARIOS.pop("registered_triple", None)


# --------------------------------------------------------------------------- #
# Result-store eviction
# --------------------------------------------------------------------------- #
class TestResultStoreEviction:
    def _result(self, seed=3):
        engine = SpikeStreamInference(spikestream_config(batch_size=1, seed=seed))
        return engine.run_statistical(batch_size=1, seed=seed)

    def test_max_entries_evicts_least_recently_used(self):
        store = ResultStore(max_entries=2)
        result = self._result()
        store.put("a", result)
        store.put("b", result)
        store.get("a")  # refresh: "b" becomes the LRU victim
        store.put("c", result)
        assert len(store) == 2
        assert "a" in store and "c" in store and "b" not in store
        assert store.evictions == 1

    def test_max_bytes_bounds_footprint(self):
        result = self._result()
        store = ResultStore(max_bytes=1)  # smaller than any result
        store.put("a", result)
        assert len(store) == 0 and store.evictions == 1
        roomy = ResultStore(max_bytes=10**9)
        roomy.put("a", result)
        assert len(roomy) == 1 and roomy.total_bytes > 0

    def test_disk_backed_eviction_reloads_from_disk(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=1)
        result = self._result()
        store.put("a", result)
        store.put("b", result)  # evicts "a" from memory, file remains
        assert len(store) == 1
        assert store.get("a") is not None  # transparently reloaded
        assert store.hits == 1

    def test_unbounded_store_skips_size_accounting(self):
        store = ResultStore()
        store.put("a", self._result())
        assert store.total_bytes == 0 and store.evictions == 0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            ResultStore(max_entries=0)
        with pytest.raises(ValueError, match="max_bytes"):
            ResultStore(max_bytes=0)

    def test_merge_from_respects_bounds(self):
        src = ResultStore()
        result = self._result()
        src.put("a", result)
        src.put("b", result)
        dst = ResultStore(max_entries=1)
        added = dst.merge_from(src)
        assert added == 2
        assert len(dst) == 1  # bounded even through merges


class TestCacheLimitKnob:
    def test_parse_cache_limit(self):
        assert _parse_cache_limit(None) == (None, None, None)
        assert _parse_cache_limit(100) == (100, None, None)
        assert _parse_cache_limit("250") == (250, None, None)
        assert _parse_cache_limit("64MB") == (None, 64 * 1024**2, None)
        assert _parse_cache_limit("512 kb") == (None, 512 * 1024, None)
        assert _parse_cache_limit("1.5gb") == (None, int(1.5 * 1024**3), None)
        assert _parse_cache_limit("disk:64MB") == (None, None, 64 * 1024**2)
        assert _parse_cache_limit("250,disk:64MB") == (250, None, 64 * 1024**2)
        with pytest.raises(ValueError, match="cache_limit"):
            _parse_cache_limit("lots")

    def test_session_cache_limit_bounds_store(self):
        with Session(cache_limit=1) as session:
            assert session.store.max_entries == 1
            first = session.run_inference(batch_size=1, seed=1)
            second = session.run_inference(batch_size=1, seed=2)
            assert len(session.store) == 1
            assert session.store.evictions >= 1
        assert first is not None and second is not None

    def test_session_cache_limit_bytes(self):
        with Session(cache_limit="100MB") as session:
            assert session.store.max_bytes == 100 * 1024**2
            assert session.store.max_entries is None
