"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_run_command(self, capsys):
        assert main(["run", "--batch", "1", "--precision", "fp16"]) == 0
        output = capsys.readouterr().out
        assert "S-VGG11" in output
        assert "conv6" in output
        assert "total_runtime_ms" in output

    def test_run_baseline_flag(self, capsys):
        assert main(["run", "--batch", "1", "--baseline"]) == 0
        assert "baseline" in capsys.readouterr().out

    def test_figures_fig3a(self, capsys):
        assert main(["figures", "--figure", "fig3a", "--batch", "2"]) == 0
        output = capsys.readouterr().out
        assert "csr_bytes_mean" in output
        assert "headline" in output

    def test_figures_fig3c(self, capsys):
        assert main(["figures", "--figure", "fig3c", "--batch", "1"]) == 0
        assert "speedup_fp16_over_baseline" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        assert main(["compare", "--batch", "1", "--timesteps", "10"]) == 0
        output = capsys.readouterr().out
        assert "LSMCore" in output and "Loihi" in output

    def test_spva_command(self, capsys):
        assert main(["spva", "--lengths", "1", "8"]) == 0
        assert "stream_length" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figures", "--figure", "fig99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
