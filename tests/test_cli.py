"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_run_command(self, capsys):
        assert main(["run", "--batch", "1", "--precision", "fp16"]) == 0
        output = capsys.readouterr().out
        assert "S-VGG11" in output
        assert "conv6" in output
        assert "total_runtime_ms" in output

    def test_run_baseline_flag(self, capsys):
        assert main(["run", "--batch", "1", "--baseline"]) == 0
        assert "baseline" in capsys.readouterr().out

    def test_figures_fig3a(self, capsys):
        assert main(["figures", "--figure", "fig3a", "--batch", "2"]) == 0
        output = capsys.readouterr().out
        assert "csr_bytes_mean" in output
        assert "headline" in output

    def test_figures_fig3a_honors_small_batch_with_warning(self, capsys):
        # Regression: --batch used to be silently clamped to >= 16.
        assert main(["figures", "--figure", "fig3a", "--batch", "3"]) == 0
        captured = capsys.readouterr()
        assert "warning" in captured.err and "batch 3" in captured.err
        small = captured.out
        assert main(["figures", "--figure", "fig3a", "--batch", "16"]) == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        # Different batch sizes must produce different statistics.
        assert small != captured.out

    def test_figures_fig3a_default_batch_is_warning_free(self, capsys):
        # Without --batch, fig3a keeps its recommended batch of 16: same
        # output as an explicit 16, and no stderr warning.
        assert main(["figures", "--figure", "fig3a"]) == 0
        default = capsys.readouterr()
        assert default.err == ""
        assert main(["figures", "--figure", "fig3a", "--batch", "16"]) == 0
        assert capsys.readouterr().out == default.out

    def test_figures_fig3c(self, capsys):
        assert main(["figures", "--figure", "fig3c", "--batch", "1"]) == 0
        assert "speedup_fp16_over_baseline" in capsys.readouterr().out

    def test_compare_command(self, capsys):
        assert main(["compare", "--batch", "1", "--timesteps", "10"]) == 0
        output = capsys.readouterr().out
        assert "LSMCore" in output and "Loihi" in output

    def test_spva_command(self, capsys):
        assert main(["spva", "--lengths", "1", "8"]) == 0
        assert "stream_length" in capsys.readouterr().out

    def test_run_list_scenarios(self, capsys):
        assert main(["run", "--list-scenarios"]) == 0
        output = capsys.readouterr().out
        assert "speedup" in output and "firing_rate" in output and "sweep" in output

    def test_run_scenario(self, capsys):
        assert main(["run", "--scenario", "stream_length"]) == 0
        output = capsys.readouterr().out
        assert "stream_length" in output and "headline" in output

    def test_run_scenario_unknown_rejected(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["run", "--scenario", "bogus"])

    def test_run_scenario_keeps_scenario_defaults(self, capsys):
        # No flags: the scenario's own defaults (500 timesteps, batch 4)
        # apply, so the data matches the dedicated `compare` command.
        assert main(["run", "--scenario", "accelerator_comparison"]) == 0
        scenario_out = capsys.readouterr().out
        assert main(["compare"]) == 0
        compare_out = capsys.readouterr().out
        assert scenario_out.splitlines()[1:] == compare_out.splitlines()[1:]

    def test_run_scenario_forwards_timesteps(self, capsys):
        assert main(["run", "--scenario", "accelerator_comparison",
                     "--timesteps", "10", "--batch", "1"]) == 0
        fast = capsys.readouterr()
        assert fast.err == ""  # timesteps is consumed, no warning
        assert main(["run", "--scenario", "accelerator_comparison",
                     "--timesteps", "20", "--batch", "1"]) == 0
        slow = capsys.readouterr()
        assert fast.out != slow.out  # the flag actually changes the result

    def test_run_scenario_warns_on_unsupported_flags(self, capsys):
        assert main(["run", "--scenario", "spva_microbenchmark", "--baseline",
                     "--precision", "fp8", "--timesteps", "2", "--batch", "4"]) == 0
        err = capsys.readouterr().err
        for flag in ("--baseline", "--precision", "--timesteps", "--batch"):
            assert flag in err

    def test_sweep_json_output(self, capsys):
        assert main(["sweep", "--sweep", "stream_length", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "parallel_stream_length_sweep"
        assert payload["rows"] and "speedup" in payload["rows"][0]
        assert "asymptotic_speedup" in payload["headline"]

    def test_sweep_csv_output(self, capsys):
        assert main(["sweep", "--sweep", "firing_rate", "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("firing_rate,")
        assert len(lines) >= 2

    def test_sweep_table_output_parallel(self, capsys):
        assert main(["sweep", "--sweep", "firing_rate", "--jobs", "2",
                     "--backend", "thread"]) == 0
        output = capsys.readouterr().out
        assert "firing_rate" in output and "headline" in output

    def test_sweep_output_file_and_cache(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        cache = tmp_path / "cache.json"
        argv = ["sweep", "--sweep", "stream_length", "--format", "json",
                "--output", str(out), "--cache", str(cache)]
        assert main(argv) == 0
        assert "wrote" in capsys.readouterr().out
        first = json.loads(out.read_text())
        assert cache.exists()
        assert main(argv) == 0  # second run served from the cache
        capsys.readouterr()
        assert json.loads(out.read_text()) == first

    @pytest.mark.parametrize("argv", [
        ["figures", "--figure", "fig3a", "--batch", "0"],
        ["run", "--batch", "-3"],
        ["sweep", "--sweep", "precision", "--batch", "0"],
        ["compare", "--timesteps", "0"],
    ])
    def test_non_positive_batch_rejected_at_parse_time(self, argv, capsys):
        with pytest.raises(SystemExit):
            main(argv)
        assert "positive integer" in capsys.readouterr().err

    def test_sweep_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--sweep", "bogus"])

    def test_sweep_unwritable_output_is_clean_error(self):
        with pytest.raises(SystemExit, match="cannot write"):
            main(["sweep", "--sweep", "stream_length",
                  "--output", "/nonexistent-dir/out.json"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figures", "--figure", "fig99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestPlanCli:
    def test_plan_list_shows_every_spec(self, capsys):
        assert main(["plan", "--list"]) == 0
        output = capsys.readouterr().out
        for name in ("firing_rate", "core_count", "precision", "stream_length",
                     "strided_indirect"):
            assert name in output
        assert "axes" in output

    def test_plan_default_action_is_list(self, capsys):
        assert main(["plan"]) == 0
        assert "firing_rate" in capsys.readouterr().out

    def test_plan_describe_shows_axes_and_columns(self, capsys):
        assert main(["plan", "--describe", "core_count"]) == 0
        output = capsys.readouterr().out
        assert "cores x4" in output
        assert "parallel_efficiency" in output

    def test_plan_describe_unknown_rejected(self):
        with pytest.raises(SystemExit, match="unknown sweep"):
            main(["plan", "--describe", "bogus"])


class TestShardedCli:
    def test_sweep_sharded_matches_serial_bit_for_bit(self, capsys):
        # The ISSUE acceptance criterion, at CLI level: the sharded and
        # serial paths must render byte-identical machine-readable output.
        assert main(["sweep", "--sweep", "firing_rate", "--backend", "sharded",
                     "--shards", "2", "--format", "json"]) == 0
        sharded = capsys.readouterr().out
        assert main(["sweep", "--sweep", "firing_rate", "--backend", "serial",
                     "--format", "json"]) == 0
        serial = capsys.readouterr().out
        assert sharded == serial
        assert json.loads(sharded)["rows"]

    def test_invalid_shards_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--sweep", "stream_length", "--backend", "sharded",
                  "--shards", "0"])
        assert "positive integer" in capsys.readouterr().err


class TestRunExport:
    def test_run_scenario_json_export(self, capsys):
        assert main(["run", "--scenario", "stream_length", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "parallel_stream_length_sweep"
        assert payload["rows"] and "asymptotic_speedup" in payload["headline"]

    def test_run_scenario_csv_export(self, capsys):
        assert main(["run", "--scenario", "stream_length", "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("stream_length,")
        assert len(lines) >= 2

    def test_run_plain_inference_json_export(self, capsys):
        assert main(["run", "--batch", "1", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(row["layer"] == "conv6" for row in payload["rows"])
        assert "total_runtime_ms" in payload["headline"]

    def test_run_plain_inference_csv_export(self, capsys):
        assert main(["run", "--batch", "1", "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("layer,")

    def test_run_scenario_output_file(self, tmp_path, capsys):
        out = tmp_path / "scenario.json"
        assert main(["run", "--scenario", "stream_length", "--format", "json",
                     "--output", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert json.loads(out.read_text())["rows"]

    def test_run_unwritable_output_is_clean_error(self):
        with pytest.raises(SystemExit, match="cannot write"):
            main(["run", "--scenario", "stream_length",
                  "--output", "/nonexistent-dir/out.json"])
