"""The inference server: concurrency, caching, backpressure, drain, telemetry."""

import threading
import time

import numpy as np
import pytest

from repro.config import baseline_config, spikestream_config
from repro.serve import (
    DeadlineExceeded,
    InferenceServer,
    LoadGenerator,
    QueueFull,
    ServeClient,
    ServerClosed,
)
from repro.session import Session
from repro.eval.sweeps import functional_network
from repro.snn.datasets import SyntheticCIFAR10
from repro.types import TensorShape


@pytest.fixture
def config():
    return spikestream_config(batch_size=1, timesteps=1, seed=17)


class TestConcurrentEquivalence:
    def test_concurrent_statistical_requests_match_direct_calls(self, config):
        session = Session()
        with InferenceServer(session=session, workers=2, max_batch=8,
                             max_wait_ms=20) as server:
            futures = {
                seed: server.submit_statistical(config=config, batch_size=1,
                                                seed=seed)
                for seed in range(40, 56)
            }
            served = {seed: future.result(timeout=60)
                      for seed, future in futures.items()}
        reference = Session()
        for seed, result in served.items():
            direct = reference.run_inference(config, batch_size=1, seed=seed)
            assert result.identical_to(direct), f"seed {seed} diverged"

    def test_mixed_modes_and_configs_interleaved(self, config):
        network = functional_network(17)
        frames, _ = SyntheticCIFAR10(
            seed=17, image_shape=TensorShape(16, 16, 3)
        ).sample(4)
        other_config = baseline_config(batch_size=1, timesteps=1, seed=17)
        with InferenceServer(workers=2, max_batch=8, max_wait_ms=20) as server:
            functional = [
                server.submit_functional(network, frames[i:i + 1], config=config)
                for i in range(4)
            ]
            streaming = [
                server.submit_statistical(config=config, seed=s) for s in (1, 2)
            ]
            baseline = [
                server.submit_statistical(config=other_config, seed=s)
                for s in (1, 2)
            ]
            all_results = [f.result(timeout=60)
                           for f in functional + streaming + baseline]
        reference = Session()
        for i in range(4):
            assert all_results[i].identical_to(
                reference.run_functional(network, frames[i:i + 1], config=config)
            )
        assert all_results[4].identical_to(
            reference.run_inference(config, batch_size=1, seed=1)
        )
        assert all_results[6].identical_to(
            reference.run_inference(other_config, batch_size=1, seed=1)
        )

    def test_client_blocking_facade(self, config):
        with InferenceServer(workers=1) as server:
            client = ServeClient(server)
            result = client.run_statistical(config=config, seed=5, timeout=60)
        assert result.identical_to(
            Session().run_inference(config, batch_size=1, seed=5)
        )


class TestStoreIntegration:
    def test_repeat_request_short_circuits_queue(self, config):
        with InferenceServer(workers=1, max_wait_ms=5) as server:
            first = server.submit_statistical(config=config, seed=9).result(60)
            # Same fingerprint again: served straight from the store.
            again = server.submit_statistical(config=config, seed=9)
            assert again.done()
            assert again.result(0).identical_to(first)
            stats = server.stats()
            assert stats["serve.store_short_circuits"] == 1
            assert stats["serve.store"]["hits"] >= 1

    def test_server_and_session_share_one_store(self, config):
        session = Session()
        direct = session.run_inference(config, batch_size=1, seed=12)
        with InferenceServer(session=session, workers=1) as server:
            future = server.submit_statistical(config=config, seed=12)
            assert future.done()  # direct call already populated the store
            assert future.result(0).identical_to(direct)


class TestBackpressure:
    def test_queue_full_rejects_and_counts(self, config):
        session = Session()
        server = InferenceServer(session=session, workers=1, max_batch=1,
                                 max_wait_ms=0, max_queue=2)
        # Stall the single worker with a slow-ish first request, then flood.
        rejected = 0
        futures = []
        for seed in range(30):
            try:
                futures.append(
                    server.submit_statistical(config=config, seed=100 + seed)
                )
            except QueueFull:
                rejected += 1
        assert rejected > 0, "queue bound never hit"
        assert server.stats()["serve.rejected"] == rejected
        # Accepted requests all complete despite the flood.
        for future in futures:
            future.result(timeout=120)
        server.close()

    def test_deadline_expires_queued_request(self, config):
        session = Session()
        with InferenceServer(session=session, workers=1, max_batch=1,
                             max_wait_ms=0, max_queue=64) as server:
            blocker = server.submit_statistical(config=config, seed=1)
            doomed = server.submit_statistical(
                config=config, seed=2, deadline_s=0.0
            )
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=60)
            blocker.result(timeout=60)
            assert server.stats()["serve.expired"] >= 1


class TestLifecycle:
    def test_graceful_drain_loses_no_accepted_request(self, config):
        session = Session()
        server = InferenceServer(session=session, workers=2, max_batch=4,
                                 max_wait_ms=5, max_queue=64)
        futures = [server.submit_statistical(config=config, seed=200 + s)
                   for s in range(12)]
        server.close()  # drain=True: every accepted request must resolve
        for future in futures:
            assert future.result(timeout=0) is not None
        assert server.stats()["serve.completed"] + \
            server.stats()["serve.store_short_circuits"] >= 12

    def test_close_is_idempotent_and_rejects_new_work(self, config):
        server = InferenceServer(workers=1)
        server.close()
        server.close()
        assert server.closed
        with pytest.raises(ServerClosed):
            server.submit_statistical(config=config, seed=1)

    def test_non_graceful_close_fails_queued_requests(self, config):
        session = Session()
        server = InferenceServer(session=session, workers=1, max_batch=1,
                                 max_wait_ms=0, max_queue=64)
        futures = [server.submit_statistical(config=config, seed=300 + s)
                   for s in range(8)]
        server.close(drain=False)
        outcomes = {"done": 0, "cancelled": 0}
        for future in futures:
            try:
                future.result(timeout=0)
                outcomes["done"] += 1
            except ServerClosed:
                outcomes["cancelled"] += 1
        assert outcomes["done"] + outcomes["cancelled"] == 8

    def test_owned_session_closed_with_server(self):
        server = InferenceServer(workers=1)
        session = server.session
        server.close()
        # Closing the owned session twice stays safe (idempotent close).
        session.close()

    def test_injected_session_stays_open(self, config):
        session = Session()
        with InferenceServer(session=session, workers=1) as server:
            server.submit_statistical(config=config, seed=3).result(60)
        # The caller's session keeps serving after the server is gone.
        assert session.run_inference(config, batch_size=1, seed=3) is not None

    def test_cancelled_future_does_not_kill_the_worker(self, config):
        # A caller may cancel() a queued request; delivery is dropped but
        # the worker must survive and serve everything else in the batch.
        with InferenceServer(workers=1, max_batch=1, max_wait_ms=0,
                             max_queue=64) as server:
            futures = [server.submit_statistical(config=config, seed=400 + s)
                       for s in range(6)]
            cancelled = futures[3].cancel()
            for index, future in enumerate(futures):
                if index == 3:
                    continue
                assert future.result(timeout=120) is not None
        if cancelled:  # cancel() can race the worker picking it up
            assert futures[3].cancelled()
        else:
            assert futures[3].result(timeout=0) is not None

    def test_worker_error_propagates_to_future(self, config):
        with InferenceServer(workers=1, max_wait_ms=1) as server:
            future = server.submit_functional(
                functional_network(3),
                np.zeros((1, 4, 4, 3)),  # wrong geometry for the network
                config=config,
            )
            with pytest.raises(Exception):
                future.result(timeout=60)
            assert server.stats()["serve.errors"] >= 1


class TestLoadGenerator:
    def test_burst_and_paced_loads_complete(self, config):
        session = Session()
        with InferenceServer(session=session, workers=2, max_batch=8,
                             max_wait_ms=10, max_queue=64) as server:
            counter = iter(range(10_000))

            def submit(index):
                return server.submit_statistical(
                    config=config, seed=1000 + next(counter)
                )

            burst = LoadGenerator(submit, requests=8).run(timeout_s=120)
            paced = LoadGenerator(
                submit, requests=4, arrival_rate_hz=200.0
            ).run(timeout_s=120)
        assert burst.completed == 8
        assert paced.completed == 4
        assert burst.throughput_rps > 0
        report = paced.to_dict()
        assert report["latency_p50_ms"] <= report["latency_p99_ms"]

    def test_validation(self):
        with pytest.raises(ValueError, match="requests"):
            LoadGenerator(lambda i: None, requests=0)
        with pytest.raises(ValueError, match="arrival_rate"):
            LoadGenerator(lambda i: None, requests=1, arrival_rate_hz=0.0)


class TestTelemetry:
    def test_snapshot_has_the_announced_surface(self, config):
        with InferenceServer(workers=1, max_wait_ms=5) as server:
            server.submit_statistical(config=config, seed=77).result(60)
            snapshot = server.stats()
        assert snapshot["serve.requests"] == 1
        assert snapshot["serve.completed"] == 1
        latency = snapshot["serve.latency_ms"]
        assert {"p50", "p95", "p99", "count"} <= set(latency)
        assert {"depth", "bound"} <= set(snapshot["serve.queue"])
        assert {"hits", "misses", "hit_rate", "entries"} <= set(
            snapshot["serve.store"]
        )
        assert snapshot["serve.batch_frames"]["count"] >= 1

    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            InferenceServer(workers=0)
