"""Regression tests for the serve package's export surface.

``resolve_future`` and ``percentile_of_sorted`` are public API used by
callers of the serving layer (resolving one request inline; reading
latency quantiles from snapshots) but were importable only from their
defining submodules — the ``all-exports`` lint rule now keeps the package
``__all__`` honest, and these tests pin the two names it surfaced.
"""

from __future__ import annotations

import repro.serve as serve


def test_resolve_future_exported():
    from repro.serve import resolve_future

    assert callable(resolve_future)
    assert "resolve_future" in serve.__all__


def test_percentile_of_sorted_exported():
    from repro.serve import percentile_of_sorted

    assert percentile_of_sorted([1.0, 2.0, 3.0, 4.0], 50) == 3.0
    assert "percentile_of_sorted" in serve.__all__


def test_all_names_resolve():
    for name in serve.__all__:
        assert getattr(serve, name, None) is not None, name
