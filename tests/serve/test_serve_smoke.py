"""Tier-1 wiring of the tools/smoke.py serving equivalence check.

An in-process :class:`repro.serve.InferenceServer` takes 32 concurrent
mixed-mode requests (statistical and functional alternating) and every
response must be bit-for-bit identical to the corresponding direct
:class:`repro.session.Session` call.  The check itself lives in
``tools/smoke.py`` so the standalone smoke script and this ``smoke``-marked
test can never drift.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_SMOKE_PATH = Path(__file__).resolve().parents[2] / "tools" / "smoke.py"


def _load_smoke():
    spec = importlib.util.spec_from_file_location("repro_tools_smoke", _SMOKE_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("repro_tools_smoke", module)
    spec.loader.exec_module(module)
    return module


@pytest.mark.smoke
def test_concurrent_mixed_mode_serving_matches_direct_session_calls():
    smoke = _load_smoke()
    smoke.serve_equivalence_check(requests=32)
