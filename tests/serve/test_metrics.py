"""The serving telemetry registry: counters, gauges, histograms, snapshots."""

import json
import threading

import pytest

from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("requests")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc()
        gauge.dec(4)
        assert gauge.value == 7.0


class TestHistogram:
    def test_summary_counts_and_percentiles(self):
        histogram = MetricsRegistry().histogram("latency")
        for value in range(1, 101):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == pytest.approx(50.0, abs=1.0)
        assert summary["p95"] == pytest.approx(95.0, abs=1.0)
        assert summary["p99"] == pytest.approx(99.0, abs=1.0)

    def test_empty_histogram_is_safe(self):
        histogram = MetricsRegistry().histogram("latency")
        assert histogram.percentile(50.0) == 0.0
        assert histogram.summary()["count"] == 0

    def test_percentile_bounds_checked(self):
        histogram = MetricsRegistry().histogram("latency")
        with pytest.raises(ValueError, match="0, 100"):
            histogram.percentile(101.0)

    def test_reservoir_bounds_memory_but_keeps_stats_exact(self):
        histogram = MetricsRegistry().histogram("latency", max_samples=16)
        for value in range(1000):
            histogram.observe(float(value))
        # count/sum/min/max are exact regardless of sampling...
        assert histogram.count == 1000
        assert histogram.min == 0.0
        assert histogram.max == 999.0
        # ...while the retained sample stays bounded.
        assert len(histogram._sorted) == 16

    def test_rejects_empty_reservoir(self):
        with pytest.raises(ValueError, match="positive"):
            MetricsRegistry().histogram("latency", max_samples=0)

    def test_reset_restores_pristine_state(self):
        histogram = MetricsRegistry().histogram("latency", max_samples=16)
        for value in range(1000):
            histogram.observe(float(value))
        retained_first = list(histogram._sorted)
        histogram.reset()
        assert histogram.count == 0
        assert histogram.sum == 0.0
        assert histogram.min is None and histogram.max is None
        assert histogram.summary()["count"] == 0
        assert histogram.percentile(50.0) == 0.0
        # Re-seeded reservoir: replaying the same stream retains the same
        # sample as the first pass — reset is indistinguishable from a
        # fresh construction.
        for value in range(1000):
            histogram.observe(float(value))
        assert list(histogram._sorted) == retained_first


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            registry.gauge("x")

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("served").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("latency").observe(1.5)
        snapshot = json.loads(registry.to_json())
        assert snapshot["served"] == 3
        assert snapshot["depth"] == 2
        assert snapshot["latency"]["count"] == 1

    def test_probe_flattens_live_values(self):
        registry = MetricsRegistry()
        state = {"hits": 0}
        registry.add_probe("store", lambda: dict(state))
        state["hits"] = 7
        assert registry.snapshot()["store"] == {"hits": 7}

    def test_dead_probe_does_not_kill_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("ok").inc()

        def broken():
            raise RuntimeError("probe died")

        registry.add_probe("bad", broken)
        snapshot = registry.snapshot()
        assert snapshot["ok"] == 1
        assert "error" in snapshot["bad"]

    def test_concurrent_increments_are_atomic(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        histogram = registry.histogram("h")

        def hammer():
            for _ in range(1000):
                counter.inc()
                histogram.observe(1.0)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000
        assert histogram.count == 8000
