"""The micro-batcher: grouping, coalesced execution, flush policy, scatter."""

import time

import numpy as np
import pytest

from repro.config import baseline_config, spikestream_config
from repro.serve.batcher import (
    MicroBatcher,
    functional_group_key,
    statistical_group_key,
)
from repro.serve.queue import InferenceRequest, RequestQueue
from repro.session import Session
from repro.eval.sweeps import functional_network
from repro.snn.datasets import SyntheticCIFAR10
from repro.types import TensorShape


@pytest.fixture(scope="module")
def session():
    return Session()


@pytest.fixture(scope="module")
def small_functional_workload():
    network = functional_network(41)
    frames, _ = SyntheticCIFAR10(seed=41, image_shape=TensorShape(16, 16, 3)).sample(6)
    return network, frames


def _statistical_request(session, config, seed, batch_size=1):
    return InferenceRequest(
        mode="statistical",
        config=config,
        group_key=statistical_group_key(session, config, None, config.timesteps),
        fingerprint=session.fingerprint(config, batch_size, None, seed,
                                        config.timesteps),
        frames_count=batch_size,
        batch_size=batch_size,
        seed=seed,
        timesteps=config.timesteps,
    )


def _functional_request(session, config, network, frames):
    return InferenceRequest(
        mode="functional",
        config=config,
        group_key=functional_group_key(session, config, network, frames, None),
        fingerprint=session.functional_fingerprint(config, network, frames, None),
        frames_count=len(frames),
        network=network,
        frames=np.asarray(frames),
    )


class TestGroupKeys:
    def test_statistical_key_ignores_request_seed_and_batch(self, session):
        # The group key covers the config but NOT the per-request run
        # parameters: requests with different run-level seeds/batch sizes
        # under ONE config are exactly what the batcher coalesces.
        config = spikestream_config(batch_size=4, seed=1)
        key = statistical_group_key(session, config, None, 1)
        assert key == statistical_group_key(session, config, None, 1)
        request_a = _statistical_request(session, config, seed=11, batch_size=1)
        request_b = _statistical_request(session, config, seed=99, batch_size=3)
        assert request_a.group_key == request_b.group_key
        # Distinct requests still get distinct store fingerprints.
        assert request_a.fingerprint != request_b.fingerprint

    def test_statistical_key_separates_timesteps_and_rates(self, session):
        config = spikestream_config(batch_size=4)
        base = statistical_group_key(session, config, None, 1)
        assert statistical_group_key(session, config, None, 2) != base
        assert statistical_group_key(session, config, {"conv1": 0.4}, 1) != base

    def test_statistical_key_separates_configs(self, session):
        timesteps = 1
        assert statistical_group_key(
            session, spikestream_config(batch_size=4), None, timesteps
        ) != statistical_group_key(
            session, baseline_config(batch_size=4), None, timesteps
        )

    def test_functional_key_ignores_frame_pixels(self, session,
                                                 small_functional_workload):
        network, frames = small_functional_workload
        config = spikestream_config(batch_size=1)
        assert functional_group_key(
            session, config, network, frames[0:1], None
        ) == functional_group_key(session, config, network, frames[1:2], None)

    def test_functional_key_separates_networks_and_dtypes(
        self, session, small_functional_workload
    ):
        network, frames = small_functional_workload
        config = spikestream_config(batch_size=1)
        base = functional_group_key(session, config, network, frames[0:1], None)
        other_network = functional_network(99)
        assert functional_group_key(
            session, config, other_network, frames[0:1], None
        ) != base
        assert functional_group_key(
            session, config, network, frames[0:1].astype(np.float32), None
        ) != base


class TestCoalescedExecution:
    def test_statistical_batch_matches_solo_runs(self, session):
        config = spikestream_config(batch_size=1, timesteps=2, seed=0)
        requests = [
            _statistical_request(session, config, seed, batch_size)
            for seed, batch_size in ((11, 1), (22, 2), (33, 1))
        ]
        batcher = MicroBatcher(session, max_batch=16)
        results = batcher.execute(requests)
        assert len(results) == 3
        for request, result in zip(requests, results):
            solo = session.engine(config).run_statistical(
                batch_size=request.batch_size, seed=request.seed, timesteps=2
            )
            assert result.identical_to(solo)

    def test_functional_batch_matches_solo_runs(self, session,
                                                small_functional_workload):
        network, frames = small_functional_workload
        config = spikestream_config(batch_size=1, timesteps=2, seed=0)
        requests = [
            _functional_request(session, config, network, frames[i:i + 2])
            for i in (0, 2, 4)
        ]
        batcher = MicroBatcher(session, max_batch=16)
        results = batcher.execute(requests)
        for request, result in zip(requests, results):
            solo = session.engine(config).run_functional(network, request.frames)
            assert result.identical_to(solo)

    def test_single_request_passthrough(self, session):
        config = spikestream_config(batch_size=2, seed=3)
        request = _statistical_request(session, config, 3, batch_size=2)
        [result] = MicroBatcher(session).execute([request])
        solo = session.engine(config).run_statistical(batch_size=2, seed=3)
        assert result.identical_to(solo)

    def test_mixed_groups_rejected(self, session):
        stream = _statistical_request(session, spikestream_config(batch_size=1), 1)
        baseline = _statistical_request(session, baseline_config(batch_size=1), 1)
        with pytest.raises(ValueError, match="incompatible"):
            MicroBatcher(session).execute([stream, baseline])

    def test_empty_batch_is_noop(self, session):
        assert MicroBatcher(session).execute([]) == []


class TestCollectPolicy:
    def test_flush_on_max_batch(self, session):
        config = spikestream_config(batch_size=1)
        queue = RequestQueue(maxsize=32)
        requests = [_statistical_request(session, config, seed) for seed in range(6)]
        for request in requests:
            queue.put(request)
        batcher = MicroBatcher(session, max_batch=4, max_wait_ms=10_000)
        first = queue.pop(timeout=1)
        batch = batcher.collect(queue, first)
        # Flushes at the frame bound long before the 10s wait expires.
        assert [r.id for r in batch] == [r.id for r in requests[:4]]
        assert queue.depth() == 2

    def test_flush_on_max_wait(self, session):
        config = spikestream_config(batch_size=1)
        queue = RequestQueue(maxsize=32)
        request = _statistical_request(session, config, 7)
        queue.put(request)
        batcher = MicroBatcher(session, max_batch=64, max_wait_ms=30)
        first = queue.pop(timeout=1)
        start = time.monotonic()
        batch = batcher.collect(queue, first)
        elapsed = time.monotonic() - start
        assert batch == [first]
        # Waited for more work, but no longer than the wait bound (plus slack).
        assert 0.01 <= elapsed < 1.0

    def test_flush_on_incompatible_head(self, session):
        stream_config = spikestream_config(batch_size=1)
        base_config = baseline_config(batch_size=1)
        queue = RequestQueue(maxsize=32)
        compatible = [_statistical_request(session, stream_config, s) for s in (1, 2)]
        other = _statistical_request(session, base_config, 3)
        queue.put(compatible[0])
        queue.put(compatible[1])
        queue.put(other)
        batcher = MicroBatcher(session, max_batch=64, max_wait_ms=10_000)
        first = queue.pop(timeout=1)
        start = time.monotonic()
        batch = batcher.collect(queue, first)
        # Incompatible head flushes immediately — no 10s stall.
        assert time.monotonic() - start < 1.0
        assert [r.id for r in batch] == [r.id for r in compatible]
        assert queue.pop(timeout=0.1) is other

    def test_multi_frame_request_may_overshoot_bound(self, session):
        config = spikestream_config(batch_size=1)
        queue = RequestQueue(maxsize=32)
        queue.put(_statistical_request(session, config, 1, batch_size=3))
        batcher = MicroBatcher(session, max_batch=4, max_wait_ms=50)
        first = queue.pop(timeout=1)
        big = _statistical_request(session, config, 2, batch_size=3)
        queue.put(big)
        batch = batcher.collect(queue, first)
        # Requests are never split: the second one rides along (3+3 > 4).
        assert len(batch) == 2
        assert sum(r.frames_count for r in batch) == 6

    def test_knob_validation(self, session):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(session, max_batch=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            MicroBatcher(session, max_wait_ms=-1)


class TestFrameSlice:
    def test_slice_bounds_checked(self, session):
        config = spikestream_config(batch_size=2, seed=5)
        result = session.engine(config).run_statistical(batch_size=2, seed=5)
        with pytest.raises(ValueError, match="out of range"):
            result.layers[0].frame_slice(0, 3)
        with pytest.raises(ValueError, match="out of range"):
            result.layers[0].frame_slice(1, 1)

    def test_slices_are_copies(self, session):
        config = spikestream_config(batch_size=2, seed=5)
        result = session.engine(config).run_statistical(batch_size=2, seed=5)
        part = result.frame_slice(0, 1)
        part.layers[0].cycles[0] = -1.0
        assert result.layers[0].cycles[0] != -1.0
