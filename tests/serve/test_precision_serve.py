"""Per-request numerics policies through the serving layer.

The ``smoke``-marked test wires the ``tools/smoke.py`` precision-matrix
check (FP64-dense vs FP32 event-sparse served through one
:class:`repro.serve.InferenceServer`, agreement-gated) into the tier-1
pytest flow; the rest pin the serving-layer contract directly: requests
under different policies never coalesce into one micro-batch, the default
policy is visible in telemetry, and per-policy request counters appear as
traffic arrives.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.config import spikestream_config
from repro.eval.sweeps import functional_network
from repro.serve import InferenceServer
from repro.serve.batcher import functional_group_key
from repro.session import Session
from repro.snn.datasets import SyntheticCIFAR10
from repro.snn.numerics import REFERENCE, NumericsPolicy
from repro.types import TensorShape

_SMOKE_PATH = Path(__file__).resolve().parents[2] / "tools" / "smoke.py"

FAST = NumericsPolicy("fp32", "event_sparse")


def _load_smoke():
    spec = importlib.util.spec_from_file_location("repro_tools_smoke", _SMOKE_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("repro_tools_smoke", module)
    spec.loader.exec_module(module)
    return module


@pytest.mark.smoke
def test_precision_matrix_served_within_documented_bounds():
    smoke = _load_smoke()
    smoke.precision_matrix_check()


def test_different_policies_never_share_a_group_key():
    network = functional_network(11)
    frames, _ = SyntheticCIFAR10(
        seed=11, image_shape=TensorShape(16, 16, 3)
    ).sample(2)
    with Session() as session:
        config = session.config
        keys = {
            policy.key(): functional_group_key(
                session, config, network, frames, None, numerics=policy
            )
            for policy in (
                REFERENCE,
                NumericsPolicy("fp32", "dense"),
                NumericsPolicy("fp64", "event_sparse"),
                FAST,
            )
        }
    assert len(set(keys.values())) == len(keys), (
        "two numerics policies coalesced into one micro-batch group"
    )


def test_server_telemetry_reports_policies():
    config = spikestream_config(batch_size=1, timesteps=1, seed=13)
    network = functional_network(13)
    frames, _ = SyntheticCIFAR10(
        seed=13, image_shape=TensorShape(16, 16, 3)
    ).sample(2)
    with InferenceServer(workers=1, max_batch=4, max_wait_ms=5,
                         default_numerics=FAST) as server:
        server.submit_functional(network, frames, config=config).result(timeout=120)
        server.submit_functional(
            network, frames, config=config, numerics=REFERENCE
        ).result(timeout=120)
        stats = server.stats()
    assert stats["serve.numerics"] == {
        "default": "fp32-event_sparse",
        "precision": "fp32",
        "forward_path": "event_sparse",
    }
    assert stats["serve.numerics.non_reference"] == 1
    assert stats["serve.numerics.requests.fp32-event_sparse"] == 1
    assert stats["serve.numerics.requests.fp64-dense"] == 1
    # The two policies computed two distinct store entries from one workload.
    assert stats["serve.store"]["entries"] == 2


def test_default_reference_server_flags_zero_non_reference():
    with InferenceServer(workers=1) as server:
        stats = server.stats()
    assert stats["serve.numerics.non_reference"] == 0
    assert stats["serve.numerics"]["default"] == "fp64-dense"
