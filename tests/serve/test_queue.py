"""The bounded request queue: admission control, deadlines, drain."""

import threading
import time

import pytest

from repro.serve.queue import (
    DeadlineExceeded,
    InferenceRequest,
    QueueFull,
    RequestQueue,
    ServerClosed,
)


def _request(group_key="g", deadline=None, frames_count=1):
    return InferenceRequest(
        mode="statistical",
        config=None,
        group_key=group_key,
        fingerprint=f"fp-{id(object())}",
        frames_count=frames_count,
        deadline=deadline,
    )


class TestAdmission:
    def test_fifo_order(self):
        queue = RequestQueue(maxsize=4)
        first, second = _request(), _request()
        queue.put(first)
        queue.put(second)
        assert queue.pop(timeout=0.1) is first
        assert queue.pop(timeout=0.1) is second

    def test_full_queue_rejects_immediately(self):
        queue = RequestQueue(maxsize=2)
        queue.put(_request())
        queue.put(_request())
        start = time.monotonic()
        with pytest.raises(QueueFull, match="bound"):
            queue.put(_request())
        # Backpressure must be a fast rejection, never a hidden stall.
        assert time.monotonic() - start < 0.5
        assert queue.depth() == 2

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError, match="positive"):
            RequestQueue(maxsize=0)

    def test_closed_queue_rejects_puts(self):
        queue = RequestQueue(maxsize=2)
        queue.close()
        with pytest.raises(ServerClosed):
            queue.put(_request())


class TestDeadlines:
    def test_expired_request_fails_with_deadline_exceeded(self):
        queue = RequestQueue(maxsize=4)
        expired = _request(deadline=time.monotonic() - 0.01)
        live = _request()
        queue.put(expired)
        queue.put(live)
        assert queue.pop(timeout=0.1) is live
        with pytest.raises(DeadlineExceeded):
            expired.future.result(timeout=0)

    def test_on_expired_callback_counts(self):
        expired_seen = []
        queue = RequestQueue(maxsize=4, on_expired=expired_seen.append)
        request = _request(deadline=time.monotonic() - 0.01)
        queue.put(request)
        assert queue.pop(timeout=0.05) is None
        assert expired_seen == [request]

    def test_pop_matching_skips_expired_head(self):
        queue = RequestQueue(maxsize=4)
        expired = _request(group_key="a", deadline=time.monotonic() - 0.01)
        match = _request(group_key="a")
        queue.put(expired)
        queue.put(match)
        assert queue.pop_matching("a") is match


class TestMatching:
    def test_pop_matching_takes_compatible_head(self):
        queue = RequestQueue(maxsize=4)
        request = _request(group_key="a")
        queue.put(request)
        assert queue.pop_matching("a") is request

    def test_pop_matching_leaves_incompatible_head(self):
        queue = RequestQueue(maxsize=4)
        other = _request(group_key="b")
        queue.put(other)
        assert queue.pop_matching("a") is None
        # FIFO position preserved for the next batching cycle.
        assert queue.pop(timeout=0.1) is other


class TestLifecycle:
    def test_pop_blocks_until_put(self):
        queue = RequestQueue(maxsize=4)
        request = _request()
        popped = []

        def consumer():
            popped.append(queue.pop(timeout=5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        time.sleep(0.05)
        queue.put(request)
        thread.join(timeout=5.0)
        assert popped == [request]

    def test_close_drains_then_returns_none(self):
        queue = RequestQueue(maxsize=4)
        request = _request()
        queue.put(request)
        queue.close()
        # Accepted work stays poppable after close (graceful drain)...
        assert queue.pop(timeout=0.1) is request
        # ...and a drained closed queue signals completion without waiting.
        start = time.monotonic()
        assert queue.pop(timeout=10.0) is None
        assert time.monotonic() - start < 1.0

    def test_cancel_pending_fails_queued_futures(self):
        queue = RequestQueue(maxsize=4)
        requests = [_request(), _request()]
        for request in requests:
            queue.put(request)
        assert queue.cancel_pending() == 2
        for request in requests:
            with pytest.raises(ServerClosed):
                request.future.result(timeout=0)

    def test_wait_nonempty(self):
        queue = RequestQueue(maxsize=4)
        assert not queue.wait_nonempty(0.01)
        queue.put(_request())
        assert queue.wait_nonempty(0.01)
