"""Integration: cluster kernels vs. the dense NumPy golden reference.

These tests run a small multi-layer network twice — once with the dense
golden model (:mod:`repro.snn.network`) and once with the compressed cluster
kernels (:mod:`repro.kernels`) chained manually — and require identical spike
trains at every layer.  This is the functional correctness argument for the
whole kernel stack (compression, SpVA gathers, fused activation, output
recompression).
"""

import numpy as np
import pytest

from repro.formats.convert import compress_ifmap, compress_vector, decompress_ifmap
from repro.kernels.conv import ConvLayerSpec, conv_layer_functional
from repro.kernels.encode import EncodeLayerSpec, encode_layer_functional
from repro.kernels.fc import FcLayerSpec, fc_layer_functional
from repro.snn.layers import SpikingConv2d, SpikingLinear
from repro.snn.neuron import LIFParameters
from repro.snn.reference import maxpool2d_hwc
from repro.types import Precision, TensorShape


@pytest.fixture
def lif():
    return LIFParameters(alpha=0.9, v_threshold=0.5)


class TestKernelChainMatchesGoldenNetwork:
    def test_three_layer_chain(self, tiny_network, rng):
        """encode-conv -> pool -> conv -> fc executed via the compressed kernels."""
        frame = rng.random((8, 8, 3))
        golden = tiny_network.forward(frame, timesteps=1)
        records = {record.name: record for record in golden.records}

        conv1_layer = tiny_network.layers[0]
        conv2_layer = tiny_network.layers[2]
        fc_layer = tiny_network.layers[4]

        # Layer 1: dense spike encoding.
        encode_spec = EncodeLayerSpec(
            name="conv1",
            input_shape=TensorShape(8, 8, 3),
            in_channels=3,
            out_channels=conv1_layer.out_channels,
            lif=conv1_layer.lif,
        )
        _, _, spikes1, _ = encode_layer_functional(encode_spec, frame, conv1_layer.weights)
        assert np.array_equal(spikes1, records["conv1"].output_spikes)

        # Pooling (spike OR) between layer 1 and layer 2.
        pooled = maxpool2d_hwc(spikes1, 2, 2)

        # Layer 2: compressed convolution over the padded, pooled spikes.
        conv_spec = ConvLayerSpec(
            name="conv2",
            input_shape=TensorShape(4, 4, conv1_layer.out_channels),
            in_channels=conv1_layer.out_channels,
            out_channels=conv2_layer.out_channels,
            lif=conv2_layer.lif,
        )
        padded = np.pad(pooled, ((1, 1), (1, 1), (0, 0)))
        compressed = compress_ifmap(padded)
        _, _, spikes2, compressed_out = conv_layer_functional(
            conv_spec, compressed, conv2_layer.weights
        )
        assert np.array_equal(spikes2, records["conv2"].output_spikes)
        assert np.array_equal(decompress_ifmap(compressed_out), spikes2)

        # Layer 3: compressed fully connected layer on the flattened spikes.
        fc_spec = FcLayerSpec(
            name="fc1",
            in_features=fc_layer.in_features,
            out_features=fc_layer.out_features,
            lif=fc_layer.lif,
        )
        flat = compress_vector(spikes2.reshape(-1))
        _, _, spikes3, _ = fc_layer_functional(fc_spec, flat, fc_layer.weights)
        assert np.array_equal(spikes3, records["fc1"].output_spikes)

    def test_multi_timestep_membrane_carryover(self, rng, lif):
        """Compressed kernel with explicit membrane state matches the golden network over time."""
        conv = SpikingConv2d(4, 6, kernel_size=3, padding=1, lif=lif, name="c")
        conv.initialize(rng)
        spec = ConvLayerSpec(
            name="c", input_shape=TensorShape(6, 6, 4), in_channels=4, out_channels=6, lif=lif
        )
        from repro.snn.network import SpikingNetwork

        network = SpikingNetwork([conv], input_shape=TensorShape(6, 6, 4))
        frame = rng.random((6, 6, 4)) < 0.4

        membrane = np.zeros(spec.output_shape.as_tuple())
        network.reset_state()
        for timestep in range(3):
            golden = network.forward_timestep(frame, timestep=timestep)
            padded = np.pad(frame, ((1, 1), (1, 1), (0, 0)))
            compressed = compress_ifmap(padded)
            _, membrane, spikes, _ = conv_layer_functional(
                spec, compressed, conv.weights, membrane
            )
            assert np.array_equal(spikes, golden.records[0].output_spikes)
            assert np.allclose(membrane, network.membrane_state(0).membrane)

    def test_fc_chain_with_sparse_input(self, rng, lif):
        linear = SpikingLinear(32, 12, lif=lif, name="fc")
        linear.initialize(rng)
        spec = FcLayerSpec(name="fc", in_features=32, out_features=12, lif=lif)
        dense_input = rng.random(32) < 0.2
        from repro.snn.reference import linear as linear_ref
        from repro.snn.neuron import LIFState, lif_step

        currents_ref = linear_ref(dense_input.astype(float), linear.weights)
        _, expected_spikes = lif_step(LIFState.zeros((12,)), currents_ref, lif)

        _, _, spikes, _ = fc_layer_functional(spec, compress_vector(dense_input), linear.weights)
        assert np.array_equal(spikes, expected_spikes)
