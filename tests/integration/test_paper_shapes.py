"""Integration: the headline results of the paper hold in shape.

These tests run the same experiments as the benchmark harness (with small
batches) and assert that "who wins, by roughly what factor" matches the
numbers quoted in the paper's abstract, Section IV and the conclusions.
Bands are deliberately loose: the substrate is a behavioral model, not the
authors' RTL testbed.
"""

import pytest

from repro.eval.experiments import (
    accelerator_comparison_experiment,
    energy_experiment,
    memory_footprint_experiment,
    run_svgg11_variants,
    speedup_experiment,
    utilization_experiment,
)


@pytest.fixture(scope="module")
def variants():
    return run_svgg11_variants(batch_size=3, seed=42)


class TestFigure3aShape:
    def test_csr_always_smaller_and_average_reduction_band(self):
        result = memory_footprint_experiment(batch_size=8, seed=42)
        assert 2.0 <= result.headline["mean_csr_over_aer_reduction"] <= 4.0


class TestFigure3bShape:
    def test_utilization_jump(self, variants):
        result = utilization_experiment(variants=variants)
        baseline = result.headline["network_fpu_util_baseline"]
        spikestream = result.headline["network_fpu_util_spikestream"]
        # Paper: 9.28 % -> 52.3 %; require a >4x improvement landing near 50 %.
        assert spikestream / baseline > 4.0
        assert 0.35 <= spikestream <= 0.60
        assert 0.05 <= baseline <= 0.15

    def test_first_layer_utilization(self, variants):
        result = utilization_experiment(variants=variants)
        assert 0.18 <= result.headline["encode_fpu_util_baseline"] <= 0.32
        assert 0.45 <= result.headline["encode_fpu_util_spikestream"] <= 0.62

    def test_second_layer_has_lowest_spikestream_conv_utilization_gainers(self, variants):
        """Deeper conv layers gain more utilization than the early short-stream layers."""
        result = utilization_experiment(variants=variants)
        conv_rows = [r for r in result.rows if r["layer"].startswith("conv")][1:]
        early = conv_rows[0]["fpu_util_spikestream"]
        deep = max(r["fpu_util_spikestream"] for r in conv_rows[1:6])
        assert deep >= early - 0.05


class TestFigure3cShape:
    def test_network_speedups(self, variants):
        result = speedup_experiment(variants=variants)
        headline = result.headline
        # Paper: 5.62x average FP16 speedup, layers 3-6 approaching the 7x ideal,
        # FP8 a further 1.71x (below the ideal 2x).
        assert 4.5 <= headline["network_speedup_fp16_over_baseline"] <= 7.0
        assert 5.5 <= headline["peak_layer_speedup_fp16_over_baseline"] <= 8.0
        assert 1.3 <= headline["network_speedup_fp8_over_fp16"] <= 2.0
        assert headline["network_speedup_fp8_over_baseline"] >= 7.0

    def test_deep_layers_faster_than_early_layers(self, variants):
        result = speedup_experiment(variants=variants)
        rows = {r["layer"]: r["speedup_fp16_over_baseline"] for r in result.rows}
        assert rows["conv4"] > rows["conv1"]
        assert rows["conv3"] > 5.0


class TestFigure4Shape:
    def test_power_and_energy_relations(self, variants):
        result = energy_experiment(variants=variants)
        headline = result.headline
        base_power = headline["mean_power_baseline_conv2_to_8"]
        ss16_power = headline["mean_power_spikestream_fp16_conv2_to_8"]
        ss8_power = headline["mean_power_spikestream_fp8_conv2_to_8"]
        # SpikeStream draws more power than the baseline (higher utilization)
        # but FP8 draws slightly less than FP16 (clock-gated narrow slices).
        assert ss16_power > base_power
        assert ss8_power < ss16_power
        assert 1.4 < ss16_power / base_power < 2.6
        # Energy-efficiency gains of the full inference.
        assert 2.0 < headline["energy_gain_fp16_over_baseline"] < 4.5
        assert 4.0 < headline["energy_gain_fp8_over_baseline"] < 8.0
        assert headline["energy_gain_fp8_over_fp16"] < 2.3

    def test_first_layer_has_highest_power(self, variants):
        """Figure 4: the dense matmul encoding layer draws the most power."""
        result = energy_experiment(variants=variants)
        first = result.rows[0]
        others = result.rows[1:8]
        assert all(first["power_w_spikestream_fp16"] >= r["power_w_spikestream_fp16"] for r in others)

    def test_conv_layers_dominate_energy(self, variants):
        result = energy_experiment(variants=variants)
        assert result.headline["conv_energy_fraction_baseline"] > 0.7


class TestFigure5Shape:
    @pytest.fixture(scope="class")
    def comparison(self):
        return accelerator_comparison_experiment(timesteps=500, batch_size=2, seed=7)

    def test_latency_ordering_and_factors(self, comparison):
        headline = comparison.headline
        # Paper: LSMCore 46.08 ms, SpikeStream FP8 217.14 ms (4.71x slower),
        # FP8 2.38x faster than Loihi, FP16 1.31x faster than Loihi.
        assert 3.0 < headline["fp8_slowdown_vs_lsmcore"] < 7.0
        assert 1.5 < headline["fp8_speedup_vs_loihi"] < 3.5
        assert 1.0 < headline["fp16_speedup_vs_loihi"] < 2.0

    def test_absolute_latencies_same_order_of_magnitude(self, comparison):
        headline = comparison.headline
        assert 20 < headline["lsmcore_latency_ms"] < 100
        assert 100 < headline["spikestream_fp8_latency_ms"] < 500

    def test_energy_gains_over_lsmcore(self, comparison):
        headline = comparison.headline
        # Paper: 2.37x (FP16) and 3.46x (FP8) less energy than LSMCore.
        assert 1.3 < headline["fp16_energy_gain_vs_lsmcore"] < 3.5
        assert 2.0 < headline["fp8_energy_gain_vs_lsmcore"] < 6.0
