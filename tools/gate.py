"""Combined CI gate: bench-regression + static-analysis in one verdict.

Runs both repository gates and merges their reports through the shared
schema in ``benchmarks/common.py``:

* the bench gate (``tools/bench_gate.py``): every committed
  ``BENCH_*.json`` baseline re-run and compared on its
  machine-independent ``speedup`` ratio;
* the lint gate (``repro.lint``): the full AST rule set of
  ``python -m repro.cli check`` over the repository.

Because both producers emit ``gate_report`` documents, the merge here is
pure aggregation — no re-parsing of text output::

    python tools/gate.py                 # both gates, human-readable
    python tools/gate.py --format json   # one merged JSON report
    python tools/gate.py --skip-bench    # lint only (fast pre-commit)
    python tools/gate.py --skip-lint     # bench only

Exits non-zero when any check of any gate fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent

for _entry in (REPO_ROOT / "benchmarks", REPO_ROOT / "src", REPO_ROOT / "tools"):
    if str(_entry) not in sys.path:
        sys.path.insert(0, str(_entry))

from common import (  # noqa: E402
    gate_check,
    gate_report,
    merge_gate_reports,
    render_gate_report,
)


def run_bench_gate(tolerance: Optional[float] = None) -> Dict[str, object]:
    """The bench-regression gate as one report (see tools/bench_gate.py)."""
    import bench_gate

    baselines = bench_gate.discover_baselines()
    if not baselines:
        return gate_report(
            "bench",
            [gate_check("baselines", False,
                        "no committed BENCH_*.json baselines to gate")],
        )
    checks = [
        bench_gate.gate_one(
            name, path,
            bench_gate.TOLERANCE if tolerance is None else tolerance,
        )
        for name, path in baselines.items()
    ]
    return gate_report("bench", checks)


def run_lint_gate() -> Dict[str, object]:
    """The static-analysis gate as one report (see repro.lint)."""
    from repro import lint

    result = lint.check_project(root=REPO_ROOT)
    by_rule: Dict[str, List[str]] = {rule: [] for rule in result.rules}
    by_rule[lint.UNUSED_SUPPRESSION] = []
    for finding in result.findings:
        by_rule.setdefault(finding.rule, []).append(finding.format())
    checks = [
        gate_check(
            rule,
            not lines,
            f"{len(lines)} finding(s)" if lines
            else (lint.RULES[rule].description if rule in lint.RULES
                  else "every suppression suppresses a real finding"),
            {"findings": lines},
        )
        for rule, lines in by_rule.items()
    ]
    report = gate_report("lint", checks)
    report["summary"]["files"] = result.files
    report["summary"]["suppressed"] = result.suppressed
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the bench-regression and lint gates as one verdict."
    )
    parser.add_argument("--skip-bench", action="store_true",
                        help="run the lint gate only")
    parser.add_argument("--skip-lint", action="store_true",
                        help="run the bench gate only")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="bench gate regression tolerance override")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        dest="output_format",
                        help="text lines or one merged JSON gate report")
    args = parser.parse_args(argv)
    if args.skip_bench and args.skip_lint:
        parser.error("--skip-bench and --skip-lint together gate nothing")

    reports: List[Dict[str, object]] = []
    if not args.skip_lint:
        reports.append(run_lint_gate())
    if not args.skip_bench:
        reports.append(run_bench_gate(args.tolerance))
    merged = merge_gate_reports(reports)
    if args.output_format == "json":
        print(json.dumps(merged, sort_keys=True))
    else:
        print(render_gate_report(merged))
    return 0 if merged["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
