"""Performance regression gate: fresh benchmark runs vs committed baselines.

Every ``BENCH_<name>.json`` at the repository root is a committed baseline:
the ``--json`` output of ``benchmarks/bench_<name>.py`` recorded when the
benchmark was introduced (or last re-baselined).  This gate re-runs each
baselined benchmark and compares the machine-independent ``speedup`` field
— the ratio of the benchmark's reference path to its optimized path —
rather than raw wall-clock seconds, so the gate is stable across machines
while still catching real regressions (an optimized path getting slower
relative to its own reference *on the same host, in the same run*).

A benchmark fails the gate when:

* its fresh ``identical`` flag is false (the optimized path no longer
  matches its reference bit-for-bit), or
* its result carries a ``floor`` field — an *absolute* speedup bar the
  benchmark declares for itself (e.g. the cluster bench's ``1.0``:
  distributed serving must beat one host outright) — and the fresh
  ``speedup`` is below it, regardless of how the committed baseline
  moved, or
* its fresh ``speedup`` dropped more than ``--tolerance`` (default 15%)
  below the committed baseline's ``speedup``.

Speedups *above* the baseline always pass (and are worth re-baselining:
re-run the bench with ``--json`` and commit the new ``BENCH_<name>.json``).

Usage::

    python tools/bench_gate.py                    # gate every committed baseline
    python tools/bench_gate.py precision          # gate one benchmark by name
    python tools/bench_gate.py --tolerance 0.25   # loosen the regression bound
    python tools/bench_gate.py --format json      # shared gate-report schema

Exits non-zero when any benchmark fails, so it can gate CI directly.
``--format json`` emits the shared gate-report document defined in
``benchmarks/common.py`` — the same schema ``repro.cli check --format
json`` uses, so ``tools/gate.py`` merges both gates into one report.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent

if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
from common import gate_check, gate_report, render_gate_report  # noqa: E402

#: Default fractional regression allowed before the gate fails: a fresh
#: speedup below ``baseline * (1 - TOLERANCE)`` is a regression.
TOLERANCE = 0.15


def _env_with_src() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def discover_baselines(names: Optional[List[str]] = None) -> Dict[str, Path]:
    """Map benchmark name -> committed ``BENCH_<name>.json`` baseline path.

    ``names`` restricts the gate to the given benchmarks; unknown names (no
    committed baseline) raise ``SystemExit`` so a typo cannot silently gate
    nothing.
    """
    baselines = {
        path.stem[len("BENCH_"):]: path
        for path in sorted(REPO_ROOT.glob("BENCH_*.json"))
    }
    if not names:
        return baselines
    missing = [name for name in names if name not in baselines]
    if missing:
        raise SystemExit(
            f"no committed baseline for: {', '.join(missing)} "
            f"(expected BENCH_<name>.json at the repo root)"
        )
    return {name: baselines[name] for name in names}


def run_bench(name: str) -> Dict[str, object]:
    """One fresh ``--json`` run of ``benchmarks/bench_<name>.py``; parsed."""
    script = REPO_ROOT / "benchmarks" / f"bench_{name}.py"
    if not script.exists():
        raise SystemExit(f"baseline BENCH_{name}.json has no {script}")
    proc = subprocess.run(
        [sys.executable, str(script), "--json"],
        cwd=REPO_ROOT,
        env=_env_with_src(),
        capture_output=True,
        text=True,
    )
    # The bench's own acceptance gate may fail (non-zero exit) while still
    # printing its result; the comparison below reports the sharper message,
    # so only an unparseable run is fatal here.
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        sys.stderr.write(proc.stderr)
        raise SystemExit(
            f"bench_{name}.py produced no parseable --json output "
            f"(exit {proc.returncode})"
        )


def gate_one(name: str, baseline_path: Path, tolerance: float) -> Dict[str, object]:
    """Gate one benchmark against its committed baseline; one gate check."""
    baseline = json.loads(baseline_path.read_text())
    fresh = run_bench(name)
    committed = float(baseline["speedup"])
    measured = float(fresh["speedup"])
    floor = committed * (1.0 - tolerance)
    # A benchmark may declare an absolute speedup bar for itself; the fresh
    # run's declaration wins, the committed baseline's fills in when a
    # bench stops emitting it.
    absolute = fresh.get("floor", baseline.get("floor"))
    data = {
        "baseline_speedup": committed,
        "measured_speedup": measured,
        "floor": floor,
        "tolerance": tolerance,
    }
    if absolute is not None:
        data["absolute_floor"] = float(absolute)
    if "identical" in fresh and not fresh["identical"]:
        return gate_check(
            name, False,
            "optimized path no longer matches its reference bit-for-bit",
            data,
        )
    if absolute is not None and measured < float(absolute):
        return gate_check(
            name, False,
            f"speedup {measured:.2f}x below the benchmark's absolute "
            f"{float(absolute):.2f}x floor",
            data,
        )
    if measured < floor:
        return gate_check(
            name, False,
            f"speedup regressed to {measured:.2f}x (baseline {committed:.2f}x, "
            f"floor {floor:.2f}x at {tolerance:.0%} tolerance)",
            data,
        )
    return gate_check(
        name, True,
        f"speedup {measured:.2f}x vs baseline {committed:.2f}x "
        f"(floor {floor:.2f}x)",
        data,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate fresh benchmark runs against committed BENCH_*.json baselines."
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="benchmark names to gate (default: every committed baseline)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=TOLERANCE,
        help=f"allowed fractional speedup regression (default {TOLERANCE})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="text lines or the shared JSON gate report (benchmarks/common.py)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"--tolerance must be in [0, 1), got {args.tolerance}")
    baselines = discover_baselines(args.names)
    if not baselines:
        print("no committed BENCH_*.json baselines to gate", file=sys.stderr)
        return 1
    report = gate_report(
        "bench",
        [gate_one(name, path, args.tolerance)
         for name, path in baselines.items()],
    )
    if args.output_format == "json":
        print(json.dumps(report, sort_keys=True))
    else:
        print(render_gate_report(report))
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
