"""Static-analysis gate entry point: ``python tools/check.py``.

A thin wrapper over ``python -m repro.cli check`` so the linter runs from
a bare checkout with no environment setup (the PYTHONPATH dance happens
here).  ``tools/smoke.py``'s ``check`` step and ``tools/gate.py`` both go
through this module; every flag of the CLI subcommand passes through::

    python tools/check.py                     # full rule set, text findings
    python tools/check.py --format json       # shared gate-report schema
    python tools/check.py --rule lock-discipline
    python tools/check.py --fix-suppressions  # drop stale suppressions
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: Optional[List[str]] = None) -> int:
    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.cli import main as cli_main

    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        return cli_main(["check"] + argv)
    except SystemExit as exit_:  # the subcommand exits non-zero on findings
        code = exit_.code
        if isinstance(code, str):
            print(code, file=sys.stderr)
            return 1
        return int(code or 0)


if __name__ == "__main__":
    sys.exit(main())
