"""CI smoke check: tier-1 tests plus one fast parallel sweep.

Runs the repository's tier-1 pytest suite and then exercises the
``repro.cli sweep`` path end-to-end (stream-length sweep, two workers,
JSON output), validating that the emitted payload is machine-readable.
Exits non-zero on the first failure, so it can gate CI directly::

    python tools/smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _env_with_src() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def run_tier1_tests() -> int:
    """The repository's tier-1 verify command."""
    print("== tier-1 tests ==", flush=True)
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q"],
        cwd=REPO_ROOT,
        env=_env_with_src(),
    )
    return proc.returncode


def run_fast_sweep() -> int:
    """One fast sweep through the parallel runner, validated as JSON."""
    print("== fast sweep (repro.cli sweep) ==", flush=True)
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "sweep",
            "--sweep", "stream_length", "--jobs", "2", "--backend", "thread",
            "--format", "json",
        ],
        cwd=REPO_ROOT,
        env=_env_with_src(),
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        return proc.returncode
    try:
        payload = json.loads(proc.stdout)
    except json.JSONDecodeError as error:
        print(f"sweep output is not valid JSON: {error}", file=sys.stderr)
        return 1
    if not payload.get("rows") or "asymptotic_speedup" not in payload.get("headline", {}):
        print("sweep output is missing rows or headline", file=sys.stderr)
        return 1
    print(f"sweep ok: {len(payload['rows'])} rows, "
          f"asymptotic_speedup={payload['headline']['asymptotic_speedup']:.3g}")
    return 0


def main() -> int:
    for step in (run_tier1_tests, run_fast_sweep):
        code = step()
        if code != 0:
            return code
    print("smoke check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
