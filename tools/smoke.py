"""CI smoke check: tier-1 tests, sweep, backends, engines, serving, store.

Runs the repository's tier-1 pytest suite, exercises the ``repro.cli
sweep`` path end-to-end (stream-length sweep, two workers, JSON output,
machine-readable payload), runs one declarative
:class:`~repro.plan.SweepSpec` through EVERY execution backend
(serial / thread / process / sharded-2) asserting bit-for-bit row equality,
checks the batched *functional* engine against its per-frame reference loop
(bit-for-bit, on a small SVGG-style network), drives the ``repro.serve``
inference service with 32 concurrent mixed-mode requests asserting every
response equals the corresponding direct Session call, serves the same
frames under the FP64-dense reference and FP32 event-sparse golden-model
policies asserting store isolation, telemetry and the documented accuracy
bounds (the *precision matrix*), and finally runs one
scenario through a persistent :class:`repro.session.Session` twice,
runs the distributed serving tier (a lock-traced ``repro.net``
coordinator, two worker OS processes, one rigged to die mid-batch)
asserting rescue plus bit-for-bit equality with direct Session calls,
asserting that the second run is served from the result store (hit counter
> 0) with results equal to the cold run.  The final ``check`` step runs the
repository's own static-analysis gate (``repro.lint`` — the full AST rule
set must come back clean over src/tools/benchmarks/examples) and a
lock-traced mini serve session (every serve/session lock swapped for
:class:`~repro.lint.locktrace.TracedLock` via
:func:`~repro.lint.locktrace.instrument_server`, 32 concurrent mixed-mode
requests, then ``assert_clean`` — no lock-order cycles, no unguarded
shared-state access).  Exits non-zero on the first failure, so it can gate
CI directly::

    python tools/smoke.py

The backend-matrix, functional-equivalence, serving, precision-matrix and
check steps are also wired into the tier-1 pytest flow as fast
``smoke``-marked tests (``tests/eval/test_backend_matrix.py`` imports
:func:`backend_matrix_check`, ``tests/core/test_functional_batch.py``
imports :func:`functional_equivalence_check`,
``tests/serve/test_serve_smoke.py`` imports
:func:`serve_equivalence_check`, ``tests/serve/test_precision_serve.py``
imports :func:`precision_matrix_check`, ``tests/net/test_cluster_smoke.py``
imports :func:`cluster_check`, ``tests/obs/test_obs_smoke.py`` imports
:func:`obs_trace_check`, ``tests/lint/test_locktrace.py``
imports :func:`lint_repo_check` and :func:`locktrace_serve_check`), so
every plain ``pytest`` run covers them and ``pytest -m smoke`` runs them
alone.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _env_with_src() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def run_tier1_tests() -> int:
    """The repository's tier-1 verify command."""
    print("== tier-1 tests ==", flush=True)
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q"],
        cwd=REPO_ROOT,
        env=_env_with_src(),
    )
    return proc.returncode


def run_fast_sweep() -> int:
    """One fast sweep through the parallel runner, validated as JSON."""
    print("== fast sweep (repro.cli sweep) ==", flush=True)
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "sweep",
            "--sweep", "stream_length", "--jobs", "2", "--backend", "thread",
            "--format", "json",
        ],
        cwd=REPO_ROOT,
        env=_env_with_src(),
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        return proc.returncode
    try:
        payload = json.loads(proc.stdout)
    except json.JSONDecodeError as error:
        print(f"sweep output is not valid JSON: {error}", file=sys.stderr)
        return 1
    if not payload.get("rows") or "asymptotic_speedup" not in payload.get("headline", {}):
        print("sweep output is missing rows or headline", file=sys.stderr)
        return 1
    print(f"sweep ok: {len(payload['rows'])} rows, "
          f"asymptotic_speedup={payload['headline']['asymptotic_speedup']:.3g}")
    return 0


#: (label, run_sweep keyword arguments) of every execution backend the
#: matrix check exercises; sharded runs with two worker sessions.
BACKEND_MATRIX = (
    ("serial", {"backend": "serial"}),
    ("thread", {"backend": "thread", "jobs": 2}),
    ("process", {"backend": "process", "jobs": 2}),
    ("sharded-2", {"backend": "sharded", "shards": 2}),
)


def backend_matrix_check(sweep: str = "stream_length", **point_kwargs) -> None:
    """One SweepSpec through every backend; rows must be bit-for-bit equal.

    Importable (used by the ``smoke``-marked tier-1 test) and raising
    ``AssertionError`` on the first divergence so failures name the backend.
    """
    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.eval.runner import run_sweep

    point_kwargs = point_kwargs or {"lengths": (1, 4, 16, 64)}
    reference = None
    for label, kwargs in BACKEND_MATRIX:
        result = run_sweep(sweep, seed=17, **kwargs, **point_kwargs)
        if reference is None:
            reference = (label, result)
            continue
        ref_label, ref = reference
        assert result.rows == ref.rows, (
            f"backend {label} rows diverge from {ref_label}"
        )
        assert result.headline == ref.headline, (
            f"backend {label} headline diverges from {ref_label}"
        )


def run_backend_matrix() -> int:
    """The backend matrix as a smoke step (prints a summary, returns a code)."""
    print("== backend matrix (one SweepSpec through every backend) ==", flush=True)
    try:
        backend_matrix_check()
    except AssertionError as error:
        print(f"backend matrix failed: {error}", file=sys.stderr)
        return 1
    print("backend matrix ok: " + ", ".join(label for label, _ in BACKEND_MATRIX))
    return 0


def functional_equivalence_check(batch: int = 3, timesteps: int = 2, seed: int = 23) -> None:
    """Batched functional engine vs per-frame loop on a small SVGG network.

    Importable (used by the ``smoke``-marked tier-1 test in
    ``tests/core/test_functional_batch.py``) and raising ``AssertionError``
    on divergence.  Runs the SpikeStream FP16 and baseline variants so both
    kernel flavours are covered, multi-timestep, bit-for-bit.
    """
    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.config import baseline_config, spikestream_config
    from repro.core.pipeline import SpikeStreamInference
    from repro.eval.sweeps import functional_network
    from repro.snn.datasets import SyntheticCIFAR10
    from repro.types import TensorShape

    network = functional_network(seed)
    frames, _ = SyntheticCIFAR10(
        seed=seed, image_shape=TensorShape(16, 16, 3)
    ).sample(batch)
    for config in (
        spikestream_config(batch_size=batch, timesteps=timesteps, seed=seed),
        baseline_config(batch_size=batch, timesteps=timesteps, seed=seed),
    ):
        engine = SpikeStreamInference(config)
        vectorized = engine.run_functional(network, frames)
        reference = engine.run_functional_reference(network, frames)
        assert vectorized.identical_to(reference), (
            f"functional batch engine diverges from the per-frame loop "
            f"(streaming={config.streaming_enabled})"
        )
        assert vectorized.layers[0].batch_size == batch * timesteps


def run_functional_equivalence() -> int:
    """The functional-engine check as a smoke step (summary + return code)."""
    print("== functional engine (batched vs per-frame reference) ==", flush=True)
    try:
        functional_equivalence_check()
    except AssertionError as error:
        print(f"functional equivalence failed: {error}", file=sys.stderr)
        return 1
    print("functional engine ok: bit-for-bit vs reference, "
          "spikestream + baseline, 2 timesteps")
    return 0


def serve_equivalence_check(requests: int = 32, seed: int = 31) -> None:
    """Concurrent mixed-mode serving vs direct Session calls, bit-for-bit.

    Importable (used by the ``smoke``-marked tier-1 test in
    ``tests/serve/test_serve_smoke.py``) and raising ``AssertionError`` on
    divergence.  Starts an in-process
    :class:`~repro.serve.server.InferenceServer`, fires ``requests``
    concurrent requests alternating statistical and functional mode (small
    SVGG-style network, so the whole check stays fast), and asserts every
    response equals what a direct :meth:`Session.run_inference` /
    :meth:`Session.run_functional` call produces for the same parameters —
    the micro-batcher must be invisible to callers.
    """
    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.config import spikestream_config
    from repro.eval.sweeps import functional_network
    from repro.serve import InferenceServer
    from repro.session import Session
    from repro.snn.datasets import SyntheticCIFAR10
    from repro.types import TensorShape

    config = spikestream_config(batch_size=1, timesteps=2, seed=seed)
    network = functional_network(seed)
    frames, _ = SyntheticCIFAR10(
        seed=seed, image_shape=TensorShape(16, 16, 3)
    ).sample(requests)

    with InferenceServer(workers=2, max_batch=8, max_wait_ms=20) as server:
        futures = []
        for index in range(requests):
            if index % 2 == 0:
                futures.append(("statistical", index, server.submit_statistical(
                    config=config, batch_size=1, seed=seed + index,
                )))
            else:
                futures.append(("functional", index, server.submit_functional(
                    network, frames[index:index + 1], config=config,
                )))
        served = [(mode, index, future.result(timeout=120))
                  for mode, index, future in futures]
        queued_depth_after = server.queue.depth()

    assert queued_depth_after == 0, "drained server left requests queued"
    # An independent session (no shared store) recomputes every request solo.
    reference_session = Session()
    for mode, index, result in served:
        if mode == "statistical":
            expected = reference_session.run_inference(
                config, batch_size=1, seed=seed + index
            )
        else:
            expected = reference_session.run_functional(
                network, frames[index:index + 1], config=config
            )
        assert result.identical_to(expected), (
            f"served {mode} request {index} diverges from the direct Session call"
        )


def run_serve_smoke() -> int:
    """The serving check as a smoke step (summary + return code)."""
    print("== serve (32 concurrent mixed-mode requests vs direct Session) ==",
          flush=True)
    try:
        serve_equivalence_check()
    except AssertionError as error:
        print(f"serve equivalence failed: {error}", file=sys.stderr)
        return 1
    print("serve ok: 32 mixed statistical/functional requests, "
          "micro-batched, bit-for-bit vs direct calls")
    return 0


def precision_matrix_check(frames_count: int = 8, seed: int = 41) -> None:
    """FP64-dense vs FP32 event-sparse served through ``repro.serve``.

    Importable (used by the ``smoke``-marked tier-1 test in
    ``tests/serve/test_precision_serve.py``) and raising ``AssertionError``
    on the first violation.  Submits the same frames to one
    :class:`~repro.serve.server.InferenceServer` under the FP64-dense
    reference policy and the FP32 event-sparse fast policy, then asserts
    the serving-layer contract (the two policies never share a result-store
    entry; both per-policy request counters appear in the telemetry
    snapshot) and the documented golden-model accuracy bound (classification
    agreement >=
    :data:`~repro.snn.numerics.CLASSIFICATION_AGREEMENT_BOUND`, per-layer
    spike-count deviation <=
    :data:`~repro.snn.numerics.SPIKE_COUNT_TOLERANCE`).
    """
    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    import numpy as np

    from repro.config import spikestream_config
    from repro.eval.sweeps import functional_network
    from repro.serve import InferenceServer
    from repro.snn.datasets import SyntheticCIFAR10
    from repro.snn.numerics import (
        CLASSIFICATION_AGREEMENT_BOUND,
        REFERENCE,
        SPIKE_COUNT_TOLERANCE,
        NumericsPolicy,
    )
    from repro.types import TensorShape

    config = spikestream_config(batch_size=1, timesteps=1, seed=seed)
    network = functional_network(seed)
    frames, _ = SyntheticCIFAR10(
        seed=seed, image_shape=TensorShape(16, 16, 3)
    ).sample(frames_count)
    fast = NumericsPolicy("fp32", "event_sparse")

    with InferenceServer(workers=2, max_batch=8, max_wait_ms=20) as server:
        reference_future = server.submit_functional(network, frames, config=config)
        fast_future = server.submit_functional(
            network, frames, config=config, numerics=fast
        )
        reference_future.result(timeout=120)
        fast_future.result(timeout=120)
        stats = server.stats()
        entries = server.session.store.stats()["entries"]

    assert entries >= 2, (
        "fp64-dense and fp32-event_sparse requests shared one store entry"
    )
    for policy_key in (REFERENCE.key(), fast.key()):
        counter = f"serve.numerics.requests.{policy_key}"
        assert stats.get(counter, 0) >= 1, f"telemetry is missing {counter}"

    # Accuracy bound of the fast policy vs the golden reference, on the same
    # frames the server just costed.
    reference_activity = network.forward_batch(frames, policy=REFERENCE)
    fast_activity = network.forward_batch(frames, policy=fast)
    for index in network.weighted_layers:
        reference_count = sum(
            float(record.output_spikes.sum())
            for record in reference_activity.for_layer(index)
        )
        fast_count = sum(
            float(record.output_spikes.sum())
            for record in fast_activity.for_layer(index)
        )
        deviation = abs(fast_count - reference_count) / max(reference_count, 1.0)
        assert deviation <= SPIKE_COUNT_TOLERANCE, (
            f"layer {index} spike count deviates {deviation:.3f} "
            f"(> {SPIKE_COUNT_TOLERANCE}) under fp32-event_sparse"
        )
    agreement = float(np.mean(
        network.predict_batch(frames, policy=REFERENCE)
        == network.predict_batch(frames, policy=fast)
    ))
    assert agreement >= CLASSIFICATION_AGREEMENT_BOUND, (
        f"classification agreement {agreement:.3f} below "
        f"{CLASSIFICATION_AGREEMENT_BOUND} under fp32-event_sparse"
    )


def run_precision_matrix() -> int:
    """The precision matrix as a smoke step (summary + return code)."""
    print("== precision matrix (fp64-dense vs fp32-event_sparse via serve) ==",
          flush=True)
    try:
        precision_matrix_check()
    except AssertionError as error:
        print(f"precision matrix failed: {error}", file=sys.stderr)
        return 1
    print("precision matrix ok: distinct store entries per policy, "
          "telemetry counters present, agreement/spike-count bounds met")
    return 0


def run_session_store_check() -> int:
    """One scenario through a persistent Session twice; the rerun must hit.

    The first ``session.run`` simulates the S-VGG11 variants and persists
    each whole ``InferenceResult`` under ``cache_dir``; the second run with
    an identical configuration fingerprint must be served from the result
    store (hit counter > 0) and produce identical rows.
    """
    print("== session result store (scenario run served from cache) ==", flush=True)
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.session import Session

    with tempfile.TemporaryDirectory() as cache_dir:
        with Session(cache_dir=cache_dir) as session:
            first = session.run("speedup", batch_size=2, seed=321)
            misses = session.store.misses
            second = session.run("speedup", batch_size=2, seed=321)
        if session.store.hits <= 0:
            print("second scenario run did not hit the result store", file=sys.stderr)
            return 1
        if session.store.misses != misses:
            print("second scenario run re-simulated despite the store", file=sys.stderr)
            return 1
        if first.rows != second.rows or first.headline != second.headline:
            print("store-served scenario result differs from the cold run", file=sys.stderr)
            return 1
        # A brand-new session must be served from the persisted files too.
        with Session(cache_dir=cache_dir) as fresh:
            third = fresh.run("speedup", batch_size=2, seed=321)
        if fresh.store.hits <= 0 or fresh.store.misses != 0:
            print("fresh session did not reuse the persisted result store", file=sys.stderr)
            return 1
        if third.rows != first.rows:
            print("persisted result store returned different rows", file=sys.stderr)
            return 1
    print(f"session store ok: {session.store.hits} hit(s) in-session, "
          f"{fresh.store.hits} hit(s) from disk")
    return 0


def lint_repo_check() -> None:
    """The full static-analysis rule set must come back clean on the repo.

    Importable (used by the ``smoke``-marked tier-1 test in
    ``tests/lint/test_locktrace.py``) and raising ``AssertionError`` with
    every finding listed, so a violating commit names its own lines.
    """
    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.lint import check_project

    result = check_project(root=REPO_ROOT)
    assert result.passed, (
        f"repro.lint found {len(result.findings)} violation(s):\n"
        + "\n".join(finding.format() for finding in result.findings)
    )


def locktrace_serve_check(requests: int = 32, seed: int = 47) -> None:
    """A lock-traced serve session must finish with a clean tracer.

    Importable (used by the ``smoke``-marked tier-1 test) and raising
    ``AssertionError`` on any recorded violation.  Swaps every lock of a
    live :class:`~repro.serve.server.InferenceServer` (queue, metrics,
    result store, close lock) for
    :class:`~repro.lint.locktrace.TracedLock` via
    :func:`~repro.lint.locktrace.instrument_server`, wraps the store's
    backing dict in a :class:`~repro.lint.locktrace.GuardedMapping`, fires
    ``requests`` concurrent mixed statistical/functional requests, and
    asserts both that the responses are sane and that the tracer saw no
    lock-order cycle and no store access without the store lock held.
    """
    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.config import spikestream_config
    from repro.eval.sweeps import functional_network
    from repro.lint.locktrace import instrument_server
    from repro.serve import InferenceServer
    from repro.snn.datasets import SyntheticCIFAR10
    from repro.types import TensorShape

    config = spikestream_config(batch_size=1, timesteps=1, seed=seed)
    network = functional_network(seed)
    frames, _ = SyntheticCIFAR10(
        seed=seed, image_shape=TensorShape(16, 16, 3)
    ).sample(requests)

    with InferenceServer(workers=2, max_batch=8, max_wait_ms=20) as server:
        tracer = instrument_server(server)
        futures = []
        for index in range(requests):
            if index % 2 == 0:
                futures.append(server.submit_statistical(
                    config=config, batch_size=1, seed=seed + index,
                ))
            else:
                futures.append(server.submit_functional(
                    network, frames[index:index + 1], config=config,
                ))
        results = [future.result(timeout=120) for future in futures]
        stats = server.stats()

    assert len(results) == requests and all(r is not None for r in results), (
        "lock-traced serve session dropped responses"
    )
    assert stats.get("serve.completed", 0) >= requests, (
        f"completed counter {stats.get('serve.completed')} < {requests}"
    )
    tracer.assert_clean()
    # The instrumented run must actually have exercised the traced locks.
    assert tracer.acquire_count > 0, (
        "locktrace instrumented a server but saw no lock acquisitions"
    )


def cluster_check(seed: int = 53) -> None:
    """Distributed serving (2 worker processes) vs direct Session, bit-for-bit.

    Importable (used by the ``smoke``-marked tier-1 test in
    ``tests/net/test_cluster_smoke.py``) and raising ``AssertionError`` on
    the first violation.  Starts a lock-traced
    :class:`~repro.net.coordinator.Coordinator`
    (:func:`~repro.lint.locktrace.instrument_coordinator`) and two real
    worker OS processes (:func:`~repro.net.worker.spawn_worker`) — the
    first rigged to die mid-batch (``chaos_exit_after=0``), so the check
    proves the whole failure story, not just the happy path:

    1. a first wave of statistical requests lands on the doomed worker,
       which hard-exits mid-batch; the coordinator rescues the in-flight
       batch (``net.rescues``/``net.workers_lost``) and the healthy worker
       completes every future — none lost, all before the deadline;
    2. a second mixed statistical/functional wave runs through the healthy
       worker;
    3. two further functional waves carry a **big-FC network** whose weight
       matrix sits far above the wire's blob threshold: the weights must
       cross each link exactly once (``__need_blob__`` traffic and
       ``net.blob`` misses stay flat across the second wave) and the
       per-request dispatch bytes of that second wave must be at least 5x
       smaller than the same batch under the v1 monolithic-pickle codec;
    4. every response must be bit-for-bit identical to a direct
       :class:`~repro.session.Session` call, and the lock tracer must come
       back clean (no order cycles, no unguarded link-table access).
    """
    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.config import spikestream_config
    from repro.eval.sweeps import functional_network
    from repro.lint.locktrace import instrument_coordinator
    from repro.net import Coordinator, spawn_worker
    from repro.net.framing import Message, encode_frame_v1
    from repro.session import Session
    from repro.snn.datasets import SyntheticCIFAR10
    from repro.snn.layers import (
        Flatten, SpikingConv2d, SpikingLinear, SpikingMaxPool2d,
    )
    from repro.snn.network import SpikingNetwork
    from repro.snn.neuron import LIFParameters
    from repro.types import TensorShape

    config = spikestream_config(batch_size=1, timesteps=1, seed=seed)
    network = functional_network(seed)
    frames, _ = SyntheticCIFAR10(
        seed=seed, image_shape=TensorShape(16, 16, 3)
    ).sample(4)

    coordinator = Coordinator(
        max_batch=4, max_wait_ms=10, liveness_timeout_s=1.5,
        default_deadline_s=120.0,
    )
    tracer = instrument_coordinator(coordinator)
    processes = []
    served = []
    try:
        # Wave 1: only the doomed worker is connected, so it receives (and
        # dies on) the first batch; the healthy worker then rescues it.
        processes.append(spawn_worker(
            coordinator.address, worker_id="smoke-doomed", chaos_exit_after=0
        ))
        assert coordinator.wait_for_workers(1, timeout=120), (
            "the first worker process never registered"
        )
        wave1 = [
            ("statistical", index,
             coordinator.submit_statistical(config=config, seed=seed + index))
            for index in range(4)
        ]
        processes.append(spawn_worker(
            coordinator.address, worker_id="smoke-healthy"
        ))
        served.extend(
            (mode, index, future.result(timeout=240))
            for mode, index, future in wave1
        )
        # Wave 2: mixed statistical/functional through the healthy worker.
        wave2 = []
        for index in range(4):
            if index % 2 == 0:
                wave2.append(("statistical", 10 + index,
                              coordinator.submit_statistical(
                                  config=config, seed=seed + 10 + index)))
            else:
                wave2.append(("functional", index,
                              coordinator.submit_functional(
                                  network, frames[index:index + 1],
                                  config=config)))
        served.extend(
            (mode, index, future.result(timeout=240))
            for mode, index, future in wave2
        )

        # Waves 3 and 4: a network whose FC weights (512x128 float64 =
        # 512 KB) dwarf the blob threshold.  The weights must cross the
        # healthy worker's link once — wave 4 re-uses the digest.
        lif = LIFParameters(alpha=0.9, v_threshold=0.25)
        big_network = SpikingNetwork([
            SpikingConv2d(3, 8, kernel_size=3, padding=1, lif=lif,
                          encodes_input=True, name="conv1"),
            SpikingMaxPool2d(name="pool1"),
            Flatten(name="flatten"),
            SpikingLinear(8 * 8 * 8, 128, lif=lif, name="big-fc"),
            SpikingLinear(128, 10, lif=lif, name="out", is_output=True),
        ], input_shape=TensorShape(16, 16, 3), name="big-fc-net")
        big_network.initialize(seed)
        big_frames, _ = SyntheticCIFAR10(
            seed=seed + 100, image_shape=TensorShape(16, 16, 3)
        ).sample(8)

        def _big_wave(offset):
            futures = [
                coordinator.submit_functional(
                    big_network, big_frames[offset + i:offset + i + 1],
                    config=config,
                )
                for i in range(4)
            ]
            return [future.result(timeout=240) for future in futures]

        def _settle(predicate, timeout=10.0):
            end = time.monotonic() + timeout
            while time.monotonic() < end and not predicate():
                time.sleep(0.05)

        big_served = [("big-fc", index, result)
                      for index, result in enumerate(_big_wave(0))]
        # Worker-side blob counters travel on heartbeats; wait for the
        # wave-3 miss to be visible before snapshotting the plateau.
        _settle(lambda: coordinator.stats()["net.blob"]["misses"] >= 1)
        after_wave3 = coordinator.stats()
        assert after_wave3["net.blob"]["misses"] >= 1, (
            "the big-FC weights never took the blob path"
        )

        big_served += [("big-fc", 4 + index, result)
                       for index, result in enumerate(_big_wave(4))]
        time.sleep(3 * coordinator.heartbeat_interval_s)
        after_wave4 = coordinator.stats()
        assert (after_wave4["net.blob"]["misses"]
                == after_wave3["net.blob"]["misses"]), (
            "the second big-FC wave re-missed blobs the workers already hold"
        )
        need_blob_key = "__need_blob__"
        assert (
            after_wave4["net.bytes"]["received_by_kind"].get(need_blob_key, 0)
            == after_wave3["net.bytes"]["received_by_kind"].get(need_blob_key, 0)
        ), "the second big-FC wave still requested blob bytes"

        # And the dedup must show up as wire savings: wave-4 dispatch
        # traffic per request must be >= 5x smaller than the same single
        # request under the v1 monolithic-pickle codec, which re-ships the
        # weights every time.
        wave4_batch_bytes = (
            after_wave4["net.bytes"]["sent_by_kind"].get("batch", 0)
            - after_wave3["net.bytes"]["sent_by_kind"].get("batch", 0)
        )
        v1_request_bytes = len(encode_frame_v1(Message("batch", {
            "batch_id": 0,
            "requests": [{
                "mode": "functional", "config": config,
                "network": big_network, "frames": big_frames[4:5],
            }],
        })))
        assert wave4_batch_bytes / 4 * 5 <= v1_request_bytes, (
            f"big-FC dispatch costs {wave4_batch_bytes / 4:.0f} B/request "
            f"on the v2 wire — not even 5x below the {v1_request_bytes} B "
            f"a v1 frame would need"
        )
        served.extend(big_served)
        stats = coordinator.stats()
    finally:
        coordinator.close()
        for process in processes:
            try:
                process.wait(timeout=60)
            except Exception:
                process.kill()

    assert stats["net.workers_lost"] >= 1, (
        "the rigged worker's death was never detected"
    )
    assert stats["net.rescues"] >= 1, (
        "the killed worker's in-flight batch was never rescued"
    )
    assert stats["net.dispatches"] >= 2, "the cluster dispatched too little"
    reference = Session()
    try:
        for mode, index, result in served:
            assert result is not None, f"{mode} request {index} was lost"
            if mode == "statistical":
                expected = reference.run_inference(
                    config, batch_size=1, seed=seed + index
                )
            elif mode == "big-fc":
                expected = reference.run_functional(
                    big_network, big_frames[index:index + 1], config=config
                )
            else:
                expected = reference.run_functional(
                    network, frames[index:index + 1], config=config
                )
            assert result.identical_to(expected), (
                f"distributed {mode} request {index} diverges from the "
                f"direct Session call"
            )
    finally:
        reference.close()
    tracer.assert_clean()
    assert tracer.acquire_count > 0, (
        "locktrace instrumented a coordinator but saw no lock acquisitions"
    )


def obs_trace_check(requests: int = 32, seed: int = 59) -> None:
    """A traced mixed-mode cluster wave must export complete, nested traces.

    Importable (used by the ``smoke``-marked tier-1 test in
    ``tests/obs/test_obs_smoke.py``) and raising ``AssertionError`` on the
    first violation.  Starts a :class:`~repro.net.coordinator.Coordinator`
    with an enabled :class:`~repro.obs.Tracer` and two in-process
    :class:`~repro.net.worker.NetWorker` threads, fires ``requests``
    alternating statistical/functional requests, and asserts every request
    produced exactly one **completed** trace that

    * passes :func:`~repro.obs.well_nested` (one root, no orphans, every
      child inside its parent, every follow-from resolvable),
    * accounts the full path — ``queue_wait``, ``dispatch`` and the
      worker's remote ``worker_execute``/``engine_pass`` spans all stitch
      under the root on the coordinator's clock,
    * and renders to Chrome ``trace_event`` JSON that serializes as-is.
    """
    if str(REPO_ROOT / "src") not in sys.path:
        sys.path.insert(0, str(REPO_ROOT / "src"))
    import threading

    from repro.config import spikestream_config
    from repro.eval.sweeps import functional_network
    from repro.net import Coordinator, NetWorker
    from repro.obs import Tracer, to_chrome, well_nested
    from repro.snn.datasets import SyntheticCIFAR10
    from repro.types import TensorShape

    config = spikestream_config(batch_size=1, timesteps=1, seed=seed)
    network = functional_network(seed)
    frames, _ = SyntheticCIFAR10(
        seed=seed, image_shape=TensorShape(16, 16, 3)
    ).sample(requests)

    coordinator = Coordinator(
        max_batch=8, max_wait_ms=10, liveness_timeout_s=5.0,
        tracer=Tracer(enabled=True, capacity=max(requests, 256)),
    )
    workers = []
    try:
        for index in range(2):
            worker = NetWorker(coordinator.address, worker_id=f"obs-{index}")
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            workers.append((worker, thread))
        assert coordinator.wait_for_workers(2, timeout=120)
        futures = []
        for index in range(requests):
            if index % 2 == 0:
                futures.append(coordinator.submit_statistical(
                    config=config, batch_size=1, seed=seed + index,
                ))
            else:
                futures.append(coordinator.submit_functional(
                    network, frames[index:index + 1], config=config,
                ))
        for future in futures:
            assert future.result(timeout=240) is not None
        traces = coordinator.tracer.completed()
        stats = coordinator.tracer.stats()
    finally:
        coordinator.close()
        for worker, thread in workers:
            thread.join(timeout=30)

    assert len(traces) == requests, (
        f"{requests} requests must complete {requests} traces, "
        f"got {len(traces)} (stats: {stats})"
    )
    assert stats["open_spans"] == 0, f"unfinished spans left: {stats}"
    for trace in traces:
        error = well_nested(trace)
        assert error is None, f"malformed trace: {error}"
        names = [span["name"] for span in trace["spans"]]
        for stage in ("request", "queue_wait", "dispatch",
                      "worker_execute", "engine_pass"):
            assert stage in names, (
                f"trace is missing its {stage!r} span (has {sorted(names)})"
            )
    document = to_chrome(traces)
    json.dumps(document)  # must load in chrome://tracing / Perfetto as-is
    assert len(document["traceEvents"]) >= requests * 5


def run_obs() -> int:
    """The tracing check as a smoke step (summary + return code)."""
    print("== obs (32 traced mixed-mode cluster requests, nested traces) ==",
          flush=True)
    try:
        obs_trace_check()
    except AssertionError as error:
        print(f"obs trace check failed: {error}", file=sys.stderr)
        return 1
    print("obs ok: every request exported one complete well-nested trace "
          "with queue/dispatch/worker stages on one timeline")
    return 0


def run_cluster() -> int:
    """The distributed-serving check as a smoke step."""
    print("== cluster (2 worker processes, chaos kill, vs direct Session) ==",
          flush=True)
    try:
        cluster_check()
    except AssertionError as error:
        print(f"cluster check failed: {error}", file=sys.stderr)
        return 1
    print("cluster ok: killed worker rescued, mixed-mode waves bit-for-bit "
          "vs direct calls, lock-traced coordinator clean")
    return 0


def run_check() -> int:
    """Static analysis + lock-traced serving as one smoke step."""
    print("== check (repro.lint clean run + lock-traced serve session) ==",
          flush=True)
    try:
        lint_repo_check()
    except AssertionError as error:
        print(f"lint gate failed: {error}", file=sys.stderr)
        return 1
    try:
        locktrace_serve_check()
    except AssertionError as error:
        print(f"locktrace serve check failed: {error}", file=sys.stderr)
        return 1
    print("check ok: full rule set clean, 32 lock-traced mixed-mode "
          "requests with no ordering or guard violations")
    return 0


def main() -> int:
    for step in (run_tier1_tests, run_fast_sweep, run_backend_matrix,
                 run_functional_equivalence, run_serve_smoke,
                 run_precision_matrix, run_cluster, run_obs,
                 run_session_store_check, run_check):
        code = step()
        if code != 0:
            return code
    print("smoke check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
