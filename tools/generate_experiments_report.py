#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md: paper-vs-measured numbers for every figure.

Runs every experiment driver with a configurable batch size and rewrites
``EXPERIMENTS.md`` at the repository root.  Used to keep the committed report
in sync with the model; CI or a user can re-run it at any time::

    python tools/generate_experiments_report.py            # batch of 16 frames
    python tools/generate_experiments_report.py --batch 128
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.eval.experiments import (
    accelerator_comparison_experiment,
    energy_experiment,
    memory_footprint_experiment,
    run_svgg11_variants,
    speedup_experiment,
    spva_microbenchmark_experiment,
    utilization_experiment,
)
from repro.eval.reporting import format_table

REPO_ROOT = Path(__file__).resolve().parent.parent

PAPER_VALUES = {
    "fig3a_reduction": 2.75,
    "util_baseline": 0.0928,
    "util_spikestream": 0.523,
    "util_layer1_baseline": 0.248,
    "util_layer1_spikestream": 0.531,
    "speedup_fp16": 5.62,
    "speedup_fp8_over_fp16": 1.71,
    "speedup_fp8_over_baseline": 7.29,
    "power_baseline": 0.1319,
    "power_fp16": 0.233,
    "power_fp8": 0.219,
    "energy_gain_fp16": 3.25,
    "energy_gain_fp8": 5.67,
    "conv_energy_fraction": 0.828,
    "lsmcore_latency_ms": 46.08,
    "fp8_latency_ms": 217.14,
    "fp8_slowdown_vs_lsmcore": 4.71,
    "fp16_speedup_vs_loihi": 1.31,
    "fp8_speedup_vs_loihi": 2.38,
    "fp16_energy_gain_vs_lsmcore": 2.37,
    "fp8_energy_gain_vs_lsmcore": 3.46,
}


def _row(metric: str, paper: float, measured: float, unit: str = "") -> str:
    ratio = measured / paper if paper else float("nan")
    return f"| {metric} | {paper:.4g}{unit} | {measured:.4g}{unit} | {ratio:.2f}x |"


def build_report(batch_size: int, seed: int) -> str:
    variants = run_svgg11_variants(batch_size=batch_size, seed=seed)
    footprint = memory_footprint_experiment(batch_size=max(batch_size, 16), seed=seed)
    utilization = utilization_experiment(variants=variants)
    speedups = speedup_experiment(variants=variants)
    energy = energy_experiment(variants=variants)
    comparison = accelerator_comparison_experiment(timesteps=500, batch_size=4, seed=seed)
    spva = spva_microbenchmark_experiment()

    p = PAPER_VALUES
    u, s, e, c = utilization.headline, speedups.headline, energy.headline, comparison.headline

    lines = []
    lines.append("# EXPERIMENTS — paper vs. measured")
    lines.append("")
    lines.append(
        f"All measured values below were produced by `tools/generate_experiments_report.py` "
        f"on the behavioral cluster model with a batch of {batch_size} synthetic frames "
        f"(seed {seed}); the paper uses 128 CIFAR-10 frames on a cycle-accurate RTL "
        "simulation, so absolute agreement is not expected — the reproduction targets the "
        "*shape* of each result (ordering, approximate factors, crossovers).  Re-run the "
        "script (optionally with `--batch 128`) to regenerate this file; per-figure tables "
        "are also written by `pytest benchmarks/ --benchmark-only` into `benchmarks/results/`."
    )
    lines.append("")
    lines.append("## Headline comparison")
    lines.append("")
    lines.append("| metric | paper | measured | measured/paper |")
    lines.append("|---|---|---|---|")
    lines.append(_row("Fig 3a: mean CSR-over-AER footprint reduction",
                      p["fig3a_reduction"], footprint.headline["mean_csr_over_aer_reduction"], "x"))
    lines.append(_row("Fig 3b: network FPU utilization, baseline FP16",
                      p["util_baseline"], u["network_fpu_util_baseline"]))
    lines.append(_row("Fig 3b: network FPU utilization, SpikeStream FP16",
                      p["util_spikestream"], u["network_fpu_util_spikestream"]))
    lines.append(_row("Fig 3b: layer-1 FPU utilization, baseline",
                      p["util_layer1_baseline"], u["encode_fpu_util_baseline"]))
    lines.append(_row("Fig 3b: layer-1 FPU utilization, SpikeStream",
                      p["util_layer1_spikestream"], u["encode_fpu_util_spikestream"]))
    lines.append(_row("Fig 3c: SpikeStream FP16 speedup over baseline (network)",
                      p["speedup_fp16"], s["network_speedup_fp16_over_baseline"], "x"))
    lines.append(_row("Fig 3c: SpikeStream FP8 speedup over FP16 (network)",
                      p["speedup_fp8_over_fp16"], s["network_speedup_fp8_over_fp16"], "x"))
    lines.append(_row("Abstract: SpikeStream FP8 speedup over baseline",
                      p["speedup_fp8_over_baseline"], s["network_speedup_fp8_over_baseline"], "x"))
    lines.append(_row("Fig 4: mean power, baseline FP16 (layers 2-8)",
                      p["power_baseline"], e["mean_power_baseline_conv2_to_8"], " W"))
    lines.append(_row("Fig 4: mean power, SpikeStream FP16 (layers 2-8)",
                      p["power_fp16"], e["mean_power_spikestream_fp16_conv2_to_8"], " W"))
    lines.append(_row("Fig 4: mean power, SpikeStream FP8 (layers 2-8)",
                      p["power_fp8"], e["mean_power_spikestream_fp8_conv2_to_8"], " W"))
    lines.append(_row("Fig 4: energy-efficiency gain, SpikeStream FP16 vs baseline",
                      p["energy_gain_fp16"], e["energy_gain_fp16_over_baseline"], "x"))
    lines.append(_row("Fig 4: energy-efficiency gain, SpikeStream FP8 vs baseline",
                      p["energy_gain_fp8"], e["energy_gain_fp8_over_baseline"], "x"))
    lines.append(_row("Fig 4: conv-layer share of total baseline energy",
                      p["conv_energy_fraction"], e["conv_energy_fraction_baseline"]))
    lines.append(_row("Fig 5a: LSMCore latency (layer 6, 500 timesteps)",
                      p["lsmcore_latency_ms"], c["lsmcore_latency_ms"], " ms"))
    lines.append(_row("Fig 5a: SpikeStream FP8 latency (layer 6, 500 timesteps)",
                      p["fp8_latency_ms"], c["spikestream_fp8_latency_ms"], " ms"))
    lines.append(_row("Fig 5a: SpikeStream FP8 slowdown vs LSMCore",
                      p["fp8_slowdown_vs_lsmcore"], c["fp8_slowdown_vs_lsmcore"], "x"))
    lines.append(_row("Fig 5a: SpikeStream FP16 speedup vs Loihi",
                      p["fp16_speedup_vs_loihi"], c["fp16_speedup_vs_loihi"], "x"))
    lines.append(_row("Fig 5a: SpikeStream FP8 speedup vs Loihi",
                      p["fp8_speedup_vs_loihi"], c["fp8_speedup_vs_loihi"], "x"))
    lines.append(_row("Fig 5b: energy gain vs LSMCore, SpikeStream FP16",
                      p["fp16_energy_gain_vs_lsmcore"], c["fp16_energy_gain_vs_lsmcore"], "x"))
    lines.append(_row("Fig 5b: energy gain vs LSMCore, SpikeStream FP8",
                      p["fp8_energy_gain_vs_lsmcore"], c["fp8_energy_gain_vs_lsmcore"], "x"))
    lines.append("")
    lines.append("Known deviations and their causes are discussed at the end of this file.")
    lines.append("")

    sections = [
        ("Figure 3a — ifmap memory footprint and firing activity", footprint,
         ["layer", "ifmap_shape", "firing_rate_mean", "aer_bytes_mean", "csr_bytes_mean", "reduction"]),
        ("Figure 3b — FPU utilization and IPC per layer (FP16)", utilization,
         ["layer", "fpu_util_baseline", "fpu_util_spikestream", "ipc_baseline", "ipc_spikestream"]),
        ("Figure 3c — per-layer speedups", speedups,
         ["layer", "speedup_fp16_over_baseline", "speedup_fp8_over_fp16", "speedup_fp8_over_baseline"]),
        ("Figure 4 — energy and power per layer", energy,
         ["layer", "energy_mj_baseline", "energy_mj_spikestream_fp16", "energy_mj_spikestream_fp8",
          "power_w_baseline", "power_w_spikestream_fp16", "power_w_spikestream_fp8"]),
        ("Figure 5 — comparison with SoA neuromorphic accelerators", comparison,
         ["system", "latency_ms", "energy_mj", "peak_gsop", "technology_nm", "precision_bits"]),
        ("Listing 1 — SpVA inner-loop micro-benchmark", spva,
         ["stream_length", "baseline_cycles", "streaming_cycles", "speedup"]),
    ]
    for title, result, columns in sections:
        lines.append(f"## {title}")
        lines.append("")
        lines.append("```")
        lines.append(format_table(result.rows, columns=columns))
        lines.append("```")
        lines.append("")

    lines.append("## Known deviations")
    lines.append("")
    lines.append(
        "* **FP8-over-FP16 speedup** measures ≈1.9–2.0x against the paper's 1.71x: the "
        "behavioral model only charges the documented extra output-unpacking iterations to "
        "FP8, while the real kernel also pays extra integer work in the SIMD mask handling "
        "that is not described in enough detail to model."
    )
    lines.append(
        "* **Network-average FPU utilization** for SpikeStream lands a few points below the "
        "paper's 52.3 % because the DMA-bound fully connected layers and the weight-reload "
        "traffic of the last conv layers are fully accounted in runtime here."
    )
    lines.append(
        "* **Footprint reduction** (≈2.9x vs 2.75x) depends on how many 16-bit fields an AER "
        "event carries; this model charges three (packed spatial address, channel, timestamp)."
    )
    lines.append(
        "* **Absolute energies/powers** come from a calibrated activity model, not post-layout "
        "power analysis; ratios between variants are the meaningful quantity."
    )
    lines.append("")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch", type=int, default=16, help="frames per variant (paper: 128)")
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--output", type=Path, default=REPO_ROOT / "EXPERIMENTS.md")
    args = parser.parse_args()
    report = build_report(batch_size=args.batch, seed=args.seed)
    args.output.write_text(report)
    print(f"wrote {args.output} ({len(report.splitlines())} lines)")


if __name__ == "__main__":
    main()
