"""Stream-register (SSR) model.

Snitch's stream registers map memory streams directly onto reads and writes
of FP architectural registers.  Each worker core has three SSRs supporting up
to 4-D affine address patterns; two of them additionally support 1-D indirect
streams that gather (or scatter) data through an index array with 8-, 16- or
32-bit indices (Section II-B).

The model generates the exact address sequences — used by the functional
kernels and verified against an index-arithmetic oracle in the tests — and
exposes the shadow-register behaviour that allows the next stream to be
configured while the current one is still running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from .params import ClusterParams, DEFAULT_CLUSTER


@dataclass(frozen=True)
class AffineStreamConfig:
    """Configuration of an affine (up to 4-D) address stream.

    Addresses follow the nested-loop pattern::

        for i3 in range(bounds[3]):
          ...
            for i0 in range(bounds[0]):
                address = base + i0*strides[0] + i1*strides[1] + ...

    with dimension 0 innermost.  Bounds and strides are given innermost
    first; strides are in bytes.
    """

    base_address: int
    bounds: Sequence[int]
    strides: Sequence[int]

    def __post_init__(self) -> None:
        if len(self.bounds) != len(self.strides):
            raise ValueError("bounds and strides must have the same number of dimensions")
        if not self.bounds:
            raise ValueError("at least one dimension is required")
        if any(b <= 0 for b in self.bounds):
            raise ValueError(f"all bounds must be positive, got {self.bounds}")

    @property
    def dimensions(self) -> int:
        """Number of nested loop dimensions."""
        return len(self.bounds)

    @property
    def length(self) -> int:
        """Total number of stream elements."""
        return int(np.prod(self.bounds))

    def addresses(self) -> np.ndarray:
        """Return the full address sequence as an int64 array.

        Dimension 0 varies fastest, exactly like the innermost hardware loop.
        """
        offset = np.zeros(self.length, dtype=np.int64)
        for dim, (bound, stride) in enumerate(zip(self.bounds, self.strides)):
            repeat_inner = int(np.prod(self.bounds[:dim])) if dim > 0 else 1
            tile_outer = self.length // (bound * repeat_inner)
            pattern = np.repeat(np.arange(bound, dtype=np.int64), repeat_inner)
            offset += np.tile(pattern, tile_outer) * stride
        return self.base_address + offset


@dataclass(frozen=True)
class IndirectStreamConfig:
    """Configuration of a 1-D indirect (gather/scatter) stream.

    Each stream element accesses ``base_address + indices[i] * element_bytes``.
    The index array itself resides in the SPM and is fetched by the SSR,
    which is why indirect streaming costs an extra SPM access per element in
    the timing model.
    """

    base_address: int
    indices: np.ndarray
    element_bytes: int
    index_bits: int = 16

    def __post_init__(self) -> None:
        object.__setattr__(self, "indices", np.asarray(self.indices, dtype=np.int64))
        if self.element_bytes <= 0:
            raise ValueError(f"element_bytes must be positive, got {self.element_bytes}")
        if np.any(self.indices < 0):
            raise ValueError("indices must be non-negative")
        if len(self.indices) and int(self.indices.max()) >= 2 ** self.index_bits:
            raise ValueError(
                f"index {int(self.indices.max())} does not fit into {self.index_bits}-bit indices"
            )

    @property
    def length(self) -> int:
        """Number of stream elements."""
        return int(len(self.indices))

    def addresses(self) -> np.ndarray:
        """Return the gathered address sequence."""
        return self.base_address + self.indices * self.element_bytes


@dataclass(frozen=True)
class StridedIndirectStreamConfig:
    """Strided indirect stream: one index array reused across several passes.

    This models the extension the paper lists as future work ("enhancing SRs
    with strided indirect execution to enable higher degrees of computation
    overlap"): the same gather index array is replayed ``num_groups`` times
    with the data base address advanced by ``group_stride_bytes`` per pass, so
    the SpVAs of consecutive SIMD output-channel groups reuse the index fetch
    instead of paying for it again.
    """

    base_address: int
    indices: np.ndarray
    element_bytes: int
    group_stride_bytes: int
    num_groups: int
    index_bits: int = 16

    def __post_init__(self) -> None:
        object.__setattr__(self, "indices", np.asarray(self.indices, dtype=np.int64))
        if self.element_bytes <= 0:
            raise ValueError(f"element_bytes must be positive, got {self.element_bytes}")
        if self.group_stride_bytes < 0:
            raise ValueError("group_stride_bytes must be non-negative")
        if self.num_groups <= 0:
            raise ValueError(f"num_groups must be positive, got {self.num_groups}")
        if np.any(self.indices < 0):
            raise ValueError("indices must be non-negative")
        if len(self.indices) and int(self.indices.max()) >= 2 ** self.index_bits:
            raise ValueError(
                f"index {int(self.indices.max())} does not fit into {self.index_bits}-bit indices"
            )

    @property
    def length(self) -> int:
        """Total elements streamed across all group passes."""
        return int(len(self.indices)) * self.num_groups

    def addresses(self) -> np.ndarray:
        """Gathered addresses, grouped pass by pass."""
        per_group = self.base_address + self.indices * self.element_bytes
        groups = [per_group + g * self.group_stride_bytes for g in range(self.num_groups)]
        if not groups:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(groups)


StreamConfig = Union[AffineStreamConfig, IndirectStreamConfig, StridedIndirectStreamConfig]


class StreamRegister:
    """A single stream register with an active and a shadow configuration."""

    def __init__(
        self,
        index: int,
        supports_indirect: bool,
        params: ClusterParams = DEFAULT_CLUSTER,
    ):
        self.index = index
        self.supports_indirect = supports_indirect
        self.params = params
        self._active: Optional[StreamConfig] = None
        self._shadow: Optional[StreamConfig] = None
        self._consumed = 0
        self.total_elements_streamed = 0
        self.total_streams = 0

    def _validate(self, config: StreamConfig) -> None:
        if isinstance(config, AffineStreamConfig):
            if config.dimensions > self.params.max_affine_dims:
                raise ValueError(
                    f"SSR{self.index} supports at most {self.params.max_affine_dims} affine "
                    f"dimensions, got {config.dimensions}"
                )
        elif isinstance(config, (IndirectStreamConfig, StridedIndirectStreamConfig)):
            if not self.supports_indirect:
                raise ValueError(f"SSR{self.index} does not support indirect streams")
            if config.index_bits not in self.params.supported_index_bits:
                raise ValueError(
                    f"index width {config.index_bits} not supported; expected one of "
                    f"{self.params.supported_index_bits}"
                )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unsupported stream configuration type {type(config)!r}")

    @property
    def is_active(self) -> bool:
        """Whether a stream is currently configured and not fully consumed."""
        return self._active is not None and self._consumed < self._active.length

    def configure(self, config: StreamConfig) -> None:
        """Program the stream register.

        If a stream is currently active the new configuration lands in the
        shadow register and becomes active when the running stream completes
        — this is what lets the integer core prepare the next SpVA while the
        FPU is still consuming the current one.
        """
        self._validate(config)
        if self.is_active:
            self._shadow = config
        else:
            self._active = config
            self._consumed = 0
        self.total_streams += 1

    def read_all(self) -> np.ndarray:
        """Consume the active stream completely, returning its address sequence."""
        if self._active is None:
            raise RuntimeError(f"SSR{self.index} has no configured stream")
        addresses = self._active.addresses()[self._consumed :]
        self.total_elements_streamed += len(addresses)
        self._consumed = self._active.length
        self._promote_shadow()
        return addresses

    def read_next(self) -> int:
        """Consume a single stream element and return its address."""
        if self._active is None:
            raise RuntimeError(f"SSR{self.index} has no configured stream")
        if self._consumed >= self._active.length:
            raise RuntimeError(f"SSR{self.index} stream exhausted")
        address = int(self._active.addresses()[self._consumed])
        self._consumed += 1
        self.total_elements_streamed += 1
        if self._consumed >= self._active.length:
            self._promote_shadow()
        return address

    def _promote_shadow(self) -> None:
        if self._shadow is not None:
            self._active = self._shadow
            self._shadow = None
            self._consumed = 0
        elif self._active is not None and self._consumed >= self._active.length:
            # Stream finished with no shadow pending: stay configured but
            # exhausted so double-reads raise.
            pass

    def spm_accesses_per_element(self, config: Optional[StreamConfig] = None) -> int:
        """SPM accesses per streamed element (2 for indirect: index + data).

        Strided-indirect streams amortize the index fetch over their group
        passes, approaching one access per element for many groups.
        """
        config = config or self._active
        if isinstance(config, StridedIndirectStreamConfig):
            return 2 if config.num_groups == 1 else 1
        if isinstance(config, IndirectStreamConfig):
            return 2
        return 1


def make_core_stream_registers(params: ClusterParams = DEFAULT_CLUSTER) -> List[StreamRegister]:
    """Create the stream registers of one worker core.

    The first ``num_indirect_stream_registers`` SSRs support indirection, as
    in the Snitch sparse-SSR extension.
    """
    return [
        StreamRegister(
            index=i,
            supports_indirect=(i < params.num_indirect_stream_registers),
            params=params,
        )
        for i in range(params.num_stream_registers)
    ]
