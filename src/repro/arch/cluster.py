"""The Snitch compute cluster: worker cores, DMA core, scratchpad and caches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .core import SnitchCore
from .dma import DmaEngine
from .icache import InstructionCache
from .params import ClusterParams, CostModelParams, DEFAULT_CLUSTER, DEFAULT_COSTS
from .tcdm import Tcdm
from .trace import ClusterStats, CoreStats


@dataclass
class SnitchCluster:
    """A cluster of eight worker cores plus a DMA core and shared memories.

    Kernels drive the cluster by obtaining per-core accounting objects
    (:class:`~repro.arch.core.SnitchCore`), submitting DMA transfers and then
    calling :meth:`finalize` to combine everything into a
    :class:`~repro.arch.trace.ClusterStats` record.
    """

    params: ClusterParams = DEFAULT_CLUSTER
    costs: CostModelParams = DEFAULT_COSTS
    cores: List[SnitchCore] = field(init=False)
    dma: DmaEngine = field(init=False)
    tcdm: Tcdm = field(init=False)
    icache: InstructionCache = field(init=False)

    def __post_init__(self) -> None:
        self.cores = [
            SnitchCore(core_id=i, params=self.params, costs=self.costs)
            for i in range(self.params.num_worker_cores)
        ]
        self.dma = DmaEngine(params=self.params, costs=self.costs)
        self.tcdm = Tcdm(params=self.params)
        self.icache = InstructionCache(params=self.params, costs=self.costs)

    @property
    def num_cores(self) -> int:
        """Number of worker cores."""
        return self.params.num_worker_cores

    def reset(self) -> None:
        """Reset all per-kernel state (counters, DMA log, SPM allocations)."""
        for core in self.cores:
            core.reset()
        self.dma.reset()
        self.tcdm.reset()

    def core_stats(self) -> List[CoreStats]:
        """Snapshot of the per-core statistics."""
        return [core.stats for core in self.cores]

    def conflict_stall_factor(self, active_requesters: Optional[int] = None) -> float:
        """Bank-conflict slowdown for the given number of concurrently active cores."""
        if active_requesters is None:
            active_requesters = self.num_cores
        return self.tcdm.conflict_stall_factor(active_requesters)

    def finalize(self, label: str = "", dma_exposed_cycles: Optional[float] = None) -> ClusterStats:
        """Combine core and DMA accounting into a :class:`ClusterStats` record.

        ``dma_exposed_cycles`` is the portion of DMA time *not* hidden behind
        computation (the tiling planner computes it); if omitted, DMA time is
        assumed fully overlapped except when it exceeds the compute time.
        """
        stats = [core.stats for core in self.cores]
        compute_cycles = max((s.total_cycles for s in stats), default=0.0)
        dma_cycles = self.dma.total_cycles
        if dma_exposed_cycles is None:
            dma_exposed_cycles = max(0.0, dma_cycles - compute_cycles)
        total_cycles = compute_cycles + dma_exposed_cycles
        return ClusterStats(
            core_stats=[CoreStats(**vars(s)) for s in stats],
            dma_cycles=dma_cycles,
            dma_bytes=float(self.dma.total_bytes),
            dma_exposed_cycles=dma_exposed_cycles,
            total_cycles=total_cycles,
            label=label,
        )
