"""Behavioral model of the Snitch multi-core streaming cluster.

The package models the components of the architecture described in Section
II-B of the paper at the level of detail needed to reproduce its runtime,
utilization and energy results:

* :mod:`repro.arch.params`  — cluster geometry and cost-model coefficients.
* :mod:`repro.arch.ssr`     — stream registers (4-D affine and 1-D indirect).
* :mod:`repro.arch.frep`    — the FP repetition buffer (hardware loop).
* :mod:`repro.arch.fpu`     — SIMD FPU widths and latencies.
* :mod:`repro.arch.tcdm`    — the 128 KiB, 32-bank scratchpad and its
  conflict model.
* :mod:`repro.arch.icache`  — the shared instruction cache.
* :mod:`repro.arch.dma`     — the 512-bit DMA engine.
* :mod:`repro.arch.core`    — per-core cycle accounting with decoupled
  integer/FP pipelines.
* :mod:`repro.arch.cluster` — the eight worker cores plus DMA core.
* :mod:`repro.arch.trace`   — statistics records shared by all components.
"""

from .params import ClusterParams, CostModelParams, DEFAULT_CLUSTER, DEFAULT_COSTS
from .ssr import (
    AffineStreamConfig,
    IndirectStreamConfig,
    StreamRegister,
    StridedIndirectStreamConfig,
)
from .frep import FrepConfig, FrepUnit
from .fpu import FpuModel
from .tcdm import Tcdm, TcdmAllocationError
from .icache import InstructionCache
from .dma import DmaEngine, DmaTransfer
from .core import SnitchCore
from .cluster import SnitchCluster
from .trace import ClusterStats, CoreStats

__all__ = [
    "ClusterParams",
    "CostModelParams",
    "DEFAULT_CLUSTER",
    "DEFAULT_COSTS",
    "AffineStreamConfig",
    "IndirectStreamConfig",
    "StridedIndirectStreamConfig",
    "StreamRegister",
    "FrepConfig",
    "FrepUnit",
    "FpuModel",
    "Tcdm",
    "TcdmAllocationError",
    "InstructionCache",
    "DmaEngine",
    "DmaTransfer",
    "SnitchCore",
    "SnitchCluster",
    "ClusterStats",
    "CoreStats",
]
