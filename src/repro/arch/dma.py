"""DMA engine model.

A ninth core without FPU or SSRs programs a 512-bit DMA engine that moves
tiles between global memory and the cluster scratchpad.  With double
buffering the transfers overlap kernel computation; the model therefore
reports per-transfer cycle counts that the tiling planner compares against
compute time, and keeps byte counters for the energy model.

The engine also supports the 2-D (strided) transfers SpikeStream uses to
perform the im2row reshaping of the first layer's dense input on the fly
(Section III-F).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .params import ClusterParams, CostModelParams, DEFAULT_CLUSTER, DEFAULT_COSTS


@dataclass(frozen=True)
class DmaTransfer:
    """One programmed DMA transfer."""

    name: str
    bytes_moved: int
    rows: int = 1
    is_write_back: bool = False

    def __post_init__(self) -> None:
        if self.bytes_moved < 0:
            raise ValueError(f"bytes_moved must be non-negative, got {self.bytes_moved}")
        if self.rows <= 0:
            raise ValueError(f"rows must be positive, got {self.rows}")


@dataclass
class DmaEngine:
    """Cycle and byte accounting for the cluster DMA engine."""

    params: ClusterParams = DEFAULT_CLUSTER
    costs: CostModelParams = DEFAULT_COSTS
    transfers: List[DmaTransfer] = field(default_factory=list)

    def transfer_cycles(self, transfer: DmaTransfer) -> float:
        """Cycles needed to complete ``transfer``.

        Each row of a 2-D transfer pays the descriptor/setup cost once; the
        payload moves at the full bus width.  1-D transfers are the
        ``rows == 1`` special case.
        """
        payload_cycles = transfer.bytes_moved / self.costs.dma_bytes_per_cycle
        setup_cycles = self.costs.dma_setup_cycles * transfer.rows
        return payload_cycles + setup_cycles

    def submit(self, transfer: DmaTransfer) -> float:
        """Record a transfer and return its duration in cycles."""
        self.transfers.append(transfer)
        return self.transfer_cycles(transfer)

    def submit_1d(self, name: str, bytes_moved: int, is_write_back: bool = False) -> float:
        """Record a 1-D transfer."""
        return self.submit(DmaTransfer(name=name, bytes_moved=bytes_moved, is_write_back=is_write_back))

    def submit_2d(
        self, name: str, bytes_per_row: int, rows: int, is_write_back: bool = False
    ) -> float:
        """Record a 2-D (strided) transfer such as the im2row reshape."""
        return self.submit(
            DmaTransfer(
                name=name,
                bytes_moved=bytes_per_row * rows,
                rows=rows,
                is_write_back=is_write_back,
            )
        )

    @property
    def total_bytes(self) -> int:
        """Total payload bytes moved."""
        return sum(t.bytes_moved for t in self.transfers)

    @property
    def total_cycles(self) -> float:
        """Total DMA busy cycles across all transfers."""
        return sum(self.transfer_cycles(t) for t in self.transfers)

    @property
    def bytes_read(self) -> int:
        """Bytes moved from global memory into the SPM."""
        return sum(t.bytes_moved for t in self.transfers if not t.is_write_back)

    @property
    def bytes_written(self) -> int:
        """Bytes written back from the SPM to global memory."""
        return sum(t.bytes_moved for t in self.transfers if t.is_write_back)

    def reset(self) -> None:
        """Clear the transfer log."""
        self.transfers = []
