"""Cluster geometry and cost-model coefficients.

:class:`ClusterParams` captures the structural parameters of the Snitch
cluster evaluated in the paper (GF 12LP+, 1 GHz, 0.8 V): eight RV32G worker
cores with SIMD FPUs, three stream registers each (two of which support
indirect streams), a 128 KiB 32-bank scratchpad, an 8 KiB shared instruction
cache and a 512-bit DMA engine driven by a ninth core.

:class:`CostModelParams` holds the per-operation cycle coefficients of the
behavioral timing model.  They are derived from the instruction listings in
the paper (Listing 1) and from the micro-architectural behaviour of Snitch
described in the SSR/sparse-SSR publications; each coefficient documents the
reasoning behind its default value.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClusterParams:
    """Structural parameters of the Snitch compute cluster."""

    num_worker_cores: int = 8
    clock_hz: float = 1.0e9
    spm_bytes: int = 128 * 1024
    spm_banks: int = 32
    spm_word_bytes: int = 8
    icache_bytes: int = 8 * 1024
    icache_line_bytes: int = 32
    dma_bus_bits: int = 512
    num_stream_registers: int = 3
    num_indirect_stream_registers: int = 2
    max_affine_dims: int = 4
    fpu_register_bits: int = 64
    supported_index_bits: tuple = (8, 16, 32)

    def __post_init__(self) -> None:
        if self.num_worker_cores <= 0:
            raise ValueError("num_worker_cores must be positive")
        if self.num_indirect_stream_registers > self.num_stream_registers:
            raise ValueError("indirect stream registers cannot exceed total stream registers")
        if self.spm_bytes % (self.spm_banks * self.spm_word_bytes) != 0:
            raise ValueError("SPM size must be divisible by banks * word size")

    @property
    def cycle_time_s(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1.0 / self.clock_hz

    @property
    def dma_bus_bytes(self) -> int:
        """DMA bus width in bytes per cycle."""
        return self.dma_bus_bits // 8

    @property
    def bank_bytes(self) -> int:
        """Capacity of a single SPM bank."""
        return self.spm_bytes // self.spm_banks


@dataclass(frozen=True)
class CostModelParams:
    """Cycle coefficients of the behavioral performance model.

    The coefficients are expressed per *element* (one gathered weight word),
    per *SpVA* (one sparse vector accumulation at a spatial position), per
    *channel group* (SIMD-width output channels sharing an accumulator) and
    per *receptive field* (one output spatial position).
    """

    # --- Baseline (non-streaming) SpVA inner loop, Listing 1b -------------
    baseline_spva_instrs_per_element: int = 8
    """Instructions per gathered element in the baseline loop: lw, slli, add,
    fld, addi, addi, fadd, bne."""

    baseline_spva_stall_cycles_per_element: float = 4.0
    """Pipeline stalls per element on the single-issue core: the load-use
    stall after the index load (2 cycles of TCDM latency) and the taken-branch
    penalty of ``bne`` (2 cycles); the FP load latency is hidden by the
    pointer/counter increments.  The value matches the instruction-level
    executor in :mod:`repro.isa.executor`, which measures 12 cycles per
    element for Listing 1b."""

    baseline_spva_fp_instrs_per_element: int = 1
    """Useful FP instructions per element in the baseline (the SIMD add)."""

    # --- Streaming (SSR + frep) SpVA inner loop, Listing 1c ---------------
    streaming_cycles_per_element: float = 1.50
    """Cycles per gathered element when the indirect SSR drives the loop.
    Each element needs one 64-bit weight access plus a 16-bit index fetch
    (four indices share one SPM word) through the core's TCDM ports, and the
    accumulating ``fadd`` chain inserts occasional dependency bubbles.  The
    value is calibrated so that long-stream FPU utilization saturates in the
    55-60 % band reported for the deep S-VGG11 layers in Figure 3b."""

    streaming_fp_instrs_per_element: int = 1
    """FP instructions per element with streaming (one frep-issued add)."""

    stream_setup_int_instrs: int = 5
    """Integer instructions to configure the indirect SSR and frep for one
    SpVA (base address, index pointer, bound, repetition count)."""

    stream_startup_cycles: float = 3.0
    """Non-hidden pipeline fill/drain cycles at each SpVA stream boundary."""

    strided_indirect_cycles_per_element: float = 1.15
    """Cycles per gathered element with the *strided indirect* SSR extension
    the paper lists as future work: the index array is fetched once and
    replayed with a stride across the SIMD output-channel groups, so later
    group passes only pay for the weight-word access.  Used when a kernel is
    invoked with ``strided_indirect=True``."""

    # --- Shared outer-loop costs (Listing 1a) ------------------------------
    spva_address_calc_int_instrs: int = 6
    """Integer instructions to compute the spatial coordinate, stream base
    address and stream length for one SpVA."""

    rf_overhead_int_instrs: int = 12
    """Per-receptive-field overhead: workload-stealing atomic fetch of
    ``next_rf``, membrane-potential load and pointer bookkeeping."""

    group_overhead_int_instrs: int = 4
    """Per-channel-group overhead inside a receptive field (accumulator
    initialization and weight base-address update)."""

    activation_int_instrs_per_group: int = 8
    """Integer instructions of the fused LIF activation per channel group:
    SIMD thresholding mask extraction, branches and atomic updates of the
    compressed ofmap buffers."""

    activation_fp_instrs_per_group: int = 3
    """FP instructions of the fused activation per channel group: membrane
    decay multiply, threshold compare and reset subtract."""

    output_unpack_extra_iterations_fp8: int = 2
    """Extra bit-unpacking iterations needed after thresholding when running
    FP8 (the paper attributes the gap between the measured 1.71x and the
    ideal 2x FP8 speedup to these iterations)."""

    # --- Dense spike-encoding first layer (Section III-F) ------------------
    dense_baseline_instrs_per_mac: float = 3.5
    """Issue slots per (SIMD) multiply-accumulate of the baseline dense
    matmul: two operand loads, the fmadd and amortized loop control (the
    hardware loop removes part of the branch overhead even without SSRs)."""

    dense_baseline_stall_cycles_per_mac: float = 0.25
    """Average stalls per MAC in the baseline dense loop."""

    dense_streaming_cycles_per_mac: float = 1.60
    """Cycles per (SIMD) MAC with two affine SSRs feeding the FPU; both
    operand streams share the core's TCDM bandwidth, so throughput settles
    just below one MAC every two cycles (the paper measures 53.1 % FPU
    utilization for the streamed first layer)."""

    dense_rf_overhead_int_instrs: int = 10
    """Per-output-position overhead of the dense matmul (pointer setup and
    activation handling)."""

    # --- Fully connected layers --------------------------------------------
    fc_setup_int_instrs: int = 8
    """Per-output-group setup of the FC kernel (single SpVA per group)."""

    # --- Memory-system effects ---------------------------------------------
    icache_miss_penalty_cycles: float = 18.0
    """Cycles to refill one instruction cache line from global memory."""

    icache_cold_miss_lines: int = 24
    """Instruction cache lines touched by a kernel (cold misses per tile)."""

    icache_capacity_miss_rate: float = 0.0015
    """Residual per-instruction miss probability during steady state,
    responsible for part of the gap to the ideal speedup."""

    dma_setup_cycles: float = 20.0
    """Cycles to program one DMA transfer descriptor."""

    dma_bytes_per_cycle: float = 64.0
    """Payload bytes moved per cycle by the 512-bit DMA engine."""

    atomic_operation_cycles: float = 4.0
    """Latency of one atomic tagging operation of the workload-stealing
    scheduler."""

    def __post_init__(self) -> None:
        if self.streaming_cycles_per_element < 1.0:
            raise ValueError("streaming_cycles_per_element cannot be below 1 cycle")
        if self.baseline_spva_instrs_per_element < 1:
            raise ValueError("baseline_spva_instrs_per_element must be at least 1")

    @property
    def baseline_cycles_per_element(self) -> float:
        """Total baseline cycles per gathered element (instructions + stalls)."""
        return self.baseline_spva_instrs_per_element + self.baseline_spva_stall_cycles_per_element

    @property
    def dense_baseline_cycles_per_mac(self) -> float:
        """Total baseline cycles per dense SIMD MAC (instructions + stalls)."""
        return self.dense_baseline_instrs_per_mac + self.dense_baseline_stall_cycles_per_mac


DEFAULT_CLUSTER = ClusterParams()
"""The Snitch cluster configuration evaluated in the paper."""

DEFAULT_COSTS = CostModelParams()
"""Default cost-model coefficients."""
