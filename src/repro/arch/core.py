"""Per-core cycle accounting.

The Snitch worker core is a single-issue integer core that shares its issue
slot with FP instructions unless the FP subsystem runs autonomously from the
``frep`` repetition buffer with SSR-provided operands.  :class:`SnitchCore`
therefore exposes two accounting primitives:

* :meth:`SnitchCore.sequential_block` — instructions issued one per cycle by
  the integer core (the baseline kernels);
* :meth:`SnitchCore.decoupled_block` — an integer instruction stream and an
  FP/stream workload that proceed concurrently, costing the maximum of the
  two (the SpikeStream kernels).

Both update the same :class:`~repro.arch.trace.CoreStats` record, from which
FPU utilization and IPC are derived exactly as the paper reports them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .frep import FrepUnit
from .fpu import FpuModel
from .params import ClusterParams, CostModelParams, DEFAULT_CLUSTER, DEFAULT_COSTS
from .ssr import StreamRegister, make_core_stream_registers
from .trace import CoreStats


@dataclass
class SnitchCore:
    """Cycle-accounting model of one RV32G worker core with SSRs and frep."""

    core_id: int = 0
    params: ClusterParams = DEFAULT_CLUSTER
    costs: CostModelParams = DEFAULT_COSTS
    fpu: FpuModel = field(default_factory=FpuModel)
    frep: FrepUnit = field(default_factory=FrepUnit)
    stats: CoreStats = field(init=False)

    def __post_init__(self) -> None:
        self.stats = CoreStats(core_id=self.core_id)
        self.ssrs = make_core_stream_registers(self.params)

    # ------------------------------------------------------------------ #
    # Accounting primitives
    # ------------------------------------------------------------------ #
    def sequential_block(
        self,
        int_instructions: float = 0.0,
        fp_instructions: float = 0.0,
        stall_cycles: float = 0.0,
        spm_accesses: float = 0.0,
    ) -> float:
        """Account for a block issued sequentially by the integer core.

        Every instruction (integer or FP) occupies one issue cycle; stalls
        add on top.  Returns the cycles consumed.
        """
        self._check_non_negative(int_instructions, fp_instructions, stall_cycles, spm_accesses)
        cycles = int_instructions + fp_instructions + stall_cycles
        self.stats.int_instructions += int_instructions
        self.stats.fp_instructions += fp_instructions
        self.stats.fpu_busy_cycles += fp_instructions
        self.stats.stall_cycles += stall_cycles
        self.stats.spm_accesses += spm_accesses
        self.stats.total_cycles += cycles
        return cycles

    def decoupled_block(
        self,
        int_instructions: float = 0.0,
        fp_cycles: float = 0.0,
        fp_instructions: float = 0.0,
        sync_cycles: float = 0.0,
        spm_accesses: float = 0.0,
        ssr_spm_accesses: float = 0.0,
    ) -> float:
        """Account for a block where the FPU runs decoupled from the integer core.

        ``fp_cycles`` is the time the FP/stream subsystem needs (including
        stream stalls); ``fp_instructions`` of those cycles perform useful FP
        work.  The block costs ``max(int, fp) + sync`` cycles.
        """
        self._check_non_negative(
            int_instructions, fp_cycles, fp_instructions, sync_cycles, spm_accesses, ssr_spm_accesses
        )
        if fp_instructions > fp_cycles + 1e-9:
            raise ValueError("fp_instructions cannot exceed fp_cycles in a decoupled block")
        cycles = max(int_instructions, fp_cycles) + sync_cycles
        self.stats.int_instructions += int_instructions
        self.stats.fp_instructions += fp_instructions
        self.stats.fpu_busy_cycles += fp_instructions
        self.stats.stall_cycles += max(0.0, cycles - int_instructions - fp_instructions)
        self.stats.spm_accesses += spm_accesses
        self.stats.ssr_spm_accesses += ssr_spm_accesses
        self.stats.total_cycles += cycles
        return cycles

    def stall(self, cycles: float) -> float:
        """Account for pure stall cycles (i-cache misses, barriers, conflicts)."""
        self._check_non_negative(cycles)
        self.stats.stall_cycles += cycles
        self.stats.total_cycles += cycles
        return cycles

    def atomic_operation(self) -> float:
        """Account for one atomic tagging operation of the stealing scheduler."""
        cycles = self.costs.atomic_operation_cycles
        self.stats.atomic_operations += 1
        self.stats.int_instructions += 1
        self.stats.total_cycles += cycles
        self.stats.stall_cycles += max(0.0, cycles - 1)
        return cycles

    @staticmethod
    def _check_non_negative(*values: float) -> None:
        for value in values:
            if value < 0:
                raise ValueError(f"cycle/instruction counts must be non-negative, got {value}")

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def indirect_ssrs(self) -> list:
        """Stream registers supporting indirect streams."""
        return [ssr for ssr in self.ssrs if ssr.supports_indirect]

    def ssr(self, index: int) -> StreamRegister:
        """Return stream register ``index``."""
        return self.ssrs[index]

    def reset(self) -> None:
        """Clear all counters for a new kernel execution."""
        self.stats = CoreStats(core_id=self.core_id)
        self.fpu.reset()
        self.frep.reset()
        self.ssrs = make_core_stream_registers(self.params)
