"""Floating-point repetition buffer (``frep`` hardware loop).

The ``frep`` instruction marks a window of FP instructions that the FP
subsystem re-issues from a small buffer for a programmable number of
iterations, without any further involvement of the integer core.  Combined
with SSR operand streams this is what decouples the FPU from the integer
pipeline in SpikeStream's SpVA loop (Listing 1c).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FrepConfig:
    """One hardware-loop configuration: ``num_instructions`` repeated ``iterations`` times."""

    num_instructions: int
    iterations: int

    def __post_init__(self) -> None:
        if self.num_instructions <= 0:
            raise ValueError(f"num_instructions must be positive, got {self.num_instructions}")
        if self.iterations < 0:
            raise ValueError(f"iterations must be non-negative, got {self.iterations}")

    @property
    def total_fp_instructions(self) -> int:
        """FP instructions issued over the whole loop."""
        return self.num_instructions * self.iterations


class FrepUnit:
    """Tracks hardware-loop usage of one core.

    The unit reports how many FP issue slots a loop occupies and how many
    integer-core issue slots it saves compared to a software loop (which
    would need the loop-control and address instructions counted in the
    baseline cost model).
    """

    MAX_BUFFER_INSTRUCTIONS = 16

    def __init__(self) -> None:
        self.loops_executed = 0
        self.fp_instructions_issued = 0

    def execute(self, config: FrepConfig) -> int:
        """Run one hardware loop and return the FP instructions issued."""
        if config.num_instructions > self.MAX_BUFFER_INSTRUCTIONS:
            raise ValueError(
                f"frep buffer holds at most {self.MAX_BUFFER_INSTRUCTIONS} instructions, "
                f"got {config.num_instructions}"
            )
        self.loops_executed += 1
        issued = config.total_fp_instructions
        self.fp_instructions_issued += issued
        return issued

    def reset(self) -> None:
        """Clear the usage counters."""
        self.loops_executed = 0
        self.fp_instructions_issued = 0
