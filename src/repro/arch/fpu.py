"""SIMD floating-point unit model.

Each Snitch worker core has a 64-bit FPU that packs narrower formats into
SIMD lanes (2xFP32, 4xFP16, 8xFP8).  The model exposes the lane count used by
the data-parallelization optimization and simple latency/throughput figures
used by the cycle model and the instruction-level executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..types import Precision


@dataclass
class FpuModel:
    """Throughput/latency model of the SIMD FPU."""

    register_bits: int = 64
    add_latency: int = 3
    mul_latency: int = 3
    fma_latency: int = 4
    issue_rate: int = 1

    #: Dynamic counters of issued operations (per precision).
    ops_issued: Dict[Precision, int] = field(default_factory=dict)

    def simd_width(self, precision: Precision) -> int:
        """Number of elements processed per FPU instruction at ``precision``."""
        width = self.register_bits // precision.bits
        if width < 1:
            raise ValueError(
                f"precision {precision} wider than the {self.register_bits}-bit datapath"
            )
        return width

    def groups_for_channels(self, channels: int, precision: Precision) -> int:
        """Number of SIMD channel groups needed to cover ``channels`` outputs."""
        if channels <= 0:
            raise ValueError(f"channels must be positive, got {channels}")
        width = self.simd_width(precision)
        return (channels + width - 1) // width

    def issue(self, precision: Precision, count: int = 1) -> None:
        """Record ``count`` issued FPU instructions at ``precision``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self.ops_issued[precision] = self.ops_issued.get(precision, 0) + count

    @property
    def total_ops(self) -> int:
        """Total FPU instructions issued so far."""
        return sum(self.ops_issued.values())

    def elementwise_ops(self, precision: Precision) -> int:
        """Scalar-equivalent operations issued at ``precision`` (instr x lanes)."""
        return self.ops_issued.get(precision, 0) * self.simd_width(precision)

    def reset(self) -> None:
        """Clear the operation counters."""
        self.ops_issued = {}
