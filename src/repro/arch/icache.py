"""Shared instruction-cache model.

The cluster's 8 KiB shared L1 instruction cache easily holds the SpikeStream
kernels, so misses are dominated by cold misses at the start of each tile
plus a small residual (capacity/conflict) rate.  The paper attributes part of
the gap between the measured and ideal speedups to these misses.
"""

from __future__ import annotations

from dataclasses import dataclass

from .params import ClusterParams, CostModelParams, DEFAULT_CLUSTER, DEFAULT_COSTS


@dataclass
class InstructionCache:
    """Simple cold-miss + residual-miss instruction cache model."""

    params: ClusterParams = DEFAULT_CLUSTER
    costs: CostModelParams = DEFAULT_COSTS

    @property
    def capacity_lines(self) -> int:
        """Number of cache lines."""
        return self.params.icache_bytes // self.params.icache_line_bytes

    def kernel_fits(self, kernel_bytes: int) -> bool:
        """Whether a kernel's code footprint fits entirely in the cache."""
        return kernel_bytes <= self.params.icache_bytes

    def miss_cycles(self, instructions_executed: float, tiles: int = 1) -> float:
        """Estimated stall cycles caused by instruction fetch misses.

        ``tiles`` cold-start phases each touch ``icache_cold_miss_lines``
        lines; afterwards a small residual per-instruction miss rate applies.
        """
        if instructions_executed < 0:
            raise ValueError("instructions_executed must be non-negative")
        if tiles < 0:
            raise ValueError("tiles must be non-negative")
        cold = tiles * self.costs.icache_cold_miss_lines * self.costs.icache_miss_penalty_cycles
        steady = (
            instructions_executed
            * self.costs.icache_capacity_miss_rate
            * self.costs.icache_miss_penalty_cycles
        )
        return cold + steady
