"""Statistics records produced by the behavioral timing model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class CoreStats:
    """Cycle and instruction counters of a single worker core."""

    core_id: int = 0
    int_instructions: float = 0.0
    fp_instructions: float = 0.0
    total_cycles: float = 0.0
    fpu_busy_cycles: float = 0.0
    stall_cycles: float = 0.0
    spm_accesses: float = 0.0
    ssr_spm_accesses: float = 0.0
    atomic_operations: float = 0.0

    @property
    def instructions(self) -> float:
        """Total instructions retired (integer + FP)."""
        return self.int_instructions + self.fp_instructions

    @property
    def fpu_utilization(self) -> float:
        """Fraction of cycles during which the FPU performs useful work."""
        if self.total_cycles <= 0:
            return 0.0
        return min(1.0, self.fpu_busy_cycles / self.total_cycles)

    @property
    def ipc(self) -> float:
        """Instructions retired per cycle."""
        if self.total_cycles <= 0:
            return 0.0
        return self.instructions / self.total_cycles

    def merge(self, other: "CoreStats") -> "CoreStats":
        """Return the element-wise sum of two stat records (same core)."""
        return CoreStats(
            core_id=self.core_id,
            int_instructions=self.int_instructions + other.int_instructions,
            fp_instructions=self.fp_instructions + other.fp_instructions,
            total_cycles=self.total_cycles + other.total_cycles,
            fpu_busy_cycles=self.fpu_busy_cycles + other.fpu_busy_cycles,
            stall_cycles=self.stall_cycles + other.stall_cycles,
            spm_accesses=self.spm_accesses + other.spm_accesses,
            ssr_spm_accesses=self.ssr_spm_accesses + other.ssr_spm_accesses,
            atomic_operations=self.atomic_operations + other.atomic_operations,
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary form of the counters plus derived metrics."""
        return {
            "core_id": self.core_id,
            "int_instructions": self.int_instructions,
            "fp_instructions": self.fp_instructions,
            "total_cycles": self.total_cycles,
            "fpu_busy_cycles": self.fpu_busy_cycles,
            "stall_cycles": self.stall_cycles,
            "spm_accesses": self.spm_accesses,
            "ssr_spm_accesses": self.ssr_spm_accesses,
            "atomic_operations": self.atomic_operations,
            "fpu_utilization": self.fpu_utilization,
            "ipc": self.ipc,
        }


@dataclass
class ClusterStats:
    """Aggregate statistics of one kernel execution on the whole cluster."""

    core_stats: List[CoreStats] = field(default_factory=list)
    dma_cycles: float = 0.0
    dma_bytes: float = 0.0
    dma_exposed_cycles: float = 0.0
    total_cycles: float = 0.0
    label: str = ""

    @property
    def num_cores(self) -> int:
        """Number of worker cores that contributed statistics."""
        return len(self.core_stats)

    @property
    def compute_cycles(self) -> float:
        """Critical-path compute cycles (slowest worker core)."""
        if not self.core_stats:
            return 0.0
        return max(stats.total_cycles for stats in self.core_stats)

    @property
    def fpu_utilization(self) -> float:
        """Average FPU utilization over the worker cores, relative to total runtime."""
        if not self.core_stats or self.total_cycles <= 0:
            return 0.0
        busy = sum(stats.fpu_busy_cycles for stats in self.core_stats)
        return min(1.0, busy / (self.total_cycles * self.num_cores))

    @property
    def ipc(self) -> float:
        """Average per-core instructions per cycle, relative to total runtime."""
        if not self.core_stats or self.total_cycles <= 0:
            return 0.0
        instructions = sum(stats.instructions for stats in self.core_stats)
        return instructions / (self.total_cycles * self.num_cores)

    @property
    def total_instructions(self) -> float:
        """Total instructions retired across the cluster."""
        return sum(stats.instructions for stats in self.core_stats)

    @property
    def total_fp_instructions(self) -> float:
        """Total FP instructions retired across the cluster."""
        return sum(stats.fp_instructions for stats in self.core_stats)

    @property
    def total_spm_accesses(self) -> float:
        """Total scratchpad accesses (core loads/stores plus SSR streams)."""
        return sum(stats.spm_accesses + stats.ssr_spm_accesses for stats in self.core_stats)

    def runtime_seconds(self, clock_hz: float) -> float:
        """Wall-clock runtime at the given clock frequency."""
        return self.total_cycles / clock_hz

    def merge(self, other: "ClusterStats", label: Optional[str] = None) -> "ClusterStats":
        """Concatenate two executions (e.g. consecutive layers) sequentially."""
        if self.num_cores and other.num_cores and self.num_cores != other.num_cores:
            raise ValueError("cannot merge ClusterStats with different core counts")
        if not self.core_stats:
            merged_cores = [CoreStats(**vars(s)) for s in other.core_stats]
        elif not other.core_stats:
            merged_cores = [CoreStats(**vars(s)) for s in self.core_stats]
        else:
            merged_cores = [a.merge(b) for a, b in zip(self.core_stats, other.core_stats)]
        return ClusterStats(
            core_stats=merged_cores,
            dma_cycles=self.dma_cycles + other.dma_cycles,
            dma_bytes=self.dma_bytes + other.dma_bytes,
            dma_exposed_cycles=self.dma_exposed_cycles + other.dma_exposed_cycles,
            total_cycles=self.total_cycles + other.total_cycles,
            label=label if label is not None else (self.label or other.label),
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of the aggregate metrics."""
        return {
            "label": self.label,
            "total_cycles": self.total_cycles,
            "compute_cycles": self.compute_cycles,
            "dma_cycles": self.dma_cycles,
            "dma_exposed_cycles": self.dma_exposed_cycles,
            "dma_bytes": self.dma_bytes,
            "fpu_utilization": self.fpu_utilization,
            "ipc": self.ipc,
            "total_instructions": self.total_instructions,
            "total_fp_instructions": self.total_fp_instructions,
            "total_spm_accesses": self.total_spm_accesses,
        }
