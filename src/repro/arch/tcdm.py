"""Tightly-coupled data memory (SPM) model.

The cluster shares a 128 KiB, 32-bank scratchpad reached through a
single-cycle logarithmic interconnect.  Two aspects matter for SpikeStream:

* buffer allocation — kernels must fit their double-buffered ifmap, weight
  and worst-case ofmap tiles into the SPM, and
* bank conflicts — the random access pattern of indirect weight gathers from
  eight cores occasionally collides on a bank, adding stall cycles that are
  part of the gap to the ideal speedup reported in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .params import ClusterParams, DEFAULT_CLUSTER


class TcdmAllocationError(RuntimeError):
    """Raised when a buffer does not fit into the scratchpad."""


@dataclass
class TcdmBuffer:
    """A named, contiguous SPM allocation."""

    name: str
    offset: int
    size_bytes: int

    @property
    def end(self) -> int:
        """One-past-the-end byte offset of the buffer."""
        return self.offset + self.size_bytes


class Tcdm:
    """Scratchpad memory with a simple bump allocator and a conflict model."""

    def __init__(self, params: ClusterParams = DEFAULT_CLUSTER):
        self.params = params
        self._cursor = 0
        self._buffers: Dict[str, TcdmBuffer] = {}
        self.total_accesses = 0

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    @property
    def capacity_bytes(self) -> int:
        """Total scratchpad capacity."""
        return self.params.spm_bytes

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return self._cursor

    @property
    def free_bytes(self) -> int:
        """Bytes still available."""
        return self.capacity_bytes - self._cursor

    def allocate(self, name: str, size_bytes: int, align: int = 8) -> TcdmBuffer:
        """Allocate a named buffer, raising :class:`TcdmAllocationError` if full."""
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be non-negative, got {size_bytes}")
        if name in self._buffers:
            raise ValueError(f"buffer {name!r} already allocated")
        offset = (self._cursor + align - 1) // align * align
        if offset + size_bytes > self.capacity_bytes:
            raise TcdmAllocationError(
                f"buffer {name!r} of {size_bytes} B does not fit: "
                f"{self.free_bytes} B free of {self.capacity_bytes} B"
            )
        buffer = TcdmBuffer(name=name, offset=offset, size_bytes=size_bytes)
        self._buffers[name] = buffer
        self._cursor = offset + size_bytes
        return buffer

    def buffer(self, name: str) -> TcdmBuffer:
        """Look up a previously allocated buffer."""
        return self._buffers[name]

    def buffers(self) -> List[TcdmBuffer]:
        """All allocated buffers in allocation order."""
        return sorted(self._buffers.values(), key=lambda b: b.offset)

    def reset(self) -> None:
        """Free all buffers (start of a new tile phase)."""
        self._cursor = 0
        self._buffers = {}

    # ------------------------------------------------------------------ #
    # Bank-conflict model
    # ------------------------------------------------------------------ #
    def bank_of(self, address: int) -> int:
        """Bank index addressed by a byte address (word-interleaved mapping)."""
        word = address // self.params.spm_word_bytes
        return int(word % self.params.spm_banks)

    def conflict_stall_factor(self, active_requesters: int) -> float:
        """Expected slowdown factor for random accesses from ``active_requesters`` cores.

        With ``k`` requesters uniformly addressing ``N`` banks each cycle, the
        expected number of banks serving a request is
        ``N * (1 - (1 - 1/N)**k)``, so the sustained per-requester throughput
        is that quantity divided by ``k``; the stall factor is its inverse.
        A single requester therefore never stalls (factor 1.0).
        """
        if active_requesters <= 0:
            raise ValueError(f"active_requesters must be positive, got {active_requesters}")
        banks = self.params.spm_banks
        served = banks * (1.0 - (1.0 - 1.0 / banks) ** active_requesters)
        throughput_per_requester = served / active_requesters
        return 1.0 / throughput_per_requester

    def record_accesses(self, count: int) -> None:
        """Account for ``count`` SPM accesses (used by the energy model)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        self.total_accesses += count
