"""Declarative sweep plans: parameter spaces, sweep specs and plan execution.

This module is the "describe the experiment as data" half of the evaluation
surface.  Historically every sweep was a hand-written pair of functions
(point generator + point runner) hard-wired into a ``SWEEPS`` table, so
adding a scenario meant editing three modules and the CLI.  A sweep is now
*data*:

* :class:`ParameterSpace` — named axes composed by grid (cartesian
  product), zip (parallel iteration), chain (concatenation) and product
  (grid composition of two spaces).  Spaces are immutable; overriding one
  axis' values (:meth:`ParameterSpace.with_axis`) returns a new space.
* :class:`SweepSpec` — a space plus a point function, a row schema, seeding
  policy and headline finalizer.  The spec is all a backend needs to run
  the sweep; the five legacy sweeps are plain ``SweepSpec`` instances in
  :data:`repro.eval.runner.SWEEPS`.
* :func:`iter_plan` / :func:`collect_plan` — execute a spec on any
  :class:`repro.backends.ExecutionBackend`, streaming
  :class:`PlanRow` objects as points complete (``iter_plan``) or
  assembling the canonical :class:`~repro.eval.experiments.ExperimentResult`
  (``collect_plan``).

Execution strategy lives entirely behind the backend object, so the same
spec runs serially, on a thread/process pool, or sharded across N
:class:`~repro.session.Session` workers without changing a line of its
definition::

    spec = SweepSpec(
        name="my_sweep",
        space=ParameterSpace.grid(rate=(0.1, 0.2, 0.4), precision=("fp16",)),
        point=my_point_function,          # task dict -> row dict
        row_schema=("rate", "speedup"),
    )
    result = collect_plan(spec, SerialBackend())

Determinism contract: every point derives its own seed from the base seed,
the sweep name and its parameters (:func:`point_seed`), so rows never
depend on evaluation order, on which subset of points is requested, or on
which backend/shard executed them.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import sys
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .utils.serialization import atomic_write_text, canonical_json

__all__ = [
    "ParameterSpace",
    "PlanRow",
    "ResultsCache",
    "SweepSpec",
    "collect_plan",
    "iter_plan",
    "point_seed",
]

_SEED_SPACE = 2**63 - 1


def point_seed(base_seed: int, sweep: str, params: Mapping[str, object]) -> int:
    """Deterministic per-point seed derived from the base seed and the point.

    The derivation hashes the sweep name and the *sorted* parameter items,
    so the seed of a point never depends on where it appears in the sweep or
    on which other points run alongside it.
    """
    payload = json.dumps([sweep, sorted(params.items())], sort_keys=True, default=str)
    digest = hashlib.sha256(f"{base_seed}:{payload}".encode()).digest()
    return int.from_bytes(digest[:8], "little") % _SEED_SPACE


# --------------------------------------------------------------------------- #
# Results cache (sweep-point rows)
# --------------------------------------------------------------------------- #
class ResultsCache:
    """Memoized sweep-point rows keyed on (config, seed, batch, sweep point).

    The cache is an in-memory dictionary, optionally backed by a JSON file:
    pass ``path`` to load previously persisted rows on construction and call
    :meth:`save` (the plan executor does) to persist new ones.

    Thread safety: one cache is shared by every worker of a threaded
    backend and by concurrent serve requests resolving against the same
    session, so every access to the row dict, the dirty flag and the
    hit/miss counters holds ``_lock``.  ``merge_from`` snapshots the other
    cache under *its* lock before touching this one — the two locks are
    never held together, so opposite-direction merges cannot deadlock.
    """

    def __init__(self, path: Optional[Path] = None):
        self.path = Path(path) if path is not None else None
        self._lock = threading.RLock()
        self._rows: Dict[str, Dict[str, object]] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        if self.path is not None and self.path.exists():
            try:
                rows = json.loads(self.path.read_text())
                if not isinstance(rows, dict):
                    raise ValueError("cache root must be a JSON object")
                kept = {k: v for k, v in rows.items() if isinstance(v, dict)}
                if len(kept) != len(rows):
                    print(
                        f"warning: dropped {len(rows) - len(kept)} malformed "
                        f"entr(y/ies) from results cache {self.path}",
                        file=sys.stderr,
                    )
                self._rows = kept
            except (ValueError, OSError) as error:
                # A cache is disposable: a corrupt/unreadable file means the
                # points re-run, it must never crash the sweep.
                print(
                    f"warning: ignoring unreadable results cache {self.path}: {error}",
                    file=sys.stderr,
                )
                self._rows = {}

    @staticmethod
    def key(
        sweep: str,
        params: Mapping[str, object],
        seed: int,
        batch_size: int,
        config: Optional[Mapping[str, object]] = None,
    ) -> str:
        """Stable string key of one sweep point under one configuration."""
        payload = {
            "sweep": sweep,
            "params": sorted(params.items()),
            "seed": seed,
            "batch": batch_size,
            "config": sorted((config or {}).items()),
        }
        # The same canonical encoder serializes keys and the persisted rows
        # (see save()), so equal parameters can never encode differently
        # between the two paths.
        return canonical_json(payload)

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """Cached row for ``key``, or None (updates hit/miss counters)."""
        with self._lock:
            row = self._rows.get(key)
            if row is None:
                self.misses += 1
                return None
            self.hits += 1
            return dict(row)

    def put(self, key: str, row: Mapping[str, object]) -> None:
        """Store one row under ``key``."""
        with self._lock:
            self._rows[key] = dict(row)
            self._dirty = True

    def merge_from(self, other: "ResultsCache") -> int:
        """Adopt every row of ``other`` this cache does not hold yet.

        Used by :class:`repro.backends.ShardedBackend` to fold the row
        caches of its worker sessions back into the dispatching session's
        cache.  Existing entries win (both sides computed them under the
        same key, so they are interchangeable); returns the number of newly
        adopted rows.
        """
        # Snapshot under the *other* cache's lock, merge under ours —
        # sequential acquisition, so two caches merging from each other on
        # different threads cannot deadlock on lock order.
        with other._lock:
            snapshot = list(other._rows.items())
        added = 0
        with self._lock:
            for key, row in snapshot:
                if key not in self._rows:
                    self._rows[key] = dict(row)
                    self._dirty = True
                    added += 1
        return added

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def save(self) -> None:
        """Persist the cache to its JSON file (no-op for in-memory caches).

        The write is atomic (temp file in the same directory, then
        ``os.replace``), so an interrupted sweep can never leave a
        half-written file that a later load would have to discard.  Like the
        load path, a failure to persist is reported but never raised: the
        sweep's results have already been computed and must still reach the
        caller.
        """
        with self._lock:
            if self.path is None or not self._dirty:
                return
            payload = canonical_json(self._rows)
        try:
            atomic_write_text(self.path, payload)
            with self._lock:
                self._dirty = False
        except OSError as error:
            print(
                f"warning: could not persist results cache {self.path}: {error}",
                file=sys.stderr,
            )


# --------------------------------------------------------------------------- #
# Parameter spaces
# --------------------------------------------------------------------------- #
def _normalize_values(values: object) -> Tuple[object, ...]:
    """A tuple of axis values; scalars (including strings) become one value."""
    if isinstance(values, (str, bytes)) or not isinstance(values, Iterable):
        return (values,)
    return tuple(values)


class ParameterSpace:
    """Immutable, composable set of named sweep axes.

    Construct leaf spaces with :meth:`grid` (cartesian product of axes, the
    last axis varying fastest) or :meth:`zipped` (parallel iteration over
    equal-length axes), then compose:

    * ``a + b`` — :meth:`chain`: the points of ``a`` followed by those of
      ``b`` (axes may differ);
    * ``a * b`` — :meth:`product`: grid composition, every point of ``a``
      merged with every point of ``b`` (axes must be disjoint).

    :meth:`points` materializes the canonical point order shared by every
    execution backend; :meth:`with_axis` returns a new space with one axis'
    values replaced wherever that axis appears.
    """

    def points(self) -> List[Dict[str, object]]:
        raise NotImplementedError

    def axis_names(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def with_axis(self, name: str, values: object) -> "ParameterSpace":
        raise NotImplementedError

    # -- constructors --------------------------------------------------------
    @staticmethod
    def grid(**axes: object) -> "ParameterSpace":
        """Cartesian product of the given axes (last axis varies fastest)."""
        return _GridSpace(axes)

    @staticmethod
    def zipped(**axes: object) -> "ParameterSpace":
        """Parallel iteration over equal-length axes (like :func:`zip`)."""
        return _ZipSpace(axes)

    # -- composition ---------------------------------------------------------
    def chain(self, other: "ParameterSpace") -> "ParameterSpace":
        """This space's points followed by ``other``'s."""
        return _ChainSpace((self, other))

    def product(self, other: "ParameterSpace") -> "ParameterSpace":
        """Grid composition: every point of ``self`` merged with every point
        of ``other``; the two spaces must not share axis names."""
        return _ProductSpace(self, other)

    __add__ = chain
    __mul__ = product

    def __len__(self) -> int:
        return len(self.points())

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self.points())

    def describe(self) -> str:
        """Compact human-readable axis summary, e.g. ``rate x6 · cores x4``."""
        raise NotImplementedError


class _GridSpace(ParameterSpace):
    def __init__(self, axes: Mapping[str, object]):
        if not axes:
            raise ValueError("a grid space needs at least one axis")
        self._axes = {name: _normalize_values(values) for name, values in axes.items()}
        for name, values in self._axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")

    def points(self) -> List[Dict[str, object]]:
        names = list(self._axes)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*self._axes.values())
        ]

    def axis_names(self) -> Tuple[str, ...]:
        return tuple(self._axes)

    def with_axis(self, name: str, values: object) -> "ParameterSpace":
        if name not in self._axes:
            raise KeyError(f"unknown axis {name!r}; space has {self.axis_names()}")
        axes = dict(self._axes)
        axes[name] = values
        return _GridSpace(axes)

    def describe(self) -> str:
        return " · ".join(f"{name} x{len(values)}" for name, values in self._axes.items())


class _ZipSpace(ParameterSpace):
    def __init__(self, axes: Mapping[str, object]):
        if not axes:
            raise ValueError("a zip space needs at least one axis")
        self._axes = {name: _normalize_values(values) for name, values in axes.items()}
        lengths = {len(values) for values in self._axes.values()}
        if len(lengths) != 1:
            raise ValueError(
                "zipped axes must have equal lengths, got "
                + ", ".join(f"{n}:{len(v)}" for n, v in self._axes.items())
            )

    def points(self) -> List[Dict[str, object]]:
        names = list(self._axes)
        return [dict(zip(names, combo)) for combo in zip(*self._axes.values())]

    def axis_names(self) -> Tuple[str, ...]:
        return tuple(self._axes)

    def with_axis(self, name: str, values: object) -> "ParameterSpace":
        if name not in self._axes:
            raise KeyError(f"unknown axis {name!r}; space has {self.axis_names()}")
        axes = dict(self._axes)
        axes[name] = values
        return _ZipSpace(axes)

    def describe(self) -> str:
        return "zip(" + " · ".join(
            f"{name} x{len(values)}" for name, values in self._axes.items()
        ) + ")"


class _ChainSpace(ParameterSpace):
    def __init__(self, parts: Sequence[ParameterSpace]):
        flat: List[ParameterSpace] = []
        for part in parts:
            if isinstance(part, _ChainSpace):
                flat.extend(part._parts)
            else:
                flat.append(part)
        self._parts = tuple(flat)

    def points(self) -> List[Dict[str, object]]:
        return [point for part in self._parts for point in part.points()]

    def axis_names(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for part in self._parts:
            for name in part.axis_names():
                if name not in seen:
                    seen.append(name)
        return tuple(seen)

    def with_axis(self, name: str, values: object) -> "ParameterSpace":
        if name not in self.axis_names():
            raise KeyError(f"unknown axis {name!r}; space has {self.axis_names()}")
        # The override applies to every chained part carrying the axis;
        # parts without it keep their points unchanged.
        parts = [
            part.with_axis(name, values) if name in part.axis_names() else part
            for part in self._parts
        ]
        return _ChainSpace(parts)

    def describe(self) -> str:
        return " + ".join(part.describe() for part in self._parts)


class _ProductSpace(ParameterSpace):
    def __init__(self, left: ParameterSpace, right: ParameterSpace):
        overlap = set(left.axis_names()) & set(right.axis_names())
        if overlap:
            raise ValueError(f"product spaces share axes {sorted(overlap)}")
        self._left = left
        self._right = right

    def points(self) -> List[Dict[str, object]]:
        right_points = self._right.points()
        return [
            {**lp, **rp} for lp in self._left.points() for rp in right_points
        ]

    def axis_names(self) -> Tuple[str, ...]:
        return self._left.axis_names() + self._right.axis_names()

    def with_axis(self, name: str, values: object) -> "ParameterSpace":
        if name in self._left.axis_names():
            return _ProductSpace(self._left.with_axis(name, values), self._right)
        if name in self._right.axis_names():
            return _ProductSpace(self._left, self._right.with_axis(name, values))
        raise KeyError(f"unknown axis {name!r}; space has {self.axis_names()}")

    def describe(self) -> str:
        return f"({self._left.describe()}) * ({self._right.describe()})"


# --------------------------------------------------------------------------- #
# Sweep specification
# --------------------------------------------------------------------------- #
def _no_headline(rows, tasks, run_cached) -> Dict[str, float]:
    return {}


#: Point parameters that configure the *computation*, not the random input
#: data.  Specs exclude them from the per-point seed derivation so that e.g.
#: every core count costs the same spike-count map (strong scaling) and
#: every precision runs the same random batch (matched-data speedups).
DEFAULT_COMPUTE_PARAMS = ("cores", "precision")


@dataclass(frozen=True)
class SweepSpec:
    """One declarative sweep: a parameter space plus its point function.

    ``point`` is called with a *task* dictionary (the point's parameters
    plus the derived ``seed`` and ``batch``) and returns one row
    dictionary; it must be a top-level function so process pools and shard
    workers can pickle it.  ``finalize`` receives the collected rows, the
    executed task dicts and a ``run_cached`` callable evaluating one extra
    point through the results cache; it returns the headline and may add
    derived columns to the rows.

    ``kwarg_axes`` maps user-facing keyword parameters (e.g. ``rates=``)
    onto axis names (``rate``); scalars pin an axis to a single value,
    sequences replace its value list.  ``normalize`` coerces axis values
    (e.g. ``float``) so overrides hit the same cache keys as defaults.
    """

    name: str
    space: ParameterSpace
    point: Callable[[Dict[str, object]], Dict[str, object]]
    description: str = ""
    row_schema: Tuple[str, ...] = ()
    finalize: Callable[
        [
            List[Dict[str, object]],
            List[Dict[str, object]],
            Callable[[Dict[str, object]], Dict[str, object]],
        ],
        Dict[str, float],
    ] = _no_headline
    #: whether points consume randomness (False keeps the seed out of the
    #: cache key and skips per-point seed derivation)
    seeded: bool = True
    #: whether points consume the batch size (False keeps it out of the key)
    uses_batch: bool = False
    compute_params: Tuple[str, ...] = DEFAULT_COMPUTE_PARAMS
    kwarg_axes: Mapping[str, str] = field(default_factory=dict)
    normalize: Mapping[str, Callable[[object], object]] = field(default_factory=dict)

    # -- the parameter space -------------------------------------------------
    def resolve_space(self, **point_kwargs) -> ParameterSpace:
        """The spec's space with any keyword overrides applied.

        Unknown keywords raise :class:`TypeError` (mirroring a misspelled
        function keyword), so ``rates=`` typos fail loudly instead of
        silently sweeping the defaults.
        """
        space = self.space
        for keyword, values in point_kwargs.items():
            axis = self.kwarg_axes.get(keyword)
            if axis is None:
                accepted = ", ".join(sorted(self.kwarg_axes)) or "(none)"
                raise TypeError(
                    f"sweep {self.name!r} got an unexpected point parameter "
                    f"{keyword!r}; accepted: {accepted}"
                )
            space = space.with_axis(axis, values)
        return space

    def points(self, **point_kwargs) -> List[Dict[str, object]]:
        """Materialized, normalized point parameter dictionaries."""
        raw = self.resolve_space(**point_kwargs).points()
        if not self.normalize:
            return raw
        return [
            {
                name: (self.normalize[name](value) if name in self.normalize else value)
                for name, value in params.items()
            }
            for params in raw
        ]

    # -- seeding and cache keys ----------------------------------------------
    def task_seed(self, base_seed: int, params: Mapping[str, object]) -> int:
        """Per-point seed; compute-only parameters share one data seed."""
        if not self.seeded:
            return base_seed
        seed_params = {
            key: value for key, value in params.items()
            if key not in self.compute_params
        }
        return point_seed(base_seed, self.name, seed_params)

    def task(self, params: Mapping[str, object], seed: int, batch_size: int) -> Dict[str, object]:
        """The executable task dict of one point (params + seed + batch)."""
        task = dict(params)
        task["seed"] = self.task_seed(seed, params)
        task["batch"] = batch_size
        return task

    def cache_key(self, params: Mapping[str, object], seed: int, batch_size: int) -> str:
        """Row-cache key; only knobs the sweep consumes enter the key, so
        deterministic sweeps hit regardless of ``--seed`` and model-only
        sweeps hit regardless of ``--batch``."""
        key_seed = seed if self.seeded else 0
        key_batch = batch_size if self.uses_batch else 0
        return ResultsCache.key(self.name, params, key_seed, key_batch)

    def describe(self) -> Dict[str, object]:
        """Name, axis summary, point count and accepted keywords."""
        return {
            "name": self.name,
            "axes": self.space.describe(),
            "points": len(self.space),
            "parameters": tuple(sorted(self.kwarg_axes)),
            "columns": self.row_schema,
            "seeded": self.seeded,
            "description": self.description,
        }


# --------------------------------------------------------------------------- #
# Plan execution
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PlanRow:
    """One streamed sweep row: canonical index, point parameters, the row,
    and whether it was served from the results cache."""

    index: int
    params: Dict[str, object]
    row: Dict[str, object]
    cached: bool = False


def iter_plan(
    spec: SweepSpec,
    backend,
    seed: int = 2025,
    batch_size: int = 4,
    cache: Optional[ResultsCache] = None,
    point_kwargs: Optional[Mapping[str, object]] = None,
) -> Iterator[PlanRow]:
    """Stream a spec's rows as the backend completes them.

    Cache hits are yielded first (in canonical order, marked
    ``cached=True``); the remaining points stream back in *completion*
    order, each carrying its canonical ``index`` so consumers can
    reassemble the deterministic row order at any time.  Fresh rows enter
    the cache as they arrive, but the cache is **not** saved here — callers
    that own a file-backed cache save once at the end
    (:func:`collect_plan` and :meth:`repro.session.Session.run_plan` do).
    """
    points = spec.points(**(point_kwargs or {}))
    tasks = [spec.task(params, seed, batch_size) for params in points]
    keys = [spec.cache_key(params, seed, batch_size) for params in points]
    backend.bind(cache=cache)

    pending: List[int] = []
    for index in range(len(tasks)):
        if cache is not None:
            hit = cache.get(keys[index])
            if hit is not None:
                yield PlanRow(index, dict(points[index]), hit, cached=True)
                continue
        pending.append(index)

    if not pending:
        return
    sub_tasks = [tasks[i] for i in pending]
    sub_keys = [keys[i] for i in pending]
    for local_index, row in backend.execute(spec.point, sub_tasks, keys=sub_keys):
        index = pending[local_index]
        if cache is not None:
            cache.put(keys[index], row)
        yield PlanRow(index, dict(points[index]), dict(row), cached=False)


def collect_plan(
    spec: SweepSpec,
    backend,
    seed: int = 2025,
    batch_size: int = 4,
    cache: Optional[ResultsCache] = None,
    point_kwargs: Optional[Mapping[str, object]] = None,
) -> "ExperimentResult":
    """Run a spec to completion and assemble the canonical result.

    Rows are ordered by their canonical point index (identical across every
    backend), the spec's ``finalize`` computes the headline (and may add
    derived columns), and a file-backed cache is saved exactly once — in a
    ``finally`` block, so freshly computed rows survive a failing finalize.
    """
    # Imported here, not at module level: eval.runner imports this module to
    # define the built-in specs, so a top-level eval import would be cyclic.
    from .eval.experiments import ExperimentResult

    points = spec.points(**(point_kwargs or {}))
    tasks = [spec.task(params, seed, batch_size) for params in points]
    rows: List[Optional[Dict[str, object]]] = [None] * len(points)

    def run_cached(params: Dict[str, object]) -> Dict[str, object]:
        """Evaluate one extra point through the same cache as the sweep points."""
        key = spec.cache_key(params, seed, batch_size)
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                return hit
        row = spec.point(spec.task(params, seed, batch_size))
        if cache is not None:
            cache.put(key, row)
        return row

    try:
        for plan_row in iter_plan(
            spec, backend, seed=seed, batch_size=batch_size,
            cache=cache, point_kwargs=point_kwargs,
        ):
            rows[plan_row.index] = plan_row.row
        # Narrow List[Optional[...]] -> List[...]: iter_plan yields every
        # index exactly once, so a leftover None here is a backend bug worth
        # a loud error rather than a downstream TypeError.
        unfilled = [index for index, row in enumerate(rows) if row is None]
        if unfilled:
            raise RuntimeError(
                f"sweep {spec.name!r}: backend yielded no row for point "
                f"index(es) {unfilled}"
            )
        filled: List[Dict[str, object]] = [row for row in rows if row is not None]
        headline = spec.finalize(filled, tasks, run_cached)
        if spec.row_schema:
            for row in filled:
                missing = [column for column in spec.row_schema if column not in row]
                if missing:
                    raise ValueError(
                        f"sweep {spec.name!r} produced a row missing declared "
                        f"column(s) {missing}: {sorted(row)}"
                    )
    finally:
        # One save at the very end covers the sweep points *and* any extra
        # finalize anchors, instead of rewriting the file once per addition;
        # saving in a finally block keeps freshly computed rows persisted
        # even when finalize (or its anchor point) raises.
        if cache is not None:
            cache.save()
    # Named distinctly from the sequential sweeps: the per-point seeding
    # produces different (order-independent) draws than the shared-RNG
    # sequential functions, so results keyed by name must never mix.
    return ExperimentResult(
        name=f"parallel_{spec.name}_sweep",
        figure="sweep",
        rows=filled,
        headline=headline,
    )
