"""Global configuration objects for a SpikeStream run.

A :class:`RunConfig` collects the knobs that the evaluation section of the
paper sweeps: numeric precision, which optimizations are enabled, the batch of
input frames, and the random seed used to generate synthetic data.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping

from .types import OptimizationFlag, Precision
from .utils.serialization import canonical_json


@dataclass(frozen=True)
class RunConfig:
    """Configuration of a single inference experiment.

    Parameters
    ----------
    precision:
        Numeric precision of weights and accumulations.
    optimizations:
        Set of enabled SpikeStream optimizations.  The paper's baseline is
        ``OptimizationFlag.baseline()`` and the full technique is
        ``OptimizationFlag.spikestream()``.
    batch_size:
        Number of input frames evaluated; the paper uses 128 and reports mean
        and standard deviation across the batch.
    timesteps:
        Number of SNN timesteps per frame.  The main evaluation uses a
        single-timestep S-VGG11; the accelerator comparison uses 500.
    seed:
        Seed for synthetic data generation.
    index_bytes:
        Width of compressed-format indices in bytes (16-bit in the paper).
    """

    precision: Precision = Precision.FP16
    optimizations: OptimizationFlag = field(default_factory=OptimizationFlag.spikestream)
    batch_size: int = 128
    timesteps: int = 1
    seed: int = 2025
    index_bytes: int = 2

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.timesteps <= 0:
            raise ValueError(f"timesteps must be positive, got {self.timesteps}")
        if self.index_bytes not in (1, 2, 4):
            raise ValueError(f"index_bytes must be 1, 2 or 4, got {self.index_bytes}")

    @property
    def streaming_enabled(self) -> bool:
        """Whether the SA optimization (stream registers + frep) is active."""
        return bool(self.optimizations & OptimizationFlag.STREAMING_ACCELERATION)

    @property
    def simd_width(self) -> int:
        """SIMD lanes available at the configured precision."""
        return self.precision.simd_width

    def with_precision(self, precision: Precision) -> "RunConfig":
        """Return a copy of this configuration with a different precision."""
        return replace(self, precision=precision)

    def with_optimizations(self, optimizations: OptimizationFlag) -> "RunConfig":
        """Return a copy of this configuration with different optimizations."""
        return replace(self, optimizations=optimizations)

    def as_baseline(self) -> "RunConfig":
        """Return the non-streaming baseline variant of this configuration."""
        return self.with_optimizations(OptimizationFlag.baseline())

    def as_spikestream(self) -> "RunConfig":
        """Return the full SpikeStream variant of this configuration."""
        return self.with_optimizations(OptimizationFlag.spikestream())

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable dictionary round-tripping through :meth:`from_dict`.

        Optimization flags are stored as a sorted list of member names, so
        the encoding is stable across Python versions and readable in cache
        files on disk.
        """
        members = [flag for flag in OptimizationFlag if flag is not OptimizationFlag.NONE]
        return {
            "precision": self.precision.value,
            "optimizations": sorted(f.name for f in members if f in self.optimizations),
            "batch_size": self.batch_size,
            "timesteps": self.timesteps,
            "seed": self.seed,
            "index_bytes": self.index_bytes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunConfig":
        """Reconstruct a configuration from :meth:`to_dict` output."""
        optimizations = OptimizationFlag.NONE
        for name in data.get("optimizations", ()):
            try:
                optimizations |= OptimizationFlag[str(name)]
            except KeyError as exc:
                raise ValueError(f"unknown optimization flag {name!r}") from exc
        return cls(
            precision=Precision.from_name(str(data["precision"])),
            optimizations=optimizations,
            batch_size=int(data["batch_size"]),
            timesteps=int(data["timesteps"]),
            seed=int(data["seed"]),
            index_bytes=int(data["index_bytes"]),
        )

    def fingerprint(self) -> str:
        """Canonical hex digest of this configuration alone.

        Two configurations have the same fingerprint exactly when every
        field (precision, optimization set, batch size, timesteps, seed,
        index width) matches.  Note that :class:`repro.session.ResultStore`
        entries are keyed on :meth:`repro.session.Session.fingerprint`,
        which hashes this configuration *plus* the effective run parameters
        and the session's hardware models.
        """
        return hashlib.sha256(canonical_json(self.to_dict()).encode()).hexdigest()


def baseline_config(precision: Precision = Precision.FP16, **kwargs) -> RunConfig:
    """Convenience constructor for the paper's parallel SIMD baseline."""
    return RunConfig(precision=precision, optimizations=OptimizationFlag.baseline(), **kwargs)


def spikestream_config(precision: Precision = Precision.FP16, **kwargs) -> RunConfig:
    """Convenience constructor for the full SpikeStream configuration."""
    return RunConfig(precision=precision, optimizations=OptimizationFlag.spikestream(), **kwargs)
