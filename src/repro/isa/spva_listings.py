"""The two SpVA inner-loop variants of Listing 1, as runnable micro-programs.

``build_baseline_spva_program`` reproduces Listing 1b: per gathered weight the
core executes eight instructions (index load, shift, address add, FP load,
two pointer/counter increments, the accumulating add and the loop branch).
``build_streaming_spva_program`` reproduces Listing 1c: the indirect stream
register is configured once and a single ``fadd`` inside a ``frep`` hardware
loop accumulates the streamed weights.

Both programs are functionally equivalent: they accumulate
``sum(weights[c_idcs[j]] for j in range(s_len))`` into register ``fa0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .executor import ExecutionResult, Executor, ExecutorParams
from .memory import Memory
from .program import Program

#: Register allocation shared by both listings.
REG_CIDCS_PTR = "a0"
REG_WEIGHT_BASE = "a1"
REG_STREAM_LENGTH = "a2"
REG_SCRATCH = "t0"
REG_ITERATION = "t1"
FREG_GATHERED = "ft3"
FREG_ACCUMULATOR = "fa0"


@dataclass
class SpvaSetup:
    """Memory image and initial register values for one SpVA execution."""

    memory: Memory
    c_idcs: np.ndarray
    weights: np.ndarray
    c_idcs_address: int
    weights_address: int

    @property
    def stream_length(self) -> int:
        """Number of gathered elements (spiking input neurons)."""
        return int(len(self.c_idcs))

    @property
    def expected_sum(self) -> float:
        """The value both listings must accumulate."""
        if self.stream_length == 0:
            return 0.0
        return float(np.sum(self.weights[self.c_idcs.astype(np.int64)]))


def make_spva_setup(c_idcs: np.ndarray, weights: np.ndarray) -> SpvaSetup:
    """Place the index array and weight tensor into a fresh memory image."""
    c_idcs = np.asarray(c_idcs, dtype=np.uint16)
    weights = np.asarray(weights, dtype=np.float64)
    if len(c_idcs) and int(c_idcs.max()) >= len(weights):
        raise ValueError("c_idcs references a weight index out of range")
    memory = Memory()
    weights_address = memory.place_f64_array("weights", weights)
    c_idcs_address = memory.place_u16_array("c_idcs", c_idcs) if len(c_idcs) else memory.allocate("c_idcs", 0, align=2)
    return SpvaSetup(
        memory=memory,
        c_idcs=c_idcs,
        weights=weights,
        c_idcs_address=c_idcs_address,
        weights_address=weights_address,
    )


def build_baseline_spva_program() -> Program:
    """Baseline SpVA loop (Listing 1b).

    The paper's listing uses a word load for the 16-bit index; here the
    equivalent half-word load ``lh`` is used so that the pointer increment of
    2 bytes matches the access width.
    """
    program = Program(name="spva-baseline")
    program.label("SpVA")
    program.emit("lh", REG_SCRATCH, 0, REG_CIDCS_PTR)
    program.emit("slli", REG_SCRATCH, REG_SCRATCH, 3)
    program.emit("add", REG_SCRATCH, REG_SCRATCH, REG_WEIGHT_BASE)
    program.emit("fld", FREG_GATHERED, 0, REG_SCRATCH)
    program.emit("addi", REG_CIDCS_PTR, REG_CIDCS_PTR, 2)
    program.emit("addi", REG_ITERATION, REG_ITERATION, 1)
    program.emit("fadd.d", FREG_ACCUMULATOR, FREG_GATHERED, FREG_ACCUMULATOR)
    program.emit("bne", REG_ITERATION, REG_STREAM_LENGTH, "SpVA")
    return program


def build_streaming_spva_program() -> Program:
    """SpikeStream SpVA loop (Listing 1c): indirect SSR plus ``frep``."""
    program = Program(name="spva-streaming")
    # Configure indirect stream register 1: gather 64-bit weights through the
    # 16-bit index array, then accumulate one element per loop iteration.
    program.emit(
        "ssr.cfg.indirect", 1, REG_WEIGHT_BASE, REG_CIDCS_PTR, REG_STREAM_LENGTH, 8, 2
    )
    program.emit("ssr.enable")
    program.emit("frep", REG_STREAM_LENGTH, 1)
    program.emit("fadd.d", FREG_ACCUMULATOR, "ft1", FREG_ACCUMULATOR)
    program.emit("ssr.disable")
    return program


def _prepare_executor(setup: SpvaSetup, params: Optional[ExecutorParams]) -> Executor:
    executor = Executor(memory=setup.memory, params=params)
    executor.set_int(REG_CIDCS_PTR, setup.c_idcs_address)
    executor.set_int(REG_WEIGHT_BASE, setup.weights_address)
    executor.set_int(REG_STREAM_LENGTH, setup.stream_length)
    executor.set_int(REG_ITERATION, 0)
    executor.set_fp(FREG_ACCUMULATOR, 0.0)
    return executor


def run_baseline_spva(
    setup: SpvaSetup, params: Optional[ExecutorParams] = None
) -> Tuple[float, ExecutionResult]:
    """Run the baseline listing; returns ``(accumulated value, statistics)``."""
    if setup.stream_length == 0:
        return 0.0, ExecutionResult(
            cycles=0.0,
            int_instructions=0,
            fp_instructions=0,
            fpu_busy_cycles=0.0,
            stall_cycles=0.0,
            loads=0,
            stores=0,
        )
    executor = _prepare_executor(setup, params)
    result = executor.run(build_baseline_spva_program())
    return result.fp_registers[FREG_ACCUMULATOR], result


def run_streaming_spva(
    setup: SpvaSetup, params: Optional[ExecutorParams] = None
) -> Tuple[float, ExecutionResult]:
    """Run the SpikeStream listing; returns ``(accumulated value, statistics)``."""
    if setup.stream_length == 0:
        return 0.0, ExecutionResult(
            cycles=0.0,
            int_instructions=0,
            fp_instructions=0,
            fpu_busy_cycles=0.0,
            stall_cycles=0.0,
            loads=0,
            stores=0,
        )
    executor = _prepare_executor(setup, params)
    result = executor.run(build_streaming_spva_program())
    return result.fp_registers[FREG_ACCUMULATOR], result
