"""Instruction definitions for the micro-simulator.

Instructions are represented by a single dataclass carrying a mnemonic and
its operands; semantics and timing live in :mod:`repro.isa.executor`.  The
supported subset covers what Listing 1 of the paper and the fused activation
need: integer ALU/branch/load/store instructions, double-precision FP loads
and arithmetic, and the pseudo-instructions of the stream-register and
``frep`` extensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

INT_ALU_OPS = frozenset(
    {"add", "addi", "sub", "slli", "srli", "and", "or", "xor", "mul", "li", "mv"}
)
INT_LOAD_OPS = frozenset({"lw", "lh", "lhu", "lb", "lbu"})
INT_STORE_OPS = frozenset({"sw", "sh", "sb"})
BRANCH_OPS = frozenset({"bne", "beq", "blt", "bge"})
FP_LOAD_OPS = frozenset({"fld"})
FP_STORE_OPS = frozenset({"fsd"})
FP_ALU_OPS = frozenset({"fadd.d", "fsub.d", "fmul.d", "fmadd.d", "fmax.d", "fmv.d"})
SSR_OPS = frozenset({"ssr.cfg.indirect", "ssr.cfg.affine", "ssr.enable", "ssr.disable"})
FREP_OPS = frozenset({"frep"})

ALL_OPS = (
    INT_ALU_OPS
    | INT_LOAD_OPS
    | INT_STORE_OPS
    | BRANCH_OPS
    | FP_LOAD_OPS
    | FP_STORE_OPS
    | FP_ALU_OPS
    | SSR_OPS
    | FREP_OPS
    | frozenset({"nop"})
)

LOAD_BYTES = {"lw": 4, "lh": 2, "lhu": 2, "lb": 1, "lbu": 1, "fld": 8}
STORE_BYTES = {"sw": 4, "sh": 2, "sb": 1, "fsd": 8}


@dataclass(frozen=True)
class Instruction:
    """A single instruction: mnemonic plus operand tuple.

    Operands are register names (strings such as ``"t0"`` or ``"ft1"``),
    immediates (ints/floats) or label names for branches.
    """

    op: str
    operands: Tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.op not in ALL_OPS:
            raise ValueError(f"unknown mnemonic {self.op!r}")
        object.__setattr__(self, "operands", tuple(self.operands))

    @property
    def is_fp(self) -> bool:
        """Whether the instruction occupies the FP datapath."""
        return self.op in FP_ALU_OPS or self.op in FP_LOAD_OPS or self.op in FP_STORE_OPS

    @property
    def is_load(self) -> bool:
        """Whether the instruction reads memory."""
        return self.op in INT_LOAD_OPS or self.op in FP_LOAD_OPS

    @property
    def is_store(self) -> bool:
        """Whether the instruction writes memory."""
        return self.op in INT_STORE_OPS or self.op in FP_STORE_OPS

    @property
    def is_branch(self) -> bool:
        """Whether the instruction may redirect control flow."""
        return self.op in BRANCH_OPS

    @property
    def destination(self) -> str:
        """Destination register name, or an empty string if none."""
        if self.op in INT_ALU_OPS or self.op in INT_LOAD_OPS or self.op in FP_LOAD_OPS:
            return str(self.operands[0])
        if self.op in FP_ALU_OPS:
            return str(self.operands[0])
        return ""

    def sources(self) -> Tuple[str, ...]:
        """Register names read by the instruction (best-effort, for hazards)."""
        if self.op in BRANCH_OPS:
            return tuple(str(o) for o in self.operands[:2])
        if self.op in INT_STORE_OPS or self.op in FP_STORE_OPS:
            return tuple(str(o) for o in self.operands[:1]) + tuple(
                str(o) for o in self.operands[2:3]
            )
        if self.op in ("li",):
            return ()
        return tuple(str(o) for o in self.operands[1:] if isinstance(o, str))

    def __str__(self) -> str:
        rendered = ", ".join(str(o) for o in self.operands)
        return f"{self.op} {rendered}".strip()
