"""Byte-addressable memory for the micro-simulator.

The memory plays the role of the cluster scratchpad for the SpVA
micro-kernels: index arrays and weight tensors are *placed* into it at known
base addresses, and the executor performs the same loads the real kernel
would.
"""

from __future__ import annotations

import struct
from typing import Dict

import numpy as np


class Memory:
    """A flat little-endian byte-addressable memory."""

    def __init__(self, size_bytes: int = 256 * 1024):
        if size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {size_bytes}")
        self.size_bytes = size_bytes
        self._data = bytearray(size_bytes)
        self._allocations: Dict[str, int] = {}
        self._cursor = 0

    def _check_range(self, address: int, length: int) -> None:
        if address < 0 or address + length > self.size_bytes:
            raise IndexError(
                f"access of {length} bytes at address {address} outside memory of "
                f"{self.size_bytes} bytes"
            )

    # ------------------------------------------------------------------ #
    # Scalar accessors
    # ------------------------------------------------------------------ #
    def read_int(self, address: int, num_bytes: int, signed: bool = False) -> int:
        """Read an integer of ``num_bytes`` bytes."""
        self._check_range(address, num_bytes)
        raw = bytes(self._data[address : address + num_bytes])
        return int.from_bytes(raw, "little", signed=signed)

    def write_int(self, address: int, value: int, num_bytes: int) -> None:
        """Write an integer of ``num_bytes`` bytes."""
        self._check_range(address, num_bytes)
        signed = value < 0
        self._data[address : address + num_bytes] = int(value).to_bytes(
            num_bytes, "little", signed=signed
        )

    def read_f64(self, address: int) -> float:
        """Read a double-precision float."""
        self._check_range(address, 8)
        return struct.unpack("<d", bytes(self._data[address : address + 8]))[0]

    def write_f64(self, address: int, value: float) -> None:
        """Write a double-precision float."""
        self._check_range(address, 8)
        self._data[address : address + 8] = struct.pack("<d", float(value))

    # ------------------------------------------------------------------ #
    # Array placement helpers
    # ------------------------------------------------------------------ #
    def allocate(self, name: str, size_bytes: int, align: int = 8) -> int:
        """Reserve ``size_bytes`` and return the base address."""
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists")
        address = (self._cursor + align - 1) // align * align
        self._check_range(address, size_bytes)
        self._allocations[name] = address
        self._cursor = address + size_bytes
        return address

    def base_address(self, name: str) -> int:
        """Base address of a named allocation."""
        return self._allocations[name]

    def place_u16_array(self, name: str, values: np.ndarray) -> int:
        """Allocate and write an array of unsigned 16-bit integers."""
        values = np.asarray(values, dtype=np.uint16)
        address = self.allocate(name, values.size * 2, align=2)
        self._data[address : address + values.size * 2] = values.astype("<u2").tobytes()
        return address

    def place_f64_array(self, name: str, values: np.ndarray) -> int:
        """Allocate and write an array of double-precision floats."""
        values = np.asarray(values, dtype=np.float64)
        address = self.allocate(name, values.size * 8, align=8)
        self._data[address : address + values.size * 8] = values.astype("<f8").tobytes()
        return address

    def read_f64_array(self, address: int, count: int) -> np.ndarray:
        """Read ``count`` doubles starting at ``address``."""
        self._check_range(address, count * 8)
        return np.frombuffer(bytes(self._data[address : address + count * 8]), dtype="<f8").copy()
