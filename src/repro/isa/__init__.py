"""Instruction-level model of the RV32G + stream/frep extensions.

The package encodes the two inner-loop variants shown in Listing 1 of the
paper — the baseline SpVA assembly loop and the SSR + ``frep`` streaming
version — and executes them functionally and with cycle timing on a small
single-issue core model.  It exists to validate the coefficients of the
higher-level cost model (:mod:`repro.arch.params`) against an actual
instruction trace and to power the Listing-1 micro-benchmark.
"""

from .instructions import Instruction
from .memory import Memory
from .program import Program
from .executor import ExecutionResult, Executor, ExecutorParams
from .spva_listings import (
    SpvaSetup,
    build_baseline_spva_program,
    build_streaming_spva_program,
    make_spva_setup,
    run_baseline_spva,
    run_streaming_spva,
)

__all__ = [
    "Instruction",
    "Memory",
    "Program",
    "ExecutionResult",
    "Executor",
    "ExecutorParams",
    "SpvaSetup",
    "build_baseline_spva_program",
    "build_streaming_spva_program",
    "make_spva_setup",
    "run_baseline_spva",
    "run_streaming_spva",
]
