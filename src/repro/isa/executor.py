"""Functional and timed execution of micro-programs.

The executor models a single-issue in-order core: every instruction occupies
one issue cycle, integer loads and FP loads add stall cycles when a dependent
instruction follows too closely, and taken branches pay a flush penalty.  The
stream-register and ``frep`` extensions are modeled exactly as the timing
model of :mod:`repro.arch` assumes: an indirect stream supplies at most one
element every ``streaming_cycles_per_element`` cycles (one SPM access for the
index, one for the data word), and a hardware loop issues its body from the
repetition buffer without occupying integer issue slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .instructions import (
    BRANCH_OPS,
    FP_ALU_OPS,
    INT_ALU_OPS,
    LOAD_BYTES,
    STORE_BYTES,
    Instruction,
)
from .memory import Memory
from .program import Program

_SSR_MAPPED_REGISTERS = {"ft0": 0, "ft1": 1, "ft2": 2}


@dataclass(frozen=True)
class ExecutorParams:
    """Timing parameters of the micro-architectural model."""

    int_load_use_stall: float = 2.0
    fp_load_latency: int = 4
    taken_branch_penalty: float = 2.0
    streaming_cycles_per_element: float = 1.55
    stream_startup_cycles: float = 3.0
    max_steps: int = 5_000_000


@dataclass
class _StreamState:
    """Active configuration of one indirect or affine stream."""

    kind: str
    base_address: int
    element_bytes: int
    bound: int
    index_pointer: int = 0
    index_bytes: int = 2
    stride: int = 0
    consumed: int = 0


@dataclass
class ExecutionResult:
    """Outcome of running a micro-program."""

    cycles: float
    int_instructions: int
    fp_instructions: int
    fpu_busy_cycles: float
    stall_cycles: float
    loads: int
    stores: int
    int_registers: Dict[str, int] = field(default_factory=dict)
    fp_registers: Dict[str, float] = field(default_factory=dict)

    @property
    def instructions(self) -> int:
        """Total instructions retired."""
        return self.int_instructions + self.fp_instructions

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    @property
    def fpu_utilization(self) -> float:
        """Fraction of cycles with useful FP work."""
        return min(1.0, self.fpu_busy_cycles / self.cycles) if self.cycles > 0 else 0.0


class Executor:
    """Single-issue executor for :class:`~repro.isa.program.Program` objects."""

    def __init__(self, memory: Optional[Memory] = None, params: Optional[ExecutorParams] = None):
        self.memory = memory if memory is not None else Memory()
        self.params = params or ExecutorParams()
        self.int_regs: Dict[str, int] = {"zero": 0}
        self.fp_regs: Dict[str, float] = {}
        self._streams: Dict[int, _StreamState] = {}
        self._ssr_enabled = False

    # ------------------------------------------------------------------ #
    # Register helpers
    # ------------------------------------------------------------------ #
    def set_int(self, name: str, value: int) -> None:
        """Set an integer register before execution."""
        self.int_regs[name] = int(value)

    def set_fp(self, name: str, value: float) -> None:
        """Set an FP register before execution."""
        self.fp_regs[name] = float(value)

    def _read_int(self, operand) -> int:
        if isinstance(operand, str):
            if operand == "zero":
                return 0
            return int(self.int_regs.get(operand, 0))
        return int(operand)

    def _read_fp(self, name: str) -> float:
        if self._ssr_enabled and name in _SSR_MAPPED_REGISTERS:
            return self._stream_read(_SSR_MAPPED_REGISTERS[name])
        return float(self.fp_regs.get(name, 0.0))

    # ------------------------------------------------------------------ #
    # Stream handling
    # ------------------------------------------------------------------ #
    def _stream_read(self, stream_index: int) -> float:
        stream = self._streams.get(stream_index)
        if stream is None:
            raise RuntimeError(f"read from unconfigured stream register {stream_index}")
        if stream.consumed >= stream.bound:
            raise RuntimeError(f"stream register {stream_index} exhausted")
        if stream.kind == "indirect":
            index_address = stream.index_pointer + stream.consumed * stream.index_bytes
            index = self.memory.read_int(index_address, stream.index_bytes)
            address = stream.base_address + index * stream.element_bytes
        else:
            address = stream.base_address + stream.consumed * stream.stride
        stream.consumed += 1
        return self.memory.read_f64(address)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, program: Program) -> ExecutionResult:
        """Execute ``program`` to completion and return statistics."""
        cycles = 0.0
        stall_cycles = 0.0
        int_instructions = 0
        fp_instructions = 0
        fpu_busy = 0.0
        loads = 0
        stores = 0
        pc = 0
        steps = 0

        while 0 <= pc < len(program):
            steps += 1
            if steps > self.params.max_steps:
                raise RuntimeError(f"program {program.name!r} exceeded {self.params.max_steps} steps")
            instruction = program.instructions[pc]
            op = instruction.op
            ops = instruction.operands

            if op == "frep":
                pc, extra = self._execute_frep(program, pc)
                cycles += 1 + extra["cycles"]
                stall_cycles += extra["stalls"]
                int_instructions += 1
                fp_instructions += extra["fp_instructions"]
                fpu_busy += extra["fp_instructions"]
                continue

            cycles += 1
            taken = False
            if op in INT_ALU_OPS:
                self._execute_int_alu(instruction)
                int_instructions += 1
            elif op in LOAD_BYTES and op != "fld":
                destination, offset, base = ops
                address = self._read_int(base) + int(offset)
                signed = op in ("lh", "lb", "lw")
                value = self.memory.read_int(address, LOAD_BYTES[op], signed=signed)
                self.int_regs[str(destination)] = value
                int_instructions += 1
                loads += 1
                penalty = self._load_use_penalty(program, pc, str(destination), is_fp=False)
                cycles += penalty
                stall_cycles += penalty
            elif op in STORE_BYTES and op != "fsd":
                source, offset, base = ops
                address = self._read_int(base) + int(offset)
                self.memory.write_int(address, self._read_int(source), STORE_BYTES[op])
                int_instructions += 1
                stores += 1
            elif op == "fld":
                destination, offset, base = ops
                address = self._read_int(base) + int(offset)
                self.fp_regs[str(destination)] = self.memory.read_f64(address)
                fp_instructions += 1
                loads += 1
                penalty = self._load_use_penalty(program, pc, str(destination), is_fp=True)
                cycles += penalty
                stall_cycles += penalty
            elif op == "fsd":
                source, offset, base = ops
                address = self._read_int(base) + int(offset)
                self.memory.write_f64(address, self._read_fp(str(source)))
                fp_instructions += 1
                stores += 1
            elif op in FP_ALU_OPS:
                self._execute_fp_alu(instruction)
                fp_instructions += 1
                fpu_busy += 1
            elif op in BRANCH_OPS:
                taken = self._branch_taken(instruction)
                int_instructions += 1
                if taken:
                    pc = program.target(str(ops[2]))
                    cycles += self.params.taken_branch_penalty
                    stall_cycles += self.params.taken_branch_penalty
                    continue
            elif op == "ssr.cfg.indirect":
                stream_index, base, idx_ptr, bound, elem_bytes, idx_bytes = ops
                self._streams[int(stream_index)] = _StreamState(
                    kind="indirect",
                    base_address=self._read_int(base),
                    index_pointer=self._read_int(idx_ptr),
                    bound=self._read_int(bound),
                    element_bytes=int(elem_bytes),
                    index_bytes=int(idx_bytes),
                )
                int_instructions += 1
            elif op == "ssr.cfg.affine":
                stream_index, base, stride, bound = ops
                self._streams[int(stream_index)] = _StreamState(
                    kind="affine",
                    base_address=self._read_int(base),
                    stride=int(stride),
                    bound=self._read_int(bound),
                    element_bytes=8,
                )
                int_instructions += 1
            elif op == "ssr.enable":
                self._ssr_enabled = True
                int_instructions += 1
            elif op == "ssr.disable":
                self._ssr_enabled = False
                int_instructions += 1
            elif op == "nop":
                int_instructions += 1
            else:  # pragma: no cover - defensive
                raise NotImplementedError(f"unsupported mnemonic {op!r}")

            if not taken:
                pc += 1

        return ExecutionResult(
            cycles=cycles,
            int_instructions=int_instructions,
            fp_instructions=fp_instructions,
            fpu_busy_cycles=fpu_busy,
            stall_cycles=stall_cycles,
            loads=loads,
            stores=stores,
            int_registers=dict(self.int_regs),
            fp_registers=dict(self.fp_regs),
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _execute_int_alu(self, instruction: Instruction) -> None:
        op, ops = instruction.op, instruction.operands
        if op == "li":
            self.int_regs[str(ops[0])] = int(ops[1])
        elif op == "mv":
            self.int_regs[str(ops[0])] = self._read_int(ops[1])
        elif op == "add":
            self.int_regs[str(ops[0])] = self._read_int(ops[1]) + self._read_int(ops[2])
        elif op == "addi":
            self.int_regs[str(ops[0])] = self._read_int(ops[1]) + int(ops[2])
        elif op == "sub":
            self.int_regs[str(ops[0])] = self._read_int(ops[1]) - self._read_int(ops[2])
        elif op == "mul":
            self.int_regs[str(ops[0])] = self._read_int(ops[1]) * self._read_int(ops[2])
        elif op == "slli":
            self.int_regs[str(ops[0])] = self._read_int(ops[1]) << int(ops[2])
        elif op == "srli":
            self.int_regs[str(ops[0])] = self._read_int(ops[1]) >> int(ops[2])
        elif op == "and":
            self.int_regs[str(ops[0])] = self._read_int(ops[1]) & self._read_int(ops[2])
        elif op == "or":
            self.int_regs[str(ops[0])] = self._read_int(ops[1]) | self._read_int(ops[2])
        elif op == "xor":
            self.int_regs[str(ops[0])] = self._read_int(ops[1]) ^ self._read_int(ops[2])
        else:  # pragma: no cover - defensive
            raise NotImplementedError(op)

    def _execute_fp_alu(self, instruction: Instruction) -> None:
        op, ops = instruction.op, instruction.operands
        destination = str(ops[0])
        if op == "fadd.d":
            value = self._read_fp(str(ops[1])) + self._read_fp(str(ops[2]))
        elif op == "fsub.d":
            value = self._read_fp(str(ops[1])) - self._read_fp(str(ops[2]))
        elif op == "fmul.d":
            value = self._read_fp(str(ops[1])) * self._read_fp(str(ops[2]))
        elif op == "fmadd.d":
            value = self._read_fp(str(ops[1])) * self._read_fp(str(ops[2])) + self._read_fp(str(ops[3]))
        elif op == "fmax.d":
            value = max(self._read_fp(str(ops[1])), self._read_fp(str(ops[2])))
        elif op == "fmv.d":
            value = self._read_fp(str(ops[1]))
        else:  # pragma: no cover - defensive
            raise NotImplementedError(op)
        self.fp_regs[destination] = value

    def _branch_taken(self, instruction: Instruction) -> bool:
        op, ops = instruction.op, instruction.operands
        lhs, rhs = self._read_int(ops[0]), self._read_int(ops[1])
        if op == "bne":
            return lhs != rhs
        if op == "beq":
            return lhs == rhs
        if op == "blt":
            return lhs < rhs
        return lhs >= rhs

    def _load_use_penalty(self, program: Program, pc: int, destination: str, is_fp: bool) -> float:
        """Stall cycles caused by an instruction that uses a just-loaded value."""
        if is_fp:
            latency = self.params.fp_load_latency
            window = latency - 1
            for distance in range(1, window + 1):
                nxt = program.instruction_at(pc + distance)
                if nxt is None:
                    break
                if destination in nxt.sources():
                    return float(max(0, latency - distance - 1))
            return 0.0
        nxt = program.instruction_at(pc + 1)
        if nxt is not None and destination in nxt.sources():
            return self.params.int_load_use_stall
        return 0.0

    def _execute_frep(self, program: Program, pc: int):
        """Execute a hardware loop: ``frep iterations, num_instructions``."""
        iterations_operand, num_instructions = program.instructions[pc].operands
        iterations = self._read_int(iterations_operand)
        num_instructions = int(num_instructions)
        body = [
            program.instructions[pc + 1 + i]
            for i in range(num_instructions)
            if program.instruction_at(pc + 1 + i) is not None
        ]
        if len(body) != num_instructions:
            raise RuntimeError("frep body extends past the end of the program")
        fp_instruction_count = 0
        uses_stream = any(
            source in _SSR_MAPPED_REGISTERS for instr in body for source in instr.sources()
        )
        for _ in range(iterations):
            for instr in body:
                if instr.op not in FP_ALU_OPS:
                    raise RuntimeError("frep bodies may contain only FP arithmetic instructions")
                self._execute_fp_alu(instr)
                fp_instruction_count += 1
        per_iteration = max(
            float(num_instructions),
            self.params.streaming_cycles_per_element if uses_stream else float(num_instructions),
        )
        cycles = iterations * per_iteration + self.params.stream_startup_cycles
        stalls = max(0.0, cycles - fp_instruction_count)
        return pc + 1 + num_instructions, {
            "cycles": cycles,
            "stalls": stalls,
            "fp_instructions": fp_instruction_count,
        }
