"""Program container with label resolution for the micro-simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .instructions import Instruction


@dataclass
class Program:
    """An ordered list of instructions with named labels.

    Labels mark instruction indices and are used as branch targets; they are
    resolved lazily so instructions can branch forward.
    """

    name: str = "program"
    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)

    def label(self, name: str) -> "Program":
        """Attach a label to the next appended instruction."""
        if name in self.labels:
            raise ValueError(f"label {name!r} already defined")
        self.labels[name] = len(self.instructions)
        return self

    def emit(self, op: str, *operands) -> "Program":
        """Append an instruction and return ``self`` for chaining."""
        self.instructions.append(Instruction(op, operands))
        return self

    def extend(self, other: "Program") -> "Program":
        """Append another program, shifting its labels."""
        offset = len(self.instructions)
        for name, index in other.labels.items():
            if name in self.labels:
                raise ValueError(f"label {name!r} defined in both programs")
            self.labels[name] = index + offset
        self.instructions.extend(other.instructions)
        return self

    def target(self, label: str) -> int:
        """Instruction index of a label."""
        try:
            return self.labels[label]
        except KeyError as exc:
            raise KeyError(f"undefined label {label!r} in program {self.name!r}") from exc

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def instruction_at(self, index: int) -> Optional[Instruction]:
        """Instruction at ``index`` or None past the end."""
        if 0 <= index < len(self.instructions):
            return self.instructions[index]
        return None

    def listing(self) -> str:
        """Human-readable assembly listing with labels."""
        by_index: Dict[int, List[str]] = {}
        for name, index in self.labels.items():
            by_index.setdefault(index, []).append(name)
        lines: List[str] = []
        for index, instruction in enumerate(self.instructions):
            for name in by_index.get(index, []):
                lines.append(f"{name}:")
            lines.append(f"    {instruction}")
        return "\n".join(lines)
