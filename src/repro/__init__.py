"""SpikeStream reproduction library.

A Python reproduction of *SpikeStream: Accelerating Spiking Neural Network
Inference on RISC-V Clusters with Sparse Computation Extensions* (DATE 2025).
The library contains the SNN substrate, the sparse spike-tensor formats, a
behavioral model of the Snitch multi-core streaming cluster, the baseline and
SpikeStream inference kernels, an activity-based energy model, analytical
models of the compared neuromorphic accelerators and experiment drivers that
regenerate every figure of the paper's evaluation.

Quick start — the unified Session API::

    from repro import Session

    with Session(jobs=4, cache_dir="results") as session:
        print(session.scenarios())             # every experiment and sweep
        result = session.run("speedup")        # Figure 3c, store-backed

or the lower-level engine directly::

    from repro import spikestream_config, SpikeStreamInference

    config = spikestream_config()              # FP16, all optimizations
    engine = SpikeStreamInference(config)
    result = engine.run_statistical(batch_size=8)
    print(result.summary())
"""

from .config import RunConfig, baseline_config, spikestream_config
from .types import OptimizationFlag, Precision, TensorShape
from .core import (
    InferenceResult,
    LayerPlan,
    LayerResult,
    SpikeStreamInference,
    SpikeStreamOptimizer,
)
from .backends import (
    ExecutionBackend,
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    ShardedBackend,
    ThreadBackend,
)
from .plan import ParameterSpace, PlanRow, ResultsCache, SweepSpec, collect_plan, iter_plan
from .snn.numerics import NumericsPolicy
from .session import ResultStore, Scenario, Session, default_session, register_sweep

#: Serving entry points re-exported lazily (``repro.InferenceServer`` works
#: without paying the :mod:`repro.serve` import on every ``import repro``).
_SERVE_EXPORTS = ("InferenceServer", "ServeClient", "LoadGenerator", "MetricsRegistry")

#: Distributed-tier entry points, same lazy treatment (``repro.Coordinator``
#: without paying the :mod:`repro.net` import up front).
_NET_EXPORTS = (
    "Coordinator", "NetWorker", "NetworkShardedBackend", "ReplicatedResultStore"
)


def __getattr__(name: str):
    if name in _SERVE_EXPORTS:
        from . import serve

        return getattr(serve, name)
    if name in _NET_EXPORTS:
        from . import net

        return getattr(net, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__version__ = "1.2.0"

__all__ = [
    "Coordinator",
    "InferenceServer",
    "LoadGenerator",
    "MetricsRegistry",
    "NetWorker",
    "NetworkShardedBackend",
    "ReplicatedResultStore",
    "ServeClient",
    "RunConfig",
    "baseline_config",
    "spikestream_config",
    "ExecutionBackend",
    "ExecutorBackend",
    "ProcessBackend",
    "SerialBackend",
    "ShardedBackend",
    "ThreadBackend",
    "ParameterSpace",
    "PlanRow",
    "ResultsCache",
    "SweepSpec",
    "collect_plan",
    "iter_plan",
    "register_sweep",
    "ResultStore",
    "Scenario",
    "Session",
    "default_session",
    "NumericsPolicy",
    "OptimizationFlag",
    "Precision",
    "TensorShape",
    "InferenceResult",
    "LayerPlan",
    "LayerResult",
    "SpikeStreamInference",
    "SpikeStreamOptimizer",
    "__version__",
]
