"""End-to-end SpikeStream inference on the Snitch cluster model.

:class:`SpikeStreamInference` ties the library together: the optimizer maps
each layer to a kernel, the kernels produce cycle-level
:class:`~repro.arch.trace.ClusterStats`, the energy model converts activity
into joules, and everything is aggregated over a batch of input frames into
an :class:`~repro.core.results.InferenceResult`.

Two execution modes are provided:

* **statistical** (:meth:`SpikeStreamInference.run_statistical`): per-layer
  ifmap spike counts are drawn from the layer's firing-rate profile (the
  default profile follows Figure 3a).  This is what the figure-level
  experiments use — performance and energy depend only on tensor shapes and
  spike counts, so a batch of 128 frames runs in seconds.
* **functional** (:meth:`SpikeStreamInference.run_functional`): an actual
  :class:`~repro.snn.network.SpikingNetwork` forward pass supplies the real
  per-layer spike maps, and the same performance model is evaluated on them.

Statistical mode is implemented by a **vectorized batch engine**: instead of
walking the batch frame-by-frame and re-entering every kernel per frame, the
engine iterates layer-major, stacks every frame's spike counts for the layer
into one array with a leading batch axis, and costs the whole batch through
the kernels' ``*_perf_batch`` entry points (vectorized SpVA costs, batched
window aggregation, and a batch-parallel workload-stealing simulation).  Each
frame still draws from its own spawned RNG stream, so the result is
bit-for-bit identical to the historical per-frame loop — which is preserved
as :meth:`SpikeStreamInference.run_statistical_reference` and exercised by
the equivalence tests and ``benchmarks/bench_batch_engine.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..arch.params import ClusterParams, CostModelParams, DEFAULT_CLUSTER, DEFAULT_COSTS
from ..arch.trace import ClusterStats
from ..config import RunConfig
from ..energy.model import EnergyModel
from ..energy.params import DEFAULT_ENERGY, EnergyParams
from ..formats.convert import compress_ifmap, compress_vector
from ..kernels.conv import conv_layer_perf, conv_layer_perf_batch
from ..kernels.encode import encode_layer_perf, encode_layer_perf_batch
from ..kernels.fc import fc_layer_perf, fc_layer_perf_batch
from ..snn.network import NetworkActivity, SpikingNetwork
from ..types import LayerKind
from ..utils.rng import SeedLike, make_rng, spawn_rngs
from .layer_mapping import KernelKind, LayerPlan
from .optimizer import SpikeStreamOptimizer
from .results import InferenceResult, LayerResult


@dataclass
class _LayerAccumulator:
    """Per-layer collection of per-frame metrics."""

    plan: LayerPlan
    cycles: List[float] = field(default_factory=list)
    utilization: List[float] = field(default_factory=list)
    ipc: List[float] = field(default_factory=list)
    energy_j: List[float] = field(default_factory=list)
    power_w: List[float] = field(default_factory=list)
    dma_bytes: List[float] = field(default_factory=list)

    def add(self, stats: ClusterStats, energy_j: float, clock_hz: float) -> None:
        self.cycles.append(stats.total_cycles)
        self.utilization.append(stats.fpu_utilization)
        self.ipc.append(stats.ipc)
        self.energy_j.append(energy_j)
        runtime = stats.runtime_seconds(clock_hz)
        self.power_w.append(energy_j / runtime if runtime > 0 else 0.0)
        self.dma_bytes.append(stats.dma_bytes)

    def result(self, clock_hz: float) -> LayerResult:
        return LayerResult(
            name=self.plan.name,
            kernel=self.plan.kernel.value,
            precision=self.plan.precision,
            streaming=self.plan.streaming,
            cycles=np.asarray(self.cycles),
            fpu_utilization=np.asarray(self.utilization),
            ipc=np.asarray(self.ipc),
            energy_j=np.asarray(self.energy_j),
            power_w=np.asarray(self.power_w),
            dma_bytes=np.asarray(self.dma_bytes),
            clock_hz=clock_hz,
        )


class SpikeStreamInference:
    """Run SNN inference on the Snitch cluster model under a given configuration."""

    def __init__(
        self,
        config: RunConfig,
        cluster: ClusterParams = DEFAULT_CLUSTER,
        costs: CostModelParams = DEFAULT_COSTS,
        energy: EnergyParams = DEFAULT_ENERGY,
    ):
        self.config = config
        self.cluster = cluster
        self.costs = costs
        self.optimizer = SpikeStreamOptimizer(config, cluster)
        self.energy_model = EnergyModel(params=energy, cluster=cluster)

    # ------------------------------------------------------------------ #
    # Single-layer execution
    # ------------------------------------------------------------------ #
    def run_layer(self, plan: LayerPlan, spike_counts: Optional[np.ndarray] = None,
                  nnz: Optional[int] = None) -> ClusterStats:
        """Run the performance model of one layer.

        Convolutional layers need the per-position ``spike_counts`` map of
        their padded ifmap; FC layers need the spike count ``nnz``; the dense
        encoding layer needs neither.
        """
        if plan.kernel is KernelKind.ENCODE:
            return encode_layer_perf(
                plan.spec,
                precision=plan.precision,
                streaming=plan.streaming,
                params=self.cluster,
                costs=self.costs,
                index_bytes=self.config.index_bytes,
            )
        if plan.kernel is KernelKind.CONV:
            if spike_counts is None:
                raise ValueError(f"layer {plan.name!r} needs a spike_counts map")
            return conv_layer_perf(
                plan.spec,
                spike_counts,
                precision=plan.precision,
                streaming=plan.streaming,
                params=self.cluster,
                costs=self.costs,
                index_bytes=self.config.index_bytes,
            )
        if nnz is None:
            raise ValueError(f"layer {plan.name!r} needs the input spike count nnz")
        return fc_layer_perf(
            plan.spec,
            nnz=nnz,
            precision=plan.precision,
            streaming=plan.streaming,
            params=self.cluster,
            costs=self.costs,
            index_bytes=self.config.index_bytes,
        )

    def layer_energy(self, plan: LayerPlan, stats: ClusterStats) -> float:
        """Energy in joules of one layer execution."""
        report = self.energy_model.layer_energy(
            stats,
            precision=plan.precision,
            streaming=plan.streaming,
            uses_mac=plan.kernel is KernelKind.ENCODE,
        )
        return report.energy_j

    # ------------------------------------------------------------------ #
    # Statistical batch execution
    # ------------------------------------------------------------------ #
    def _synthetic_counts(
        self, plan: LayerPlan, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw a padded per-position spike-count map for a conv layer."""
        spec = plan.spec
        unpadded = spec.input_shape
        counts = rng.binomial(
            unpadded.channels, plan.firing_rate, size=(unpadded.height, unpadded.width)
        ).astype(np.float64)
        if spec.padding:
            counts = np.pad(counts, spec.padding)
        return counts

    def _synthetic_counts_batch(
        self, plan: LayerPlan, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        """Stack every frame's padded spike-count map into a ``(B, Hp, Wp)`` array.

        Each frame draws from its own generator (in frame order), so the
        per-frame streams are identical to the per-frame reference loop; the
        zero padding is applied to the whole stack in one call (bit-for-bit
        the same as padding each map individually).
        """
        spec = plan.spec
        unpadded = spec.input_shape
        counts = np.stack(
            [
                rng.binomial(
                    unpadded.channels,
                    plan.firing_rate,
                    size=(unpadded.height, unpadded.width),
                )
                for rng in rngs
            ]
        ).astype(np.float64)
        if spec.padding:
            counts = np.pad(counts, ((0, 0), (spec.padding, spec.padding),
                                     (spec.padding, spec.padding)))
        return counts

    def run_statistical(
        self,
        plans: Optional[Sequence[LayerPlan]] = None,
        batch_size: Optional[int] = None,
        firing_rates: Optional[Dict[str, float]] = None,
        seed: SeedLike = None,
        timesteps: Optional[int] = None,
    ) -> InferenceResult:
        """Run a batch of frames in statistical mode (default: full S-VGG11).

        Per-frame spike counts are drawn from a binomial distribution with
        each layer's firing rate, reproducing the dynamic-sparsity variation
        the paper captures with its batch of 128 CIFAR-10 frames.

        This is the vectorized batch engine: it iterates layer-major, draws
        all per-frame spike counts of a layer at once (stacked behind a
        leading batch axis, one spawned RNG stream per frame) and costs the
        whole batch through the kernels' ``*_perf_batch`` entry points.  For
        a fixed seed the result is bit-for-bit identical to the per-frame
        loop kept in :meth:`run_statistical_reference`, at a fraction of the
        wall-clock cost (``benchmarks/bench_batch_engine.py`` quantifies the
        speedup at batch 128).
        """
        plans = list(plans) if plans is not None else self.optimizer.plan_svgg11(firing_rates)
        batch_size = batch_size or self.config.batch_size
        timesteps = timesteps or self.config.timesteps
        seed = seed if seed is not None else self.config.seed
        frame_rngs = spawn_rngs(seed, batch_size)

        accumulators = [_LayerAccumulator(plan) for plan in plans]
        for accumulator in accumulators:
            plan = accumulator.plan
            if plan.kernel is KernelKind.CONV:
                counts = self._synthetic_counts_batch(plan, frame_rngs)
                stats_batch = conv_layer_perf_batch(
                    plan.spec,
                    counts,
                    precision=plan.precision,
                    streaming=plan.streaming,
                    params=self.cluster,
                    costs=self.costs,
                    index_bytes=self.config.index_bytes,
                )
            elif plan.kernel is KernelKind.FC:
                nnz = [
                    int(rng.binomial(plan.spec.in_features, plan.firing_rate))
                    for rng in frame_rngs
                ]
                stats_batch = fc_layer_perf_batch(
                    plan.spec,
                    nnz,
                    precision=plan.precision,
                    streaming=plan.streaming,
                    params=self.cluster,
                    costs=self.costs,
                    index_bytes=self.config.index_bytes,
                )
            else:
                stats_batch = encode_layer_perf_batch(
                    plan.spec,
                    batch_size,
                    precision=plan.precision,
                    streaming=plan.streaming,
                    params=self.cluster,
                    costs=self.costs,
                    index_bytes=self.config.index_bytes,
                )
            for stats in stats_batch:
                if timesteps > 1:
                    stats = _scale_stats(stats, timesteps)
                energy = self.layer_energy(plan, stats)
                accumulator.add(stats, energy, self.cluster.clock_hz)
        return InferenceResult(
            config=self.config,
            layers=[a.result(self.cluster.clock_hz) for a in accumulators],
            clock_hz=self.cluster.clock_hz,
        )

    def run_statistical_reference(
        self,
        plans: Optional[Sequence[LayerPlan]] = None,
        batch_size: Optional[int] = None,
        firing_rates: Optional[Dict[str, float]] = None,
        seed: SeedLike = None,
        timesteps: Optional[int] = None,
    ) -> InferenceResult:
        """Per-frame reference implementation of :meth:`run_statistical`.

        Walks the batch frame-by-frame and layer-by-layer, re-entering every
        kernel once per frame.  Kept as the golden reference for the batch
        engine's equivalence tests and as the baseline timed by
        ``benchmarks/bench_batch_engine.py``; produces bit-for-bit the same
        :class:`~repro.core.results.InferenceResult` as the vectorized path.
        """
        plans = list(plans) if plans is not None else self.optimizer.plan_svgg11(firing_rates)
        batch_size = batch_size or self.config.batch_size
        timesteps = timesteps or self.config.timesteps
        seed = seed if seed is not None else self.config.seed
        frame_rngs = spawn_rngs(seed, batch_size)

        accumulators = [_LayerAccumulator(plan) for plan in plans]
        for rng in frame_rngs:
            for accumulator in accumulators:
                plan = accumulator.plan
                if plan.kernel is KernelKind.CONV:
                    counts = self._synthetic_counts(plan, rng)
                    stats = self.run_layer(plan, spike_counts=counts)
                elif plan.kernel is KernelKind.FC:
                    nnz = int(rng.binomial(plan.spec.in_features, plan.firing_rate))
                    stats = self.run_layer(plan, nnz=nnz)
                else:
                    stats = self.run_layer(plan)
                if timesteps > 1:
                    stats = _scale_stats(stats, timesteps)
                energy = self.layer_energy(plan, stats)
                accumulator.add(stats, energy, self.cluster.clock_hz)
        return InferenceResult(
            config=self.config,
            layers=[a.result(self.cluster.clock_hz) for a in accumulators],
            clock_hz=self.cluster.clock_hz,
        )

    # ------------------------------------------------------------------ #
    # Functional batch execution
    # ------------------------------------------------------------------ #
    def run_functional(
        self,
        network: SpikingNetwork,
        frames: Sequence[np.ndarray],
        firing_rates: Optional[Dict[str, float]] = None,
    ) -> InferenceResult:
        """Run the performance model on the *actual* activity of a network.

        Every frame is passed through the functional network
        (:meth:`repro.snn.network.SpikingNetwork.forward`); the recorded
        per-layer spike maps then drive the same kernels' performance model.
        """
        plans = self.optimizer.plan_network(network, firing_rates)
        plans_by_name = {plan.name: plan for plan in plans}
        accumulators = {plan.name: _LayerAccumulator(plan) for plan in plans}

        for frame in frames:
            activity = network.forward(frame, timesteps=self.config.timesteps)
            self._accumulate_activity(activity, plans_by_name, accumulators)
        return InferenceResult(
            config=self.config,
            layers=[accumulators[plan.name].result(self.cluster.clock_hz) for plan in plans],
            clock_hz=self.cluster.clock_hz,
        )

    def _accumulate_activity(
        self,
        activity: NetworkActivity,
        plans_by_name: Dict[str, LayerPlan],
        accumulators: Dict[str, "_LayerAccumulator"],
    ) -> None:
        for record in activity.records:
            plan = plans_by_name.get(record.name)
            if plan is None:
                continue
            if plan.kernel is KernelKind.ENCODE:
                stats = self.run_layer(plan)
            elif plan.kernel is KernelKind.CONV:
                spikes = record.input_spikes
                padded = np.pad(
                    spikes,
                    (
                        (plan.spec.padding, plan.spec.padding),
                        (plan.spec.padding, plan.spec.padding),
                        (0, 0),
                    ),
                )
                counts = np.count_nonzero(padded, axis=2).astype(np.float64)
                stats = self.run_layer(plan, spike_counts=counts)
            else:
                nnz = int(np.count_nonzero(record.input_spikes))
                stats = self.run_layer(plan, nnz=nnz)
            energy = self.layer_energy(plan, stats)
            accumulators[record.name].add(stats, energy, self.cluster.clock_hz)


def _scale_stats(stats: ClusterStats, timesteps: int) -> ClusterStats:
    """Repeat a single-timestep execution for ``timesteps`` timesteps.

    All activity counters scale linearly; derived ratios (utilization, IPC)
    are unchanged, which matches executing the same layer once per timestep.
    """
    if timesteps <= 1:
        return stats
    scaled_cores = []
    for core in stats.core_stats:
        fields = {key: value * timesteps for key, value in vars(core).items() if key != "core_id"}
        scaled_cores.append(type(core)(core_id=core.core_id, **fields))
    return ClusterStats(
        core_stats=scaled_cores,
        dma_cycles=stats.dma_cycles * timesteps,
        dma_bytes=stats.dma_bytes * timesteps,
        dma_exposed_cycles=stats.dma_exposed_cycles * timesteps,
        total_cycles=stats.total_cycles * timesteps,
        label=stats.label,
    )
