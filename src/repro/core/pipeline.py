"""End-to-end SpikeStream inference on the Snitch cluster model.

:class:`SpikeStreamInference` ties the library together: the optimizer maps
each layer to a kernel, the kernels produce cycle-level
:class:`~repro.arch.trace.ClusterStats`, the energy model converts activity
into joules, and everything is aggregated over a batch of input frames into
an :class:`~repro.core.results.InferenceResult`.

Two execution modes are provided:

* **statistical** (:meth:`SpikeStreamInference.run_statistical`): per-layer
  ifmap spike counts are drawn from the layer's firing-rate profile (the
  default profile follows Figure 3a).  This is what the figure-level
  experiments use — performance and energy depend only on tensor shapes and
  spike counts, so a batch of 128 frames runs in seconds.
* **functional** (:meth:`SpikeStreamInference.run_functional`): an actual
  :class:`~repro.snn.network.SpikingNetwork` forward pass supplies the real
  per-layer spike maps, and the same performance model is evaluated on them.

**Batch is the native execution unit** of both modes.  One internal batch
engine (:meth:`SpikeStreamInference._run_layer_batches`) iterates
layer-major, takes each layer's whole-batch workload — stacked padded
spike-count maps for conv layers, per-frame nnz for FC layers, a plain
frame count for the dense encoding layer — and costs it through the
kernels' ``*_perf_batch`` entry points (vectorized SpVA costs, batched
window aggregation, and a batch-parallel workload-stealing simulation).
The two modes differ only in where those spike counts come from:

* statistical draws them from per-frame RNG streams
  (:meth:`SpikeStreamInference._statistical_workloads`), and
* functional reads them off the stacked
  :class:`~repro.snn.network.BatchNetworkActivity` recorded by one
  vectorized :meth:`~repro.snn.network.SpikingNetwork.forward_batch` pass
  (:meth:`SpikeStreamInference._functional_workloads`).

Both are bit-for-bit identical to their historical per-frame loops, which
are preserved as :meth:`SpikeStreamInference.run_statistical_reference` and
:meth:`SpikeStreamInference.run_functional_reference` and exercised by the
equivalence tests plus ``benchmarks/bench_batch_engine.py`` and
``benchmarks/bench_functional.py``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..arch.params import ClusterParams, CostModelParams, DEFAULT_CLUSTER, DEFAULT_COSTS
from ..arch.trace import ClusterStats
from ..config import RunConfig
from ..energy.model import EnergyModel
from ..energy.params import DEFAULT_ENERGY, EnergyParams
from ..formats.convert import compress_ifmap, compress_vector
from ..kernels.conv import conv_layer_perf, conv_layer_perf_batch, pad_counts
from ..kernels.encode import encode_layer_perf, encode_layer_perf_batch
from ..kernels.fc import fc_layer_perf, fc_layer_perf_batch
from ..snn.network import BatchNetworkActivity, NetworkActivity, SpikingNetwork
from ..snn.numerics import NumericsPolicy, resolve as resolve_numerics
from ..types import LayerKind
from ..utils.rng import SeedLike, make_rng, spawn_rngs
from .layer_mapping import KernelKind, LayerPlan
from .optimizer import SpikeStreamOptimizer
from .results import InferenceResult, LayerResult


#: Thread-local per-layer profiling hook installed by :func:`layer_profiler`.
#: Thread-local because concurrent server worker threads run independent
#: engine passes — one traced batch must not time another thread's layers.
_LAYER_PROFILER = threading.local()


@contextmanager
def layer_profiler(hook: Optional[Callable[[str, float, float], None]]):
    """Install a per-layer timing hook for engine passes on this thread.

    While active, :meth:`SpikeStreamInference._run_layer_batches` calls
    ``hook(layer_name, start, end)`` (``time.monotonic`` seconds) once per
    layer workload it costs.  ``None`` uninstalls (a no-op guard, so
    callers need not branch on whether profiling is enabled).  The engine
    pays one attribute read per pass when no hook is installed — profiling
    cost exists only for profiled passes.
    """
    previous = getattr(_LAYER_PROFILER, "hook", None)
    _LAYER_PROFILER.hook = hook
    try:
        yield
    finally:
        _LAYER_PROFILER.hook = previous


@dataclass
class _LayerAccumulator:
    """Per-layer collection of per-frame metrics."""

    plan: LayerPlan
    cycles: List[float] = field(default_factory=list)
    utilization: List[float] = field(default_factory=list)
    ipc: List[float] = field(default_factory=list)
    energy_j: List[float] = field(default_factory=list)
    power_w: List[float] = field(default_factory=list)
    dma_bytes: List[float] = field(default_factory=list)

    def add(self, stats: ClusterStats, energy_j: float, clock_hz: float) -> None:
        self.cycles.append(stats.total_cycles)
        self.utilization.append(stats.fpu_utilization)
        self.ipc.append(stats.ipc)
        self.energy_j.append(energy_j)
        runtime = stats.runtime_seconds(clock_hz)
        self.power_w.append(energy_j / runtime if runtime > 0 else 0.0)
        self.dma_bytes.append(stats.dma_bytes)

    def result(self, clock_hz: float) -> LayerResult:
        return LayerResult(
            name=self.plan.name,
            kernel=self.plan.kernel.value,
            precision=self.plan.precision,
            streaming=self.plan.streaming,
            cycles=np.asarray(self.cycles),
            fpu_utilization=np.asarray(self.utilization),
            ipc=np.asarray(self.ipc),
            energy_j=np.asarray(self.energy_j),
            power_w=np.asarray(self.power_w),
            dma_bytes=np.asarray(self.dma_bytes),
            clock_hz=clock_hz,
        )


@dataclass
class _LayerBatch:
    """One layer's whole-batch workload for the internal batch engine.

    Exactly one of the three payloads is set, matching the layer's kernel:
    ``counts`` is the stacked padded spike-count maps ``(B, Hp, Wp)`` of a
    conv layer, ``nnz`` the per-frame spiking input counts of an FC layer,
    and ``batch`` the plain frame count of the input-independent dense
    encoding layer.
    """

    plan: LayerPlan
    counts: Optional[np.ndarray] = None
    nnz: Optional[Sequence[int]] = None
    batch: int = 0


class SpikeStreamInference:
    """Run SNN inference on the Snitch cluster model under a given configuration."""

    def __init__(
        self,
        config: RunConfig,
        cluster: ClusterParams = DEFAULT_CLUSTER,
        costs: CostModelParams = DEFAULT_COSTS,
        energy: EnergyParams = DEFAULT_ENERGY,
        numerics: Optional[NumericsPolicy] = None,
    ):
        self.config = config
        self.cluster = cluster
        self.costs = costs
        #: Default golden-model numerics of this engine's functional passes
        #: (``None`` -> the FP64 dense reference).  Per-call ``numerics=``
        #: arguments override it; the statistical mode never consults it
        #: (spike counts are drawn, not computed).
        self.numerics = resolve_numerics(numerics)
        self.optimizer = SpikeStreamOptimizer(config, cluster)
        self.energy_model = EnergyModel(params=energy, cluster=cluster)

    # ------------------------------------------------------------------ #
    # Single-layer execution
    # ------------------------------------------------------------------ #
    def run_layer(self, plan: LayerPlan, spike_counts: Optional[np.ndarray] = None,
                  nnz: Optional[int] = None) -> ClusterStats:
        """Run the performance model of one layer.

        Convolutional layers need the per-position ``spike_counts`` map of
        their padded ifmap; FC layers need the spike count ``nnz``; the dense
        encoding layer needs neither.
        """
        if plan.kernel is KernelKind.ENCODE:
            return encode_layer_perf(
                plan.spec,
                precision=plan.precision,
                streaming=plan.streaming,
                params=self.cluster,
                costs=self.costs,
                index_bytes=self.config.index_bytes,
            )
        if plan.kernel is KernelKind.CONV:
            if spike_counts is None:
                raise ValueError(f"layer {plan.name!r} needs a spike_counts map")
            return conv_layer_perf(
                plan.spec,
                spike_counts,
                precision=plan.precision,
                streaming=plan.streaming,
                params=self.cluster,
                costs=self.costs,
                index_bytes=self.config.index_bytes,
            )
        if nnz is None:
            raise ValueError(f"layer {plan.name!r} needs the input spike count nnz")
        return fc_layer_perf(
            plan.spec,
            nnz=nnz,
            precision=plan.precision,
            streaming=plan.streaming,
            params=self.cluster,
            costs=self.costs,
            index_bytes=self.config.index_bytes,
        )

    def layer_energy(self, plan: LayerPlan, stats: ClusterStats) -> float:
        """Energy in joules of one layer execution."""
        report = self.energy_model.layer_energy(
            stats,
            precision=plan.precision,
            streaming=plan.streaming,
            uses_mac=plan.kernel is KernelKind.ENCODE,
        )
        return report.energy_j

    # ------------------------------------------------------------------ #
    # The internal batch engine (shared by both execution modes)
    # ------------------------------------------------------------------ #
    def _cost_layer_batch(self, work: _LayerBatch) -> List[ClusterStats]:
        """Cost one layer's whole-batch workload through its batched kernel."""
        plan = work.plan
        if plan.kernel is KernelKind.CONV:
            return conv_layer_perf_batch(
                plan.spec,
                work.counts,
                precision=plan.precision,
                streaming=plan.streaming,
                params=self.cluster,
                costs=self.costs,
                index_bytes=self.config.index_bytes,
            )
        if plan.kernel is KernelKind.FC:
            return fc_layer_perf_batch(
                plan.spec,
                work.nnz,
                precision=plan.precision,
                streaming=plan.streaming,
                params=self.cluster,
                costs=self.costs,
                index_bytes=self.config.index_bytes,
            )
        return encode_layer_perf_batch(
            plan.spec,
            work.batch,
            precision=plan.precision,
            streaming=plan.streaming,
            params=self.cluster,
            costs=self.costs,
            index_bytes=self.config.index_bytes,
        )

    def _run_layer_batches(
        self, workloads: Sequence[_LayerBatch], timesteps: int = 1
    ) -> InferenceResult:
        """Aggregate whole-batch layer workloads into an :class:`InferenceResult`.

        This is the shared back half of :meth:`run_statistical` and
        :meth:`run_functional`: layer-major iteration, one ``*_perf_batch``
        kernel call per layer, per-frame timestep scaling (statistical mode
        only — functional activity already carries one entry per timestep),
        the energy model, and the ``_LayerAccumulator`` reduction.  The two
        public modes differ *only* in how they build ``workloads``.
        """
        accumulators = []
        profile = getattr(_LAYER_PROFILER, "hook", None)
        for work in workloads:
            accumulator = _LayerAccumulator(work.plan)
            layer_started = time.monotonic() if profile is not None else 0.0
            for stats in self._cost_layer_batch(work):
                if timesteps > 1:
                    stats = _scale_stats(stats, timesteps)
                energy = self.layer_energy(work.plan, stats)
                accumulator.add(stats, energy, self.cluster.clock_hz)
            if profile is not None:
                profile(work.plan.name, layer_started, time.monotonic())
            accumulators.append(accumulator)
        return InferenceResult(
            config=self.config,
            layers=[a.result(self.cluster.clock_hz) for a in accumulators],
            clock_hz=self.cluster.clock_hz,
        )

    # -- public workload API (used by repro.serve's micro-batcher) --------- #
    def statistical_workloads(
        self,
        plans: Sequence[LayerPlan],
        batch_size: int,
        seed: SeedLike,
    ) -> List[_LayerBatch]:
        """Build one statistical run's whole-batch layer workloads.

        Public entry point of :meth:`_statistical_workloads` for callers
        that coalesce several runs into one engine pass (the serving
        micro-batcher): build each run's workloads under its own seed,
        concatenate them with :func:`concat_workloads` and cost the union
        through :meth:`run_workloads`.
        """
        return self._statistical_workloads(plans, batch_size, seed)

    def functional_workloads(
        self,
        plans: Sequence[LayerPlan],
        activity: BatchNetworkActivity,
    ) -> List[_LayerBatch]:
        """Build one recorded activity's whole-batch layer workloads (public)."""
        return self._functional_workloads(plans, activity)

    def run_workloads(
        self, workloads: Sequence[_LayerBatch], timesteps: int = 1
    ) -> InferenceResult:
        """Cost pre-built layer workloads through the internal batch engine.

        Each per-layer metric array of the returned result has one entry per
        workload frame, in workload order — so per-frame rows of a
        concatenated workload are bit-for-bit what each constituent run
        would have produced alone (the invariant the serving micro-batcher's
        scatter step relies on, gated by ``tests/serve/``).
        """
        return self._run_layer_batches(workloads, timesteps=timesteps)

    # ------------------------------------------------------------------ #
    # Statistical batch execution
    # ------------------------------------------------------------------ #
    def _synthetic_counts(
        self, plan: LayerPlan, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw a padded per-position spike-count map for a conv layer."""
        spec = plan.spec
        unpadded = spec.input_shape
        counts = rng.binomial(
            unpadded.channels, plan.firing_rate, size=(unpadded.height, unpadded.width)
        )
        return pad_counts(spec, counts)

    def _synthetic_counts_batch(
        self, plan: LayerPlan, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        """Stack every frame's padded spike-count map into a ``(B, Hp, Wp)`` array.

        Each frame draws from its own generator (in frame order), so the
        per-frame streams are identical to the per-frame reference loop; the
        zero padding is applied to the whole stack in one :func:`pad_counts`
        call (bit-for-bit the same as padding each map individually).
        """
        spec = plan.spec
        unpadded = spec.input_shape
        counts = np.stack(
            [
                rng.binomial(
                    unpadded.channels,
                    plan.firing_rate,
                    size=(unpadded.height, unpadded.width),
                )
                for rng in rngs
            ]
        )
        return pad_counts(spec, counts)

    def _statistical_workloads(
        self,
        plans: Sequence[LayerPlan],
        batch_size: int,
        seed: SeedLike,
    ) -> List[_LayerBatch]:
        """Draw every layer's whole-batch synthetic workload.

        Layer-major iteration with one spawned RNG stream per frame: each
        frame's stream is consumed in layer order, exactly as the per-frame
        reference loop consumes it, so the draws are bit-for-bit identical.
        """
        frame_rngs = spawn_rngs(seed, batch_size)
        workloads: List[_LayerBatch] = []
        for plan in plans:
            if plan.kernel is KernelKind.CONV:
                workloads.append(
                    _LayerBatch(plan, counts=self._synthetic_counts_batch(plan, frame_rngs))
                )
            elif plan.kernel is KernelKind.FC:
                nnz = [
                    int(rng.binomial(plan.spec.in_features, plan.firing_rate))
                    for rng in frame_rngs
                ]
                workloads.append(_LayerBatch(plan, nnz=nnz))
            else:
                workloads.append(_LayerBatch(plan, batch=batch_size))
        return workloads

    def run_statistical(
        self,
        plans: Optional[Sequence[LayerPlan]] = None,
        batch_size: Optional[int] = None,
        firing_rates: Optional[Dict[str, float]] = None,
        seed: SeedLike = None,
        timesteps: Optional[int] = None,
    ) -> InferenceResult:
        """Run a batch of frames in statistical mode (default: full S-VGG11).

        Per-frame spike counts are drawn from a binomial distribution with
        each layer's firing rate, reproducing the dynamic-sparsity variation
        the paper captures with its batch of 128 CIFAR-10 frames.

        This is the vectorized batch engine: it iterates layer-major, draws
        all per-frame spike counts of a layer at once (stacked behind a
        leading batch axis, one spawned RNG stream per frame) and costs the
        whole batch through the kernels' ``*_perf_batch`` entry points.  For
        a fixed seed the result is bit-for-bit identical to the per-frame
        loop kept in :meth:`run_statistical_reference`, at a fraction of the
        wall-clock cost (``benchmarks/bench_batch_engine.py`` quantifies the
        speedup at batch 128).
        """
        plans = list(plans) if plans is not None else self.optimizer.plan_svgg11(firing_rates)
        batch_size = batch_size or self.config.batch_size
        timesteps = timesteps or self.config.timesteps
        seed = seed if seed is not None else self.config.seed
        workloads = self._statistical_workloads(plans, batch_size, seed)
        return self._run_layer_batches(workloads, timesteps=timesteps)

    def run_statistical_reference(
        self,
        plans: Optional[Sequence[LayerPlan]] = None,
        batch_size: Optional[int] = None,
        firing_rates: Optional[Dict[str, float]] = None,
        seed: SeedLike = None,
        timesteps: Optional[int] = None,
    ) -> InferenceResult:
        """Per-frame reference implementation of :meth:`run_statistical`.

        Walks the batch frame-by-frame and layer-by-layer, re-entering every
        kernel once per frame.  Kept as the golden reference for the batch
        engine's equivalence tests and as the baseline timed by
        ``benchmarks/bench_batch_engine.py``; produces bit-for-bit the same
        :class:`~repro.core.results.InferenceResult` as the vectorized path.
        """
        plans = list(plans) if plans is not None else self.optimizer.plan_svgg11(firing_rates)
        batch_size = batch_size or self.config.batch_size
        timesteps = timesteps or self.config.timesteps
        seed = seed if seed is not None else self.config.seed
        frame_rngs = spawn_rngs(seed, batch_size)

        accumulators = [_LayerAccumulator(plan) for plan in plans]
        for rng in frame_rngs:
            for accumulator in accumulators:
                plan = accumulator.plan
                if plan.kernel is KernelKind.CONV:
                    counts = self._synthetic_counts(plan, rng)
                    stats = self.run_layer(plan, spike_counts=counts)
                elif plan.kernel is KernelKind.FC:
                    nnz = int(rng.binomial(plan.spec.in_features, plan.firing_rate))
                    stats = self.run_layer(plan, nnz=nnz)
                else:
                    stats = self.run_layer(plan)
                if timesteps > 1:
                    stats = _scale_stats(stats, timesteps)
                energy = self.layer_energy(plan, stats)
                accumulator.add(stats, energy, self.cluster.clock_hz)
        return InferenceResult(
            config=self.config,
            layers=[a.result(self.cluster.clock_hz) for a in accumulators],
            clock_hz=self.cluster.clock_hz,
        )

    # ------------------------------------------------------------------ #
    # Functional batch execution
    # ------------------------------------------------------------------ #
    def record_activity(
        self,
        network: SpikingNetwork,
        frames: Sequence[np.ndarray],
        numerics: Optional[NumericsPolicy] = None,
    ) -> BatchNetworkActivity:
        """Record the network's batched activity under this engine's timesteps.

        One vectorized :meth:`~repro.snn.network.SpikingNetwork.forward_batch`
        pass over all frames.  The returned activity is reusable: costing
        several hardware variants (baseline vs SpikeStream, FP16 vs FP8) on
        the same recorded activity only pays the forward pass once — pass it
        to :meth:`run_functional` via ``activity=``.  ``numerics`` selects
        the golden-model policy of the pass (default: the engine's own
        :attr:`numerics`).
        """
        policy = self.numerics if numerics is None else numerics
        return network.forward_batch(
            frames, timesteps=self.config.timesteps, policy=policy
        )

    def _check_activity(
        self, activity: BatchNetworkActivity, frames: Sequence[np.ndarray]
    ) -> None:
        """Reject a pre-recorded activity that cannot belong to ``frames``.

        Results are memoized under a fingerprint of (config, network,
        frames) that does not cover the activity object, so a stale or
        mismatched activity would poison the store; the cheap consistency
        checks here — frame count and records-per-timestep — catch the
        common mistakes (different batch, different timesteps) before
        anything is costed or cached.
        """
        num_frames = frames.shape[0] if isinstance(frames, np.ndarray) else len(frames)
        if activity.batch_size != num_frames:
            raise ValueError(
                f"activity covers {activity.batch_size} frame(s) but {num_frames} "
                "frame(s) were supplied"
            )
        records_per_layer: Dict[int, int] = {}
        for record in activity.records:
            records_per_layer[record.layer_index] = (
                records_per_layer.get(record.layer_index, 0) + 1
            )
        timesteps = set(records_per_layer.values())
        if timesteps and timesteps != {self.config.timesteps}:
            raise ValueError(
                f"activity records {sorted(timesteps)} timestep(s) per layer but "
                f"this engine's configuration uses {self.config.timesteps}"
            )

    def _functional_workloads(
        self,
        plans: Sequence[LayerPlan],
        activity: BatchNetworkActivity,
    ) -> List[_LayerBatch]:
        """Stack recorded activity into whole-batch layer workloads.

        The batch axis enumerates ``(frame, timestep)`` pairs frame-major —
        ``frame 0 t0, frame 0 t1, ..., frame 1 t0, ...`` — which is exactly
        the order the per-frame reference loop appends per-layer entries in,
        so the resulting per-frame metric arrays line up element for element.
        """
        workloads: List[_LayerBatch] = []
        for plan in plans:
            records = activity.for_name(plan.name)
            if not records:
                continue
            batch = activity.batch_size
            if plan.kernel is KernelKind.ENCODE:
                workloads.append(_LayerBatch(plan, batch=batch * len(records)))
            elif plan.kernel is KernelKind.CONV:
                # (T, B, H, W) per-position counts -> frame-major (B*T, Hp, Wp).
                counts = np.stack(
                    [np.count_nonzero(r.input_spikes, axis=3) for r in records]
                )
                counts = counts.transpose(1, 0, 2, 3).reshape(
                    batch * len(records), counts.shape[2], counts.shape[3]
                )
                workloads.append(_LayerBatch(plan, counts=pad_counts(plan.spec, counts)))
            else:
                nnz = np.stack(
                    [np.count_nonzero(r.input_spikes, axis=1) for r in records]
                )
                workloads.append(
                    _LayerBatch(plan, nnz=[int(n) for n in nnz.T.reshape(-1)])
                )
        return workloads

    def run_functional(
        self,
        network: SpikingNetwork,
        frames: Sequence[np.ndarray],
        firing_rates: Optional[Dict[str, float]] = None,
        activity: Optional[BatchNetworkActivity] = None,
        numerics: Optional[NumericsPolicy] = None,
    ) -> InferenceResult:
        """Run the performance model on the *actual* activity of a network.

        The whole batch of frames goes through one vectorized
        :meth:`~repro.snn.network.SpikingNetwork.forward_batch` pass; the
        stacked per-layer spike maps then drive the kernels' ``*_perf_batch``
        entry points through the same internal batch engine as
        :meth:`run_statistical`.  The result is bit-for-bit identical to the
        historical per-frame loop kept in :meth:`run_functional_reference`
        (gated by ``tests/core/test_functional_batch.py``), at a fraction of
        the wall-clock cost (``benchmarks/bench_functional.py``).

        Pass a pre-recorded ``activity`` (see :meth:`record_activity`) to
        skip the forward pass — e.g. when costing several hardware variants
        on the same recorded spike activity.

        ``numerics`` selects the golden-model
        :class:`~repro.snn.numerics.NumericsPolicy` of the forward pass
        (default: the engine's own :attr:`numerics`, itself the FP64 dense
        reference unless constructed otherwise).  The performance model is
        policy-independent — it reads spike counts — so only the recorded
        spike maps (and thus the costed counts) can differ between policies.
        """
        plans = self.optimizer.plan_network(network, firing_rates)
        if activity is None:
            activity = self.record_activity(network, frames, numerics=numerics)
        else:
            self._check_activity(activity, frames)
        workloads = self._functional_workloads(plans, activity)
        # Timesteps are real executions recorded one-per-record in the
        # activity (already unrolled into the batch axis): no scaling.
        return self._run_layer_batches(workloads, timesteps=1)

    def run_functional_reference(
        self,
        network: SpikingNetwork,
        frames: Sequence[np.ndarray],
        firing_rates: Optional[Dict[str, float]] = None,
    ) -> InferenceResult:
        """Per-frame reference implementation of :meth:`run_functional`.

        Walks the batch frame-by-frame: one per-frame
        :meth:`~repro.snn.network.SpikingNetwork.forward` pass followed by
        one scalar kernel-perf call per recorded layer and timestep.  Kept
        as the golden reference for the batched functional engine's
        equivalence tests and as the baseline timed by
        ``benchmarks/bench_functional.py``.
        """
        plans = self.optimizer.plan_network(network, firing_rates)
        plans_by_name = {plan.name: plan for plan in plans}
        accumulators = {plan.name: _LayerAccumulator(plan) for plan in plans}

        for frame in frames:
            activity = network.forward(frame, timesteps=self.config.timesteps)
            self._accumulate_activity(activity, plans_by_name, accumulators)
        return InferenceResult(
            config=self.config,
            layers=[accumulators[plan.name].result(self.cluster.clock_hz) for plan in plans],
            clock_hz=self.cluster.clock_hz,
        )

    def _accumulate_activity(
        self,
        activity: NetworkActivity,
        plans_by_name: Dict[str, LayerPlan],
        accumulators: Dict[str, "_LayerAccumulator"],
    ) -> None:
        for record in activity.records:
            plan = plans_by_name.get(record.name)
            if plan is None:
                continue
            if plan.kernel is KernelKind.ENCODE:
                stats = self.run_layer(plan)
            elif plan.kernel is KernelKind.CONV:
                # Counting the unpadded map then zero-padding the counts is
                # exactly counting the padded map (the ring carries no
                # spikes); pad_counts is the shared home of that logic.
                counts = pad_counts(
                    plan.spec, np.count_nonzero(record.input_spikes, axis=2)
                )
                stats = self.run_layer(plan, spike_counts=counts)
            else:
                nnz = int(np.count_nonzero(record.input_spikes))
                stats = self.run_layer(plan, nnz=nnz)
            energy = self.layer_energy(plan, stats)
            accumulators[record.name].add(stats, energy, self.cluster.clock_hz)


def concat_workloads(
    workload_lists: Sequence[Sequence[_LayerBatch]],
) -> List[_LayerBatch]:
    """Concatenate several runs' layer workloads along the batch axis.

    Every list must describe the same layer sequence (same plans in the same
    order — the micro-batcher guarantees this by only coalescing requests
    with identical configuration fingerprints).  Conv count stacks are
    concatenated, FC nnz lists chained, encode frame counts summed; the
    resulting per-layer batch axis is run-major, matching the scatter
    offsets of :meth:`repro.core.results.InferenceResult.frame_slice`.
    """
    if not workload_lists:
        return []
    first = workload_lists[0]
    if len(workload_lists) == 1:
        return list(first)
    for other in workload_lists[1:]:
        if len(other) != len(first) or any(
            a.plan.name != b.plan.name or a.plan.kernel is not b.plan.kernel
            for a, b in zip(first, other)
        ):
            raise ValueError("cannot concatenate workloads of different layer plans")
    combined: List[_LayerBatch] = []
    for layer_index, head in enumerate(first):
        parts = [workloads[layer_index] for workloads in workload_lists]
        if head.counts is not None:
            combined.append(
                _LayerBatch(head.plan, counts=np.concatenate([p.counts for p in parts]))
            )
        elif head.nnz is not None:
            nnz: List[int] = []
            for part in parts:
                nnz.extend(part.nnz)
            combined.append(_LayerBatch(head.plan, nnz=nnz))
        else:
            combined.append(_LayerBatch(head.plan, batch=sum(p.batch for p in parts)))
    return combined


def _scale_stats(stats: ClusterStats, timesteps: int) -> ClusterStats:
    """Repeat a single-timestep execution for ``timesteps`` timesteps.

    All activity counters scale linearly; derived ratios (utilization, IPC)
    are unchanged, which matches executing the same layer once per timestep.
    ``timesteps <= 1`` returns the stats unchanged.
    """
    if timesteps <= 1:
        return stats
    scaled_cores = [
        replace(
            core,
            **{
                field_info.name: getattr(core, field_info.name) * timesteps
                for field_info in dataclass_fields(core)
                if field_info.name != "core_id"
            },
        )
        for core in stats.core_stats
    ]
    return replace(
        stats,
        core_stats=scaled_cores,
        dma_cycles=stats.dma_cycles * timesteps,
        dma_bytes=stats.dma_bytes * timesteps,
        dma_exposed_cycles=stats.dma_exposed_cycles * timesteps,
        total_cycles=stats.total_cycles * timesteps,
    )
