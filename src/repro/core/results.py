"""Result records of SpikeStream inference runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..config import RunConfig
from ..types import Precision

#: Per-frame metric arrays carried by every :class:`LayerResult`.
PER_FRAME_METRICS = ("cycles", "fpu_utilization", "ipc", "energy_j", "power_w", "dma_bytes")


@dataclass
class LayerResult:
    """Per-layer metrics aggregated over a batch of input frames.

    All per-frame arrays have the same length (the batch size); the
    ``mean_*`` / ``std_*`` properties provide the statistics the paper
    reports (average and standard deviation over 128 frames).
    """

    name: str
    kernel: str
    precision: Precision
    streaming: bool
    cycles: np.ndarray
    fpu_utilization: np.ndarray
    ipc: np.ndarray
    energy_j: np.ndarray
    power_w: np.ndarray
    dma_bytes: np.ndarray
    clock_hz: float = 1.0e9

    def __post_init__(self) -> None:
        lengths = {
            len(np.atleast_1d(getattr(self, name))) for name in PER_FRAME_METRICS
        }
        if len(lengths) != 1:
            raise ValueError(f"per-frame arrays of layer {self.name!r} have inconsistent lengths")
        for name in PER_FRAME_METRICS:
            setattr(self, name, np.atleast_1d(np.asarray(getattr(self, name), dtype=np.float64)))

    @property
    def batch_size(self) -> int:
        """Number of frames aggregated."""
        return int(len(self.cycles))

    # -- means ------------------------------------------------------------
    @property
    def mean_cycles(self) -> float:
        """Mean cycles per frame."""
        return float(np.mean(self.cycles))

    @property
    def mean_runtime_s(self) -> float:
        """Mean runtime per frame in seconds."""
        return self.mean_cycles / self.clock_hz

    @property
    def mean_fpu_utilization(self) -> float:
        """Mean FPU utilization."""
        return float(np.mean(self.fpu_utilization))

    @property
    def mean_ipc(self) -> float:
        """Mean per-core IPC."""
        return float(np.mean(self.ipc))

    @property
    def mean_energy_j(self) -> float:
        """Mean energy per frame in joules."""
        return float(np.mean(self.energy_j))

    @property
    def mean_power_w(self) -> float:
        """Mean power in watts."""
        return float(np.mean(self.power_w))

    # -- standard deviations ------------------------------------------------
    @property
    def std_cycles(self) -> float:
        """Standard deviation of cycles over the batch."""
        return float(np.std(self.cycles))

    @property
    def std_fpu_utilization(self) -> float:
        """Standard deviation of FPU utilization over the batch."""
        return float(np.std(self.fpu_utilization))

    @property
    def std_energy_j(self) -> float:
        """Standard deviation of energy over the batch."""
        return float(np.std(self.energy_j))

    def frame_slice(self, start: int, stop: int) -> "LayerResult":
        """A new layer result covering frames ``start:stop`` of this one.

        Per-frame metric arrays are copied (never views), so slicing a
        shared batch result can hand independent per-request results to
        concurrent callers — the scatter step of the serving micro-batcher.
        """
        if not 0 <= start < stop <= self.batch_size:
            raise ValueError(
                f"frame slice [{start}:{stop}] out of range for batch size "
                f"{self.batch_size}"
            )
        metrics = {
            metric: np.array(getattr(self, metric)[start:stop])
            for metric in PER_FRAME_METRICS
        }
        return LayerResult(
            name=self.name,
            kernel=self.kernel,
            precision=self.precision,
            streaming=self.streaming,
            clock_hz=self.clock_hz,
            **metrics,
        )

    def identical_to(self, other: "LayerResult") -> bool:
        """Bit-for-bit equality of every per-frame metric array.

        Used by the batch-engine equivalence tests and benchmark: no
        tolerances are applied, every float must match exactly.
        """
        if self.name != other.name or self.kernel != other.kernel:
            return False
        return all(
            np.array_equal(getattr(self, metric), getattr(other, metric))
            for metric in PER_FRAME_METRICS
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable dictionary round-tripping through :meth:`from_dict`.

        Unlike :meth:`as_dict` (an aggregated summary), this carries the full
        per-frame metric arrays recorded from the cluster's
        :class:`~repro.arch.trace.ClusterStats` (cycles, FPU utilization,
        IPC, energy, power, DMA bytes), so a reloaded result is bit-for-bit
        :meth:`identical_to` the original.
        """
        data: Dict[str, object] = {
            "name": self.name,
            "kernel": self.kernel,
            "precision": self.precision.value,
            "streaming": bool(self.streaming),
            "clock_hz": float(self.clock_hz),
        }
        for metric in PER_FRAME_METRICS:
            data[metric] = np.asarray(getattr(self, metric)).tolist()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "LayerResult":
        """Reconstruct a layer result from :meth:`to_dict` output."""
        metrics = {
            metric: np.asarray(data[metric], dtype=np.float64)
            for metric in PER_FRAME_METRICS
        }
        return cls(
            name=str(data["name"]),
            kernel=str(data["kernel"]),
            precision=Precision.from_name(str(data["precision"])),
            streaming=bool(data["streaming"]),
            clock_hz=float(data.get("clock_hz", 1.0e9)),
            **metrics,
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of the aggregated metrics."""
        return {
            "layer": self.name,
            "kernel": self.kernel,
            "precision": self.precision.value,
            "streaming": self.streaming,
            "mean_cycles": self.mean_cycles,
            "std_cycles": self.std_cycles,
            "mean_runtime_ms": self.mean_runtime_s * 1e3,
            "mean_fpu_utilization": self.mean_fpu_utilization,
            "std_fpu_utilization": self.std_fpu_utilization,
            "mean_ipc": self.mean_ipc,
            "mean_energy_mj": self.mean_energy_j * 1e3,
            "std_energy_mj": self.std_energy_j * 1e3,
            "mean_power_w": self.mean_power_w,
        }


@dataclass
class InferenceResult:
    """End-to-end inference metrics of one configuration over a batch."""

    config: RunConfig
    layers: List[LayerResult] = field(default_factory=list)
    clock_hz: float = 1.0e9

    def layer(self, name: str) -> LayerResult:
        """Look up a layer result by name."""
        for result in self.layers:
            if result.name == name:
                return result
        raise KeyError(f"no layer named {name!r} in this result")

    @property
    def layer_names(self) -> List[str]:
        """Names of all layers in execution order."""
        return [result.name for result in self.layers]

    @property
    def conv_layers(self) -> List[LayerResult]:
        """Results of the convolutional (and encoding) layers."""
        return [r for r in self.layers if r.kernel in ("conv", "encode")]

    @property
    def fc_layers(self) -> List[LayerResult]:
        """Results of the fully connected layers."""
        return [r for r in self.layers if r.kernel == "fc"]

    # -- network-level aggregates -------------------------------------------
    @property
    def total_cycles(self) -> float:
        """Mean total cycles per frame (sum over layers)."""
        return float(sum(r.mean_cycles for r in self.layers))

    @property
    def total_runtime_s(self) -> float:
        """Mean end-to-end runtime per frame in seconds."""
        return self.total_cycles / self.clock_hz

    @property
    def total_energy_j(self) -> float:
        """Mean end-to-end energy per frame in joules."""
        return float(sum(r.mean_energy_j for r in self.layers))

    @property
    def network_fpu_utilization(self) -> float:
        """Cycle-weighted average FPU utilization over the whole network."""
        total = self.total_cycles
        if total <= 0:
            return 0.0
        weighted = sum(r.mean_fpu_utilization * r.mean_cycles for r in self.layers)
        return float(weighted / total)

    @property
    def network_ipc(self) -> float:
        """Cycle-weighted average per-core IPC over the whole network."""
        total = self.total_cycles
        if total <= 0:
            return 0.0
        weighted = sum(r.mean_ipc * r.mean_cycles for r in self.layers)
        return float(weighted / total)

    @property
    def average_power_w(self) -> float:
        """Average power over the whole inference."""
        runtime = self.total_runtime_s
        if runtime <= 0:
            return 0.0
        return self.total_energy_j / runtime

    def frame_slice(self, start: int, stop: int) -> "InferenceResult":
        """A new result covering frames ``start:stop`` of every layer.

        The slice is indexed in *metric rows* — for functional runs the
        per-layer arrays carry one row per (frame, timestep) pair
        frame-major, so a request of ``b`` frames over ``T`` timesteps spans
        ``b * T`` rows.  Because per-frame rows are invariant to what else
        shared the batch (the batched kernels' bit-for-bit M-invariance),
        a slice of a coalesced run equals the result of running that
        request alone — the guarantee ``tests/serve`` pins down.
        """
        return InferenceResult(
            config=self.config,
            layers=[layer.frame_slice(start, stop) for layer in self.layers],
            clock_hz=self.clock_hz,
        )

    def identical_to(self, other: "InferenceResult") -> bool:
        """Bit-for-bit equality with another result (same layers, same arrays)."""
        if self.layer_names != other.layer_names:
            return False
        return all(a.identical_to(b) for a, b in zip(self.layers, other.layers))

    def summary(self) -> Dict[str, float]:
        """Headline metrics of the run."""
        return {
            "precision": self.config.precision.value,
            "streaming": self.config.streaming_enabled,
            "batch_size": self.layers[0].batch_size if self.layers else 0,
            "total_runtime_ms": self.total_runtime_s * 1e3,
            "total_energy_mj": self.total_energy_j * 1e3,
            "network_fpu_utilization": self.network_fpu_utilization,
            "network_ipc": self.network_ipc,
            "average_power_w": self.average_power_w,
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable dictionary round-tripping through :meth:`from_dict`.

        Carries the full configuration and every layer's per-frame arrays,
        so :class:`repro.session.ResultStore` can persist whole results and
        serve them back bit-for-bit equal to a cold run.
        """
        return {
            "config": self.config.to_dict(),
            "clock_hz": float(self.clock_hz),
            "layers": [layer.to_dict() for layer in self.layers],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "InferenceResult":
        """Reconstruct an inference result from :meth:`to_dict` output."""
        return cls(
            config=RunConfig.from_dict(data["config"]),
            layers=[LayerResult.from_dict(layer) for layer in data["layers"]],
            clock_hz=float(data.get("clock_hz", 1.0e9)),
        )

    def per_layer_table(self) -> List[Dict[str, float]]:
        """Per-layer metric dictionaries in execution order."""
        return [result.as_dict() for result in self.layers]


def speedup(reference: Optional[InferenceResult], other: InferenceResult) -> float:
    """Network-level speedup of ``other`` relative to ``reference``."""
    if reference is None:
        return 1.0
    if other.total_cycles <= 0:
        return float("inf")
    return reference.total_cycles / other.total_cycles
