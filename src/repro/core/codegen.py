"""SpVA code generation for layer plans.

The paper lists "automatic SpikeStream code generation" as future work; this
module provides a first cut: given a :class:`~repro.core.layer_mapping.LayerPlan`
it emits either the baseline or the streaming SpVA inner loop as a runnable
micro-program (:class:`repro.isa.program.Program`) plus a human-readable
pseudocode rendering similar to Listing 1 of the paper.
"""

from __future__ import annotations

from ..isa.program import Program
from ..isa.spva_listings import build_baseline_spva_program, build_streaming_spva_program
from .layer_mapping import KernelKind, LayerPlan


def generate_spva_program(plan: LayerPlan) -> Program:
    """Generate the SpVA inner-loop micro-program for a layer plan.

    Dense encoding layers have no SpVA (they run an affine-stream matmul), so
    requesting a program for them raises ``ValueError``.
    """
    if plan.kernel is KernelKind.ENCODE:
        raise ValueError(
            f"layer {plan.name!r} is the dense encoding layer and has no SpVA inner loop"
        )
    if plan.streaming:
        program = build_streaming_spva_program()
    else:
        program = build_baseline_spva_program()
    program.name = f"{plan.name}-spva-{'stream' if plan.streaming else 'baseline'}"
    return program


def spva_pseudocode(plan: LayerPlan) -> str:
    """Render the layer's SpVA strategy as Listing-1-style pseudocode."""
    simd = plan.simd_width
    if plan.kernel is KernelKind.ENCODE:
        return (
            f"// {plan.name}: dense spike-encoding layer ({plan.precision.value}, "
            f"SIMD width {simd})\n"
            "for each output position (im2row row):\n"
            "    configure affine SR0 on the input-current row\n"
            "    configure affine SR1 on the weight column block\n"
            "    frep k*k*C_in:  ic[0:simd] += sr_read(SR0) * sr_read(SR1)\n"
            "    fused LIF activation, emit compressed output spikes\n"
        )
    header = (
        f"// {plan.name}: compressed {plan.kernel.value} layer ({plan.precision.value}, "
        f"SIMD width {simd}, {'SSR+frep' if plan.streaming else 'baseline'})\n"
    )
    if plan.streaming:
        body = (
            "for each receptive field (workload stealing):\n"
            "    for each SIMD output-channel group:\n"
            "        for each spatial position in the RF:\n"
            "            if s_len != 0:\n"
            "                sr_set_indir(SR1, &w[w_baddr])\n"
            "                sr_set_idcs(SR1, &c_idcs[s_baddr])\n"
            "                sr_set_bound(SR1, s_len)\n"
            "                frep s_len:  ic += sr_read(SR1)\n"
            "        fused LIF activation, emit compressed output spikes\n"
        )
    else:
        body = (
            "for each receptive field (workload stealing):\n"
            "    for each SIMD output-channel group:\n"
            "        for each spatial position in the RF:\n"
            "            for j in range(s_len):            # 8 instructions per element\n"
            "                ic += w[c_idcs[s_baddr + j] + w_baddr]\n"
            "        fused LIF activation, emit compressed output spikes\n"
        )
    return header + body
