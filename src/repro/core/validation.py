"""End-to-end validation of the compressed kernel chain against the golden model.

The paper's correctness argument is implicit (the RTL kernels compute the same
network); this reproduction makes it explicit and reusable: given any
feed-forward :class:`~repro.snn.network.SpikingNetwork` and a batch of input
frames, :func:`validate_network_on_kernels` runs every weighted layer twice —
once inside the golden NumPy network and once through the compressed cluster
kernels (:mod:`repro.kernels`) — and reports whether the spike trains agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..formats.convert import compress_ifmap, compress_vector
from ..kernels.conv import ConvLayerSpec, conv_layer_functional
from ..kernels.encode import EncodeLayerSpec, encode_layer_functional
from ..kernels.fc import FcLayerSpec, fc_layer_functional
from ..snn.network import SpikingNetwork
from ..snn.reference import conv2d_hwc, linear
from ..types import LayerKind


@dataclass
class LayerValidation:
    """Outcome of validating one weighted layer on one frame."""

    layer_name: str
    frame_index: int
    spikes_match: bool
    max_current_error: float
    golden_spike_count: int
    kernel_spike_count: int


@dataclass
class ValidationReport:
    """Aggregated validation outcome over all layers and frames."""

    entries: List[LayerValidation] = field(default_factory=list)

    @property
    def all_match(self) -> bool:
        """True when every layer of every frame produced identical spikes."""
        return all(entry.spikes_match for entry in self.entries)

    @property
    def max_current_error(self) -> float:
        """Largest absolute input-current deviation observed."""
        if not self.entries:
            return 0.0
        return max(entry.max_current_error for entry in self.entries)

    def mismatches(self) -> List[LayerValidation]:
        """Entries whose spike trains differ."""
        return [entry for entry in self.entries if not entry.spikes_match]

    def summary(self) -> dict:
        """Headline summary of the validation."""
        return {
            "layers_checked": len(self.entries),
            "all_match": self.all_match,
            "mismatches": len(self.mismatches()),
            "max_current_error": self.max_current_error,
        }


def validate_network_on_kernels(
    network: SpikingNetwork, frames: Sequence[np.ndarray], index_bytes: int = 2
) -> ValidationReport:
    """Check that the compressed kernels reproduce the golden network exactly.

    Every weighted layer's recorded input activity is re-executed through the
    corresponding cluster kernel (dense encode, compressed conv or compressed
    FC) with the same weights and a zero initial membrane (single-timestep
    networks), and the resulting spikes are compared elementwise.
    """
    report = ValidationReport()
    for frame_index, frame in enumerate(frames):
        activity = network.forward(frame, timesteps=1)
        for record in activity.records:
            layer = network.layers[record.layer_index]
            if layer.kind is LayerKind.CONV and layer.encodes_input:
                spec = EncodeLayerSpec(
                    name=layer.name,
                    input_shape=record.input_shape,
                    in_channels=layer.in_channels,
                    out_channels=layer.out_channels,
                    kernel_size=layer.kernel_size,
                    stride=layer.stride,
                    padding=layer.padding,
                    lif=layer.lif,
                )
                currents, _, spikes, _ = encode_layer_functional(
                    spec, record.input_currents, layer.require_weights(), index_bytes=index_bytes
                )
                reference_currents = conv2d_hwc(
                    record.input_currents, layer.require_weights(),
                    stride=layer.stride, padding=layer.padding,
                )
            elif layer.kind is LayerKind.CONV:
                spec = ConvLayerSpec(
                    name=layer.name,
                    input_shape=record.input_shape,
                    in_channels=layer.in_channels,
                    out_channels=layer.out_channels,
                    kernel_size=layer.kernel_size,
                    stride=layer.stride,
                    padding=layer.padding,
                    lif=layer.lif,
                )
                padded = np.pad(
                    record.input_spikes,
                    ((layer.padding, layer.padding), (layer.padding, layer.padding), (0, 0)),
                )
                currents, _, spikes, _ = conv_layer_functional(
                    spec, compress_ifmap(padded, index_bytes=index_bytes), layer.require_weights()
                )
                reference_currents = conv2d_hwc(
                    record.input_spikes, layer.require_weights(),
                    stride=layer.stride, padding=layer.padding,
                )
            else:
                spec = FcLayerSpec(
                    name=layer.name,
                    in_features=layer.in_features,
                    out_features=layer.out_features,
                    lif=layer.lif,
                )
                currents, _, spikes, _ = fc_layer_functional(
                    spec,
                    compress_vector(record.input_spikes.reshape(-1), index_bytes=index_bytes),
                    layer.require_weights(),
                )
                reference_currents = linear(
                    record.input_spikes.astype(np.float64), layer.require_weights()
                )
            golden = record.output_spikes
            current_error = float(np.max(np.abs(currents - reference_currents))) if currents.size else 0.0
            report.entries.append(
                LayerValidation(
                    layer_name=layer.name,
                    frame_index=frame_index,
                    spikes_match=bool(np.array_equal(spikes, golden)),
                    max_current_error=current_error,
                    golden_spike_count=int(np.count_nonzero(golden)),
                    kernel_spike_count=int(np.count_nonzero(spikes)),
                )
            )
    return report
