"""SpikeStream core: the paper's primary contribution as a library API.

* :class:`SpikeStreamOptimizer` maps every network layer onto the execution
  strategy the paper describes (dense affine-stream matmul for the encoding
  layer, compressed indirect-stream SpVA kernels for the remaining conv and
  FC layers) subject to the enabled optimization flags.
* :class:`SpikeStreamInference` runs a whole network — functionally or in
  fast statistical mode — on the Snitch cluster model and returns per-layer
  runtime, utilization, IPC and energy.
* :mod:`repro.core.codegen` generates the SpVA inner-loop micro-programs for
  a given layer plan (the "automatic SpikeStream code generation" the paper
  lists as future work).
"""

from .layer_mapping import KernelKind, LayerPlan
from .optimizer import SpikeStreamOptimizer
from .pipeline import SpikeStreamInference
from .results import InferenceResult, LayerResult
from .codegen import generate_spva_program, spva_pseudocode
from .validation import LayerValidation, ValidationReport, validate_network_on_kernels

__all__ = [
    "KernelKind",
    "LayerPlan",
    "SpikeStreamOptimizer",
    "SpikeStreamInference",
    "InferenceResult",
    "LayerResult",
    "generate_spva_program",
    "spva_pseudocode",
    "LayerValidation",
    "ValidationReport",
    "validate_network_on_kernels",
]
