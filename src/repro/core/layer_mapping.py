"""Per-layer execution plans produced by the SpikeStream optimizer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Union

from ..kernels.conv import ConvLayerSpec
from ..kernels.encode import EncodeLayerSpec
from ..kernels.fc import FcLayerSpec
from ..types import Precision, StreamKind

LayerSpec = Union[EncodeLayerSpec, ConvLayerSpec, FcLayerSpec]


class KernelKind(enum.Enum):
    """Which cluster kernel executes a layer."""

    ENCODE = "encode"
    CONV = "conv"
    FC = "fc"


@dataclass
class LayerPlan:
    """How one weighted layer is executed on the cluster.

    Attributes
    ----------
    name:
        Layer name (e.g. ``conv3``).
    kernel:
        Which kernel implements the layer.
    spec:
        The kernel's static layer specification.
    precision:
        Numeric precision of weights and accumulation.
    streaming:
        Whether the SA optimization (SSRs + frep) is applied.
    stream_kinds:
        The stream-register usage of the layer: two affine streams for the
        dense encoding layer, one indirect stream for compressed layers.
    firing_rate:
        Expected firing rate of the layer's ifmap (used by statistical runs).
    notes:
        Human-readable remarks from the optimizer (e.g. why streaming was
        not applied).
    """

    name: str
    kernel: KernelKind
    spec: LayerSpec
    precision: Precision
    streaming: bool
    stream_kinds: List[StreamKind] = field(default_factory=list)
    firing_rate: float = 1.0
    notes: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.firing_rate <= 1.0:
            raise ValueError(f"firing_rate must be in [0, 1], got {self.firing_rate}")
        expected_spec = {
            KernelKind.ENCODE: EncodeLayerSpec,
            KernelKind.CONV: ConvLayerSpec,
            KernelKind.FC: FcLayerSpec,
        }[self.kernel]
        if not isinstance(self.spec, expected_spec):
            raise TypeError(
                f"layer {self.name!r}: kernel {self.kernel.value} requires a "
                f"{expected_spec.__name__}, got {type(self.spec).__name__}"
            )

    @property
    def uses_indirect_stream(self) -> bool:
        """Whether the plan relies on an indirect (gather) stream."""
        return StreamKind.INDIRECT in self.stream_kinds

    @property
    def simd_width(self) -> int:
        """SIMD lanes used by the data-parallelization of this layer."""
        return self.precision.simd_width
