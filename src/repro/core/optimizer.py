"""The SpikeStream optimizer: choose an execution strategy per layer.

The optimizer implements the mapping decisions of Section III:

* the spike-encoding first layer stays dense and is executed as an im2row
  matmul fed by two *affine* stream registers;
* every other convolutional layer uses the compressed fiber-tree ifmap and
  maps its SpVA weight gathers onto one *indirect* stream register;
* fully connected layers use the single-index-array compression with the
  same indirect-stream SpVA;
* when streaming acceleration is disabled (the paper's baseline) the same
  kernels run without stream registers.

The optimizer also checks the plan against the hardware's capabilities
(number of indirect stream registers, supported index widths).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..arch.params import ClusterParams, DEFAULT_CLUSTER
from ..config import RunConfig
from ..kernels.conv import ConvLayerSpec
from ..kernels.encode import EncodeLayerSpec
from ..kernels.fc import FcLayerSpec
from ..snn.network import SpikingNetwork
from ..snn.svgg11 import SVGG11_LAYER_FIRING_RATES, svgg11_layer_shapes
from ..types import LayerKind, OptimizationFlag, StreamKind
from .layer_mapping import KernelKind, LayerPlan

LayerDescription = Dict[str, object]


class SpikeStreamOptimizer:
    """Builds :class:`LayerPlan` objects for a network and a run configuration."""

    def __init__(self, config: RunConfig, cluster: ClusterParams = DEFAULT_CLUSTER):
        self.config = config
        self.cluster = cluster
        self._check_capabilities()

    def _check_capabilities(self) -> None:
        if self.config.streaming_enabled:
            if self.cluster.num_indirect_stream_registers < 1:
                raise ValueError(
                    "streaming acceleration requires at least one indirect stream register"
                )
            if self.config.index_bytes * 8 not in self.cluster.supported_index_bits:
                raise ValueError(
                    f"{self.config.index_bytes * 8}-bit indices are not supported by the "
                    f"indirect stream registers ({self.cluster.supported_index_bits})"
                )

    # ------------------------------------------------------------------ #
    # Planning entry points
    # ------------------------------------------------------------------ #
    def plan_svgg11(self, firing_rates: Optional[Dict[str, float]] = None) -> List[LayerPlan]:
        """Plan the full S-VGG11 network from its shape description."""
        rates = dict(SVGG11_LAYER_FIRING_RATES)
        if firing_rates:
            rates.update(firing_rates)
        return self.plan_descriptions(svgg11_layer_shapes(), rates)

    def plan_descriptions(
        self,
        descriptions: Sequence[LayerDescription],
        firing_rates: Optional[Dict[str, float]] = None,
    ) -> List[LayerPlan]:
        """Plan from shape descriptions (see :func:`repro.snn.svgg11.svgg11_layer_shapes`)."""
        firing_rates = firing_rates or {}
        plans = []
        for description in descriptions:
            name = str(description["name"])
            rate = float(firing_rates.get(name, description.get("firing_rate", 1.0)))
            plans.append(self._plan_one(description, rate))
        return plans

    def plan_network(
        self, network: SpikingNetwork, firing_rates: Optional[Dict[str, float]] = None
    ) -> List[LayerPlan]:
        """Plan an arbitrary :class:`~repro.snn.network.SpikingNetwork`."""
        firing_rates = firing_rates or {}
        plans: List[LayerPlan] = []
        for index in network.weighted_layers:
            layer = network.layers[index]
            input_shape = network.layer_input_shape(index)
            rate = float(firing_rates.get(layer.name, 1.0 if getattr(layer, "encodes_input", False) else 0.5))
            if layer.kind is LayerKind.CONV:
                description: LayerDescription = {
                    "name": layer.name,
                    "kind": "conv",
                    "input_shape": input_shape,
                    "in_channels": layer.in_channels,
                    "out_channels": layer.out_channels,
                    "kernel_size": layer.kernel_size,
                    "stride": layer.stride,
                    "padding": layer.padding,
                    "encodes_input": layer.encodes_input,
                    "lif": layer.lif,
                }
            else:
                description = {
                    "name": layer.name,
                    "kind": "linear",
                    "input_shape": input_shape,
                    "in_channels": layer.in_features,
                    "out_channels": layer.out_features,
                    "encodes_input": False,
                    "lif": layer.lif,
                }
            plans.append(self._plan_one(description, rate))
        return plans

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _plan_one(self, description: LayerDescription, firing_rate: float) -> LayerPlan:
        streaming = self.config.streaming_enabled
        name = str(description["name"])
        kind = str(description["kind"])
        lif = description.get("lif")
        lif_kwargs = {"lif": lif} if lif is not None else {}

        if kind == "conv" and bool(description.get("encodes_input", False)):
            spec = EncodeLayerSpec(
                name=name,
                input_shape=description["input_shape"],
                in_channels=int(description["in_channels"]),
                out_channels=int(description["out_channels"]),
                kernel_size=int(description.get("kernel_size", 3)),
                stride=int(description.get("stride", 1)),
                padding=int(description.get("padding", 1)),
                **lif_kwargs,
            )
            streams = [StreamKind.AFFINE, StreamKind.AFFINE] if streaming else []
            return LayerPlan(
                name=name,
                kernel=KernelKind.ENCODE,
                spec=spec,
                precision=self.config.precision,
                streaming=streaming,
                stream_kinds=streams,
                firing_rate=1.0,
                notes="dense spike-encoding layer: im2row matmul with two affine streams",
            )
        if kind == "conv":
            spec = ConvLayerSpec(
                name=name,
                input_shape=description["input_shape"],
                in_channels=int(description["in_channels"]),
                out_channels=int(description["out_channels"]),
                kernel_size=int(description.get("kernel_size", 3)),
                stride=int(description.get("stride", 1)),
                padding=int(description.get("padding", 1)),
                **lif_kwargs,
            )
            streams = [StreamKind.INDIRECT] if streaming else []
            return LayerPlan(
                name=name,
                kernel=KernelKind.CONV,
                spec=spec,
                precision=self.config.precision,
                streaming=streaming,
                stream_kinds=streams,
                firing_rate=firing_rate,
                notes="compressed convolution: one indirect stream per SpVA",
            )
        if kind == "linear":
            in_features = int(description["in_channels"])
            out_features = int(description["out_channels"])
            spec = FcLayerSpec(
                name=name, in_features=in_features, out_features=out_features, **lif_kwargs
            )
            streams = [StreamKind.INDIRECT] if streaming else []
            return LayerPlan(
                name=name,
                kernel=KernelKind.FC,
                spec=spec,
                precision=self.config.precision,
                streaming=streaming,
                stream_kinds=streams,
                firing_rate=firing_rate,
                notes="compressed fully connected layer: one SpVA per SIMD output group",
            )
        raise ValueError(f"cannot plan layer {name!r} of kind {kind!r}")
