"""A stdlib-only distributed span tracer for the serving stack.

One request admitted by :class:`~repro.serve.server.InferenceServer` (or its
distributed subclass, :class:`~repro.net.coordinator.Coordinator`) becomes
one **trace**: a tree of timed spans on :func:`time.monotonic` clocks.

* The server opens the **root span** at admission and finishes it from the
  request future's done-callback — so every resolution path (normal
  completion, store short-circuit, deadline expiry, error, cancellation)
  closes the root, and a trace can never leak open because a request took
  an unusual exit.
* :class:`~repro.serve.batcher.MicroBatcher` records ``queue_wait`` /
  ``batch_assembly`` child spans while collecting and wraps execution in an
  ``engine_pass`` span (with per-layer children when
  :attr:`Tracer.profile_layers` is on).
* The :class:`~repro.net.coordinator.Coordinator` opens a ``dispatch`` span
  per shipped batch; the :class:`TraceContext` rides the v2 wire inside the
  request dicts, the worker's ``worker_execute`` / engine spans come back on
  the results frame, and :meth:`Tracer.adopt` rebases their clock into the
  coordinator's so the whole cross-host trace reads on one timeline.
  Rescued batches link the original dispatch span as a **follow-from**
  (the ``follows`` field), preserving re-dispatch lineage.

Cost discipline: a disabled tracer (the default) reduces every hook to one
attribute check — :meth:`Tracer.span` returns the shared :data:`NULL_SPAN`
singleton and :meth:`Tracer.admit` returns immediately — which is what
keeps the tracing-off overhead under the 2% bar ``benchmarks/bench_trace.py``
gates.  Completed traces land in a bounded ring buffer
(:class:`TraceCollector`); per-trace sampling (``sample=0.1`` traces one
request in ten) bounds the cost of always-on tracing in production.
"""

from __future__ import annotations

import itertools
import os
import random
import threading
import time
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "NULL_SPAN",
    "OpenSpan",
    "Span",
    "STAGE_NAMES",
    "TraceCollector",
    "TraceContext",
    "Tracer",
]

#: Span names fed into the ``serve.stage_latency.*`` histogram family.
#: Per-layer spans (``layer:*``) are deliberately excluded — one histogram
#: per network layer would explode the registry.
STAGE_NAMES = (
    "request",
    "queue_wait",
    "batch_assembly",
    "engine_pass",
    "dispatch",
    "worker_execute",
)

_SPAN_IDS = itertools.count(1)


def _new_id() -> str:
    """A span/trace id unique across every process of a cluster.

    The pid prefix disambiguates coordinator and worker processes (each has
    its own counter); no RNG is involved, so ids are deterministic per
    process and cheap.
    """
    return f"{os.getpid():x}-{next(_SPAN_IDS):x}"


class TraceContext:
    """The per-request trace state that rides the wire.

    Attached to :class:`~repro.serve.queue.InferenceRequest.trace` at
    admission and shipped to workers inside the v2 ``batch`` frame
    (``_REQUEST_WIRE_FIELDS``), so remote spans stitch into the same trace.

    ``parent_id`` is the span new children should attach under *right now*
    (the root at admission, the dispatch span while on a worker);
    ``follows`` carries the previous dispatch span's id across a rescue
    re-dispatch; ``wait_from`` restarts the queue-wait clock after a
    rescue without touching ``enqueued_at`` (latency accounting owns that).
    """

    __slots__ = (
        "trace_id", "root_id", "parent_id", "sampled", "follows", "wait_from",
    )

    def __init__(self, trace_id: str, root_id: str, parent_id: str,
                 sampled: bool = True, follows: Optional[str] = None,
                 wait_from: Optional[float] = None):
        self.trace_id = trace_id
        self.root_id = root_id
        self.parent_id = parent_id
        self.sampled = sampled
        self.follows = follows
        self.wait_from = wait_from

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state) -> None:
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceContext(trace={self.trace_id}, parent={self.parent_id}, "
            f"sampled={self.sampled})"
        )


class _NullSpan:
    """The shared do-nothing span of a disabled (or unsampled) path.

    One instance serves every call site: entering/exiting and ``finish()``
    are no-ops and ``id`` is ``None``, so instrumented code never branches
    on whether tracing is on.
    """

    __slots__ = ()

    id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def finish(self, status: str = "ok", **attrs) -> None:
        return None


#: The singleton every disabled hook returns (identity-checked by tests).
NULL_SPAN = _NullSpan()


class TraceCollector:
    """Bounded, thread-safe assembly point for span records.

    A trace is *open* while any of its spans is unfinished; it **completes**
    when its root span has finished and its open-span count is zero, at
    which point it moves into a bounded ring buffer of finished traces
    (``deque(maxlen=capacity)`` — the oldest completed trace is dropped,
    and counted, when the buffer is full).  Worker processes never hold a
    root, so their records are harvested with :meth:`drain` instead and
    shipped home on the results frame.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        #: trace_id -> {"spans": [...], "open": int, "root_done": bool}
        self._traces: Dict[str, Dict[str, object]] = {}
        self._done: deque = deque(maxlen=capacity)
        self._spans_total = 0
        self._completed_total = 0
        self._dropped_total = 0
        self._late_total = 0

    # -- record intake ------------------------------------------------------
    def _state_locked(self, trace_id: str) -> Dict[str, object]:
        state = self._traces.get(trace_id)
        if state is None:
            state = {"spans": [], "open": 0, "root_done": False}
            self._traces[trace_id] = state
        return state

    def begin(self, trace_id: str) -> None:
        """Count one span opened on ``trace_id``."""
        with self._lock:
            state = self._state_locked(trace_id)
            state["open"] += 1

    def finish(self, record: Dict[str, object], root: bool = False) -> None:
        """File one finished span record (opened earlier via :meth:`begin`)."""
        with self._lock:
            state = self._state_locked(record["trace_id"])
            state["spans"].append(record)
            state["open"] -= 1
            if root:
                state["root_done"] = True
            self._spans_total += 1
            self._maybe_complete_locked(record["trace_id"], state)

    def record(self, record: Dict[str, object]) -> None:
        """File an already-closed interval (no open/close bracketing)."""
        with self._lock:
            state = self._state_locked(record["trace_id"])
            state["spans"].append(record)
            self._spans_total += 1

    def adopt(self, records: Iterable[Dict[str, object]]) -> int:
        """File records produced in another process (already rebased).

        Records for traces this collector is not currently assembling —
        late results of an already-completed (or never-sampled) trace — are
        dropped and counted, never filed as orphans.  Returns the number
        adopted.
        """
        adopted = 0
        with self._lock:
            for record in records:
                state = self._traces.get(record["trace_id"])
                if state is None:
                    self._late_total += 1
                    continue
                state["spans"].append(record)
                self._spans_total += 1
                adopted += 1
        return adopted

    def _maybe_complete_locked(self, trace_id: str,
                               state: Dict[str, object]) -> None:
        if not state["root_done"] or state["open"] > 0:
            return
        del self._traces[trace_id]
        if len(self._done) == self._done.maxlen:
            self._dropped_total += 1
        self._done.append({"trace_id": trace_id, "spans": state["spans"]})
        self._completed_total += 1

    # -- harvest ------------------------------------------------------------
    def drain(self) -> List[Dict[str, object]]:
        """Remove and return every finished record (the worker-side harvest).

        Worker traces have no root, so they never complete locally; the
        worker drains after each batch and ships the records home.  Trace
        states left empty (no spans, nothing open) are deleted.
        """
        with self._lock:
            harvested: List[Dict[str, object]] = []
            for trace_id in list(self._traces):
                state = self._traces[trace_id]
                harvested.extend(state["spans"])
                state["spans"] = []
                if state["open"] == 0 and not state["root_done"]:
                    del self._traces[trace_id]
            return harvested

    def completed(self, flush: bool = False) -> List[Dict[str, object]]:
        """The completed traces currently retained (oldest first).

        ``flush=True`` also empties the ring buffer, so periodic exporters
        never ship the same trace twice.
        """
        with self._lock:
            traces = list(self._done)
            if flush:
                self._done.clear()
            return traces

    def stats(self) -> Dict[str, float]:
        """Probe payload for the ``obs.trace`` telemetry entry."""
        with self._lock:
            return {
                "open_traces": float(len(self._traces)),
                "open_spans": float(
                    sum(state["open"] for state in self._traces.values())
                ),
                "completed": float(self._completed_total),
                "retained": float(len(self._done)),
                "dropped": float(self._dropped_total),
                "late": float(self._late_total),
                "spans": float(self._spans_total),
                "capacity": float(self.capacity),
            }


class Span:
    """A context-manager span over one or more sampled trace contexts.

    One ``with`` block produces one record *per covered trace* (a coalesced
    micro-batch executes once but belongs to every member request's trace),
    each attached under that trace's current ``parent_id``.  While the block
    runs, every covered context's ``parent_id`` points at this span, so
    nested ``with`` spans (and :meth:`Tracer.record_span` intervals) parent
    correctly; the previous parents are restored on exit.
    """

    __slots__ = ("_tracer", "name", "id", "_ctxs", "_saved", "start", "attrs")

    def __init__(self, tracer: "Tracer", name: str,
                 ctxs: Sequence[TraceContext], attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.id = _new_id()
        self._ctxs = ctxs
        self._saved: List[str] = []
        self.start = 0.0
        self.attrs = attrs

    def __enter__(self) -> "Span":
        self.start = time.monotonic()
        for ctx in self._ctxs:
            self._tracer.collector.begin(ctx.trace_id)
            self._saved.append(ctx.parent_id)
            ctx.parent_id = self.id
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.monotonic()
        status = "ok" if exc_type is None else "error"
        for ctx, saved in zip(self._ctxs, self._saved):
            ctx.parent_id = saved
            self._tracer.emit(
                self._record(ctx, saved, end, status), root=False
            )
        return False

    def _record(self, ctx: TraceContext, parent: str, end: float,
                status: str) -> Dict[str, object]:
        return {
            "trace_id": ctx.trace_id,
            "span_id": self.id,
            "parent_id": parent,
            "name": self.name,
            "start": self.start,
            "end": end,
            "status": status,
            "pid": os.getpid(),
            "thread": threading.current_thread().name,
            "attrs": self.attrs,
            "follows": [],
        }


class OpenSpan:
    """An explicitly-finished span for intervals that cross threads.

    The root span (opened at admission, finished by the request future's
    done-callback) and the coordinator's dispatch span (opened by the
    dispatcher thread, finished by the link thread or the rescue path)
    cannot be ``with`` blocks — their open and close happen on different
    threads.  This is the sanctioned escape hatch: the ``span-discipline``
    lint rule polices ``tracer.span(...)`` call sites only, precisely so
    these two can exist without suppressions.  ``finish`` is idempotent
    (first outcome wins), mirroring
    :func:`~repro.serve.queue.resolve_future`.
    """

    __slots__ = (
        "_tracer", "name", "id", "_ctxs", "_parents", "start", "attrs",
        "follows", "_root", "_finished",
    )

    def __init__(self, tracer: "Tracer", name: str,
                 ctxs: Sequence[TraceContext], parents: List[Optional[str]],
                 attrs: Dict[str, object], follows: List[str],
                 root: bool = False, span_id: Optional[str] = None):
        self._tracer = tracer
        self.name = name
        self.id = span_id if span_id is not None else _new_id()
        self._ctxs = ctxs
        self._parents = parents
        self.start = time.monotonic()
        self.attrs = attrs
        self.follows = follows
        self._root = root
        self._finished = threading.Event()
        for ctx in ctxs:
            tracer.collector.begin(ctx.trace_id)

    def finish(self, status: str = "ok", **attrs) -> None:
        if self._finished.is_set():
            return
        self._finished.set()
        end = time.monotonic()
        if attrs:
            self.attrs = dict(self.attrs, **attrs)
        for ctx, parent in zip(self._ctxs, self._parents):
            self._tracer.emit(
                {
                    "trace_id": ctx.trace_id,
                    "span_id": self.id,
                    "parent_id": parent,
                    "name": self.name,
                    "start": self.start,
                    "end": end,
                    "status": status,
                    "pid": os.getpid(),
                    "thread": threading.current_thread().name,
                    "attrs": self.attrs,
                    "follows": list(self.follows),
                },
                root=self._root,
            )


class Tracer:
    """The facade instrumented components call (see module docstring).

    Parameters
    ----------
    enabled:
        Master switch.  Off (the default), every hook is a near-free no-op.
    sample:
        Per-trace sampling probability in ``[0, 1]``: the admission-time
        coin flip decides once per request; child spans inherit the
        decision through the :class:`TraceContext`.
    capacity:
        Ring-buffer bound on retained completed traces.
    profile_layers:
        Record one ``layer:<name>`` child span per engine layer inside
        every ``engine_pass`` (off by default: per-layer timing costs one
        clock read per layer).
    seed:
        Seed of the sampling RNG — sampling decisions are reproducible,
        per the repository's seeded-RNG law.
    """

    def __init__(self, enabled: bool = False, sample: float = 1.0,
                 capacity: int = 256, profile_layers: bool = False,
                 seed: int = 0):
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        self.enabled = enabled
        self.sample = sample
        self.profile_layers = profile_layers
        self.collector = TraceCollector(capacity=capacity)
        self._sample_rng = random.Random(seed)
        self._metrics = None

    # -- wiring -------------------------------------------------------------
    def bind_metrics(self, metrics) -> None:
        """Feed finished stage spans into ``serve.stage_latency.*`` histograms."""
        self._metrics = metrics

    # -- admission ----------------------------------------------------------
    def admit(self, request) -> Optional[TraceContext]:
        """Open a root span for ``request`` (the sampling decision point).

        Attaches a :class:`TraceContext` to ``request.trace`` and arranges
        the root span to finish from the future's done-callback — covering
        every resolution path, including the store short-circuit that never
        enqueues and the deadline expiry that never executes.
        """
        if not self.enabled:
            return None
        if self.sample < 1.0 and self._sample_rng.random() >= self.sample:
            return None
        root_id = _new_id()
        ctx = TraceContext(
            trace_id=_new_id(), root_id=root_id, parent_id=root_id,
        )
        root = OpenSpan(
            self, "request", (ctx,), parents=[None],
            attrs={"mode": request.mode, "request": request.id},
            follows=[], root=True, span_id=root_id,
        )
        request.trace = ctx
        request.future.add_done_callback(
            lambda future: root.finish(status=_future_status(future))
        )
        return ctx

    # -- span entry points --------------------------------------------------
    def sampled(self, requests: Iterable) -> List[TraceContext]:
        """The sampled trace contexts of an iterable of requests."""
        if not self.enabled:
            return []
        return [
            request.trace for request in requests
            if request.trace is not None and request.trace.sampled
        ]

    def span(self, name: str, ctxs: Sequence[TraceContext], **attrs):
        """A context-manager span over ``ctxs`` (the only sanctioned opener).

        Returns the shared :data:`NULL_SPAN` when the tracer is disabled or
        no context is sampled, so the instrumented hot path costs one truth
        test.  Use ``with`` — the ``span-discipline`` lint rule rejects
        bare ``start()``/``finish()`` pairs on span call sites.
        """
        if not self.enabled or not ctxs:
            return NULL_SPAN
        return Span(self, name, tuple(ctxs), attrs)

    def open_span(self, name: str, ctxs: Sequence[TraceContext],
                  follows: Optional[List[str]] = None, **attrs):
        """An explicitly-finished span for cross-thread intervals.

        See :class:`OpenSpan`; returns :data:`NULL_SPAN` (whose ``finish``
        is a no-op) when nothing is sampled.
        """
        if not self.enabled or not ctxs:
            return NULL_SPAN
        return OpenSpan(
            self, name, tuple(ctxs),
            parents=[ctx.parent_id for ctx in ctxs], attrs=attrs,
            follows=list(follows) if follows else [],
        )

    def record_span(self, name: str, ctxs: Sequence[TraceContext],
                    start: float, end: float,
                    parent_id: Optional[str] = None, **attrs) -> None:
        """File an already-elapsed interval (e.g. ``queue_wait``) per context."""
        if not self.enabled or not ctxs:
            return
        span_id = _new_id()
        pid = os.getpid()
        thread = threading.current_thread().name
        for ctx in ctxs:
            record = {
                "trace_id": ctx.trace_id,
                "span_id": span_id,
                "parent_id": parent_id if parent_id is not None else ctx.parent_id,
                "name": name,
                "start": start,
                "end": end,
                "status": "ok",
                "pid": pid,
                "thread": thread,
                "attrs": attrs,
                "follows": [],
            }
            self.collector.record(record)
            self._observe_stage(record)

    # -- record plumbing ----------------------------------------------------
    def emit(self, record: Dict[str, object], root: bool = False) -> None:
        """File one finished record and feed the stage-latency telemetry."""
        self.collector.finish(record, root=root)
        self._observe_stage(record)

    def _observe_stage(self, record: Dict[str, object]) -> None:
        metrics = self._metrics
        if metrics is None or record["name"] not in STAGE_NAMES:
            return
        metrics.histogram(f"serve.stage_latency.{record['name']}").observe(
            (record["end"] - record["start"]) * 1e3
        )

    # -- cross-process stitching -------------------------------------------
    def drain(self) -> List[Dict[str, object]]:
        """Harvest finished records for shipment (worker side)."""
        if not self.enabled:
            return []
        return self.collector.drain()

    def adopt(self, records: Sequence[Dict[str, object]],
              sent: float, received: float,
              remote_clock: Optional[Sequence[float]] = None) -> int:
        """Stitch a worker's records into local traces on the local clock.

        ``sent``/``received`` bracket the batch round-trip on *this*
        process's monotonic clock; ``remote_clock`` is the worker's
        ``(first, last)`` monotonic stamps for the same interval.  The
        symmetric offset estimate ``((sent + received) - (first + last)) / 2``
        rebases each record, and rebased intervals are clamped into
        ``[sent, received]`` — monotonic clocks of different hosts share no
        epoch, and the clamp guarantees remote spans nest inside the local
        dispatch span whatever the skew.  Stage latencies observed remotely
        feed the same ``serve.stage_latency.*`` family here.
        """
        if not self.enabled or not records:
            return 0
        offset = 0.0
        if remote_clock is not None:
            first, last = remote_clock
            offset = ((sent + received) - (first + last)) / 2.0
        span = max(received - sent, 0.0)
        rebased = []
        for record in records:
            start = min(max(record["start"] + offset, sent), received)
            end = min(max(record["end"] + offset, start), received)
            record = dict(record, start=start, end=end,
                          attrs=dict(record["attrs"], rtt_s=span))
            rebased.append(record)
        adopted = self.collector.adopt(rebased)
        for record in rebased:
            self._observe_stage(record)
        return adopted

    # -- export -------------------------------------------------------------
    def completed(self, flush: bool = False) -> List[Dict[str, object]]:
        """The completed traces retained in the ring buffer."""
        return self.collector.completed(flush=flush)

    def stats(self) -> Dict[str, float]:
        """The ``obs.trace`` probe payload."""
        data = self.collector.stats()
        data["enabled"] = 1.0 if self.enabled else 0.0
        data["sample"] = float(self.sample)
        return data


def _future_status(future) -> str:
    if future.cancelled():
        return "cancelled"
    return "error" if future.exception() is not None else "ok"


def layer_hook(tracer: Tracer, ctxs: Sequence[TraceContext],
               parent_id: Optional[str]) -> Callable[[str, float, float], None]:
    """The per-layer profiling callback ``engine_pass`` installs.

    Bound once per batch (not per layer) so the engine's layer loop pays
    one indirect call per layer, nothing more.
    """

    def record(name: str, start: float, end: float) -> None:
        tracer.record_span(
            f"layer:{name}", ctxs, start, end, parent_id=parent_id
        )

    return record
