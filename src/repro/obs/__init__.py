"""repro.obs — distributed span tracing for the serving stack.

See :mod:`repro.obs.tracer` for the span model and
:mod:`repro.obs.export` for the Chrome/Perfetto and JSONL exporters.
"""

from repro.obs.export import read_jsonl, to_chrome, to_jsonl, well_nested
from repro.obs.tracer import (
    NULL_SPAN,
    OpenSpan,
    Span,
    STAGE_NAMES,
    TraceCollector,
    TraceContext,
    Tracer,
    layer_hook,
)

__all__ = [
    "NULL_SPAN",
    "OpenSpan",
    "STAGE_NAMES",
    "Span",
    "TraceCollector",
    "TraceContext",
    "Tracer",
    "layer_hook",
    "read_jsonl",
    "to_chrome",
    "to_jsonl",
    "well_nested",
]
