"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON and JSONL.

The Chrome format is the `trace_event` JSON the ``chrome://tracing`` and
Perfetto UIs load directly: one complete event (``ph: "X"``) per span with
microsecond ``ts``/``dur``, plus a flow-event pair (``ph: "s"`` → ``"f"``)
per follow-from link so rescue re-dispatch lineage renders as an arrow from
the failed dispatch span to its replacement.  JSONL is one span record per
line — grep-able, and round-trips through :func:`read_jsonl`.

:func:`well_nested` is the structural validator tests and the smoke ``obs``
step share: every parent resolvable, every span finished, every child
inside its parent's interval (within a slack for cross-host clamping).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, TextIO

__all__ = [
    "read_jsonl",
    "to_chrome",
    "to_jsonl",
    "well_nested",
]


def _tid_table(trace: Dict[str, object]) -> Dict[tuple, int]:
    """Stable small integer per (pid, thread-name), in first-seen order."""
    table: Dict[tuple, int] = {}
    for span in trace["spans"]:
        key = (span["pid"], span["thread"])
        if key not in table:
            table[key] = len(table) + 1
    return table


def to_chrome(traces: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Render completed traces as a ``chrome://tracing`` document."""
    events: List[Dict[str, object]] = []
    flow_ids = 0
    for trace in traces:
        tids = _tid_table(trace)
        by_id = {span["span_id"]: span for span in trace["spans"]}
        for span in trace["spans"]:
            tid = tids[(span["pid"], span["thread"])]
            ts = span["start"] * 1e6
            args = dict(span["attrs"])
            args["trace_id"] = span["trace_id"]
            args["span_id"] = span["span_id"]
            if span["parent_id"] is not None:
                args["parent_id"] = span["parent_id"]
            if span["status"] != "ok":
                args["status"] = span["status"]
            events.append({
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": ts,
                "dur": max(span["end"] - span["start"], 0.0) * 1e6,
                "pid": span["pid"],
                "tid": tid,
                "args": args,
            })
            for origin_id in span["follows"]:
                origin = by_id.get(origin_id)
                if origin is None:
                    continue
                flow_ids += 1
                flow = {
                    "name": "follows",
                    "cat": "repro.flow",
                    "id": flow_ids,
                }
                events.append(dict(
                    flow, ph="s",
                    ts=origin["end"] * 1e6,
                    pid=origin["pid"],
                    tid=tids[(origin["pid"], origin["thread"])],
                ))
                events.append(dict(
                    flow, ph="f", bp="e", ts=ts,
                    pid=span["pid"], tid=tid,
                ))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def to_jsonl(traces: Iterable[Dict[str, object]], stream: TextIO) -> int:
    """Write one span record per line; returns the number of lines."""
    lines = 0
    for trace in traces:
        for span in trace["spans"]:
            stream.write(json.dumps(span, sort_keys=True))
            stream.write("\n")
            lines += 1
    return lines


def read_jsonl(stream: TextIO) -> List[Dict[str, object]]:
    """Regroup a JSONL export into trace dicts (insertion-ordered)."""
    grouped: Dict[str, List[Dict[str, object]]] = {}
    for line in stream:
        line = line.strip()
        if not line:
            continue
        span = json.loads(line)
        grouped.setdefault(span["trace_id"], []).append(span)
    return [
        {"trace_id": trace_id, "spans": spans}
        for trace_id, spans in grouped.items()
    ]


def well_nested(trace: Dict[str, object],
                slack: float = 1e-3) -> Optional[str]:
    """Validate one completed trace's structure; ``None`` means clean.

    Checks: exactly one root (``parent_id`` is ``None``); every other
    parent resolves to a span in the same trace; every span has
    ``end >= start``; every child's interval sits inside its parent's,
    within ``slack`` seconds (cross-host adoption clamps records into the
    dispatch window, but scheduling jitter can leave sub-millisecond
    overhang); every follow-from link resolves.  Returns a description of
    the first violation found.
    """
    spans = trace["spans"]
    if not spans:
        return "trace has no spans"
    by_id = {span["span_id"]: span for span in spans}
    roots = [span for span in spans if span["parent_id"] is None]
    if len(roots) != 1:
        return f"expected exactly one root span, found {len(roots)}"
    for span in spans:
        if span["end"] < span["start"]:
            return f"span {span['name']} ends before it starts"
        parent_id = span["parent_id"]
        if parent_id is None:
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            return f"span {span['name']} has orphan parent {parent_id}"
        if span["start"] < parent["start"] - slack:
            return (
                f"span {span['name']} starts before parent "
                f"{parent['name']}"
            )
        if span["end"] > parent["end"] + slack:
            return (
                f"span {span['name']} ends after parent {parent['name']}"
            )
        for origin in span["follows"]:
            if origin not in by_id:
                return (
                    f"span {span['name']} follows unknown span {origin}"
                )
    return None
