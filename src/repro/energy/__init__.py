"""Activity-based energy and power model of the Snitch cluster.

The paper obtains energy from post-layout gate-level simulation in GF 12LP+
at 1 GHz / 0.8 V.  This package replaces that flow with an activity-based
model: every instruction, scratchpad access, stream element and DMA byte
carries an energy coefficient, plus a constant cluster background power.  The
coefficients (:class:`EnergyParams`) are calibrated so that the per-layer
powers of Figure 4 (≈0.13 W baseline FP16, ≈0.23 W SpikeStream FP16,
≈0.22 W SpikeStream FP8 for the convolutional layers) are reproduced.
"""

from .params import EnergyParams, DEFAULT_ENERGY
from .model import EnergyModel, EnergyReport

__all__ = ["EnergyParams", "DEFAULT_ENERGY", "EnergyModel", "EnergyReport"]
