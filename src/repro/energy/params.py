"""Energy coefficients of the cluster power model (GF 12LP+, 1 GHz, 0.8 V)."""

from __future__ import annotations

from dataclasses import dataclass

from ..types import Precision


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (picojoules) and background power (watts).

    The absolute values are calibrated against the cluster powers reported in
    Figure 4 of the paper rather than taken from a physical library; their
    *relative* ordering follows common 12 nm energy ratios (an SPM access and
    a SIMD FP operation cost roughly the same, an integer instruction a bit
    less, external DMA traffic far more per byte than on-cluster accesses).
    """

    integer_instruction_pj: float = 14.0
    fp64_instruction_pj: float = 25.0
    fp_mac_multiplier: float = 1.6
    spm_access_pj: float = 12.0
    ssr_active_power_w_per_core: float = 0.002
    dma_byte_pj: float = 4.0
    icache_miss_pj: float = 60.0
    cluster_background_power_w: float = 0.040

    def fp_instruction_pj(self, precision: Precision, is_mac: bool = False) -> float:
        """Energy of one SIMD FP instruction at the given precision.

        Narrower formats use dedicated, clock-gated execution slices and are
        therefore slightly cheaper per instruction even though they process
        more lanes; multiply-accumulates cost more than plain adds.
        """
        base = self.fp64_instruction_pj * precision.fpu_energy_scale
        if is_mac:
            base *= self.fp_mac_multiplier
        return base


DEFAULT_ENERGY = EnergyParams()
"""Default coefficients used throughout the evaluation."""
