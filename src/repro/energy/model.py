"""Energy/power estimation from cluster activity counters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..arch.params import ClusterParams, DEFAULT_CLUSTER
from ..arch.trace import ClusterStats
from ..types import Precision
from .params import EnergyParams, DEFAULT_ENERGY

_PJ = 1.0e-12


@dataclass(frozen=True)
class EnergyReport:
    """Energy and average power of one kernel/layer execution."""

    label: str
    energy_j: float
    runtime_s: float
    breakdown_j: Dict[str, float]

    @property
    def power_w(self) -> float:
        """Average power over the execution."""
        if self.runtime_s <= 0:
            return 0.0
        return self.energy_j / self.runtime_s

    @property
    def energy_mj(self) -> float:
        """Energy in millijoules (the unit used by the paper's figures)."""
        return self.energy_j * 1.0e3

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary of the headline numbers."""
        return {
            "label": self.label,
            "energy_mj": self.energy_mj,
            "power_w": self.power_w,
            "runtime_ms": self.runtime_s * 1.0e3,
        }


@dataclass
class EnergyModel:
    """Maps :class:`~repro.arch.trace.ClusterStats` activity to energy."""

    params: EnergyParams = DEFAULT_ENERGY
    cluster: ClusterParams = DEFAULT_CLUSTER

    def layer_energy(
        self,
        stats: ClusterStats,
        precision: Precision,
        streaming: bool,
        uses_mac: bool = False,
    ) -> EnergyReport:
        """Energy of one layer execution.

        ``uses_mac`` marks the dense first layer whose FP instructions are
        multiply-accumulates rather than plain adds (its power is visibly
        higher in Figure 4).
        """
        runtime_s = stats.runtime_seconds(self.cluster.clock_hz)
        int_instrs = sum(core.int_instructions for core in stats.core_stats)
        fp_instrs = stats.total_fp_instructions
        spm_accesses = stats.total_spm_accesses
        ssr_busy_core_cycles = (
            sum(core.total_cycles for core in stats.core_stats) if streaming else 0.0
        )

        breakdown = {
            "integer": int_instrs * self.params.integer_instruction_pj * _PJ,
            "fpu": fp_instrs * self.params.fp_instruction_pj(precision, is_mac=uses_mac) * _PJ,
            "spm": spm_accesses * self.params.spm_access_pj * _PJ,
            "ssr": ssr_busy_core_cycles
            * self.params.ssr_active_power_w_per_core
            / self.cluster.clock_hz,
            "dma": stats.dma_bytes * self.params.dma_byte_pj * _PJ,
            "background": self.params.cluster_background_power_w * runtime_s,
        }
        return EnergyReport(
            label=stats.label,
            energy_j=sum(breakdown.values()),
            runtime_s=runtime_s,
            breakdown_j=breakdown,
        )

    def total_energy(self, reports) -> float:
        """Sum the energy of a collection of :class:`EnergyReport` objects (joules)."""
        return float(sum(report.energy_j for report in reports))
