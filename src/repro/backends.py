"""Pluggable execution backends for declarative sweep plans.

A backend turns a :class:`~repro.plan.SweepSpec`'s point function plus a
list of task dictionaries into a *stream* of ``(index, row)`` pairs, yielded
as points complete.  The index is the task's position in the submitted list,
so consumers (:func:`repro.plan.iter_plan` / :func:`~repro.plan.collect_plan`)
can reassemble the canonical row order regardless of completion order —
every backend is therefore bit-for-bit interchangeable with every other.

Four strategies ship:

* :class:`SerialBackend` — in-process, lazily one point at a time (the
  reference semantics, and what everything falls back to);
* :class:`ThreadBackend` / :class:`ProcessBackend` — a private
  :mod:`concurrent.futures` pool per ``execute`` call;
* :class:`ExecutorBackend` — dispatch onto a long-lived executor owned by
  someone else (e.g. a :class:`repro.session.Session`'s shared pool) without
  ever shutting it down;
* :class:`ShardedBackend` — partition the points deterministically across N
  worker :class:`~repro.session.Session` instances (round-robin by index),
  run the shards concurrently, re-dispatch the unfinished points of a killed
  shard, and merge every worker's results cache / result store back into the
  dispatching session.

Failure policy (shared with the PR-1 runner): only pool *infrastructure*
failures — ``OSError`` while building a pool, ``BrokenExecutor`` /
``PicklingError`` while dispatching, a killed shard — degrade to the serial
path; an exception raised by a point function itself propagates unchanged,
because it would fail serially too.
"""

from __future__ import annotations

import pickle
import queue
import sys
import threading
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

PointFn = Callable[[Dict[str, object]], Dict[str, object]]
RowStream = Iterator[Tuple[int, Dict[str, object]]]

#: Errors that mean "the pool could not be built" (e.g. fork refused in a
#: restricted environment); only caught around pool construction.
POOL_BUILD_ERRORS = (OSError, BrokenExecutor)

#: Errors that mean "the execution infrastructure died mid-dispatch", never
#: "the point was wrong": these trigger serial fallback / shard re-dispatch.
#: Deliberately excludes OSError — a point function raising e.g.
#: FileNotFoundError is a point error and must propagate unchanged.
DISPATCH_ERRORS = (BrokenExecutor, pickle.PicklingError)


class ShardKilled(RuntimeError):
    """A shard worker died mid-sweep.

    Raised (or injected, e.g. by tests and chaos tooling) inside a shard to
    signal that its remaining points must be re-dispatched elsewhere; it is
    classified as an infrastructure failure, not a point error.
    """


def _warn_fallback(backend: str, error: BaseException) -> None:
    print(
        f"warning: {backend} pool failed ({error!r}); running sweep serially",
        file=sys.stderr,
    )


def _serial_stream(fn: PointFn, tasks: Sequence[Dict[str, object]],
                   indices: Optional[Sequence[int]] = None) -> RowStream:
    for position, task in enumerate(tasks):
        index = indices[position] if indices is not None else position
        yield index, fn(task)


def _stream_futures(executor: Executor, fn: PointFn,
                    tasks: Sequence[Dict[str, object]], backend: str) -> RowStream:
    """Submit all tasks, then yield ``(index, row)`` in completion order.

    On an infrastructure failure — whether raised while *submitting* (a pool
    that broke between creation and dispatch, or a caller-owned pool shut
    down under us, e.g. ``Session.close()`` racing an in-flight dispatch) or
    while collecting results — the not-yet-yielded points re-run serially
    (their futures' results, if any, are discarded — re-running a pure point
    function is always safe); a point's own exception propagates.
    """
    futures: Dict[object, int] = {}
    remaining = set(range(len(tasks)))
    try:
        try:
            for index, task in enumerate(tasks):
                futures[executor.submit(fn, task)] = index
        except RuntimeError as error:
            # Executor.submit raises a bare RuntimeError("cannot schedule
            # new futures after [interpreter] shutdown").  That is pool
            # infrastructure dying, never the point's fault — but an
            # arbitrary RuntimeError would be, so match narrowly.
            if "shutdown" not in str(error).lower():
                raise
            _warn_fallback(backend, error)
        for future in as_completed(futures):
            index = futures[future]
            row = future.result()
            remaining.discard(index)
            yield index, row
    except DISPATCH_ERRORS as error:
        _warn_fallback(backend, error)
    # Anything not delivered by a future (failed dispatch, shutdown race)
    # runs serially; on a clean pass ``remaining`` is already empty.
    for index in sorted(remaining):
        yield index, fn(tasks[index])


class ExecutionBackend:
    """Strategy interface: stream ``(index, row)`` pairs for a task list."""

    #: short name used in warnings and CLI help
    name = "abstract"

    def execute(self, fn: PointFn, tasks: Sequence[Dict[str, object]],
                keys: Optional[Sequence[str]] = None) -> RowStream:
        """Yield ``(index, row)`` for every task exactly once, as completed.

        ``keys`` is an optional parallel list of canonical row-cache keys;
        backends that maintain their own caches (:class:`ShardedBackend`'s
        worker sessions) memoize under them, all others ignore it.
        """
        raise NotImplementedError

    def bind(self, cache=None, store=None) -> None:
        """Attach merge targets (results cache / result store) to the backend.

        Only backends that spawn their own workers with private caches care
        (:class:`ShardedBackend`); the default is a no-op so callers can bind
        unconditionally.  ``None`` arguments leave existing targets in place.
        """

    def close(self) -> None:
        """Release backend-owned resources (default: nothing to release)."""


class SerialBackend(ExecutionBackend):
    """Run every point in-process, lazily, in canonical order."""

    name = "serial"

    def execute(self, fn, tasks, keys=None):
        return _serial_stream(fn, tasks)


class _OwnedPoolBackend(ExecutionBackend):
    """Common machinery of backends that build a private pool per call."""

    pool_cls: Callable[..., Executor] = ThreadPoolExecutor

    def __init__(self, jobs: int = 2):
        if jobs < 1:
            raise ValueError(f"jobs must be positive, got {jobs}")
        self.jobs = jobs

    def execute(self, fn, tasks, keys=None):
        if len(tasks) <= 1 or self.jobs <= 1:
            yield from _serial_stream(fn, tasks)
            return
        try:
            pool = self.pool_cls(max_workers=min(self.jobs, len(tasks)))
        except POOL_BUILD_ERRORS as error:
            _warn_fallback(self.name, error)
            yield from _serial_stream(fn, tasks)
            return
        with pool:
            yield from _stream_futures(pool, fn, tasks, self.name)


class ThreadBackend(_OwnedPoolBackend):
    """A private thread pool per call (good for GIL-releasing points)."""

    name = "thread"
    pool_cls = ThreadPoolExecutor


class ProcessBackend(_OwnedPoolBackend):
    """A private process pool per call (true parallelism; picklable points)."""

    name = "process"
    pool_cls = ProcessPoolExecutor


class ExecutorBackend(ExecutionBackend):
    """Dispatch onto a caller-owned executor without ever shutting it down.

    This is how a :class:`repro.session.Session` amortizes ONE shared pool
    across every sweep and experiment of its lifetime.
    """

    name = "shared"

    def __init__(self, executor: Executor):
        self.executor = executor

    def execute(self, fn, tasks, keys=None):
        if len(tasks) <= 1:
            yield from _serial_stream(fn, tasks)
            return
        yield from _stream_futures(self.executor, fn, tasks, self.name)


class ShardedBackend(ExecutionBackend):
    """Partition one spec's points deterministically across N Session workers.

    Shard ``s`` owns the points whose canonical index is congruent to ``s``
    modulo ``shards`` (round-robin), so the partition depends only on the
    point order — never on timing, worker count changes re-partition
    deterministically, and a re-run assigns every point to the same shard.
    Each shard evaluates its points through a private worker
    :class:`~repro.session.Session` (serial, ``jobs=1``) on its own thread,
    memoizing rows in the worker's results cache; rows stream back to the
    consumer as they complete.

    Fault tolerance: a shard that dies with an infrastructure error (or
    :class:`ShardKilled`) forfeits its unfinished points, which are
    re-dispatched onto a fresh rescue worker after the surviving shards
    drain — the sweep always completes with every row.  A *point* error
    still propagates to the caller unchanged.

    After every ``execute`` the workers' :class:`~repro.plan.ResultsCache`
    (and :class:`~repro.session.ResultStore`) contents merge into the
    targets attached via :meth:`bind` — typically the dispatching session's
    own cache and store — so nothing a shard computed is lost to the
    service.
    """

    name = "sharded"

    def __init__(self, shards: int = 2, session_factory: Optional[Callable[[], object]] = None):
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        self.shards = shards
        self._session_factory = session_factory
        self._parent_cache = None
        self._parent_store = None
        #: worker sessions of the most recent execute (introspection/tests)
        self.last_workers: List[object] = []
        #: points re-dispatched after shard deaths, cumulative
        self.redispatched = 0

    def bind(self, cache=None, store=None) -> None:
        if cache is not None:
            self._parent_cache = cache
        if store is not None:
            self._parent_store = store

    def _make_worker(self):
        if self._session_factory is not None:
            return self._session_factory()
        from .session import Session  # runtime import: session imports this module

        return Session(jobs=1, backend="serial")

    def partition(self, count: int) -> List[List[int]]:
        """Round-robin index partition; shard ``s`` gets ``s, s+N, s+2N, …``."""
        return [list(range(start, count, self.shards))
                for start in range(min(self.shards, count))]

    def _evaluate(self, worker, fn, task, key):
        """One point through a worker session's row cache.

        Separated out so tests (and chaos tooling) can inject shard deaths
        at point granularity by patching this method.
        """
        cache = getattr(worker, "sweep_cache", None)
        if key is not None and cache is not None:
            hit = cache.get(key)
            if hit is not None:
                return hit
        row = fn(task)
        if key is not None and cache is not None:
            cache.put(key, row)
        return row

    def _shard_loop(self, shard_index, worker, fn, assigned, tasks, keys, out, stop):
        for position, index in enumerate(assigned):
            if stop.is_set():
                break
            key = keys[index] if keys is not None else None
            try:
                row = self._evaluate(worker, fn, tasks[index], key)
            except DISPATCH_ERRORS + (ShardKilled,) as error:
                out.put(("failed", shard_index, assigned[position:], error))
                return
            except BaseException as error:  # a point error: hand to the consumer
                out.put(("error", error))
                return
            out.put(("row", index, row))
        out.put(("done", shard_index))

    def _consume(self, out, shard_count, fn, tasks, keys, stop, workers) -> RowStream:
        """Stream rows off the fleet's out-queue, rescuing orphaned points.

        The heart of the sharded failure policy, shared verbatim by the
        in-process fleet and :class:`repro.net.backend.NetworkShardedBackend`
        (whose shards are worker *processes* on the wire): every shard —
        thread or connection — posts the same ``("row" | "done" | "failed"
        | "error")`` messages.  Points forfeited by failed shards re-run on
        a fresh local rescue worker after the survivors drain; the rescue
        worker is appended to ``workers`` so the caller's merge/close path
        adopts it.  A *point* error stops the fleet and propagates.
        """
        finished = 0
        orphaned: List[int] = []
        while finished < shard_count:
            message = out.get()
            kind = message[0]
            if kind == "row":
                yield message[1], message[2]
            elif kind == "done":
                finished += 1
            elif kind == "failed":
                _, shard_index, remaining, error = message
                finished += 1
                print(
                    f"warning: shard {shard_index} died ({error!r}); "
                    f"re-dispatching its {len(remaining)} unfinished point(s)",
                    file=sys.stderr,
                )
                orphaned.extend(remaining)
            else:  # "error": a point raised — stop the fleet and propagate
                stop.set()
                raise message[1]
        if orphaned:
            rescue = self._make_worker()
            workers.append(rescue)
            self.last_workers = list(workers)
            for index in sorted(orphaned):
                key = keys[index] if keys is not None else None
                yield index, self._evaluate(rescue, fn, tasks[index], key)
                self.redispatched += 1

    def execute(self, fn, tasks, keys=None):
        if not tasks:
            return
        assignments = self.partition(len(tasks))
        workers = [self._make_worker() for _ in assignments]
        self.last_workers = list(workers)
        out: "queue.Queue[tuple]" = queue.Queue()
        stop = threading.Event()
        threads = [
            threading.Thread(
                target=self._shard_loop,
                args=(shard, workers[shard], fn, assigned, tasks, keys, out, stop),
                name=f"sweep-shard-{shard}",
                daemon=True,
            )
            for shard, assigned in enumerate(assignments)
        ]
        try:
            for thread in threads:
                thread.start()
            yield from self._consume(out, len(threads), fn, tasks, keys, stop, workers)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
            # Only workers whose shard thread actually exited are merged and
            # closed: after a join timeout (a point still running while the
            # consumer bailed out) touching that worker's cache would race
            # with its thread.  Rescue workers (beyond the thread list) ran
            # on this thread and are always safe.
            settled = [
                worker for worker, thread in zip(workers, threads)
                if not thread.is_alive()
            ]
            settled.extend(workers[len(threads):])
            self._merge(settled)
            for worker in settled:
                close = getattr(worker, "close", None)
                if close is not None:
                    close()

    def _merge(self, workers) -> None:
        for worker in workers:
            worker_cache = getattr(worker, "sweep_cache", None)
            if self._parent_cache is not None and worker_cache is not None:
                self._parent_cache.merge_from(worker_cache)
            worker_store = getattr(worker, "store", None)
            if self._parent_store is not None and worker_store is not None:
                self._parent_store.merge_from(worker_store)


def make_backend(
    backend: str,
    jobs: int = 1,
    executor: Optional[Executor] = None,
    shards: int = 2,
) -> ExecutionBackend:
    """Resolve the (name, jobs, executor, shards) knobs into a backend object.

    Precedence: an explicit ``"sharded"`` request wins (it brings its own
    workers), then a caller-owned ``executor`` (the session's shared pool),
    then the named pool kind — degraded to :class:`SerialBackend` when
    ``jobs`` stays at 1, matching the historical runner semantics.
    """
    if backend == "sharded":
        return ShardedBackend(shards=shards)
    if backend == "net":
        # Runtime import: repro.net rides on serve/session, which import
        # this module at load time.
        from .net.backend import NetworkShardedBackend

        return NetworkShardedBackend(shards=shards)
    if executor is not None:
        return ExecutorBackend(executor)
    if jobs <= 1 or backend == "serial":
        return SerialBackend()
    if backend == "thread":
        return ThreadBackend(jobs)
    if backend == "process":
        return ProcessBackend(jobs)
    raise ValueError(
        f"unknown backend {backend!r}; expected serial, thread, process, "
        f"sharded or net"
    )
