"""Cluster kernels implementing the SpikeStream SNN inference layers.

Each kernel exists in two flavours selected by the run configuration:

* the parallel SIMD **baseline** (tensor compression, task parallelization,
  data parallelization, tiling + double buffering), and
* the full **SpikeStream** variant which additionally maps the SpVA weight
  gathers onto indirect stream registers with ``frep`` hardware loops
  (streaming acceleration).

Kernels provide both a *functional* path (NumPy computation over the
compressed representations, validated against the golden reference) and a
*performance* path (cycle accounting on the Snitch cluster model).
"""

from .activation import fused_lif_activation
from .scheduler import StealingSchedule, workload_stealing_schedule
from .spva import (
    SpvaCost,
    baseline_spva_cost,
    spva_gather_accumulate,
    streaming_spva_cost,
)
from .conv import (
    ConvLayerSpec,
    conv_layer_functional,
    conv_layer_perf,
    conv_layer_perf_batch,
    pad_counts,
)
from .fc import FcLayerSpec, fc_layer_functional, fc_layer_perf, fc_layer_perf_batch
from .encode import (
    EncodeLayerSpec,
    encode_layer_functional,
    encode_layer_perf,
    encode_layer_perf_batch,
)
from .pool import PoolLayerSpec, pool_layer_functional, pool_layer_perf
from .tiling import TilePlan, plan_conv_tiles, plan_fc_tiles

__all__ = [
    "fused_lif_activation",
    "StealingSchedule",
    "workload_stealing_schedule",
    "SpvaCost",
    "baseline_spva_cost",
    "streaming_spva_cost",
    "spva_gather_accumulate",
    "ConvLayerSpec",
    "conv_layer_functional",
    "conv_layer_perf",
    "conv_layer_perf_batch",
    "pad_counts",
    "FcLayerSpec",
    "fc_layer_functional",
    "fc_layer_perf",
    "fc_layer_perf_batch",
    "EncodeLayerSpec",
    "encode_layer_functional",
    "encode_layer_perf",
    "encode_layer_perf_batch",
    "PoolLayerSpec",
    "pool_layer_functional",
    "pool_layer_perf",
    "TilePlan",
    "plan_conv_tiles",
    "plan_fc_tiles",
]
