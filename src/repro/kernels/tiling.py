"""Tiling and double-buffering planner (Section III-D).

Weights, ifmaps and neuron states live in global memory; the kernels stream
tiles of them into the 128 KiB cluster scratchpad through the DMA engine
while computing on the previous tile.  The planner decides

* how many output channels fit into one double-buffered weight tile,
* how many ofmap rows form one spatial band (so that the compressed ifmap
  band, the worst-case compressed ofmap band and both weight buffers fit), and
* the resulting DMA traffic, following the paper's loop order: weights are
  double-buffered in the inner loop, ifmap bands in the outer loop, and the
  compressed ofmap tile is written back once its band is complete.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from ..arch.params import ClusterParams, CostModelParams, DEFAULT_CLUSTER, DEFAULT_COSTS
from ..types import Precision, TensorShape


@dataclass(frozen=True)
class TilePlan:
    """Outcome of the tiling planner for one layer."""

    weight_bytes: int
    ifmap_bytes: int
    ofmap_worst_case_bytes: int
    membrane_bytes: int
    channels_per_weight_tile: int
    num_weight_tiles: int
    rows_per_band: int
    num_ifmap_bands: int
    dma_bytes_in: int
    dma_bytes_out: int
    num_dma_transfers: int

    @property
    def num_tiles(self) -> int:
        """Total number of (band, weight-tile) compute phases."""
        return self.num_weight_tiles * self.num_ifmap_bands

    @property
    def total_dma_bytes(self) -> int:
        """Total DMA payload moved in both directions."""
        return self.dma_bytes_in + self.dma_bytes_out

    def dma_cycles(self, costs: CostModelParams = DEFAULT_COSTS) -> float:
        """DMA busy cycles for the whole layer."""
        return (
            self.total_dma_bytes / costs.dma_bytes_per_cycle
            + self.num_dma_transfers * costs.dma_setup_cycles
        )


def _weight_tile_channels(
    weight_bytes_per_channel: int,
    out_channels: int,
    simd_width: int,
    budget_bytes: int,
) -> int:
    """Output channels per double-buffered weight tile (multiple of the SIMD width)."""
    per_buffer = budget_bytes // 2
    channels = per_buffer // max(weight_bytes_per_channel, 1)
    channels = max(simd_width, (channels // simd_width) * simd_width)
    return min(out_channels, channels)


def plan_conv_tiles(
    input_shape: TensorShape,
    output_shape: TensorShape,
    kernel_size: int,
    compressed_ifmap_bytes: int,
    precision: Precision,
    index_bytes: int = 2,
    params: ClusterParams = DEFAULT_CLUSTER,
    costs: CostModelParams = DEFAULT_COSTS,
    weight_budget_fraction: float = 0.45,
) -> TilePlan:
    """Plan the SPM tiling of one convolutional layer.

    ``input_shape`` is the *padded* ifmap shape, ``compressed_ifmap_bytes``
    the actual (or expected) compressed footprint of that ifmap.
    """
    if not 0.0 < weight_budget_fraction < 1.0:
        raise ValueError("weight_budget_fraction must be in (0, 1)")
    spm = params.spm_bytes
    simd = precision.simd_width
    weight_bytes_per_channel = kernel_size * kernel_size * input_shape.channels * precision.bytes
    weight_bytes = weight_bytes_per_channel * output_shape.channels

    channels_per_tile = _weight_tile_channels(
        weight_bytes_per_channel, output_shape.channels, simd, int(spm * weight_budget_fraction)
    )
    num_weight_tiles = ceil(output_shape.channels / channels_per_tile)
    weight_tile_bytes = channels_per_tile * weight_bytes_per_channel

    # Remaining SPM is shared by the double-buffered ifmap band, the
    # worst-case compressed ofmap band and the membrane-state band.
    remaining = spm - 2 * weight_tile_bytes
    ifmap_bytes_per_row = max(1, compressed_ifmap_bytes // max(input_shape.height, 1))
    ofmap_bytes_per_row = output_shape.width * output_shape.channels * index_bytes + index_bytes
    membrane_bytes_per_row = output_shape.width * output_shape.channels * precision.bytes
    per_row = 2 * ifmap_bytes_per_row + ofmap_bytes_per_row + membrane_bytes_per_row
    rows_per_band = max(1, min(output_shape.height, remaining // max(per_row, 1)))
    num_bands = ceil(output_shape.height / rows_per_band)

    membrane_bytes = output_shape.numel * precision.bytes
    ofmap_worst_case = output_shape.numel * index_bytes + (output_shape.spatial_size + 1) * index_bytes

    # Loop order (Section III-D): for each ifmap band, stream every weight
    # tile; the compressed ifmap band and the membrane band are loaded once
    # per band, the weights once per band per weight tile.
    dma_bytes_in = compressed_ifmap_bytes + membrane_bytes + num_bands * weight_bytes
    dma_bytes_out = ofmap_worst_case // 2 + membrane_bytes  # expected ofmap occupancy + state
    # One descriptor per weight tile per band, one per ifmap band, plus the
    # fragmented per-row ofmap c_idcs write-backs.
    num_dma_transfers = num_bands * num_weight_tiles + num_bands + output_shape.height + 1

    return TilePlan(
        weight_bytes=weight_bytes,
        ifmap_bytes=compressed_ifmap_bytes,
        ofmap_worst_case_bytes=ofmap_worst_case,
        membrane_bytes=membrane_bytes,
        channels_per_weight_tile=channels_per_tile,
        num_weight_tiles=num_weight_tiles,
        rows_per_band=rows_per_band,
        num_ifmap_bands=num_bands,
        dma_bytes_in=int(dma_bytes_in),
        dma_bytes_out=int(dma_bytes_out),
        num_dma_transfers=int(num_dma_transfers),
    )


def plan_fc_tiles(
    in_features: int,
    out_features: int,
    compressed_input_bytes: int,
    precision: Precision,
    index_bytes: int = 2,
    params: ClusterParams = DEFAULT_CLUSTER,
    costs: CostModelParams = DEFAULT_COSTS,
    weight_budget_fraction: float = 0.7,
) -> TilePlan:
    """Plan the SPM tiling of one fully connected layer.

    The compressed input vector and the output buffers are tiny; virtually
    the whole scratchpad is devoted to double-buffered weight tiles, which
    are streamed once (the input vector stays resident).
    """
    if not 0.0 < weight_budget_fraction < 1.0:
        raise ValueError("weight_budget_fraction must be in (0, 1)")
    spm = params.spm_bytes
    simd = precision.simd_width
    weight_bytes_per_neuron = in_features * precision.bytes
    weight_bytes = weight_bytes_per_neuron * out_features

    channels_per_tile = _weight_tile_channels(
        weight_bytes_per_neuron, out_features, simd, int(spm * weight_budget_fraction)
    )
    num_weight_tiles = ceil(out_features / channels_per_tile)
    membrane_bytes = out_features * precision.bytes
    ofmap_worst_case = out_features * index_bytes + index_bytes

    dma_bytes_in = compressed_input_bytes + membrane_bytes + weight_bytes
    dma_bytes_out = ofmap_worst_case // 2 + membrane_bytes
    num_dma_transfers = num_weight_tiles + 3

    return TilePlan(
        weight_bytes=weight_bytes,
        ifmap_bytes=compressed_input_bytes,
        ofmap_worst_case_bytes=ofmap_worst_case,
        membrane_bytes=membrane_bytes,
        channels_per_weight_tile=channels_per_tile,
        num_weight_tiles=num_weight_tiles,
        rows_per_band=1,
        num_ifmap_bands=1,
        dma_bytes_in=int(dma_bytes_in),
        dma_bytes_out=int(dma_bytes_out),
        num_dma_transfers=int(num_dma_transfers),
    )
