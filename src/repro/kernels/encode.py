"""Dense spike-encoding first layer (Section III-F).

When the input is an RGB image rather than an event stream, the first
convolutional layer performs the spike encoding: pixel intensities are the
input currents.  SpikeStream keeps this tensor dense in HWC layout, reshapes
it on the fly with a 2-D DMA im2row transfer and turns the convolution into a
matrix multiplication parallelized across output channels.  The streamed
variant feeds the FPU with two affine stream registers (one for the input
currents, one for the weights).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..arch.icache import InstructionCache
from ..arch.params import ClusterParams, CostModelParams, DEFAULT_CLUSTER, DEFAULT_COSTS
from ..arch.trace import ClusterStats, CoreStats
from ..formats.csr_fiber import CompressedIfmapBuilder
from ..formats.csr_fiber import CompressedIfmap
from ..snn.neuron import LIFParameters
from ..snn.reference import conv2d_hwc
from ..types import Precision, TensorShape
from .activation import activation_cost_per_group, fused_lif_activation
from .scheduler import workload_stealing_schedule


@dataclass
class EncodeLayerSpec:
    """Static description of the dense spike-encoding convolutional layer."""

    name: str
    input_shape: TensorShape
    in_channels: int
    out_channels: int
    kernel_size: int = 3
    stride: int = 1
    padding: int = 1
    lif: LIFParameters = field(default_factory=LIFParameters)

    def __post_init__(self) -> None:
        if self.input_shape.channels != self.in_channels:
            raise ValueError(
                f"input_shape has {self.input_shape.channels} channels but in_channels is "
                f"{self.in_channels}"
            )

    @property
    def output_shape(self) -> TensorShape:
        """Shape of the emitted spike map."""
        out_h = (self.input_shape.height + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (self.input_shape.width + 2 * self.padding - self.kernel_size) // self.stride + 1
        return TensorShape(out_h, out_w, self.out_channels)

    @property
    def macs_per_output_position_per_group(self) -> int:
        """SIMD multiply-accumulates per output position and channel group."""
        return self.kernel_size * self.kernel_size * self.in_channels

    def weight_bytes(self, precision: Precision) -> int:
        """Bytes of the weight tensor."""
        return (
            self.kernel_size * self.kernel_size * self.in_channels * self.out_channels
        ) * precision.bytes


def encode_layer_perf(
    spec: EncodeLayerSpec,
    precision: Precision,
    streaming: bool,
    params: ClusterParams = DEFAULT_CLUSTER,
    costs: CostModelParams = DEFAULT_COSTS,
    index_bytes: int = 2,
    num_active_cores: Optional[int] = None,
    input_precision: Precision = Precision.FP16,
) -> ClusterStats:
    """Cycle-accounting model of the dense im2row + matmul encoding layer."""
    num_cores = num_active_cores or params.num_worker_cores
    output_shape = spec.output_shape
    simd = precision.simd_width
    groups = (spec.out_channels + simd - 1) // simd
    macs = spec.macs_per_output_position_per_group

    act_int, act_fp = activation_cost_per_group(precision, costs)
    if streaming:
        mac_cycles = macs * costs.dense_streaming_cycles_per_mac
        # The affine streams are programmed once per output position; the
        # integer core's work is fully hidden for these long dense streams.
        rf_group_cycles = max(mac_cycles, costs.dense_rf_overhead_int_instrs) + act_int + act_fp
        rf_group_int = costs.dense_rf_overhead_int_instrs + act_int
    else:
        mac_cycles = macs * costs.dense_baseline_cycles_per_mac
        rf_group_cycles = mac_cycles + costs.dense_rf_overhead_int_instrs + act_int + act_fp
        rf_group_int = (
            macs * (costs.dense_baseline_instrs_per_mac - 1)
            + costs.dense_rf_overhead_int_instrs
            + act_int
        )
    rf_group_fp = macs + act_fp

    rf_cycles = np.full(output_shape.spatial_size, groups * rf_group_cycles + costs.rf_overhead_int_instrs)
    rf_int = np.full(output_shape.spatial_size, groups * rf_group_int + costs.rf_overhead_int_instrs)
    rf_fp = np.full(output_shape.spatial_size, float(groups * rf_group_fp))
    rf_spm = np.full(output_shape.spatial_size, float(groups * (2.0 * macs + 4.0)))

    schedule = workload_stealing_schedule(
        rf_cycles, num_cores, atomic_cost_cycles=costs.atomic_operation_cycles
    )

    # DMA: the dense input is reshaped on the fly by a 2-D im2row transfer
    # (one strided row per output position), weights stream in once, and the
    # compressed ofmap goes back out.
    im2row_bytes = output_shape.spatial_size * macs * input_precision.bytes
    weight_bytes = spec.weight_bytes(precision)
    ofmap_bytes = output_shape.numel * index_bytes // 2
    dma_bytes = im2row_bytes + weight_bytes + ofmap_bytes
    dma_cycles = dma_bytes / costs.dma_bytes_per_cycle + (
        output_shape.spatial_size + 2
    ) * costs.dma_setup_cycles

    icache = InstructionCache(params, costs)
    core_stats = []
    for core_id in range(num_cores):
        indices = np.asarray(schedule.assignments[core_id], dtype=np.int64)
        busy = float(schedule.core_busy_cycles[core_id])
        atomics = float(schedule.atomic_operations_per_core[core_id])
        int_instrs = float(np.sum(rf_int[indices])) + atomics
        fp_instrs = float(np.sum(rf_fp[indices]))
        icache_stall = icache.miss_cycles(int_instrs + fp_instrs, tiles=1)
        total = busy + atomics * costs.atomic_operation_cycles + icache_stall
        core_stats.append(
            CoreStats(
                core_id=core_id,
                int_instructions=int_instrs,
                fp_instructions=fp_instrs,
                total_cycles=total,
                fpu_busy_cycles=fp_instrs,
                stall_cycles=max(0.0, total - int_instrs - fp_instrs),
                spm_accesses=float(np.sum(rf_spm[indices])),
                ssr_spm_accesses=float(np.sum(rf_spm[indices])) if streaming else 0.0,
                atomic_operations=atomics,
            )
        )

    compute_cycles = max(s.total_cycles for s in core_stats)
    dma_exposed = max(0.0, dma_cycles - compute_cycles)
    label = f"{spec.name}-{'spikestream' if streaming else 'baseline'}-{precision.value}"
    return ClusterStats(
        core_stats=core_stats,
        dma_cycles=dma_cycles,
        dma_bytes=float(dma_bytes),
        dma_exposed_cycles=dma_exposed,
        total_cycles=compute_cycles + dma_exposed,
        label=label,
    )


def encode_layer_perf_batch(
    spec: EncodeLayerSpec,
    batch_size: int,
    precision: Precision,
    streaming: bool,
    params: ClusterParams = DEFAULT_CLUSTER,
    costs: CostModelParams = DEFAULT_COSTS,
    index_bytes: int = 2,
    num_active_cores: Optional[int] = None,
    input_precision: Precision = Precision.FP16,
) -> List[ClusterStats]:
    """Batch-axis entry point of :func:`encode_layer_perf`.

    The dense encoding layer's cost model does not depend on the frame
    content, so the model is evaluated once and replicated ``batch_size``
    times (as independent copies, so downstream scaling cannot alias).  Each
    returned :class:`ClusterStats` is bit-for-bit identical to a per-frame
    :func:`encode_layer_perf` call.
    """
    if batch_size < 0:
        raise ValueError(f"batch_size must be non-negative, got {batch_size}")
    reference = encode_layer_perf(
        spec,
        precision=precision,
        streaming=streaming,
        params=params,
        costs=costs,
        index_bytes=index_bytes,
        num_active_cores=num_active_cores,
        input_precision=input_precision,
    )
    results: List[ClusterStats] = [reference]
    for _ in range(batch_size - 1):
        results.append(
            ClusterStats(
                core_stats=[CoreStats(**vars(core)) for core in reference.core_stats],
                dma_cycles=reference.dma_cycles,
                dma_bytes=reference.dma_bytes,
                dma_exposed_cycles=reference.dma_exposed_cycles,
                total_cycles=reference.total_cycles,
                label=reference.label,
            )
        )
    return results[:batch_size]


def encode_layer_functional(
    spec: EncodeLayerSpec,
    image: np.ndarray,
    weights: np.ndarray,
    membrane: Optional[np.ndarray] = None,
    precision: Precision = Precision.FP64,
    index_bytes: int = 2,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, CompressedIfmap]:
    """Execute the encoding layer functionally.

    Returns ``(input_currents, new_membrane, output_spikes, compressed_ofmap)``.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.shape != spec.input_shape.as_tuple():
        raise ValueError(
            f"image has shape {image.shape}, expected {spec.input_shape.as_tuple()}"
        )
    weights = np.asarray(weights, dtype=np.float64)
    expected_weights = (spec.kernel_size, spec.kernel_size, spec.in_channels, spec.out_channels)
    if weights.shape != expected_weights:
        raise ValueError(f"weights have shape {weights.shape}, expected {expected_weights}")
    output_shape = spec.output_shape
    if membrane is None:
        membrane = np.zeros(output_shape.as_tuple(), dtype=np.float64)

    currents = conv2d_hwc(image, weights, stride=spec.stride, padding=spec.padding)
    new_membrane, spikes = fused_lif_activation(membrane, currents, spec.lif, precision)

    builder = CompressedIfmapBuilder(shape=output_shape, index_bytes=index_bytes)
    for oy, ox, channel in zip(*np.nonzero(spikes)):
        builder.add_spike(int(oy), int(ox), int(channel))
    return currents, new_membrane, spikes, builder.finalize()
