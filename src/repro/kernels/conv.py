"""Compressed spiking convolution kernel (baseline and SpikeStream variants).

The kernel follows the dataflow of Figure 2: every worker core claims a
receptive field (RF, one output spatial position) through the
workload-stealing scheduler and processes it depth-first.  For each SIMD
output-channel group and each of the ``kh x kw`` spatial positions of the RF
it performs one SpVA over the spiking input channels at that position; the
fused LIF activation then thresholds the accumulated current and appends the
firing output channels to the compressed ofmap.

Two entry points are provided:

* :func:`conv_layer_perf` — the cycle/energy-activity model, vectorized over
  all RFs from the per-position spike-count map;
* :func:`conv_layer_functional` — the NumPy execution over the compressed
  ifmap, used to validate the kernel against the dense golden reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..arch.params import ClusterParams, CostModelParams, DEFAULT_CLUSTER, DEFAULT_COSTS
from ..arch.icache import InstructionCache
from ..arch.tcdm import Tcdm
from ..arch.trace import ClusterStats, CoreStats
from ..formats.csr_fiber import CompressedIfmap, CompressedIfmapBuilder
from ..snn.neuron import LIFParameters
from ..types import Precision, TensorShape
from .activation import activation_cost_per_group, fused_lif_activation
from .batch_stats import cluster_stats_from_batch
from .scheduler import workload_stealing_schedule, workload_stealing_schedule_batch
from .spva import baseline_spva_cost, spva_gather_accumulate, streaming_spva_cost
from .tiling import TilePlan, plan_conv_tiles


@dataclass
class ConvLayerSpec:
    """Static description of one spiking convolutional layer."""

    name: str
    input_shape: TensorShape
    in_channels: int
    out_channels: int
    kernel_size: int = 3
    stride: int = 1
    padding: int = 1
    lif: LIFParameters = field(default_factory=LIFParameters)

    def __post_init__(self) -> None:
        if self.input_shape.channels != self.in_channels:
            raise ValueError(
                f"input_shape has {self.input_shape.channels} channels but in_channels is "
                f"{self.in_channels}"
            )
        for attr in ("kernel_size", "stride", "in_channels", "out_channels"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        if self.padding < 0:
            raise ValueError("padding must be non-negative")

    @property
    def padded_input_shape(self) -> TensorShape:
        """Shape of the zero-padded ifmap held in memory."""
        return TensorShape(
            self.input_shape.height + 2 * self.padding,
            self.input_shape.width + 2 * self.padding,
            self.in_channels,
        )

    @property
    def output_shape(self) -> TensorShape:
        """Shape of the output spike map."""
        out_h = (self.input_shape.height + 2 * self.padding - self.kernel_size) // self.stride + 1
        out_w = (self.input_shape.width + 2 * self.padding - self.kernel_size) // self.stride + 1
        return TensorShape(out_h, out_w, self.out_channels)

    @property
    def weight_shape(self) -> Tuple[int, int, int, int]:
        """Filter-bank shape ``(kh, kw, C_in, C_out)``."""
        return (self.kernel_size, self.kernel_size, self.in_channels, self.out_channels)

    def weight_bytes(self, precision: Precision) -> int:
        """Bytes of the weight tensor at the given precision."""
        return int(np.prod(self.weight_shape)) * precision.bytes


def pad_counts(spec: "ConvLayerSpec", counts: np.ndarray) -> np.ndarray:
    """Zero-pad per-position spike-count map(s) to ``spec``'s padded geometry.

    ``counts`` holds the *unpadded* per-position spike counts with the two
    spatial axes last — ``(H, W)`` for one frame or ``(..., H, W)`` with any
    leading axes (e.g. a batch) — and comes back as float64 with the zero
    padding ring applied to the spatial axes only.  The padding ring of a
    spiking ifmap never carries spikes, so padding the count map with zeros
    is exactly the count map of the padded ifmap; this helper is the single
    home of that logic for the statistical draw, the batched draw and the
    functional activity paths.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim < 2:
        raise ValueError(f"counts must have at least 2 spatial axes, got shape {counts.shape}")
    if not spec.padding:
        return counts
    pad_width = [(0, 0)] * (counts.ndim - 2) + [(spec.padding, spec.padding)] * 2
    return np.pad(counts, pad_width)


def window_sum(values: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Sliding-window sum of a 2-D map (the per-RF aggregation).

    Returns an array of shape ``(out_h, out_w)`` where each entry is the sum
    of the ``kernel x kernel`` window of ``values`` starting at that output
    position times the stride.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError(f"values must be 2-D, got shape {values.shape}")
    height, width = values.shape
    if kernel > height or kernel > width:
        raise ValueError("kernel larger than the map")
    # Integral image with a zero border.
    integral = np.zeros((height + 1, width + 1), dtype=np.float64)
    integral[1:, 1:] = np.cumsum(np.cumsum(values, axis=0), axis=1)
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    ys = np.arange(out_h) * stride
    xs = np.arange(out_w) * stride
    y0, x0 = np.meshgrid(ys, xs, indexing="ij")
    y1, x1 = y0 + kernel, x0 + kernel
    return integral[y1, x1] - integral[y0, x1] - integral[y1, x0] + integral[y0, x0]


def window_sum_batch(values: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Sliding-window sum of a batch of 2-D maps, shape ``(B, H, W)``.

    Batched counterpart of :func:`window_sum`; each ``values[b]`` produces the
    exact same (bit-for-bit) window sums as ``window_sum(values[b], ...)``
    because :func:`numpy.cumsum` accumulates strictly sequentially along the
    requested axis and the corner gathers/subtractions are element-wise in
    the same operand order.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 3:
        raise ValueError(f"values must be 3-D (batch, H, W), got shape {values.shape}")
    batch, height, width = values.shape
    if kernel > height or kernel > width:
        raise ValueError("kernel larger than the map")
    integral = np.zeros((batch, height + 1, width + 1), dtype=np.float64)
    integral[:, 1:, 1:] = np.cumsum(np.cumsum(values, axis=1), axis=2)
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    ys = np.arange(out_h) * stride
    xs = np.arange(out_w) * stride
    y0, x0 = np.meshgrid(ys, xs, indexing="ij")
    y1, x1 = y0 + kernel, x0 + kernel
    return (
        integral[:, y1, x1] - integral[:, y0, x1] - integral[:, y1, x0] + integral[:, y0, x0]
    )


def conv_layer_perf(
    spec: ConvLayerSpec,
    spike_counts: np.ndarray,
    precision: Precision,
    streaming: bool,
    params: ClusterParams = DEFAULT_CLUSTER,
    costs: CostModelParams = DEFAULT_COSTS,
    index_bytes: int = 2,
    num_active_cores: Optional[int] = None,
    strided_indirect: bool = False,
) -> ClusterStats:
    """Cycle-accounting model of the compressed convolution kernel.

    Parameters
    ----------
    spike_counts:
        Per-spatial-position spike counts of the *padded* ifmap, shape
        ``(Hp, Wp)`` (e.g. ``CompressedIfmap.spike_counts()``).
    streaming:
        False for the parallel SIMD baseline, True for SpikeStream.
    strided_indirect:
        Enable the strided-indirect SSR extension (future work in the paper):
        the gather index array is replayed across channel groups, lowering the
        per-element streaming cost.  Only meaningful with ``streaming=True``.
    """
    if strided_indirect and not streaming:
        raise ValueError("strided_indirect requires streaming=True")
    spike_counts = np.asarray(spike_counts, dtype=np.float64)
    padded = spec.padded_input_shape
    if spike_counts.shape != (padded.height, padded.width):
        raise ValueError(
            f"spike_counts has shape {spike_counts.shape}, expected "
            f"{(padded.height, padded.width)}"
        )
    num_cores = num_active_cores or params.num_worker_cores
    output_shape = spec.output_shape
    simd = precision.simd_width
    groups = (spec.out_channels + simd - 1) // simd
    k2 = spec.kernel_size * spec.kernel_size

    tcdm = Tcdm(params)
    conflict_factor = tcdm.conflict_stall_factor(num_cores)

    # ---- per-position SpVA costs, then per-RF window aggregation ---------
    flat_counts = spike_counts.reshape(-1)
    if streaming:
        per_element = (
            costs.strided_indirect_cycles_per_element if strided_indirect else None
        )
        position_cost = streaming_spva_cost(
            flat_counts, costs, conflict_factor=conflict_factor, cycles_per_element=per_element
        )
    else:
        position_cost = baseline_spva_cost(flat_counts, costs)

    def per_rf(values: np.ndarray) -> np.ndarray:
        return window_sum(
            values.reshape(padded.height, padded.width), spec.kernel_size, spec.stride
        ).reshape(-1)

    rf_spva_cycles = per_rf(position_cost.cycles)
    rf_spva_int = per_rf(position_cost.int_instructions)
    rf_spva_fp = per_rf(position_cost.fp_instructions)
    rf_spva_fp_busy = per_rf(position_cost.fp_busy_cycles)
    rf_spva_spm = per_rf(position_cost.spm_accesses)
    rf_spva_ssr = per_rf(position_cost.ssr_spm_accesses)

    act_int, act_fp = activation_cost_per_group(precision, costs)
    group_fixed_cycles = costs.group_overhead_int_instrs + act_int + act_fp
    group_fixed_int = costs.group_overhead_int_instrs + act_int
    group_fixed_fp = act_fp

    rf_cycles = (
        costs.rf_overhead_int_instrs
        + groups * (rf_spva_cycles + group_fixed_cycles)
    )
    rf_int = costs.rf_overhead_int_instrs + groups * (rf_spva_int + group_fixed_int)
    rf_fp = groups * (rf_spva_fp + group_fixed_fp)
    rf_fp_busy = groups * (rf_spva_fp_busy + group_fixed_fp)
    rf_spm = groups * (rf_spva_spm + 4.0)  # membrane load/store + ofmap append
    rf_ssr = groups * rf_spva_ssr

    # ---- workload stealing over receptive fields --------------------------
    schedule = workload_stealing_schedule(
        rf_cycles, num_cores, atomic_cost_cycles=costs.atomic_operation_cycles
    )

    # ---- tiling and DMA ----------------------------------------------------
    nnz = float(np.sum(spike_counts))
    compressed_bytes = int(nnz * index_bytes + (padded.spatial_size + 1) * index_bytes)
    plan = plan_conv_tiles(
        input_shape=padded,
        output_shape=output_shape,
        kernel_size=spec.kernel_size,
        compressed_ifmap_bytes=compressed_bytes,
        precision=precision,
        index_bytes=index_bytes,
        params=params,
        costs=costs,
    )
    dma_cycles = plan.dma_cycles(costs)

    # ---- per-core statistics ----------------------------------------------
    icache = InstructionCache(params, costs)
    core_stats = []
    for core_id in range(num_cores):
        indices = np.asarray(schedule.assignments[core_id], dtype=np.int64)
        busy = float(schedule.core_busy_cycles[core_id])
        atomics = float(schedule.atomic_operations_per_core[core_id])
        int_instrs = float(np.sum(rf_int[indices])) + atomics
        fp_instrs = float(np.sum(rf_fp[indices]))
        fp_busy = float(np.sum(rf_fp_busy[indices]))
        spm = float(np.sum(rf_spm[indices]))
        ssr = float(np.sum(rf_ssr[indices]))
        icache_stall = icache.miss_cycles(int_instrs + fp_instrs, tiles=plan.num_tiles)
        total = busy + atomics * costs.atomic_operation_cycles + icache_stall
        core_stats.append(
            CoreStats(
                core_id=core_id,
                int_instructions=int_instrs,
                fp_instructions=fp_instrs,
                total_cycles=total,
                fpu_busy_cycles=fp_busy,
                stall_cycles=max(0.0, total - int_instrs - fp_instrs),
                spm_accesses=spm,
                ssr_spm_accesses=ssr,
                atomic_operations=atomics,
            )
        )

    compute_cycles = max(s.total_cycles for s in core_stats)
    dma_exposed = max(0.0, dma_cycles - compute_cycles)
    label = f"{spec.name}-{'spikestream' if streaming else 'baseline'}-{precision.value}"
    return ClusterStats(
        core_stats=core_stats,
        dma_cycles=dma_cycles,
        dma_bytes=float(plan.total_dma_bytes),
        dma_exposed_cycles=dma_exposed,
        total_cycles=compute_cycles + dma_exposed,
        label=label,
    )


def conv_layer_perf_batch(
    spec: ConvLayerSpec,
    spike_counts: np.ndarray,
    precision: Precision,
    streaming: bool,
    params: ClusterParams = DEFAULT_CLUSTER,
    costs: CostModelParams = DEFAULT_COSTS,
    index_bytes: int = 2,
    num_active_cores: Optional[int] = None,
    strided_indirect: bool = False,
) -> List[ClusterStats]:
    """Batch-axis entry point of :func:`conv_layer_perf`.

    ``spike_counts`` has shape ``(B, Hp, Wp)``: one padded per-position
    spike-count map per frame.  All per-position SpVA costs, the per-RF
    window aggregation and the workload-stealing schedule are computed for
    the whole batch in one vectorized pass; only the cheap per-frame
    reductions (per-core sums, tiling plan, icache model) remain in Python.
    The returned list holds one :class:`ClusterStats` per frame that is
    bit-for-bit identical to calling :func:`conv_layer_perf` on that frame's
    map alone.
    """
    if strided_indirect and not streaming:
        raise ValueError("strided_indirect requires streaming=True")
    spike_counts = np.asarray(spike_counts, dtype=np.float64)
    padded = spec.padded_input_shape
    if spike_counts.ndim != 3 or spike_counts.shape[1:] != (padded.height, padded.width):
        raise ValueError(
            f"spike_counts has shape {spike_counts.shape}, expected "
            f"(batch, {padded.height}, {padded.width})"
        )
    batch = spike_counts.shape[0]
    num_cores = num_active_cores or params.num_worker_cores
    output_shape = spec.output_shape
    simd = precision.simd_width
    groups = (spec.out_channels + simd - 1) // simd

    tcdm = Tcdm(params)
    conflict_factor = tcdm.conflict_stall_factor(num_cores)

    # ---- per-position SpVA costs for the whole batch ----------------------
    flat_counts = spike_counts.reshape(batch, -1)
    if streaming:
        per_element = (
            costs.strided_indirect_cycles_per_element if strided_indirect else None
        )
        position_cost = streaming_spva_cost(
            flat_counts, costs, conflict_factor=conflict_factor, cycles_per_element=per_element
        )
    else:
        position_cost = baseline_spva_cost(flat_counts, costs)

    def per_rf(values: np.ndarray) -> np.ndarray:
        return window_sum_batch(
            values.reshape(batch, padded.height, padded.width), spec.kernel_size, spec.stride
        ).reshape(batch, -1)

    rf_spva_cycles = per_rf(position_cost.cycles)
    rf_spva_int = per_rf(position_cost.int_instructions)
    rf_spva_fp = per_rf(position_cost.fp_instructions)
    rf_spva_fp_busy = per_rf(position_cost.fp_busy_cycles)
    rf_spva_spm = per_rf(position_cost.spm_accesses)
    rf_spva_ssr = per_rf(position_cost.ssr_spm_accesses)

    act_int, act_fp = activation_cost_per_group(precision, costs)
    group_fixed_cycles = costs.group_overhead_int_instrs + act_int + act_fp
    group_fixed_int = costs.group_overhead_int_instrs + act_int
    group_fixed_fp = act_fp

    rf_cycles = (
        costs.rf_overhead_int_instrs
        + groups * (rf_spva_cycles + group_fixed_cycles)
    )
    rf_int = costs.rf_overhead_int_instrs + groups * (rf_spva_int + group_fixed_int)
    rf_fp = groups * (rf_spva_fp + group_fixed_fp)
    rf_fp_busy = groups * (rf_spva_fp_busy + group_fixed_fp)
    rf_spm = groups * (rf_spva_spm + 4.0)  # membrane load/store + ofmap append
    rf_ssr = groups * rf_spva_ssr

    # ---- workload stealing, all frames simultaneously ---------------------
    schedule = workload_stealing_schedule_batch(
        rf_cycles, num_cores, atomic_cost_cycles=costs.atomic_operation_cycles
    )

    # ---- per-frame tiling/DMA plans and core reductions -------------------
    plans = []
    for frame in range(batch):
        nnz = float(spike_counts[frame].sum())
        compressed_bytes = int(nnz * index_bytes + (padded.spatial_size + 1) * index_bytes)
        plans.append(
            plan_conv_tiles(
                input_shape=padded,
                output_shape=output_shape,
                kernel_size=spec.kernel_size,
                compressed_ifmap_bytes=compressed_bytes,
                precision=precision,
                index_bytes=index_bytes,
                params=params,
                costs=costs,
            )
        )
    label = f"{spec.name}-{'spikestream' if streaming else 'baseline'}-{precision.value}"
    return cluster_stats_from_batch(
        np.stack([rf_int, rf_fp, rf_fp_busy, rf_spm, rf_ssr]),
        schedule,
        num_cores,
        costs,
        InstructionCache(params, costs),
        plans,
        label,
    )


def conv_layer_functional(
    spec: ConvLayerSpec,
    compressed_input: CompressedIfmap,
    weights: np.ndarray,
    membrane: Optional[np.ndarray] = None,
    precision: Precision = Precision.FP64,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, CompressedIfmap]:
    """Execute the compressed convolution functionally.

    Parameters
    ----------
    compressed_input:
        Compressed *padded* ifmap (shape must equal ``spec.padded_input_shape``).
    weights:
        Filter bank of shape ``(kh, kw, C_in, C_out)``.
    membrane:
        Previous membrane potentials of shape ``output_shape`` (zeros if
        omitted).

    Returns
    -------
    (input_currents, new_membrane, output_spikes, compressed_ofmap)
    """
    padded = spec.padded_input_shape
    if compressed_input.shape != padded:
        raise ValueError(
            f"compressed input has shape {compressed_input.shape}, expected padded shape {padded}"
        )
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != spec.weight_shape:
        raise ValueError(f"weights have shape {weights.shape}, expected {spec.weight_shape}")
    output_shape = spec.output_shape
    if membrane is None:
        membrane = np.zeros(output_shape.as_tuple(), dtype=np.float64)
    membrane = np.asarray(membrane, dtype=np.float64)
    if membrane.shape != output_shape.as_tuple():
        raise ValueError(
            f"membrane has shape {membrane.shape}, expected {output_shape.as_tuple()}"
        )

    currents = np.zeros(output_shape.as_tuple(), dtype=np.float64)
    for oy in range(output_shape.height):
        for ox in range(output_shape.width):
            accumulator = np.zeros(spec.out_channels, dtype=np.float64)
            for ky in range(spec.kernel_size):
                for kx in range(spec.kernel_size):
                    row = oy * spec.stride + ky
                    col = ox * spec.stride + kx
                    idcs = compressed_input.spatial_slice(row, col)
                    if len(idcs) == 0:
                        continue
                    accumulator += spva_gather_accumulate(weights[ky, kx], idcs)
            currents[oy, ox] = accumulator

    new_membrane, spikes = fused_lif_activation(membrane, currents, spec.lif, precision)

    builder = CompressedIfmapBuilder(shape=output_shape, index_bytes=compressed_input.index_bytes)
    for oy, ox, channel in zip(*np.nonzero(spikes)):
        builder.add_spike(int(oy), int(ox), int(channel))
    return currents, new_membrane, spikes, builder.finalize()
