"""Fused LIF activation and compressed-output emission.

SpikeStream fuses the activation function with the convolution/FC kernel
(layer fusion, Section III-B): once a receptive field's input current is
accumulated, the membrane potential is decayed, the current added, the
threshold applied and — if the neuron fires — the compressed ofmap buffers
(``c_idcs`` / ``s_ptr``) are updated atomically.  This module provides the
functional activation shared by all kernels and its cost helper.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..arch.params import CostModelParams, DEFAULT_COSTS
from ..snn.neuron import LIFParameters
from ..types import Precision
from ..utils.quantize import quantize


def fused_lif_activation(
    membrane: np.ndarray,
    input_current: np.ndarray,
    lif: LIFParameters,
    precision: Precision = Precision.FP64,
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply the LIF update to accumulated input currents.

    Returns ``(new_membrane, spikes)``.  Arithmetic is quantized to the
    kernel's precision to mimic the reduced-precision datapath.
    """
    membrane = np.asarray(membrane, dtype=np.float64)
    input_current = np.asarray(input_current, dtype=np.float64)
    if membrane.shape != input_current.shape:
        raise ValueError(
            f"membrane shape {membrane.shape} does not match input current shape "
            f"{input_current.shape}"
        )
    decayed = quantize(membrane * lif.alpha, precision)
    updated = quantize(decayed + lif.resistance * quantize(input_current, precision), precision)
    spikes = updated >= lif.v_threshold
    new_membrane = np.where(spikes, updated - lif.v_reset, updated)
    return new_membrane, spikes


def activation_cost_per_group(
    precision: Precision, costs: CostModelParams = DEFAULT_COSTS
) -> Tuple[float, float]:
    """Return ``(int_instructions, fp_instructions)`` of the fused activation
    for one SIMD channel group.

    FP8 pays extra integer iterations to unpack the packed comparison mask
    into individual output spikes (the paper's explanation for the measured
    1.71x instead of the ideal 2x FP8 speedup).
    """
    int_instrs = float(costs.activation_int_instrs_per_group)
    fp_instrs = float(costs.activation_fp_instrs_per_group)
    if precision is Precision.FP8:
        int_instrs += costs.output_unpack_extra_iterations_fp8 * precision.simd_width
    return int_instrs, fp_instrs
