"""Workload-stealing scheduler over receptive fields (Section III-B).

Because the ifmaps are compressed, the work per receptive field (RF) varies
with the local spike count; a static partition would leave cores idle.  The
paper therefore lets each core, once it finishes its RF, atomically claim the
next unprocessed RF.  The function below simulates that policy over a vector
of per-RF costs and returns the resulting per-core load.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np


@dataclass
class StealingSchedule:
    """Result of simulating the workload-stealing policy."""

    num_cores: int
    assignments: List[List[int]]
    core_busy_cycles: np.ndarray
    core_finish_cycles: np.ndarray
    atomic_operations_per_core: np.ndarray

    @property
    def makespan(self) -> float:
        """Cycles until the last core finishes."""
        if len(self.core_finish_cycles) == 0:
            return 0.0
        return float(np.max(self.core_finish_cycles))

    @property
    def imbalance(self) -> float:
        """Ratio between the slowest and the average core busy time (>= 1)."""
        busy = self.core_busy_cycles
        if busy.size == 0 or np.all(busy == 0):
            return 1.0
        mean = float(np.mean(busy))
        if mean == 0:
            return 1.0
        return float(np.max(busy)) / mean

    def rf_count(self) -> int:
        """Total number of receptive fields processed."""
        return sum(len(a) for a in self.assignments)


@dataclass
class BatchStealingSchedule:
    """Workload-stealing schedules of a whole batch of frames at once.

    All arrays carry a leading batch axis: ``core_of_item[b, i]`` is the core
    that claims item ``i`` of frame ``b``, and the per-core aggregates have
    shape ``(batch, num_cores)``.  For every frame the schedule is identical
    (bit-for-bit) to running :func:`workload_stealing_schedule` on that
    frame's cost vector alone.
    """

    num_cores: int
    core_of_item: np.ndarray
    core_busy_cycles: np.ndarray
    core_finish_cycles: np.ndarray
    atomic_operations_per_core: np.ndarray

    @property
    def batch_size(self) -> int:
        """Number of frames scheduled."""
        return int(self.core_of_item.shape[0])

    @property
    def makespans(self) -> np.ndarray:
        """Per-frame cycles until the last core finishes, shape ``(batch,)``."""
        if self.core_finish_cycles.size == 0:
            return np.zeros(self.batch_size, dtype=np.float64)
        return np.max(self.core_finish_cycles, axis=1)

    def frame_assignments(self, frame: int) -> List[List[int]]:
        """Per-core item index lists of one frame (ascending, like the scalar API)."""
        return [
            [int(i) for i in np.flatnonzero(self.core_of_item[frame] == core)]
            for core in range(self.num_cores)
        ]


def workload_stealing_schedule_batch(
    item_costs: np.ndarray,
    num_cores: int,
    atomic_cost_cycles: float = 0.0,
) -> BatchStealingSchedule:
    """Simulate dynamic workload stealing for a batch of frames at once.

    ``item_costs`` has shape ``(batch, num_items)``: one cost vector per
    frame.  The sequential dependency of the stealing policy runs over the
    items, so the simulation loops over the (shared) item axis and resolves
    all frames simultaneously with vectorized argmin/updates.  The per-frame
    outcome is bit-for-bit identical to :func:`workload_stealing_schedule`:
    the scalar version keeps exactly one heap entry per core, so popping the
    smallest ``(available_at, core)`` tuple is an argmin over the per-core
    availability times with ties broken by the lowest core id — precisely
    what :func:`numpy.argmin` returns — and the busy/atomic accumulations
    happen in the same item order with the same float operand order.
    """
    if num_cores <= 0:
        raise ValueError(f"num_cores must be positive, got {num_cores}")
    costs = np.asarray(item_costs, dtype=np.float64)
    if costs.ndim != 2:
        raise ValueError(f"item_costs must be 2-D (batch, items), got shape {costs.shape}")
    if np.any(costs < 0):
        raise ValueError("item_costs must be non-negative")
    batch, num_items = costs.shape
    available = np.zeros((batch, num_cores), dtype=np.float64)
    busy = np.zeros((batch, num_cores), dtype=np.float64)
    atomics = np.zeros((batch, num_cores), dtype=np.float64)
    finish = np.zeros((batch, num_cores), dtype=np.float64)
    core_of_item = np.zeros((batch, num_items), dtype=np.int64)
    frames = np.arange(batch)
    costs_by_item = np.ascontiguousarray(costs.T)  # contiguous per-item rows
    for item in range(num_items):
        chosen = available.argmin(axis=1)
        cost = costs_by_item[item]
        end = available[frames, chosen] + atomic_cost_cycles + cost
        available[frames, chosen] = end
        busy[frames, chosen] += cost
        atomics[frames, chosen] += 1.0
        finish[frames, chosen] = end
        core_of_item[:, item] = chosen
    return BatchStealingSchedule(
        num_cores=num_cores,
        core_of_item=core_of_item,
        core_busy_cycles=busy,
        core_finish_cycles=finish,
        atomic_operations_per_core=atomics,
    )


def workload_stealing_schedule(
    rf_costs: Sequence[float],
    num_cores: int,
    atomic_cost_cycles: float = 0.0,
    static: bool = False,
) -> StealingSchedule:
    """Simulate dynamic workload stealing (or a static block partition).

    Parameters
    ----------
    rf_costs:
        Cycle cost of each receptive field, in processing order.
    num_cores:
        Number of worker cores.
    atomic_cost_cycles:
        Cost of the atomic tagging operation paid each time a core claims an
        RF.
    static:
        If True, simulate a static contiguous partition instead (used by the
        ablation study to quantify the benefit of stealing).
    """
    if num_cores <= 0:
        raise ValueError(f"num_cores must be positive, got {num_cores}")
    costs = np.asarray(list(rf_costs), dtype=np.float64)
    if np.any(costs < 0):
        raise ValueError("rf_costs must be non-negative")
    assignments: List[List[int]] = [[] for _ in range(num_cores)]
    busy = np.zeros(num_cores, dtype=np.float64)
    atomics = np.zeros(num_cores, dtype=np.float64)

    if static:
        # Contiguous block partition: core c gets RFs [c*chunk, (c+1)*chunk).
        chunks = np.array_split(np.arange(len(costs)), num_cores)
        for core, chunk in enumerate(chunks):
            assignments[core] = [int(i) for i in chunk]
            busy[core] = float(np.sum(costs[chunk]))
        finish = busy.copy()
        return StealingSchedule(
            num_cores=num_cores,
            assignments=assignments,
            core_busy_cycles=busy,
            core_finish_cycles=finish,
            atomic_operations_per_core=atomics,
        )

    # Dynamic stealing: each core grabs the next RF as soon as it is free.
    heap = [(0.0, core) for core in range(num_cores)]
    heapq.heapify(heap)
    finish = np.zeros(num_cores, dtype=np.float64)
    for rf_index, cost in enumerate(costs):
        available_at, core = heapq.heappop(heap)
        end = available_at + atomic_cost_cycles + cost
        assignments[core].append(rf_index)
        busy[core] += cost
        atomics[core] += 1
        finish[core] = end
        heapq.heappush(heap, (end, core))
    return StealingSchedule(
        num_cores=num_cores,
        assignments=assignments,
        core_busy_cycles=busy,
        core_finish_cycles=finish,
        atomic_operations_per_core=atomics,
    )
