"""Shared per-frame reduction of batched kernel schedules into ClusterStats.

The conv and FC batch entry points produce the same intermediate shape — a
``(5, batch, items)`` stack of per-item metrics plus a
:class:`~repro.kernels.scheduler.BatchStealingSchedule` — and reduce it to
one :class:`~repro.arch.trace.ClusterStats` per frame in exactly the same
way.  This module holds that reduction so a fix to the accounting applies to
every batched kernel at once.

Bit-for-bit equivalence with the scalar kernels: a *stable* argsort of each
frame's item->core assignment groups every core's items into one contiguous
segment while preserving ascending item order within the core — the same
index lists the scalar paths build — and summing each contiguous segment
with :meth:`numpy.ndarray.sum` along the unit-stride axis applies the same
pairwise reduction to the same operand sequence as the scalar
``np.sum(metric[indices])``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..arch.icache import InstructionCache
from ..arch.params import CostModelParams
from ..arch.trace import ClusterStats, CoreStats
from .scheduler import BatchStealingSchedule
from .tiling import TilePlan

#: Row order of the metric stack consumed by :func:`cluster_stats_from_batch`.
METRIC_ROWS = ("int_instructions", "fp_instructions", "fp_busy", "spm", "ssr")


def cluster_stats_from_batch(
    metric_stack: np.ndarray,
    schedule: BatchStealingSchedule,
    num_cores: int,
    costs: CostModelParams,
    icache: InstructionCache,
    plans: Sequence[TilePlan],
    label: str,
) -> List[ClusterStats]:
    """Reduce a batched schedule plus per-item metrics to per-frame stats.

    Parameters
    ----------
    metric_stack:
        Shape ``(5, batch, items)`` in :data:`METRIC_ROWS` order.
    plans:
        One :class:`TilePlan` per frame (drives DMA cycles and the icache's
        cold-miss tile count).
    """
    order = np.argsort(schedule.core_of_item, axis=1, kind="stable")
    segment_lengths = schedule.atomic_operations_per_core.astype(np.int64)
    results: List[ClusterStats] = []
    for frame, plan in enumerate(plans):
        dma_cycles = plan.dma_cycles(costs)
        ordered = metric_stack[:, frame, order[frame]]
        core_stats = []
        start = 0
        for core_id in range(num_cores):
            end = start + int(segment_lengths[frame, core_id])
            sums = ordered[:, start:end].sum(axis=1)
            start = end
            busy = float(schedule.core_busy_cycles[frame, core_id])
            atomics = float(schedule.atomic_operations_per_core[frame, core_id])
            int_instrs = float(sums[0]) + atomics
            fp_instrs = float(sums[1])
            icache_stall = icache.miss_cycles(int_instrs + fp_instrs, tiles=plan.num_tiles)
            total = busy + atomics * costs.atomic_operation_cycles + icache_stall
            core_stats.append(
                CoreStats(
                    core_id=core_id,
                    int_instructions=int_instrs,
                    fp_instructions=fp_instrs,
                    total_cycles=total,
                    fpu_busy_cycles=float(sums[2]),
                    stall_cycles=max(0.0, total - int_instrs - fp_instrs),
                    spm_accesses=float(sums[3]),
                    ssr_spm_accesses=float(sums[4]),
                    atomic_operations=atomics,
                )
            )
        compute_cycles = max(s.total_cycles for s in core_stats)
        dma_exposed = max(0.0, dma_cycles - compute_cycles)
        results.append(
            ClusterStats(
                core_stats=core_stats,
                dma_cycles=dma_cycles,
                dma_bytes=float(plan.total_dma_bytes),
                dma_exposed_cycles=dma_exposed,
                total_cycles=compute_cycles + dma_exposed,
                label=label,
            )
        )
    return results
