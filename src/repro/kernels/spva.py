"""Sparse-dense Vector Accumulation (SpVA) primitives.

The SpVA is the innermost operation of the compressed SNN kernels: for one
spatial position of a receptive field it gathers the weights addressed by the
spiking input channels (``c_idcs``) and accumulates them onto the output
neuron's input current.  This module provides

* the functional gather/accumulate used by the kernels' NumPy path, and
* the per-SpVA cost models of the baseline (Listing 1b) and the streaming
  (Listing 1c) variants, expressed with the coefficients of
  :class:`repro.arch.params.CostModelParams`.

All cost functions are vectorized over arrays of stream lengths so that a
whole layer's SpVAs can be costed in a single call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..arch.params import CostModelParams, DEFAULT_COSTS

ArrayLike = Union[float, int, np.ndarray]


@dataclass
class SpvaCost:
    """Cycle and instruction counts of one or more SpVAs (element-wise arrays)."""

    cycles: np.ndarray
    int_instructions: np.ndarray
    fp_instructions: np.ndarray
    fp_busy_cycles: np.ndarray
    spm_accesses: np.ndarray
    ssr_spm_accesses: np.ndarray

    def total(self) -> "SpvaCost":
        """Sum all entries into scalar (0-d array) totals."""
        return SpvaCost(
            cycles=np.asarray(np.sum(self.cycles)),
            int_instructions=np.asarray(np.sum(self.int_instructions)),
            fp_instructions=np.asarray(np.sum(self.fp_instructions)),
            fp_busy_cycles=np.asarray(np.sum(self.fp_busy_cycles)),
            spm_accesses=np.asarray(np.sum(self.spm_accesses)),
            ssr_spm_accesses=np.asarray(np.sum(self.ssr_spm_accesses)),
        )


def spva_gather_accumulate(weights: np.ndarray, c_idcs: np.ndarray) -> np.ndarray:
    """Functional SpVA: accumulate the weight rows addressed by ``c_idcs``.

    ``weights`` has shape ``(C_in, C_out)`` (weights of one kernel spatial
    offset, all input channels); the result is the ``(C_out,)`` contribution
    to the output neurons' input currents.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ValueError(f"weights must be 2-D (C_in, C_out), got shape {weights.shape}")
    c_idcs = np.asarray(c_idcs, dtype=np.int64)
    if c_idcs.size == 0:
        return np.zeros(weights.shape[1], dtype=np.float64)
    if int(c_idcs.max()) >= weights.shape[0]:
        raise ValueError("c_idcs references an input channel outside the weight tensor")
    return weights[c_idcs].sum(axis=0)


def baseline_spva_cost(
    stream_lengths: ArrayLike, costs: CostModelParams = DEFAULT_COSTS
) -> SpvaCost:
    """Cost of baseline SpVAs (Listing 1b) for the given stream lengths.

    Includes the outer address-calculation instructions of Listing 1a that
    precede every SpVA.  All instructions are issued sequentially by the
    single-issue core, so cycles simply accumulate.
    """
    lengths = np.asarray(stream_lengths, dtype=np.float64)
    if np.any(lengths < 0):
        raise ValueError("stream lengths must be non-negative")
    addr_calc = float(costs.spva_address_calc_int_instrs)
    per_element_cycles = costs.baseline_cycles_per_element
    int_per_element = float(costs.baseline_spva_instrs_per_element - costs.baseline_spva_fp_instrs_per_element)
    fp_per_element = float(costs.baseline_spva_fp_instrs_per_element)

    cycles = addr_calc + per_element_cycles * lengths
    int_instructions = addr_calc + int_per_element * lengths
    fp_instructions = fp_per_element * lengths
    # Each element performs one index load and one weight load.
    spm_accesses = 2.0 * lengths
    return SpvaCost(
        cycles=cycles,
        int_instructions=int_instructions,
        fp_instructions=fp_instructions,
        fp_busy_cycles=fp_instructions.copy(),
        spm_accesses=spm_accesses,
        ssr_spm_accesses=np.zeros_like(lengths),
    )


def streaming_spva_cost(
    stream_lengths: ArrayLike,
    costs: CostModelParams = DEFAULT_COSTS,
    conflict_factor: float = 1.0,
    cycles_per_element: Optional[float] = None,
) -> SpvaCost:
    """Cost of SpikeStream SpVAs (Listing 1c) for the given stream lengths.

    The integer core computes the stream base address and programs the SSR
    and ``frep`` (via shadow registers) while the FP subsystem drains the
    previous stream, so each SpVA costs the *maximum* of the integer setup
    and the FP streaming time, plus a short non-hidden startup.  Zero-length
    streams skip the FP part entirely (``if s_len != 0`` in the pseudocode).

    ``conflict_factor`` scales the per-element streaming time for TCDM bank
    conflicts caused by concurrent indirect gathers from the other cores.
    ``cycles_per_element`` overrides the default per-element streaming time
    (used by the strided-indirect future-work extension).
    """
    lengths = np.asarray(stream_lengths, dtype=np.float64)
    if np.any(lengths < 0):
        raise ValueError("stream lengths must be non-negative")
    if conflict_factor < 1.0:
        raise ValueError(f"conflict_factor must be >= 1, got {conflict_factor}")
    if cycles_per_element is None:
        cycles_per_element = costs.streaming_cycles_per_element
    if cycles_per_element < 1.0:
        raise ValueError(f"cycles_per_element must be >= 1, got {cycles_per_element}")

    addr_calc = float(costs.spva_address_calc_int_instrs)
    setup = float(costs.stream_setup_int_instrs)
    int_work = addr_calc + setup
    fp_cycles = lengths * cycles_per_element * conflict_factor
    nonzero = lengths > 0

    cycles = np.where(
        nonzero,
        np.maximum(int_work, fp_cycles) + costs.stream_startup_cycles,
        # Empty SpVA: only the address calculation and the skip branch.
        addr_calc + 1.0,
    )
    int_instructions = np.where(nonzero, int_work, addr_calc + 1.0)
    fp_instructions = np.where(nonzero, lengths * costs.streaming_fp_instrs_per_element, 0.0)
    # The SSR fetches one index and one weight word per element.
    ssr_spm_accesses = np.where(nonzero, 2.0 * lengths, 0.0)
    return SpvaCost(
        cycles=cycles,
        int_instructions=int_instructions,
        fp_instructions=fp_instructions,
        fp_busy_cycles=fp_instructions.copy(),
        spm_accesses=np.zeros_like(lengths),
        ssr_spm_accesses=ssr_spm_accesses,
    )
