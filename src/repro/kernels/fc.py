"""Compressed spiking fully connected kernel (baseline and SpikeStream).

FC layers use the single-index-array compression (:class:`CompressedVector`):
one SpVA per SIMD output-channel group gathers the weight rows of the spiking
input neurons.  Groups are distributed across the worker cores with the same
workload-stealing scheduler used for receptive fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..arch.icache import InstructionCache
from ..arch.params import ClusterParams, CostModelParams, DEFAULT_CLUSTER, DEFAULT_COSTS
from ..arch.tcdm import Tcdm
from ..arch.trace import ClusterStats, CoreStats
from ..formats.convert import compress_vector
from ..formats.csr_fiber import CompressedVector
from ..snn.neuron import LIFParameters
from ..types import Precision
from .activation import activation_cost_per_group, fused_lif_activation
from .batch_stats import cluster_stats_from_batch
from .scheduler import workload_stealing_schedule, workload_stealing_schedule_batch
from .spva import baseline_spva_cost, streaming_spva_cost
from .tiling import plan_fc_tiles


@dataclass
class FcLayerSpec:
    """Static description of one spiking fully connected layer."""

    name: str
    in_features: int
    out_features: int
    lif: LIFParameters = field(default_factory=LIFParameters)

    def __post_init__(self) -> None:
        if self.in_features <= 0 or self.out_features <= 0:
            raise ValueError("in_features and out_features must be positive")

    def weight_bytes(self, precision: Precision) -> int:
        """Bytes of the weight matrix at the given precision."""
        return self.in_features * self.out_features * precision.bytes


def fc_layer_perf(
    spec: FcLayerSpec,
    nnz: int,
    precision: Precision,
    streaming: bool,
    params: ClusterParams = DEFAULT_CLUSTER,
    costs: CostModelParams = DEFAULT_COSTS,
    index_bytes: int = 2,
    num_active_cores: Optional[int] = None,
) -> ClusterStats:
    """Cycle-accounting model of the compressed FC kernel.

    ``nnz`` is the number of spiking input neurons (the SpVA stream length
    shared by every output-channel group).
    """
    if nnz < 0 or nnz > spec.in_features:
        raise ValueError(f"nnz must be in [0, {spec.in_features}], got {nnz}")
    num_cores = num_active_cores or params.num_worker_cores
    simd = precision.simd_width
    groups = (spec.out_features + simd - 1) // simd

    tcdm = Tcdm(params)
    conflict_factor = tcdm.conflict_stall_factor(num_cores)

    lengths = np.full(groups, float(nnz))
    if streaming:
        spva = streaming_spva_cost(lengths, costs, conflict_factor=conflict_factor)
    else:
        spva = baseline_spva_cost(lengths, costs)

    act_int, act_fp = activation_cost_per_group(precision, costs)
    group_cycles = spva.cycles + costs.fc_setup_int_instrs + act_int + act_fp
    group_int = spva.int_instructions + costs.fc_setup_int_instrs + act_int
    group_fp = spva.fp_instructions + act_fp
    group_fp_busy = spva.fp_busy_cycles + act_fp
    group_spm = spva.spm_accesses + 4.0
    group_ssr = spva.ssr_spm_accesses

    schedule = workload_stealing_schedule(
        group_cycles, num_cores, atomic_cost_cycles=costs.atomic_operation_cycles
    )

    compressed_bytes = nnz * index_bytes + index_bytes
    plan = plan_fc_tiles(
        in_features=spec.in_features,
        out_features=spec.out_features,
        compressed_input_bytes=compressed_bytes,
        precision=precision,
        index_bytes=index_bytes,
        params=params,
        costs=costs,
    )
    dma_cycles = plan.dma_cycles(costs)

    icache = InstructionCache(params, costs)
    core_stats = []
    for core_id in range(num_cores):
        indices = np.asarray(schedule.assignments[core_id], dtype=np.int64)
        busy = float(schedule.core_busy_cycles[core_id])
        atomics = float(schedule.atomic_operations_per_core[core_id])
        int_instrs = float(np.sum(group_int[indices])) + atomics
        fp_instrs = float(np.sum(group_fp[indices]))
        fp_busy = float(np.sum(group_fp_busy[indices]))
        icache_stall = icache.miss_cycles(int_instrs + fp_instrs, tiles=plan.num_tiles)
        total = busy + atomics * costs.atomic_operation_cycles + icache_stall
        core_stats.append(
            CoreStats(
                core_id=core_id,
                int_instructions=int_instrs,
                fp_instructions=fp_instrs,
                total_cycles=total,
                fpu_busy_cycles=fp_busy,
                stall_cycles=max(0.0, total - int_instrs - fp_instrs),
                spm_accesses=float(np.sum(group_spm[indices])),
                ssr_spm_accesses=float(np.sum(group_ssr[indices])),
                atomic_operations=atomics,
            )
        )

    compute_cycles = max(s.total_cycles for s in core_stats)
    dma_exposed = max(0.0, dma_cycles - compute_cycles)
    label = f"{spec.name}-{'spikestream' if streaming else 'baseline'}-{precision.value}"
    return ClusterStats(
        core_stats=core_stats,
        dma_cycles=dma_cycles,
        dma_bytes=float(plan.total_dma_bytes),
        dma_exposed_cycles=dma_exposed,
        total_cycles=compute_cycles + dma_exposed,
        label=label,
    )


def fc_layer_perf_batch(
    spec: FcLayerSpec,
    nnz: Sequence[int],
    precision: Precision,
    streaming: bool,
    params: ClusterParams = DEFAULT_CLUSTER,
    costs: CostModelParams = DEFAULT_COSTS,
    index_bytes: int = 2,
    num_active_cores: Optional[int] = None,
) -> List[ClusterStats]:
    """Batch-axis entry point of :func:`fc_layer_perf`.

    ``nnz`` holds the spiking input count of every frame in the batch.  The
    SpVA costs of all ``batch x groups`` output-channel groups and the
    workload-stealing schedules are computed in one vectorized pass; the
    returned per-frame :class:`ClusterStats` are bit-for-bit identical to
    per-frame :func:`fc_layer_perf` calls.
    """
    nnz_array = np.asarray(nnz, dtype=np.int64)
    if nnz_array.ndim != 1:
        raise ValueError(f"nnz must be 1-D (batch,), got shape {nnz_array.shape}")
    if np.any(nnz_array < 0) or np.any(nnz_array > spec.in_features):
        raise ValueError(f"every nnz must be in [0, {spec.in_features}]")
    batch = int(nnz_array.shape[0])
    num_cores = num_active_cores or params.num_worker_cores
    simd = precision.simd_width
    groups = (spec.out_features + simd - 1) // simd

    tcdm = Tcdm(params)
    conflict_factor = tcdm.conflict_stall_factor(num_cores)

    lengths = np.repeat(nnz_array.astype(np.float64)[:, None], groups, axis=1)
    if streaming:
        spva = streaming_spva_cost(lengths, costs, conflict_factor=conflict_factor)
    else:
        spva = baseline_spva_cost(lengths, costs)

    act_int, act_fp = activation_cost_per_group(precision, costs)
    group_cycles = spva.cycles + costs.fc_setup_int_instrs + act_int + act_fp
    group_int = spva.int_instructions + costs.fc_setup_int_instrs + act_int
    group_fp = spva.fp_instructions + act_fp
    group_fp_busy = spva.fp_busy_cycles + act_fp
    group_spm = spva.spm_accesses + 4.0
    group_ssr = spva.ssr_spm_accesses

    schedule = workload_stealing_schedule_batch(
        group_cycles, num_cores, atomic_cost_cycles=costs.atomic_operation_cycles
    )

    plans = []
    for frame in range(batch):
        compressed_bytes = int(nnz_array[frame]) * index_bytes + index_bytes
        plans.append(
            plan_fc_tiles(
                in_features=spec.in_features,
                out_features=spec.out_features,
                compressed_input_bytes=compressed_bytes,
                precision=precision,
                index_bytes=index_bytes,
                params=params,
                costs=costs,
            )
        )
    label = f"{spec.name}-{'spikestream' if streaming else 'baseline'}-{precision.value}"
    return cluster_stats_from_batch(
        np.stack([group_int, group_fp, group_fp_busy, group_spm, group_ssr]),
        schedule,
        num_cores,
        costs,
        InstructionCache(params, costs),
        plans,
        label,
    )


def fc_layer_functional(
    spec: FcLayerSpec,
    compressed_input: CompressedVector,
    weights: np.ndarray,
    membrane: Optional[np.ndarray] = None,
    precision: Precision = Precision.FP64,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, CompressedVector]:
    """Execute the compressed FC layer functionally.

    Returns ``(input_currents, new_membrane, output_spikes, compressed_output)``.
    """
    if compressed_input.length != spec.in_features:
        raise ValueError(
            f"compressed input has length {compressed_input.length}, expected {spec.in_features}"
        )
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (spec.in_features, spec.out_features):
        raise ValueError(
            f"weights have shape {weights.shape}, expected "
            f"{(spec.in_features, spec.out_features)}"
        )
    if membrane is None:
        membrane = np.zeros(spec.out_features, dtype=np.float64)
    membrane = np.asarray(membrane, dtype=np.float64)
    if membrane.shape != (spec.out_features,):
        raise ValueError(f"membrane has shape {membrane.shape}, expected {(spec.out_features,)}")

    idcs = compressed_input.idcs.astype(np.int64)
    currents = weights[idcs].sum(axis=0) if len(idcs) else np.zeros(spec.out_features)
    new_membrane, spikes = fused_lif_activation(membrane, currents, spec.lif, precision)
    compressed_output = compress_vector(spikes, index_bytes=compressed_input.index_bytes)
    return currents, new_membrane, spikes, compressed_output
