"""Spike max-pooling kernel.

Max pooling on binary spike maps reduces to a logical OR over each window.
On the cluster this is integer-only work on the compressed representation:
the ``c_idcs`` lists of the window's spatial positions are merged and
duplicate channels removed.  The kernel is cheap compared to the SpVA-based
layers, but it is part of the end-to-end runtime, so both a functional and a
performance path are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..arch.params import ClusterParams, CostModelParams, DEFAULT_CLUSTER, DEFAULT_COSTS
from ..arch.trace import ClusterStats, CoreStats
from ..formats.convert import compress_ifmap, decompress_ifmap
from ..formats.csr_fiber import CompressedIfmap
from ..snn.reference import maxpool2d_hwc
from ..types import TensorShape
from .scheduler import workload_stealing_schedule


@dataclass
class PoolLayerSpec:
    """Static description of a spike max-pooling layer."""

    name: str
    input_shape: TensorShape
    kernel_size: int = 2
    stride: int = 2

    def __post_init__(self) -> None:
        if self.kernel_size <= 0 or self.stride <= 0:
            raise ValueError("kernel_size and stride must be positive")

    @property
    def output_shape(self) -> TensorShape:
        """Shape of the pooled spike map."""
        out_h = (self.input_shape.height - self.kernel_size) // self.stride + 1
        out_w = (self.input_shape.width - self.kernel_size) // self.stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ValueError(f"pooling {self.name!r} produces an empty output for {self.input_shape}")
        return TensorShape(out_h, out_w, self.input_shape.channels)


def pool_layer_functional(spec: PoolLayerSpec, compressed_input: CompressedIfmap) -> CompressedIfmap:
    """Max-pool a compressed spike map, returning the compressed result."""
    if compressed_input.shape != spec.input_shape:
        raise ValueError(
            f"compressed input has shape {compressed_input.shape}, expected {spec.input_shape}"
        )
    dense = decompress_ifmap(compressed_input)
    pooled = maxpool2d_hwc(dense, spec.kernel_size, spec.stride)
    return compress_ifmap(pooled, index_bytes=compressed_input.index_bytes)


def pool_layer_perf(
    spec: PoolLayerSpec,
    spike_counts: np.ndarray,
    params: ClusterParams = DEFAULT_CLUSTER,
    costs: CostModelParams = DEFAULT_COSTS,
    num_active_cores: Optional[int] = None,
) -> ClusterStats:
    """Cycle model of the pooling kernel.

    ``spike_counts`` is the per-position spike-count map of the input, shape
    ``(H, W)``.  Each output position merges the index lists of its window:
    roughly three integer instructions per merged spike (load, compare/insert,
    store) plus a fixed per-position overhead.
    """
    spike_counts = np.asarray(spike_counts, dtype=np.float64)
    if spike_counts.shape != (spec.input_shape.height, spec.input_shape.width):
        raise ValueError(
            f"spike_counts has shape {spike_counts.shape}, expected "
            f"{(spec.input_shape.height, spec.input_shape.width)}"
        )
    from .conv import window_sum  # local import to avoid an import cycle

    num_cores = num_active_cores or params.num_worker_cores
    merged = window_sum(spike_counts, spec.kernel_size, spec.stride).reshape(-1)
    instrs_per_spike = 3.0
    position_overhead = 8.0
    rf_cycles = merged * instrs_per_spike + position_overhead
    schedule = workload_stealing_schedule(rf_cycles, num_cores, costs.atomic_operation_cycles)

    core_stats = []
    for core_id in range(num_cores):
        indices = np.asarray(schedule.assignments[core_id], dtype=np.int64)
        busy = float(schedule.core_busy_cycles[core_id])
        atomics = float(schedule.atomic_operations_per_core[core_id])
        int_instrs = float(np.sum(rf_cycles[indices]))
        total = busy + atomics * costs.atomic_operation_cycles
        core_stats.append(
            CoreStats(
                core_id=core_id,
                int_instructions=int_instrs + atomics,
                fp_instructions=0.0,
                total_cycles=total,
                fpu_busy_cycles=0.0,
                stall_cycles=max(0.0, total - int_instrs - atomics),
                spm_accesses=float(np.sum(merged[indices])) * 2.0,
                atomic_operations=atomics,
            )
        )
    compute = max(s.total_cycles for s in core_stats)
    return ClusterStats(
        core_stats=core_stats,
        dma_cycles=0.0,
        dma_bytes=0.0,
        dma_exposed_cycles=0.0,
        total_cycles=compute,
        label=f"{spec.name}-pool",
    )
