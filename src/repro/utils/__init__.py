"""Small shared utilities: quantization emulation, RNG helpers, validation."""

from .quantize import dtype_for, quantize, quantization_error
from .rng import make_rng, spawn_rngs
from .validation import check_positive, check_probability, check_shape_match

__all__ = [
    "dtype_for",
    "quantize",
    "quantization_error",
    "make_rng",
    "spawn_rngs",
    "check_positive",
    "check_probability",
    "check_shape_match",
]
