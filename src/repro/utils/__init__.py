"""Small shared utilities: quantization, RNG helpers, validation, serialization."""

from .quantize import dtype_for, quantize, quantization_error
from .rng import make_rng, spawn_rngs
from .serialization import atomic_write_text, canonical_json, json_default
from .validation import check_positive, check_probability, check_shape_match

__all__ = [
    "dtype_for",
    "quantize",
    "quantization_error",
    "atomic_write_text",
    "canonical_json",
    "json_default",
    "make_rng",
    "spawn_rngs",
    "check_positive",
    "check_probability",
    "check_shape_match",
]
