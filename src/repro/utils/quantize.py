"""Emulation of reduced-precision floating-point formats.

Snitch's FPU natively computes in FP64/FP32/FP16/FP8.  NumPy has no FP8 dtype,
so FP8 (E4M3-like) values are emulated by rounding the mantissa to three bits
and clamping the exponent range.  The emulation is only used for functional
outputs; the performance and energy models use :class:`repro.types.Precision`
metadata directly.
"""

from __future__ import annotations

import numpy as np

from ..types import Precision

_FP8_MANTISSA_BITS = 3
_FP8_MAX_EXPONENT = 8
_FP8_MIN_EXPONENT = -6
_FP8_MAX = float((2 - 2.0 ** -_FP8_MANTISSA_BITS) * 2.0 ** _FP8_MAX_EXPONENT)


def dtype_for(precision: Precision) -> np.dtype:
    """Return the NumPy dtype used to *store* values of ``precision``.

    FP8 has no NumPy dtype; values are kept in float32 containers after being
    rounded to the FP8 grid by :func:`quantize`.
    """
    return {
        Precision.FP64: np.dtype(np.float64),
        Precision.FP32: np.dtype(np.float32),
        Precision.FP16: np.dtype(np.float16),
        Precision.FP8: np.dtype(np.float32),
    }[precision]


def _quantize_fp8(values: np.ndarray) -> np.ndarray:
    """Round ``values`` to an E4M3-like FP8 grid, keeping a float32 container."""
    out = np.asarray(values, dtype=np.float64).copy()
    nonzero = out != 0.0
    if np.any(nonzero):
        magnitude = np.abs(out[nonzero])
        exponent = np.floor(np.log2(magnitude))
        exponent = np.clip(exponent, _FP8_MIN_EXPONENT, _FP8_MAX_EXPONENT)
        scale = 2.0 ** (exponent - _FP8_MANTISSA_BITS)
        out[nonzero] = np.round(out[nonzero] / scale) * scale
    out = np.clip(out, -_FP8_MAX, _FP8_MAX)
    return out.astype(np.float32)


def quantize(values: np.ndarray, precision: Precision) -> np.ndarray:
    """Quantize ``values`` to ``precision`` and return them as float32/float64.

    The result always uses a dtype wide enough for further NumPy arithmetic
    (float32 for FP8/FP16/FP32, float64 for FP64), but its values lie exactly
    on the representable grid of the requested format.
    """
    values = np.asarray(values)
    if precision is Precision.FP64:
        return values.astype(np.float64)
    if precision is Precision.FP32:
        return values.astype(np.float32)
    if precision is Precision.FP16:
        return values.astype(np.float16).astype(np.float32)
    return _quantize_fp8(values)


def quantization_error(values: np.ndarray, precision: Precision) -> float:
    """Return the mean absolute quantization error for ``values``."""
    values = np.asarray(values, dtype=np.float64)
    quantized = quantize(values, precision).astype(np.float64)
    if values.size == 0:
        return 0.0
    return float(np.mean(np.abs(values - quantized)))
