"""Argument-validation helpers used across the library."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_positive(name: str, value: float, allow_zero: bool = False) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or non-negative)."""
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def check_shape_match(name: str, array: np.ndarray, expected: Sequence[int]) -> None:
    """Raise ``ValueError`` unless ``array.shape`` equals ``expected``."""
    if tuple(array.shape) != tuple(expected):
        raise ValueError(f"{name} has shape {tuple(array.shape)}, expected {tuple(expected)}")
