"""Canonical JSON encoding and atomic file persistence.

Every piece of the library that fingerprints parameters or persists results
(:class:`repro.eval.runner.ResultsCache`, :class:`repro.session.ResultStore`)
must agree on *one* encoding: if the cache key serializes a value one way and
the persisted payload another, equal inputs stop being equal across a
save/load cycle.  :func:`canonical_json` is that single encoder — sorted
keys, NumPy scalars narrowed to the matching Python type, and everything
else stringified.

:func:`atomic_write_text` writes through a temporary file in the target
directory followed by :func:`os.replace`, so an interrupted writer can never
leave a half-written file where a reader later expects valid JSON.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union

import numpy as np


def json_default(value: object) -> object:
    """Fallback encoder shared by every JSON writer in the library.

    NumPy integers/floats map to their exact Python counterparts (so a row
    computed with NumPy and the same row reloaded from disk compare equal);
    arrays become nested lists; anything else falls back to ``str``, which
    covers enums, ``TensorShape`` and other small value types used in
    parameter dictionaries.
    """
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)


def canonical_json(payload: object) -> str:
    """Serialize ``payload`` deterministically (sorted keys, shared encoder)."""
    return json.dumps(payload, sort_keys=True, default=json_default)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file lives in the destination directory so the final
    rename never crosses a filesystem boundary.  On any failure the
    temporary file is removed and the original file (if any) is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", dir=str(path.parent), prefix=path.name + ".", suffix=".tmp", delete=False
    )
    try:
        with handle:
            handle.write(text)
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
