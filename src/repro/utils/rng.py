"""Deterministic random-number-generator helpers.

Every stochastic component (synthetic datasets, random firing patterns, weight
initialization) receives an explicit :class:`numpy.random.Generator` so that
experiments are reproducible from a single seed.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or pass one through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from a single seed.

    Used to give every input frame of a batch its own stream so that changing
    the batch size does not perturb the data of earlier frames.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = make_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
