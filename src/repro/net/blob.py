"""Content-addressed blob storage for the v2 wire protocol.

Large ndarrays cross a :mod:`repro.net` connection **once**: the v2 frame
encoder (:mod:`repro.net.framing`) replaces any eligible array at or above
the connection's blob threshold with its content digest, and the receiver
materializes the array from its local :class:`BlobCache` — answering
``__need_blob__`` over the wire only on a miss.  Network weight panels and
repeated frame stacks therefore cost one transfer per worker instead of one
per batch; the saving is counted (``hits`` / ``misses`` / ``bytes_saved``)
and surfaced as ``net.blob.*`` telemetry.

Digests are :func:`hashlib.blake2b` over the array's raw C-layout bytes
(Fortran-ordered arrays hash their transpose's bytes), memoized per live
array object so a 200 MB weight panel is hashed once per process, not once
per dispatch.  The cache stores **read-only** byte views: a sender pins a
zero-copy view of the live array (the exporting array stays alive through
the view), a receiver pins the bytes it pulled off the wire, and every
materialized array is a frozen view over those bytes — shared safely across
the many requests that reference the same digest.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["BlobCache", "array_digest", "array_wire_view", "materialize"]

#: Default byte bound of one :class:`BlobCache` (LRU beyond it).  Generous on
#: purpose: evicting a blob a peer may still re-request turns into a link
#: error and a rescue, so the cache is sized for "all live weight panels".
DEFAULT_MAX_BYTES = 2 << 30

_DIGEST_SIZE = 16

# digest memo: id(array) -> (weakref to the array, digest).  The weakref
# callback evicts the entry when the array dies, so a recycled id() can
# never alias a stale digest.
_memo_lock = threading.Lock()
_digest_memo: Dict[int, Tuple["weakref.ref", str]] = {}


def array_wire_view(array: np.ndarray) -> Tuple[memoryview, str]:
    """``array``'s raw bytes as a flat view, plus its storage order tag.

    C-contiguous arrays expose their own buffer (``'C'``); Fortran-ordered
    arrays expose the transpose's C-contiguous buffer (``'F'``) — both are
    zero-copy.  Callers must only pass contiguous arrays.
    """
    if array.flags.c_contiguous:
        return memoryview(array).cast("B"), "C"
    return memoryview(array.T).cast("B"), "F"


def materialize(buffer, dtype: str, shape: Tuple[int, ...], order: str) -> np.ndarray:
    """Rebuild an array over ``buffer`` (zero-copy; read-only iff the buffer is).

    The inverse of :func:`array_wire_view`: ``order == 'F'`` buffers hold the
    transpose's bytes, so the reshape runs over the reversed shape and is
    transposed back into a Fortran-ordered view.
    """
    flat = np.frombuffer(buffer, dtype=np.dtype(dtype))
    if order == "F":
        return flat.reshape(tuple(reversed(shape))).T
    return flat.reshape(shape)


def array_digest(array: np.ndarray) -> str:
    """Content digest of ``array``'s raw bytes, memoized per live object."""
    key = id(array)
    with _memo_lock:
        entry = _digest_memo.get(key)
        if entry is not None and entry[0]() is array:
            return entry[1]
    view, _order = array_wire_view(array)
    digest = hashlib.blake2b(view, digest_size=_DIGEST_SIZE).hexdigest()
    try:
        ref = weakref.ref(array, lambda _r, _k=key: _digest_memo.pop(_k, None))
    except TypeError:
        return digest  # not weakref-able: still correct, just unmemoized
    with _memo_lock:
        _digest_memo[key] = (ref, digest)
    return digest


class BlobCache:
    """Thread-safe LRU of content-addressed byte blobs (see module docstring).

    One cache per process side: the coordinator shares a single cache across
    every worker link (a blob registered while encoding for one worker
    answers any worker's ``__need_blob__``), and each worker holds its own.
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES):
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, memoryview]" = OrderedDict()
        self._bytes = 0
        self._evictions = 0

    def register(self, digest: str, buffer) -> None:
        """Pin ``buffer`` (any bytes-like) under ``digest``.

        The stored view is forced read-only, so arrays materialized from the
        cache can never be mutated through a shared blob.
        """
        view = memoryview(buffer).toreadonly()
        with self._lock:
            if digest in self._entries:
                self._entries.move_to_end(digest)
                return
            self._entries[digest] = view
            self._bytes += view.nbytes
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                _old, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self._evictions += 1

    def get(self, digest: str) -> Optional[memoryview]:
        """The pinned read-only view for ``digest``, or ``None``."""
        with self._lock:
            view = self._entries.get(digest)
            if view is not None:
                self._entries.move_to_end(digest)
            return view

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "entries": float(len(self._entries)),
                "bytes": float(self._bytes),
                "evictions": float(self._evictions),
            }
