"""repro.net — the multi-host serving tier.

A stdlib-only distributed transport (wire protocol v2: zero-copy array
framing over ``sendmsg``/``recv_into``, a content-addressed
:class:`~repro.net.blob.BlobCache` so weights cross each link once, and
optional per-buffer compression — :mod:`~repro.net.framing`) connecting one
:class:`~repro.net.coordinator.Coordinator` — the admission front, a
:class:`~repro.serve.server.InferenceServer` whose queue is drained by
remote hosts — to N :class:`~repro.net.worker.NetWorker` processes that
register with a credit window, heartbeat, execute pushed
fingerprint-compatible micro-batches and stream bit-for-bit results back.
:class:`~repro.net.store.ReplicatedResultStore` makes a cache hit on any
host short-circuit cluster-wide, and
:class:`~repro.net.backend.NetworkShardedBackend` fans one sweep plan out
across worker processes on the same wire.

Quickstart (two terminals)::

    # terminal 1 — the cluster front
    python -m repro.cli serve --distributed --workers-remote 2

    # or by hand: coordinator here, workers anywhere
    python -m repro.cli worker --connect 127.0.0.1:7433
"""

from .blob import BlobCache, array_digest
from .coordinator import Coordinator, DispatchedBatch
from .framing import (
    ConnectionClosed,
    FrameError,
    FramedConnection,
    Message,
    TruncatedFrame,
    VersionMismatch,
    WIRE_VERSION,
    decode_frame,
    decode_frame_v1,
    encode_frame,
    encode_frame_v1,
    recv_message,
    request_from_wire,
    request_to_wire,
    send_message,
)
from .backend import NetworkShardedBackend
from .store import ReplicatedResultStore, ResultStoreProtocol
from .worker import DEFAULT_CREDIT, NetWorker, spawn_worker

__all__ = [
    "BlobCache",
    "ConnectionClosed",
    "Coordinator",
    "DEFAULT_CREDIT",
    "DispatchedBatch",
    "FrameError",
    "FramedConnection",
    "Message",
    "NetWorker",
    "NetworkShardedBackend",
    "ReplicatedResultStore",
    "ResultStoreProtocol",
    "TruncatedFrame",
    "VersionMismatch",
    "WIRE_VERSION",
    "array_digest",
    "decode_frame",
    "decode_frame_v1",
    "encode_frame",
    "encode_frame_v1",
    "recv_message",
    "request_from_wire",
    "request_to_wire",
    "send_message",
    "spawn_worker",
]
