"""Sweep-plan fan-out across worker processes: ``NetworkShardedBackend``.

The in-process :class:`~repro.backends.ShardedBackend` partitions a plan's
points round-robin across N worker-session *threads*.  This backend keeps
the exact same contract — deterministic partition
(:meth:`~repro.backends.ShardedBackend.partition`), streaming ``(index,
row)`` pairs, killed-shard rescue, cache merge-back — but each shard is a
real worker *process* speaking the :mod:`repro.net` wire protocol:

1. ``execute`` opens a listener, spawns ``shards`` worker processes
   (:func:`~repro.net.worker.spawn_worker`) pointed at it, and accepts
   their registrations.
2. Each worker's first ``pull`` is answered with a ``plan`` message
   carrying the (module-level, picklable — the ``unpicklable-point`` lint
   rule guarantees it) point function plus the shard's tasks, indices and
   row-cache keys.
3. A reader thread per connection translates the worker's ``plan_row`` /
   ``plan_done`` / ``plan_error`` stream into the very same ``("row" |
   "done" | "failed" | "error")`` messages the thread fleet posts, so the
   inherited :meth:`~repro.backends.ShardedBackend._consume` loop handles
   streaming, point-error propagation and the rescue of a dead process's
   unfinished points (re-run on a fresh local rescue session) unchanged.
4. ``plan_done`` carries the worker's fresh ``{key: row}`` delta;
   :meth:`execute` merges it into the cache bound via
   :meth:`~repro.backends.ExecutionBackend.bind`, mirroring the thread
   fleet's worker-session merge-back.

A worker that never manages to register (or dies before its plan lands)
simply forfeits its whole shard to the rescue path — the sweep always
completes with every row, bit-for-bit equal to a serial run.
"""

from __future__ import annotations

import queue
import socket
import sys
import threading
from typing import Dict, List, Optional, Sequence

from ..backends import ShardedBackend
from .blob import BlobCache
from .framing import FrameError, FramedConnection
from .worker import spawn_worker

__all__ = ["NetworkShardedBackend"]

_LINK_ERRORS = (FrameError, OSError)


class _ShardLink:
    """One remote shard: its process, connection and assignment."""

    def __init__(self, shard_index: int, assigned: List[int]):
        self.shard_index = shard_index
        self.assigned = assigned
        self.process = None
        self.connection: Optional[FramedConnection] = None
        self.cache_delta: Dict[str, Dict[str, object]] = {}


class NetworkShardedBackend(ShardedBackend):
    """Run each shard of a sweep plan in its own worker process."""

    name = "net"

    def __init__(self, shards: int = 2, startup_timeout_s: float = 60.0):
        super().__init__(shards=shards)
        self.startup_timeout_s = startup_timeout_s

    def _accept_links(self, listener: socket.socket,
                      links: Sequence[_ShardLink],
                      blob_cache: Optional[BlobCache] = None) -> None:
        """Pair each spawned process with an accepted, registered connection.

        ``blob_cache`` is shared across every shard link: a plan whose tasks
        embed the same network ships its weight panels once, after which the
        remaining shards' frames reference them by digest.
        """
        listener.settimeout(self.startup_timeout_s)
        for link in links:
            try:
                sock, _peer = listener.accept()
            except OSError as error:
                # Remaining shards never connected; their points go to the
                # rescue path via a "failed" message in the reader stage.
                print(
                    f"warning: net shard {link.shard_index} never connected "
                    f"({error!r})",
                    file=sys.stderr,
                )
                return
            connection = FramedConnection(sock, blob_cache=blob_cache)
            try:
                hello = connection.recv()
                if hello.kind != "register":
                    raise FrameError(
                        f"expected a register message, got {hello.kind!r}"
                    )
                connection.send(
                    "registered",
                    worker_id=f"plan-shard-{link.shard_index}",
                    heartbeat_interval_s=1.0,
                )
            except _LINK_ERRORS as error:
                print(
                    f"warning: net shard {link.shard_index} failed its "
                    f"handshake ({error!r})",
                    file=sys.stderr,
                )
                connection.close()
                continue
            link.connection = connection

    def _reader_loop(self, link: _ShardLink, fn, tasks, keys, out, stop) -> None:
        """Drive one shard's plan over its connection; post fleet messages."""
        shard = link.shard_index
        connection = link.connection
        remaining = list(link.assigned)
        if connection is None:
            out.put(("failed", shard, remaining,
                     RuntimeError("worker process never registered")))
            return
        try:
            while True:  # swallow heartbeats until the worker pulls
                message = connection.recv()
                if message.kind == "pull":
                    break
            connection.send(
                "plan",
                fn=fn,
                indices=link.assigned,
                tasks=[tasks[index] for index in link.assigned],
                keys=(
                    [keys[index] for index in link.assigned]
                    if keys is not None else None
                ),
            )
            done = False
            while not done:
                message = connection.recv()
                if message.kind == "heartbeat":
                    continue
                if message.kind == "plan_row":
                    index = message["index"]
                    out.put(("row", index, message["row"]))
                    if index in remaining:
                        remaining.remove(index)
                elif message.kind == "plan_error":
                    out.put(("error", message["error"]))
                    return
                elif message.kind == "plan_done":
                    link.cache_delta = dict(message.get("cache_delta") or {})
                    done = True
        except _LINK_ERRORS as error:
            out.put(("failed", shard, remaining, error))
            return
        if remaining:
            out.put(("failed", shard, remaining,
                     RuntimeError("worker finished without all rows")))
        else:
            out.put(("done", shard))

    def execute(self, fn, tasks, keys=None):
        if not tasks:
            return
        assignments = self.partition(len(tasks))
        links = [
            _ShardLink(shard, assigned)
            for shard, assigned in enumerate(assignments)
        ]
        workers: List[object] = []  # rescue sessions adopted by _consume
        self.last_workers = list(workers)
        out: "queue.Queue[tuple]" = queue.Queue()
        stop = threading.Event()
        readers: List[threading.Thread] = []
        blob_cache = BlobCache()
        with socket.create_server(("127.0.0.1", 0)) as listener:
            address = listener.getsockname()[:2]
            for link in links:
                link.process = spawn_worker(
                    address, worker_id=f"plan-shard-{link.shard_index}"
                )
            self._accept_links(listener, links, blob_cache)
            readers = [
                threading.Thread(
                    target=self._reader_loop,
                    args=(link, fn, tasks, keys, out, stop),
                    name=f"net-shard-{link.shard_index}",
                    daemon=True,
                )
                for link in links
            ]
            try:
                for thread in readers:
                    thread.start()
                yield from self._consume(
                    out, len(links), fn, tasks, keys, stop, workers
                )
            finally:
                stop.set()
                self._shutdown_links(links, readers)
                self._merge_deltas(links)
                self._merge(workers)
                for worker in workers:
                    close = getattr(worker, "close", None)
                    if close is not None:
                        close()

    def _shutdown_links(self, links: Sequence[_ShardLink],
                        readers: Sequence[threading.Thread]) -> None:
        for link in links:
            if link.connection is not None:
                try:
                    link.connection.send("shutdown")
                except _LINK_ERRORS:
                    pass
        for thread in readers:
            thread.join(timeout=5.0)
        for link in links:
            if link.connection is not None:
                link.connection.close()
        # A reader stuck mid-recv unblocks once its connection is cut.
        for thread in readers:
            thread.join(timeout=5.0)
        for link in links:
            if link.process is not None:
                try:
                    link.process.wait(timeout=5.0)
                except Exception:
                    link.process.kill()
                    link.process.wait(timeout=5.0)

    def _merge_deltas(self, links: Sequence[_ShardLink]) -> None:
        """Adopt the workers' fresh rows into the bound parent cache."""
        if self._parent_cache is None:
            return
        for link in links:
            for key, row in link.cache_delta.items():
                if self._parent_cache.get(key) is None:
                    self._parent_cache.put(key, row)
