"""A worker host process for the distributed serving tier.

:class:`NetWorker` is the execution side of the :mod:`repro.net` protocol:
it connects to a :class:`~repro.net.coordinator.Coordinator`, registers
(advertising its *credit window* — how many batches the coordinator may
keep in flight on this link), heartbeats on a daemon thread, announces
readiness with a single ``pull``, and then serves a pushed stream of work:

* ``batch`` — rebuild the :class:`~repro.serve.queue.InferenceRequest`
  objects from their wire dicts, check the *local* result store first (a
  replicated hit skips the engine entirely), run the misses through this
  worker's own :class:`~repro.serve.batcher.MicroBatcher` in one batched
  pass, store, and stream the results back.  Results are bit-for-bit what
  the coordinator's session would have produced: configs, seeds, networks
  and frames cross the wire losslessly and the engines are deterministic.
  With ``credit > 1`` the next batch is usually already queued in the
  socket buffer when results go out — compute overlaps wire latency
  instead of alternating with it.
* ``plan`` — evaluate the shard's points through the (module-level,
  picklable) point function, streaming one ``plan_row`` per point and a
  final ``plan_done`` carrying the worker's fresh row-cache delta for
  merge-back.
* ``store_put`` / ``store_put_many`` — replication traffic from the
  coordinator (results other workers computed, one entry or a whole
  results frame's worth); applied to the local store without
  re-publishing.
* ``idle`` / ``shutdown`` — keepalive no-op / drain-and-exit.

Each worker owns a :class:`~repro.net.blob.BlobCache`: network weight
panels and other large arrays arrive as content digests and are fetched
over the wire only on first sight (``__need_blob__`` handled inside
:class:`~repro.net.framing.FramedConnection`), so repeat batches against
the same network cost KBs, not hundreds of MBs.

The worker runs equally as an in-process thread (tests drive and kill it
directly) or as a real OS process via :func:`spawn_worker` /
``repro.cli worker --connect HOST:PORT``.

Chaos hooks ``chaos_hang_after`` / ``chaos_exit_after`` make a worker hang
or die mid-batch after N batches — the levers the rescue tests and the
smoke cluster step pull to prove dead- and stalled-worker re-dispatch
(including a full credit window of outstanding batches).
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import Tracer
from ..serve.batcher import MicroBatcher
from ..session import Session
from .blob import BlobCache
from .framing import FrameError, FramedConnection, Message, request_from_wire
from .store import ReplicatedResultStore

__all__ = ["DEFAULT_CREDIT", "NetWorker", "spawn_worker"]

_LINK_ERRORS = (FrameError, OSError)

#: Default credit window a worker advertises at registration: how many
#: batches the coordinator may keep outstanding on the link.  Two is enough
#: to hide one wire round-trip behind compute without ballooning rescue
#: cost when a worker dies with a full window.
DEFAULT_CREDIT = 2


def _wire_error(error: BaseException) -> BaseException:
    """An exception safe to pickle onto the wire.

    Most exceptions pickle fine and propagate unchanged; one holding an
    unpicklable payload degrades to a ``RuntimeError`` carrying its repr —
    the caller still gets *an* exception, never a corrupted stream.
    """
    import pickle

    try:
        pickle.dumps(error)
        return error
    except Exception:
        return RuntimeError(f"{type(error).__name__}: {error}")


class NetWorker:
    """One worker endpoint (see module docstring).

    Parameters
    ----------
    address:
        The coordinator's ``(host, port)``.
    session:
        The session whose engines execute batches.  Omitted: the worker
        creates (and owns, and closes) a default one.
    worker_id:
        Requested registration name; the coordinator may uniquify it.
    heartbeat_interval_s:
        Fallback heartbeat cadence; the coordinator's ``registered`` ack
        overrides it so the whole cluster agrees.
    credit:
        Advertised credit window (outstanding batches the coordinator may
        push to this worker); clamped to at least 1.
    blob_threshold / wire_compress:
        Wire-protocol knobs forwarded to this worker's
        :class:`~repro.net.framing.FramedConnection` — the array size at
        which payloads turn into content digests, and whether buffers are
        deflated on send.
    chaos_hang_after / chaos_exit_after:
        Testing levers: after this many batches have *started*, hang
        forever (heartbeats continue — a stalled worker) or hard-exit the
        process (a dead worker).  ``None`` disables.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        session: Optional[Session] = None,
        worker_id: Optional[str] = None,
        heartbeat_interval_s: float = 0.2,
        connect_timeout_s: float = 10.0,
        credit: int = DEFAULT_CREDIT,
        blob_threshold: Optional[int] = None,
        wire_compress: bool = False,
        chaos_hang_after: Optional[int] = None,
        chaos_exit_after: Optional[int] = None,
    ):
        self.address = address
        self._owns_session = session is None
        self.session = session if session is not None else Session()
        self.requested_id = worker_id
        self.worker_id = worker_id or ""
        self.heartbeat_interval_s = heartbeat_interval_s
        self.connect_timeout_s = connect_timeout_s
        self.credit = max(1, int(credit))
        self.blob_threshold = blob_threshold
        self.wire_compress = wire_compress
        self.blob_cache = BlobCache()
        self.chaos_hang_after = chaos_hang_after
        self.chaos_exit_after = chaos_exit_after
        self.store = ReplicatedResultStore(self.session.store)
        # Always-on: with no sampled trace contexts in a batch every hook
        # degrades to the null span, so an untraced cluster pays nothing —
        # and a traced coordinator gets worker spans with zero worker-side
        # configuration.  Spans are drained per batch and shipped home on
        # the results frame (the coordinator rebases their clock).
        self.tracer = Tracer(enabled=True)
        self.batcher = MicroBatcher(self.session, tracer=self.tracer)
        self.counters: Dict[str, int] = {
            "batches": 0,
            "requests": 0,
            "local_hits": 0,
            "plan_chunks": 0,
            "plan_rows": 0,
        }
        self._plan_rows: Dict[str, Dict[str, object]] = {}
        self._stop = threading.Event()
        self._connection: Optional[FramedConnection] = None
        self._heartbeat_thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------
    def run(self) -> Dict[str, int]:
        """Serve until the coordinator shuts the cluster down.

        Returns the worker's counter snapshot (batches, requests served,
        local store hits, plan rows evaluated).
        """
        connection = FramedConnection.connect(
            self.address,
            timeout=self.connect_timeout_s,
            blob_cache=self.blob_cache,
            blob_threshold=self.blob_threshold,
            compress=self.wire_compress,
        )
        self._connection = connection
        try:
            connection.send(
                "register", worker_id=self.requested_id, pid=os.getpid(),
                credit=self.credit,
            )
            ack = connection.recv()
            if ack.kind != "registered":
                raise FrameError(f"expected a registered ack, got {ack.kind!r}")
            self.worker_id = str(ack["worker_id"])
            interval = ack.get("heartbeat_interval_s")
            if interval is not None:
                self.heartbeat_interval_s = float(interval)
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"repro-net-heartbeat-{self.worker_id}",
                daemon=True,
            )
            self._heartbeat_thread.start()
            self._serve(connection)
            try:
                connection.send("goodbye", worker_id=self.worker_id)
            except _LINK_ERRORS:
                pass
        except _LINK_ERRORS:
            if not self._stop.is_set():
                raise
        finally:
            self._stop.set()
            connection.close()
            if self._heartbeat_thread is not None:
                self._heartbeat_thread.join(timeout=2.0)
            if self._owns_session:
                self.session.close()
        return dict(self.counters)

    def stop(self) -> None:
        """Abort the worker from another thread (tests; not the clean path)."""
        self._stop.set()
        if self._connection is not None:
            self._connection.close()

    # -- the protocol loop --------------------------------------------------
    def _serve(self, connection: FramedConnection) -> None:
        # One pull announces readiness (the plan backend keys its shard
        # hand-off on it); after that the coordinator pushes work up to the
        # advertised credit window, so the loop is recv-driven.
        connection.send("pull", worker_id=self.worker_id)
        while not self._stop.is_set():
            message = self._next_work(connection)
            if message.kind == "idle":
                continue
            if message.kind == "shutdown":
                return
            if message.kind == "batch":
                self._handle_batch(connection, message)
            elif message.kind == "plan":
                self._handle_plan(connection, message)
            # unknown kinds: ignored (forward compatibility inside one
            # wire version)

    def _next_work(self, connection: FramedConnection) -> Message:
        """The next non-replication message; replication applies inline."""
        while True:
            message = connection.recv()
            if message.kind == "store_put":
                self.store.apply(message["fingerprint"], message["result"],
                                 adopt=True)
                continue
            if message.kind == "store_put_many":
                for entry in message["entries"]:
                    self.store.apply(entry["fingerprint"], entry["result"],
                                     adopt=True)
                continue
            return message

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval_s):
            try:
                connection = self._connection
                stats = dict(self.counters)
                stats.update(connection.blob_stats)
                stats["bytes_sent"] = connection.bytes_sent
                stats["bytes_received"] = connection.bytes_received
                connection.send(
                    "heartbeat",
                    worker_id=self.worker_id,
                    sent_at=time.time(),
                    stats=stats,
                )
            except _LINK_ERRORS:
                return

    # -- serve batches ------------------------------------------------------
    def _chaos(self) -> None:
        started = self.counters["batches"]
        if self.chaos_exit_after is not None and started > self.chaos_exit_after:
            os._exit(3)  # a dead worker: no goodbye, no flush, nothing
        if self.chaos_hang_after is not None and started > self.chaos_hang_after:
            # A stalled worker: the batch never finishes but heartbeats
            # keep flowing on their own thread.
            self._stop.wait()
            raise FrameError("chaos hang released by stop()")

    def _handle_batch(self, connection: FramedConnection, message: Message) -> None:
        received_at = time.monotonic()
        self.counters["batches"] += 1
        self._chaos()
        requests = [request_from_wire(data) for data in message["requests"]]
        self.counters["requests"] += len(requests)
        entries: List[Dict[str, object]] = []
        misses = []
        hits = 0
        for request in requests:
            hit = self.store.get(request.fingerprint)
            if hit is not None:
                hits += 1
                entries.append(
                    {"id": request.id, "fingerprint": request.fingerprint,
                     "result": hit, "error": None}
                )
            else:
                misses.append(request)
        self.counters["local_hits"] += hits
        if misses:
            ctxs = self.tracer.sampled(misses)
            try:
                with self.tracer.span(
                    "worker_execute", ctxs,
                    worker=self.worker_id, local_hits=hits,
                ):
                    results = self.batcher.execute(misses)
            except Exception as error:  # noqa: BLE001 — shipped to the caller
                wired = _wire_error(error)
                entries.extend(
                    {"id": request.id, "fingerprint": request.fingerprint,
                     "result": None, "error": wired}
                    for request in misses
                )
            else:
                for request, result in zip(misses, results):
                    self.store.put(request.fingerprint, result)
                    entries.append(
                        {"id": request.id, "fingerprint": request.fingerprint,
                         "result": result, "error": None}
                    )
        payload: Dict[str, object] = {
            "batch_id": message["batch_id"],
            "results": entries,
            "local_hits": hits,
        }
        # Tracing rides the results frame only when it produced something:
        # an untraced cluster's frames stay byte-identical to pre-tracing
        # builds.  span_clock brackets this worker's handling of the batch
        # on ITS monotonic clock so the coordinator can rebase the records
        # into its own (Tracer.adopt).
        spans = self.tracer.drain()
        if spans:
            payload["spans"] = spans
            payload["span_clock"] = (received_at, time.monotonic())
        connection.send("results", **payload)

    # -- evaluate plan shards -----------------------------------------------
    def _handle_plan(self, connection: FramedConnection, message: Message) -> None:
        self.counters["plan_chunks"] += 1
        fn = message["fn"]
        tasks = message["tasks"]
        indices = message["indices"]
        keys = message.get("keys")
        delta: Dict[str, Dict[str, object]] = {}
        for position, index in enumerate(indices):
            self._chaos_plan()
            key = keys[position] if keys is not None else None
            cached = self._plan_rows.get(key) if key is not None else None
            if cached is not None:
                row = cached
            else:
                try:
                    row = fn(tasks[position])
                except BaseException as error:  # noqa: BLE001 — propagates home
                    connection.send(
                        "plan_error", index=index, error=_wire_error(error)
                    )
                    return
                if key is not None:
                    self._plan_rows[key] = row
                    delta[key] = row
            self.counters["plan_rows"] += 1
            connection.send("plan_row", index=index, row=row, key=key)
        connection.send("plan_done", cache_delta=delta)

    def _chaos_plan(self) -> None:
        if self.chaos_exit_after is not None and (
            self.counters["plan_rows"] >= self.chaos_exit_after
        ):
            os._exit(3)
        if self.chaos_hang_after is not None and (
            self.counters["plan_rows"] >= self.chaos_hang_after
        ):
            self._stop.wait()
            raise FrameError("chaos hang released by stop()")


def spawn_worker(
    address: Tuple[str, int],
    worker_id: Optional[str] = None,
    chaos_hang_after: Optional[int] = None,
    chaos_exit_after: Optional[int] = None,
    credit: Optional[int] = None,
    blob_threshold: Optional[int] = None,
    wire_compress: bool = False,
    extra_args: Sequence[str] = (),
    quiet: bool = False,
) -> "subprocess.Popen[bytes]":
    """Launch a worker OS process connected to ``address``.

    Runs ``python -m repro.cli worker --connect host:port`` with this
    interpreter and an environment whose ``PYTHONPATH`` is guaranteed to
    reach this very ``repro`` package, so it works from a source checkout
    without installation.  The caller owns the returned ``Popen`` (and
    should ``wait()`` or ``terminate()`` it).  ``quiet`` discards the
    worker's stdout — callers whose own stdout is a machine-parsed
    document (the ``--json`` benchmarks) must not let the workers'
    exit summaries interleave into it.
    """
    host, port = address
    argv = [
        sys.executable, "-m", "repro.cli", "worker",
        "--connect", f"{host}:{port}",
    ]
    if worker_id is not None:
        argv += ["--worker-id", worker_id]
    if chaos_hang_after is not None:
        argv += ["--chaos-hang-after", str(chaos_hang_after)]
    if chaos_exit_after is not None:
        argv += ["--chaos-exit-after", str(chaos_exit_after)]
    if credit is not None:
        argv += ["--credit", str(credit)]
    if blob_threshold is not None:
        argv += ["--blob-threshold", str(blob_threshold)]
    if wire_compress:
        argv += ["--wire-compress"]
    argv += list(extra_args)
    src_dir = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    return subprocess.Popen(
        argv, env=env,
        stdout=subprocess.DEVNULL if quiet else None,
    )
