"""Cluster-wide result caching: the replicated ``ResultStore`` protocol.

A single-host deployment already memoizes whole ``InferenceResult`` objects
in :class:`repro.session.ResultStore`, keyed on the session fingerprint.
Distributed serving wants the same property *cluster-wide*: a result
computed (or cached) on any host should short-circuit the identical request
everywhere.  Two pieces deliver it:

* :class:`ResultStoreProtocol` — the structural interface every store-like
  object must satisfy (``get``/``put``/``merge_from``/``stats``).  The
  coordinator, the workers and :class:`ReplicatedResultStore` all program
  against this protocol, so a plain in-memory store, a disk-backed store
  and a replicated wrapper are interchangeable.
* :class:`ReplicatedResultStore` — wraps a base store; every :meth:`put`
  lands in the base store *and* fires a publish callback carrying the
  ``(fingerprint, result)`` pair, which the coordinator turns into a
  ``store_put`` broadcast to every registered worker.  :meth:`put_many`
  stores a whole results frame's worth of entries and publishes them as
  *one* event (the coordinator's ``store_put_many`` frame) — on a busy
  cluster the per-frame wire and wakeup overhead of replication is paid
  once per batch instead of once per result.  Replicated entries arriving
  *from* a peer are applied with :meth:`apply`, which writes the base
  store without re-publishing (no echo loops).

The resulting flow: worker A computes -> streams results -> coordinator
stores and broadcasts -> worker B's local store now holds the entry -> a
later batch containing the same fingerprint resolves on worker B without an
engine pass, and the coordinator's own admission check
(:meth:`InferenceServer._admit`) short-circuits it before it is even
queued.
"""

from __future__ import annotations

import inspect
import threading
from typing import (
    Callable, Dict, Optional, Protocol, Sequence, Tuple, runtime_checkable,
)

__all__ = ["ReplicatedResultStore", "ResultStoreProtocol"]


@runtime_checkable
class ResultStoreProtocol(Protocol):
    """Structural interface of a result store (see module docstring).

    :class:`repro.session.ResultStore` satisfies it natively;
    :class:`ReplicatedResultStore` satisfies it by delegation, so either
    can back a session, a server or a coordinator.
    """

    def get(self, fingerprint: str) -> Optional[object]:
        """Stored result for ``fingerprint`` or ``None``."""

    def put(self, fingerprint: str, result: object) -> None:
        """Store one result under ``fingerprint``."""

    def merge_from(self, other: "ResultStoreProtocol") -> int:
        """Adopt every result of ``other`` this store lacks; returns count."""

    def stats(self) -> Dict[str, float]:
        """Flat counter/occupancy snapshot."""


class ReplicatedResultStore:
    """A :class:`ResultStoreProtocol` wrapper that publishes every put.

    Parameters
    ----------
    base:
        The store that actually holds results (typically the owning
        session's :class:`~repro.session.ResultStore`).
    publish:
        Called as ``publish(fingerprint, result)`` after every successful
        local :meth:`put`.  ``None`` disables publication (the wrapper then
        only adds the :meth:`apply` inbox and replication counters) — the
        shape worker processes use, since their results travel home inside
        the normal result stream rather than as store messages.
    publish_many:
        Optional batched form, called as ``publish_many(pairs,
        origin=...)`` with a list of ``(fingerprint, result)`` pairs by
        :meth:`put_many`.  Omitted: :meth:`put_many` falls back to one
        ``publish`` call per pair.
    """

    def __init__(
        self,
        base: ResultStoreProtocol,
        publish: Optional[Callable[[str, object], None]] = None,
        publish_many: Optional[Callable[..., None]] = None,
    ):
        self.base = base
        self._publish = publish
        self._publish_many = publish_many
        self._lock = threading.Lock()
        self._published = 0
        self._applied = 0
        # The protocol only requires a two-argument put; ownership-transfer
        # puts (adopt=True, skipping the base store's defensive deep copy)
        # are forwarded only to bases that understand them.
        try:
            self._base_adopts = (
                "adopt" in inspect.signature(base.put).parameters
            )
        except (TypeError, ValueError):
            self._base_adopts = False

    def _base_put(self, fingerprint: str, result: object,
                  adopt: bool = False) -> None:
        if adopt and self._base_adopts:
            self.base.put(fingerprint, result, adopt=True)
        else:
            self.base.put(fingerprint, result)

    # -- protocol surface (delegation) --------------------------------------
    def get(self, fingerprint: str) -> Optional[object]:
        return self.base.get(fingerprint)

    def put(self, fingerprint: str, result: object,
            origin: Optional[str] = None, adopt: bool = False) -> None:
        """Store locally, then publish to peers (see module docstring).

        ``origin`` names the worker the result came from; publishers that
        accept it (the coordinator's replication broadcast) skip that
        worker — its local store already holds the entry, so echoing it
        back would only burn wire bytes.  Publishers with the plain
        two-argument signature keep working: the keyword is only passed
        when an origin is known.  ``adopt`` transfers ownership of a
        wire-decoded ``result`` to the base store (no defensive copy).
        """
        self._base_put(fingerprint, result, adopt=adopt)
        if self._publish is not None:
            if origin is None:
                self._publish(fingerprint, result)
            else:
                self._publish(fingerprint, result, origin=origin)
            with self._lock:
                self._published += 1

    def put_many(self, pairs: Sequence[Tuple[str, object]],
                 origin: Optional[str] = None, adopt: bool = False) -> None:
        """Store a batch of ``(fingerprint, result)`` pairs; publish once.

        With a ``publish_many`` callback the whole batch travels as one
        replication event; without one this degrades to per-pair
        :meth:`put` semantics.  Either way every pair counts toward
        ``replication_published``.
        """
        pairs = list(pairs)
        if not pairs:
            return
        if self._publish_many is not None:
            for fingerprint, result in pairs:
                self._base_put(fingerprint, result, adopt=adopt)
            self._publish_many(pairs, origin=origin)
            with self._lock:
                self._published += len(pairs)
        else:
            for fingerprint, result in pairs:
                self.put(fingerprint, result, origin=origin, adopt=adopt)

    def merge_from(self, other: ResultStoreProtocol) -> int:
        return self.base.merge_from(other)

    def stats(self) -> Dict[str, float]:
        """The base store's snapshot plus replication counters."""
        snapshot = dict(self.base.stats())
        with self._lock:
            snapshot["replication_published"] = self._published
            snapshot["replication_applied"] = self._applied
        return snapshot

    def __len__(self) -> int:
        return len(self.base)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.base

    # -- replication inbox --------------------------------------------------
    def apply(self, fingerprint: str, result: object,
              adopt: bool = False) -> None:
        """Adopt one entry replicated *from* a peer.

        Writes the base store directly — never re-publishes — so two
        replicating stores pointed at each other converge instead of
        echoing entries back and forth forever.  ``adopt=True`` skips the
        base store's defensive copy (safe: replication entries come off
        the wire, already private to this process).
        """
        self._base_put(fingerprint, result, adopt=adopt)
        with self._lock:
            self._applied += 1
