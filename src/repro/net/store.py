"""Cluster-wide result caching: the replicated ``ResultStore`` protocol.

A single-host deployment already memoizes whole ``InferenceResult`` objects
in :class:`repro.session.ResultStore`, keyed on the session fingerprint.
Distributed serving wants the same property *cluster-wide*: a result
computed (or cached) on any host should short-circuit the identical request
everywhere.  Two pieces deliver it:

* :class:`ResultStoreProtocol` — the structural interface every store-like
  object must satisfy (``get``/``put``/``merge_from``/``stats``).  The
  coordinator, the workers and :class:`ReplicatedResultStore` all program
  against this protocol, so a plain in-memory store, a disk-backed store
  and a replicated wrapper are interchangeable.
* :class:`ReplicatedResultStore` — wraps a base store; every :meth:`put`
  lands in the base store *and* fires a publish callback carrying the
  ``(fingerprint, result)`` pair, which the coordinator turns into a
  ``store_put`` broadcast to every registered worker.  Replicated entries
  arriving *from* a peer are applied with :meth:`apply`, which writes the
  base store without re-publishing (no echo loops).

The resulting flow: worker A computes -> streams results -> coordinator
stores and broadcasts -> worker B's local store now holds the entry -> a
later batch containing the same fingerprint resolves on worker B without an
engine pass, and the coordinator's own admission check
(:meth:`InferenceServer._admit`) short-circuits it before it is even
queued.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Protocol, runtime_checkable

__all__ = ["ReplicatedResultStore", "ResultStoreProtocol"]


@runtime_checkable
class ResultStoreProtocol(Protocol):
    """Structural interface of a result store (see module docstring).

    :class:`repro.session.ResultStore` satisfies it natively;
    :class:`ReplicatedResultStore` satisfies it by delegation, so either
    can back a session, a server or a coordinator.
    """

    def get(self, fingerprint: str) -> Optional[object]:
        """Stored result for ``fingerprint`` or ``None``."""

    def put(self, fingerprint: str, result: object) -> None:
        """Store one result under ``fingerprint``."""

    def merge_from(self, other: "ResultStoreProtocol") -> int:
        """Adopt every result of ``other`` this store lacks; returns count."""

    def stats(self) -> Dict[str, float]:
        """Flat counter/occupancy snapshot."""


class ReplicatedResultStore:
    """A :class:`ResultStoreProtocol` wrapper that publishes every put.

    Parameters
    ----------
    base:
        The store that actually holds results (typically the owning
        session's :class:`~repro.session.ResultStore`).
    publish:
        Called as ``publish(fingerprint, result)`` after every successful
        local :meth:`put`.  ``None`` disables publication (the wrapper then
        only adds the :meth:`apply` inbox and replication counters) — the
        shape worker processes use, since their results travel home inside
        the normal result stream rather than as store messages.
    """

    def __init__(
        self,
        base: ResultStoreProtocol,
        publish: Optional[Callable[[str, object], None]] = None,
    ):
        self.base = base
        self._publish = publish
        self._lock = threading.Lock()
        self._published = 0
        self._applied = 0

    # -- protocol surface (delegation) --------------------------------------
    def get(self, fingerprint: str) -> Optional[object]:
        return self.base.get(fingerprint)

    def put(self, fingerprint: str, result: object) -> None:
        """Store locally, then publish to peers (see module docstring)."""
        self.base.put(fingerprint, result)
        if self._publish is not None:
            self._publish(fingerprint, result)
            with self._lock:
                self._published += 1

    def merge_from(self, other: ResultStoreProtocol) -> int:
        return self.base.merge_from(other)

    def stats(self) -> Dict[str, float]:
        """The base store's snapshot plus replication counters."""
        snapshot = dict(self.base.stats())
        with self._lock:
            snapshot["replication_published"] = self._published
            snapshot["replication_applied"] = self._applied
        return snapshot

    def __len__(self) -> int:
        return len(self.base)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.base

    # -- replication inbox --------------------------------------------------
    def apply(self, fingerprint: str, result: object) -> None:
        """Adopt one entry replicated *from* a peer.

        Writes the base store directly — never re-publishes — so two
        replicating stores pointed at each other converge instead of
        echoing entries back and forth forever.
        """
        self.base.put(fingerprint, result)
        with self._lock:
            self._applied += 1
